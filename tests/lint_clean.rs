//! Tier-1 entry point for the static analysis layer: `cargo test -q` at
//! the workspace root runs `bdb-lint` over the whole repository, so the
//! determinism / panic-hygiene / contract rules gate every change even
//! without the CI lint job.

#[test]
fn repository_passes_bdb_lint() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let diags = bdb_lint::run(root, &[]).expect("lint run succeeds");
    assert!(
        diags.is_empty(),
        "bdb-lint found {} violation(s):\n{}\n\nsee DESIGN.md §11 for the rule catalog and allowlist policy",
        diags.len(),
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
