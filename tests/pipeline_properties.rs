//! Property-based integration tests over the measurement pipeline.

use bigdatabench_repro::prelude::*;
use proptest::prelude::*;
use trace::{CodeLayout, ExecCtx};

/// Simulator invariants that must hold for *any* instrumented program.
fn arbitrary_program(ops: &[(u8, u64)]) -> sim::PerfReport {
    let mut layout = CodeLayout::new();
    let a = layout.region("a", 16 * 1024);
    let b = layout.region("b", 16 * 1024);
    let mut machine = sim::Machine::new(sim::MachineConfig::xeon_e5645());
    let mut ctx = ExecCtx::new(&layout, &mut machine);
    let data = ctx.heap_alloc(1 << 20, 64);
    ctx.frame(a, |ctx| {
        for &(kind, val) in ops {
            match kind % 6 {
                0 => ctx.read(data.addr(val % data.len()), 8),
                1 => ctx.write(data.addr(val % data.len()), 8),
                2 => ctx.int_other((val % 8) as u32 + 1),
                3 => ctx.fp_ops((val % 4) as u32 + 1),
                4 => ctx.cond_branch(val % 3 == 0),
                _ => ctx.frame(b, |ctx| ctx.int_addr((val % 5) as u32 + 1)),
            }
        }
    });
    drop(ctx);
    machine.report()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn simulator_invariants_hold(ops in proptest::collection::vec((0u8..6, 0u64..1_000_000), 1..300)) {
        let r = arbitrary_program(&ops);
        // Counter consistency.
        prop_assert_eq!(r.instructions, r.mix.total());
        prop_assert!(r.cycles > 0.0);
        prop_assert!(r.l1i.misses <= r.l1i.accesses);
        prop_assert!(r.l1d.misses <= r.l1d.accesses);
        prop_assert!(r.l2.misses <= r.l2.accesses);
        prop_assert!(r.l3.misses <= r.l3.accesses);
        prop_assert!(r.branch.mispredicts <= r.branch.branches);
        prop_assert!(r.branch.cond_mispredicts <= r.branch.conditionals);
        // Miss traffic can only narrow down the hierarchy.
        prop_assert!(r.l2.accesses <= r.l1i.misses + r.l1d.misses + 8);
        prop_assert!(r.l3.accesses <= r.l2.misses + 8);
        // Stall cycles never exceed total cycles.
        let stalls = r.fetch_stall_cycles + r.data_stall_cycles
            + r.branch_stall_cycles + r.tlb_stall_cycles;
        prop_assert!(stalls <= r.cycles + 1e-6);
        // IPC is bounded by the configured peak width.
        prop_assert!(r.ipc() <= 1.0 / 0.45 + 1e-9, "ipc {}", r.ipc());
    }

    #[test]
    fn identical_programs_measure_identically(ops in proptest::collection::vec((0u8..6, 0u64..1_000_000), 1..120)) {
        let a = arbitrary_program(&ops);
        let b = arbitrary_program(&ops);
        prop_assert_eq!(a.instructions, b.instructions);
        prop_assert_eq!(a.cycles.to_bits(), b.cycles.to_bits());
        prop_assert_eq!(a.l1i.misses, b.l1i.misses);
        prop_assert_eq!(a.branch.mispredicts, b.branch.mispredicts);
    }

    #[test]
    fn node_metrics_are_bounded(instr in 0u64..10_000_000_000, read in 0u64..1_000_000_000, write in 0u64..1_000_000_000, qd in 0.0f64..64.0) {
        let mut n = node::Node::new(node::NodeConfig::default());
        n.run_phase(node::Phase {
            name: "p".into(),
            instructions: instr,
            disk_read_bytes: read,
            disk_write_bytes: write,
            net_bytes: 0,
            io_parallelism: qd,
        });
        let m = n.metrics();
        prop_assert!((0.0..=100.0).contains(&m.cpu_utilization));
        prop_assert!((0.0..=100.0).contains(&m.io_wait_ratio));
        prop_assert!(m.weighted_io_ratio >= 0.0);
        prop_assert!(m.wall_seconds > 0.0);
        // The classifier must return one of the three paper classes.
        let _ = wcrt::classify::classify_system(&m);
    }
}

/// Running the same workload twice produces bit-identical 45-metric vectors.
#[test]
fn workload_profiles_are_reproducible() {
    let reps = workloads::catalog::representatives();
    let def = reps.iter().find(|w| w.spec.id == "S-Grep").expect("S-Grep");
    let run = || {
        wcrt::profile_workload(
            def,
            workloads::Scale::tiny(),
            sim::MachineConfig::xeon_e5645(),
            node::NodeConfig::default(),
        )
        .metrics
        .values()
        .to_vec()
    };
    assert_eq!(run(), run());
}
