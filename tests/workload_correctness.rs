//! The reproduction's workloads must compute *correct answers*, not just
//! plausible traces — these tests check algorithm outputs through the
//! public stack APIs against independent reference computations.

use bigdatabench_repro::prelude::*;
use stacks::dataflow::{Dataflow, DataflowConfig, SparkStack};
use stacks::mapreduce::{Emitter, HadoopStack, MapReduce, MapReduceConfig, Mapper, Reducer};
use stacks::record::Record;
use stacks::sql::{execute_hive, execute_impala, execute_shark, Agg, ImpalaStack, Plan, Pred};
use trace::{CodeLayout, ExecCtx, NullSink};

fn reference_wordcount(docs: &[&str]) -> std::collections::HashMap<String, u64> {
    let mut m = std::collections::HashMap::new();
    for d in docs {
        for w in d.split_whitespace() {
            *m.entry(w.to_owned()).or_insert(0) += 1;
        }
    }
    m
}

#[test]
fn mapreduce_wordcount_matches_reference() {
    let docs = [
        "to be or not to be",
        "that is the question",
        "whether tis nobler in the mind to suffer",
        "the slings and arrows of outrageous fortune",
    ];
    let input: Vec<Record> = docs
        .iter()
        .enumerate()
        .map(|(i, d)| Record::new(format!("{i}").into_bytes(), d.as_bytes().to_vec()))
        .collect();

    struct WcMapper;
    impl Mapper for WcMapper {
        fn map(&mut self, ctx: &mut ExecCtx<'_>, record: &Record, addr: u64, out: &mut Emitter) {
            ctx.read(addr, 8);
            for w in record.value.split(|&b| b == b' ') {
                if !w.is_empty() {
                    out.emit(Record::new(w.to_vec(), 1u64.to_be_bytes().to_vec()));
                }
            }
        }
    }
    struct SumReducer;
    impl Reducer for SumReducer {
        fn reduce(
            &mut self,
            ctx: &mut ExecCtx<'_>,
            key: &[u8],
            values: &[Record],
            addr: u64,
            out: &mut Emitter,
        ) {
            ctx.read(addr, 8);
            let sum: u64 = values
                .iter()
                .map(|v| u64::from_be_bytes(v.value[..8].try_into().expect("count")))
                .sum();
            out.emit(Record::new(key.to_vec(), sum.to_be_bytes().to_vec()));
        }
    }

    let mut layout = CodeLayout::new();
    let stack = HadoopStack::register(&mut layout);
    let mut sink = NullSink;
    let mut ctx = ExecCtx::new(&layout, &mut sink);
    let engine = MapReduce::new(
        &stack,
        MapReduceConfig {
            reduces: 3,
            use_combiner: true,
            ..Default::default()
        },
    );
    let mut combiner = SumReducer;
    let out = engine.run(
        &mut ctx,
        &input,
        &mut WcMapper,
        Some(&mut combiner),
        &mut SumReducer,
    );

    let reference = reference_wordcount(&docs);
    assert_eq!(out.records.len(), reference.len());
    for rec in &out.records {
        let word = String::from_utf8(rec.key.clone()).expect("utf8 word");
        let count = u64::from_be_bytes(rec.value[..8].try_into().expect("count"));
        assert_eq!(reference[&word], count, "count mismatch for {word}");
    }
}

#[test]
fn dataflow_pagerank_mass_is_conserved_shapewise() {
    // A 4-vertex cycle: symmetric, so every PageRank must converge to 1.0.
    let mut layout = CodeLayout::new();
    let stack = SparkStack::register(&mut layout);
    let mut sink = NullSink;
    let mut ctx = ExecCtx::new(&layout, &mut sink);
    let root = stack.root_region();
    let ranks = ctx.frame(root, |ctx| {
        let mut df = Dataflow::new(&stack, DataflowConfig::default(), ctx);
        let adjacency: Vec<Record> = (0..4u32)
            .map(|v| {
                Record::new(
                    v.to_be_bytes().to_vec(),
                    ((v + 1) % 4).to_be_bytes().to_vec(),
                )
            })
            .collect();
        let links = df.parallelize(ctx, &adjacency);
        let mut ranks = vec![1.0f64; 4];
        for _ in 0..30 {
            let snapshot = ranks.clone();
            let contribs = df.narrow(ctx, "contrib", &links, &mut |ctx, rec, _addr, out| {
                ctx.int_other(1);
                let src = u32::from_be_bytes(rec.key[..4].try_into().expect("key")) as usize;
                out.emit(Record::new(
                    rec.value.clone(),
                    snapshot[src].to_le_bytes().to_vec(),
                ));
            });
            let sums = df.reduce_by_key(ctx, &contribs, &mut |_, a, b| {
                let x = f64::from_le_bytes(a.value[..8].try_into().expect("f64"));
                let y = f64::from_le_bytes(b.value[..8].try_into().expect("f64"));
                Record::new(a.key.clone(), (x + y).to_le_bytes().to_vec())
            });
            for part in &sums.parts {
                for rec in &part.records {
                    let v = u32::from_be_bytes(rec.key[..4].try_into().expect("key")) as usize;
                    let sum = f64::from_le_bytes(rec.value[..8].try_into().expect("f64"));
                    ranks[v] = 0.15 + 0.85 * sum;
                }
            }
        }
        ranks
    });
    for (v, r) in ranks.iter().enumerate() {
        assert!((r - 1.0).abs() < 1e-6, "vertex {v} rank {r}");
    }
}

#[test]
fn sql_backends_agree_on_a_tpcds_query() {
    let data = datagen::tpcds::generate(
        datagen::tpcds::TpcdsConfig {
            sales_rows: 400,
            items: 40,
            customers: 60,
            days: 100,
        },
        99,
    );
    let tables = [
        &data.store_sales,
        &data.date_dim,
        &data.item,
        &data.customer,
    ];
    // A Q8-shaped query: join item, filter category, sum by brand.
    let plan = Plan::scan(0)
        .join(Plan::scan(2), 1, 0)
        .filter(Pred::StrEq(8, "Books".into()))
        .aggregate(vec![7], Agg::SumF64(5))
        .sort(1, true)
        .limit(5);

    let run_impala = || {
        let mut layout = CodeLayout::new();
        let stack = ImpalaStack::register(&mut layout);
        let mut sink = NullSink;
        let mut ctx = ExecCtx::new(&layout, &mut sink);
        execute_impala(&mut ctx, &stack, &tables, &plan).0
    };
    let run_hive = || {
        let mut layout = CodeLayout::new();
        let stack = HadoopStack::register(&mut layout);
        let mut sink = NullSink;
        let mut ctx = ExecCtx::new(&layout, &mut sink);
        execute_hive(&mut ctx, &stack, &tables, &plan).0
    };
    let run_shark = || {
        let mut layout = CodeLayout::new();
        let stack = SparkStack::register(&mut layout);
        let mut sink = NullSink;
        let mut ctx = ExecCtx::new(&layout, &mut sink);
        execute_shark(&mut ctx, &stack, &tables, &plan).0
    };
    // FP sums differ in the last ulps across grouping orders; compare with
    // fixed precision.
    let fmt = |rows: Vec<datagen::Row>| {
        rows.into_iter()
            .map(|r| {
                r.iter()
                    .map(|f| match f {
                        datagen::Field::F64(x) => format!("F64({x:.6})"),
                        other => format!("{other:?}"),
                    })
                    .collect::<Vec<_>>()
                    .join("|")
            })
            .collect::<Vec<_>>()
    };
    let a = fmt(run_impala());
    let b = fmt(run_hive());
    let c = fmt(run_shark());
    assert!(!a.is_empty(), "query should return rows");
    assert_eq!(a, b, "impala vs hive");
    assert_eq!(a, c, "impala vs shark");
}

#[test]
fn grep_pattern_occurs_rarely_but_does_occur() {
    use workloads::data;
    let records = data::text_records(datagen::DataSetId::Wikipedia, workloads::Scale::small());
    let pattern = data::grep_pattern(datagen::DataSetId::Wikipedia);
    let matches = records
        .iter()
        .filter(|r| {
            r.value
                .windows(pattern.len())
                .any(|w| w == pattern.as_slice())
        })
        .count();
    assert!(matches > 0, "pattern must occur somewhere");
    assert!(
        (matches as f64) < 0.2 * records.len() as f64,
        "pattern should be rare: {matches}/{}",
        records.len()
    );
}

#[test]
fn kv_store_read_your_writes_under_mixed_load() {
    use stacks::kvstore::{HbaseStack, KvService, Request};
    let mut layout = CodeLayout::new();
    let stack = HbaseStack::register(&mut layout);
    let mut sink = NullSink;
    let mut ctx = ExecCtx::new(&layout, &mut sink);
    let root = stack.root_region();
    ctx.frame(root, |ctx| {
        let mut svc = KvService::new(&stack, ctx);
        for i in 0..1_000u32 {
            svc.serve(
                ctx,
                &Request::Put(Record::new(
                    format!("k{i:05}").into_bytes(),
                    i.to_be_bytes().to_vec(),
                )),
            );
        }
        for i in (0..1_000u32).step_by(37) {
            let got = svc.serve(ctx, &Request::Get(format!("k{i:05}").into_bytes()));
            assert_eq!(got.len(), 1, "k{i:05} lost");
            assert_eq!(got[0].value, i.to_be_bytes().to_vec());
        }
    });
}
