//! Integration tests asserting the paper's headline observations hold in
//! the reproduction — the *shape* claims, not absolute numbers.

use bigdatabench_repro::prelude::*;
use node::NodeConfig;
use sim::MachineConfig;
use wcrt::profile_workload;
use workloads::{catalog, Scale, WorkloadDef};

fn find<'a>(defs: &'a [WorkloadDef], id: &str) -> &'a WorkloadDef {
    defs.iter()
        .find(|w| w.spec.id == id)
        .unwrap_or_else(|| panic!("{id} missing"))
}

fn profile(def: &WorkloadDef, scale: Scale) -> wcrt::WorkloadProfile {
    profile_workload(
        def,
        scale,
        MachineConfig::xeon_e5645(),
        NodeConfig::default(),
    )
}

/// O4: the same WordCount has an order-of-magnitude L1I MPKI gap between
/// the thin MPI stack and the deep managed stacks (paper: 2 / 7 / 17).
#[test]
fn stack_study_l1i_ordering() {
    let mut defs = catalog::full_catalog();
    defs.extend(catalog::mpi_workloads());
    let scale = Scale::small();
    let m = profile(find(&defs, "M-WordCount"), scale).report.l1i_mpki();
    let h = profile(find(&defs, "H-WordCount"), scale).report.l1i_mpki();
    let s = profile(find(&defs, "S-WordCount"), scale).report.l1i_mpki();
    assert!(
        m < h && h < s,
        "expected M < H < S, got {m:.2} / {h:.2} / {s:.2}"
    );
    assert!(
        s / m.max(1e-9) > 8.0,
        "order-of-magnitude gap: {m:.2} vs {s:.2}"
    );
}

/// O4 (IPC side): the MPI implementations retire faster than the managed
/// stacks for the same algorithm (paper: 1.4 vs 1.16 on average).
#[test]
fn mpi_ipc_beats_managed_stacks() {
    let mut defs = catalog::full_catalog();
    defs.extend(catalog::mpi_workloads());
    let scale = Scale::tiny();
    let mut mpi = 0.0;
    let mut managed = 0.0;
    for (m_id, h_id, s_id) in [
        ("M-WordCount", "H-WordCount", "S-WordCount"),
        ("M-Grep", "H-Grep", "S-Grep"),
        ("M-Kmeans", "H-Kmeans", "S-Kmeans"),
    ] {
        mpi += profile(find(&defs, m_id), scale).report.ipc();
        managed += (profile(find(&defs, h_id), scale).report.ipc()
            + profile(find(&defs, s_id), scale).report.ipc())
            / 2.0;
    }
    assert!(
        mpi > managed,
        "MPI avg IPC {mpi:.2} should beat managed {managed:.2}"
    );
}

/// O1: big data workloads are data-movement dominated (~92 % in the paper)
/// with branch ratios well above the numeric suites.
#[test]
fn instruction_mix_is_data_movement_dominated() {
    let scale = Scale::tiny();
    let reps = catalog::representatives();
    let mut movement = 0.0;
    let mut branch = 0.0;
    let sample: Vec<&str> = vec![
        "H-WordCount",
        "S-WordCount",
        "H-Grep",
        "S-Sort",
        "H-Read",
        "S-Kmeans",
    ];
    for id in &sample {
        let p = profile(find(&reps, id), scale);
        movement += p.report.mix.data_movement_ratio();
        branch += p.report.mix.branch_ratio();
    }
    movement /= sample.len() as f64;
    branch /= sample.len() as f64;
    assert!(
        movement > 0.80,
        "data movement share {movement:.2} (paper ~0.92)"
    );
    assert!(
        (0.10..0.35).contains(&branch),
        "branch ratio {branch:.2} (paper 0.187)"
    );

    // Numeric suites have far lower branch ratios and higher FP.
    let hpcc = catalog::suite_workloads(workloads::suites::Suite::Hpcc);
    let dgemm = profile(&hpcc[1], scale);
    assert!(dgemm.report.mix.branch_ratio() < branch);
    assert!(dgemm.report.mix.fp_ratio() > 0.2);
}

/// O3/front-end: the service workload has the worst L1I MPKI of the
/// representatives, and suites sit below the big data average.
#[test]
fn service_front_end_is_worst() {
    let scale = Scale::tiny();
    let reps = catalog::representatives();
    let service = profile(find(&reps, "H-Read"), scale).report.l1i_mpki();
    for id in ["H-WordCount", "S-Kmeans", "H-Grep", "S-Grep"] {
        let other = profile(find(&reps, id), scale).report.l1i_mpki();
        assert!(
            service > other,
            "H-Read {service:.1} should exceed {id} {other:.1}"
        );
    }
    let parsec = catalog::suite_workloads(workloads::suites::Suite::Parsec);
    let blackscholes = profile(&parsec[0], scale).report.l1i_mpki();
    assert!(
        blackscholes < service / 5.0,
        "PARSEC {blackscholes:.2} vs service {service:.1}"
    );
}

/// Table 4: the D510's simple predictor mispredicts more than the E5645's
/// hybrid predictor on the same workloads (paper: 7.8 % vs 2.8 %).
#[test]
fn d510_mispredicts_more_than_e5645() {
    let scale = Scale::tiny();
    let reps = catalog::representatives();
    let node = NodeConfig::default();
    let mut d_sum = 0.0;
    let mut e_sum = 0.0;
    for id in ["H-WordCount", "S-WordCount", "H-Read", "S-Sort", "H-Grep"] {
        let def = find(&reps, id);
        let e = profile_workload(def, scale, MachineConfig::xeon_e5645(), node);
        let d = profile_workload(def, scale, MachineConfig::atom_d510(), node);
        d_sum += d.report.branch.mispredict_ratio();
        e_sum += e.report.branch.mispredict_ratio();
    }
    assert!(
        d_sum > 1.3 * e_sum,
        "D510 total {d_sum:.3} should clearly exceed E5645 {e_sum:.3}"
    );
}

/// §5.4: Hadoop's instruction footprint dwarfs PARSEC's; data footprints
/// are comparable (Figures 6-8).
#[test]
fn locality_footprints() {
    let scale = Scale::small();
    let defs = catalog::full_catalog();
    let hadoop = find(&defs, "H-WordCount");
    let sizes = [16, 64, 256, 1024, 8192];
    let h = sim::sweep("hadoop", &sizes, |m| {
        let _ = hadoop.run(m, scale);
    });
    let parsec_defs = catalog::suite_workloads(workloads::suites::Suite::Parsec);
    let p = sim::sweep("parsec", &sizes, |m| {
        let _ = parsec_defs[0].run(m, scale);
    });
    // Instruction curves: Hadoop starts much higher and keeps declining
    // past the point where PARSEC has flattened.
    let h16 = h.instruction.at(16).unwrap();
    let p16 = p.instruction.at(16).unwrap();
    assert!(h16 > p16, "Hadoop 16KiB I-miss {h16} vs PARSEC {p16}");
    let h_drop = h.instruction.at(64).unwrap() - h.instruction.at(1024).unwrap();
    assert!(
        h_drop > 0.001,
        "Hadoop must still gain beyond 64 KiB: {h_drop}"
    );
    // Data curves converge at large capacities (Figure 7).
    let hd = h.data.at(8192).unwrap();
    let pd = p.data.at(8192).unwrap();
    assert!(
        (hd - pd).abs() < 0.02,
        "data curves should converge: {hd} vs {pd}"
    );
}

/// §3: the WCRT reduction runs end-to-end on a catalog slice and yields
/// one representative per non-empty cluster, deterministically.
#[test]
fn reduction_is_deterministic_and_complete() {
    let defs: Vec<WorkloadDef> = catalog::full_catalog().into_iter().take(12).collect();
    let profiles = wcrt::profile::profile_all(
        &defs,
        Scale::tiny(),
        &MachineConfig::xeon_e5645(),
        &NodeConfig::default(),
    );
    let config = wcrt::reduction::ReductionConfig {
        k: 4,
        ..Default::default()
    };
    let a = wcrt::reduce(&profiles, config);
    let b = wcrt::reduce(&profiles, config);
    assert_eq!(a.representative_ids(), b.representative_ids());
    assert_eq!(a.clustering.assignments, b.clustering.assignments);
    assert!(!a.representative_indices.is_empty());
    assert!(a.pca_dims <= 45);
    let total: usize = a.weighted_representatives().iter().map(|(_, n)| n).sum();
    assert_eq!(total, 12, "cluster sizes partition the input");
}

/// Workload correctness spot-check: every representative runs and accounts
/// real data volumes at tiny scale.
#[test]
fn all_representatives_run() {
    let scale = Scale::tiny();
    for def in catalog::representatives() {
        let p = profile(&def, scale);
        assert!(p.report.instructions > 5_000, "{} too small", def.spec.id);
        assert!(p.input_bytes > 0, "{} has no input", def.spec.id);
        assert!(
            p.metrics.values().iter().all(|v| v.is_finite()),
            "{}",
            def.spec.id
        );
    }
}
