//! Property tests for the serve subsystem.
//!
//! Two families. The convergence properties drive arbitrary mutation
//! interleavings through [`ServeState::apply`] and check that the
//! incrementally-patched catalog is byte-identical to a cold full
//! recompute of the final spec — and that a shadow catalog patched only
//! by the emitted delta batches lands on the same bytes. The wire
//! properties check that [`ServeRequest`] frames round-trip byte-stably
//! in both payload formats and that truncated or bit-flipped binary
//! frames are always rejected, never misdecoded.

use bdb_cluster::WireFormat;
use bdb_engine::codec::profile_to_value;
use bdb_engine::json::Value;
use bdb_engine::{resolve_workload, Engine};
use bdb_node::NodeConfig;
use bdb_serve::{
    decode_request, encode_reply, encode_request, Delta, DeltaBatch, EntryKey, Mutation,
    ServeReply, ServeRequest, ServeSpec, ServeState, SERVE_PROTOCOL_VERSION,
};
use bdb_sim::MachineConfig;
use bdb_wcrt::WorkloadProfile;
use bdb_workloads::Scale;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

// ---------------------------------------------------------------------
// Convergence: mutation interleavings vs cold recompute.
// ---------------------------------------------------------------------

/// The mutation universe the interleaving property draws from. Every
/// op is *attempted*; invalid ones (duplicate add, unknown remove) must
/// be rejected without touching the state, which the property relies on.
fn config_name() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("xeon-e5645".to_owned()),
        Just("atom-d510".to_owned()),
        Just("xeon-e5-2697".to_owned()),
    ]
}

fn workload_id() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("H-WordCount".to_owned()),
        Just("H-Grep".to_owned()),
        Just("S-Project".to_owned()),
        Just("M-Sort".to_owned()),
    ]
}

fn mutation() -> impl Strategy<Value = Mutation> {
    let knob = prop_oneof![
        Just("l1d.size_bytes".to_owned()),
        Just("l2.size_bytes".to_owned()),
        Just("pipeline.mem_latency".to_owned()),
    ];
    let knob_value = prop_oneof![Just(8192u64), Just(16384u64), Just(65536u64)];
    prop_oneof![
        (config_name(), knob, knob_value).prop_map(|(config, knob, v)| Mutation::SetKnob {
            config,
            knob,
            value: Value::UInt(v),
        }),
        workload_id().prop_map(|id| Mutation::AddWorkload { id }),
        workload_id().prop_map(|id| Mutation::RemoveWorkload { id }),
        config_name().prop_map(|name| {
            let machine = match name.as_str() {
                "atom-d510" => MachineConfig::atom_d510(),
                "xeon-e5-2697" => MachineConfig::xeon_e5_2697(),
                _ => MachineConfig::xeon_e5645(),
            };
            Mutation::AddConfig {
                name,
                machine: Box::new(machine),
            }
        }),
        config_name().prop_map(|name| Mutation::RemoveConfig { name }),
        prop_oneof![Just(0.01f64), Just(0.02f64)].prop_map(|factor| Mutation::SetScale { factor }),
    ]
}

fn start_spec() -> ServeSpec {
    ServeSpec::representatives(Scale::tiny())
        .with_workloads(&["H-WordCount".to_owned(), "H-Grep".to_owned()])
        .expect("catalog ids resolve")
}

/// Renders a shadow catalog (key → canonical profile line) for byte
/// comparison against [`ServeState::snapshot_bytes`]-backed state.
fn shadow_lines(shadow: &BTreeMap<EntryKey, (u64, String)>) -> Vec<String> {
    shadow
        .iter()
        .map(|(key, (fp, bytes))| format!("{} {fp:016x} {bytes}", key.render()))
        .collect()
}

fn state_lines(state: &ServeState) -> Vec<String> {
    state
        .keys()
        .into_iter()
        .map(|key| {
            let (fp, _) = state.get(&key).expect("listed key present");
            let bytes = state.get_bytes(&key).expect("listed key present");
            format!("{} {fp:016x} {bytes}", key.render())
        })
        .collect()
}

proptest! {
    // Every case profiles real workloads; keep the case count low and
    // the specs tiny so the suite stays in seconds.
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn any_interleaving_converges_to_the_cold_recompute(
        mutations in proptest::collection::vec(mutation(), 1..6),
    ) {
        let engine = Arc::new(Engine::in_memory());
        let mut state = ServeState::materialize(engine, start_spec())
            .expect("start spec materializes");
        // Shadow catalog maintained purely from the delta stream.
        let mut shadow: BTreeMap<EntryKey, (u64, String)> = state
            .keys()
            .into_iter()
            .map(|key| {
                let (fp, _) = state.get(&key).expect("present");
                let bytes = state.get_bytes(&key).expect("present").to_owned();
                (key, (fp, bytes))
            })
            .collect();
        let mut applied = 0u64;
        for mutation in &mutations {
            let Ok(batch) = state.apply(mutation) else {
                continue; // invalid op; apply() guarantees no state change
            };
            applied += 1;
            prop_assert_eq!(batch.seq, applied, "seq counts applied mutations only");
            for delta in &batch.deltas {
                match delta {
                    Delta::Created { key, fingerprint, profile }
                    | Delta::Updated { key, fingerprint, profile } => {
                        let bytes = profile_to_value(profile).encode();
                        shadow.insert(key.clone(), (*fingerprint, bytes));
                    }
                    Delta::Deleted { key } => {
                        shadow.remove(key);
                    }
                }
            }
        }

        // The incrementally-maintained catalog, the delta-patched shadow,
        // and a cold recompute of the final spec must agree byte for byte.
        let cold = ServeState::materialize(Arc::new(Engine::in_memory()), state.spec().clone())
            .expect("cold materialize");
        prop_assert_eq!(state.snapshot_bytes(), cold.snapshot_bytes());
        prop_assert_eq!(shadow_lines(&shadow), state_lines(&state));
    }
}

// ---------------------------------------------------------------------
// Wire: round-trip, truncation, corruption.
// ---------------------------------------------------------------------

fn ident() -> impl Strategy<Value = String> {
    proptest::collection::vec(97u8..123, 1..16)
        .prop_map(|bytes| bytes.into_iter().map(char::from).collect())
}

fn entry_key() -> impl Strategy<Value = EntryKey> {
    (ident(), ident()).prop_map(|(config, workload)| EntryKey::new(&config, &workload))
}

fn request() -> impl Strategy<Value = ServeRequest> {
    prop_oneof![
        ident().prop_map(|client| ServeRequest::Hello {
            client,
            protocol: SERVE_PROTOCOL_VERSION,
        }),
        (any::<u64>(), entry_key()).prop_map(|(id, key)| ServeRequest::Query { id, key }),
        any::<u64>().prop_map(|id| ServeRequest::Snapshot { id }),
        (any::<u64>(), mutation()).prop_map(|(id, mutation)| ServeRequest::Mutate { id, mutation }),
        any::<u64>().prop_map(|id| ServeRequest::Subscribe { id }),
        any::<u64>().prop_map(|id| ServeRequest::Stats { id }),
        any::<u64>().prop_map(|id| ServeRequest::Shutdown { id }),
        Just(ServeRequest::Bye),
    ]
}

fn format() -> impl Strategy<Value = WireFormat> {
    prop_oneof![Just(WireFormat::Json), Just(WireFormat::Binary)]
}

/// One real profile, computed once — delta frames need a profile body
/// and simulating a fresh one per proptest case would swamp the suite.
fn sample_profile() -> &'static WorkloadProfile {
    static PROFILE: OnceLock<WorkloadProfile> = OnceLock::new();
    PROFILE.get_or_init(|| {
        let workload = resolve_workload("H-WordCount").expect("catalog id");
        Engine::in_memory().profile(
            &workload,
            Scale::tiny(),
            &MachineConfig::xeon_e5645(),
            &NodeConfig::default(),
        )
    })
}

fn delta() -> impl Strategy<Value = Delta> {
    prop_oneof![
        (entry_key(), any::<u64>()).prop_map(|(key, fingerprint)| Delta::Created {
            key,
            fingerprint,
            profile: sample_profile().clone(),
        }),
        (entry_key(), any::<u64>()).prop_map(|(key, fingerprint)| Delta::Updated {
            key,
            fingerprint,
            profile: sample_profile().clone(),
        }),
        entry_key().prop_map(|key| Delta::Deleted { key }),
    ]
}

fn delta_reply() -> impl Strategy<Value = ServeReply> {
    (any::<u64>(), proptest::collection::vec(delta(), 0..4))
        .prop_map(|(seq, deltas)| ServeReply::Delta(DeltaBatch { seq, deltas }))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn requests_roundtrip_byte_stably(req in request(), fmt in format()) {
        let frame = encode_request(fmt, &req);
        let decoded = decode_request(&frame).expect("own frames decode");
        prop_assert_eq!(&decoded, &req);
        // Canonical key order makes re-encoding the identity on bytes.
        prop_assert_eq!(encode_request(fmt, &decoded), frame);
    }

    #[test]
    fn json_and_binary_requests_carry_identical_values(req in request()) {
        let via_json = decode_request(&encode_request(WireFormat::Json, &req))
            .expect("json decodes");
        let via_binary = decode_request(&encode_request(WireFormat::Binary, &req))
            .expect("binary decodes");
        prop_assert_eq!(via_json, via_binary);
    }

    #[test]
    fn truncated_request_frames_are_rejected(
        req in request(),
        fmt in format(),
        cut_seed in any::<u64>(),
    ) {
        let frame = encode_request(fmt, &req);
        let cut = 1 + (cut_seed as usize) % (frame.len() - 1);
        prop_assert!(
            decode_request(&frame[..cut]).is_err(),
            "a strict prefix must never decode"
        );
    }

    #[test]
    fn bitflipped_binary_delta_frames_are_rejected(
        reply in delta_reply(),
        pos_seed in any::<u64>(),
        bit in 0u8..8,
    ) {
        let mut frame = encode_reply(WireFormat::Binary, &reply);
        // Flip past the 4-byte magic: with the magic intact the payload
        // must reach the checksummed BDBC decoder, which has to catch
        // any single-bit flip.
        let pos = 4 + (pos_seed as usize) % (frame.len() - 4);
        frame[pos] ^= 1 << bit;
        prop_assert!(
            bdb_serve::decode_reply(&frame).is_err(),
            "a bit flip at byte {} must be rejected",
            pos
        );
    }
}
