//! The serve contract: applying mutations incrementally must leave the
//! materialized catalog **byte-identical** to a cold full recompute of
//! the final spec, while touching only the entries each mutation
//! invalidates. The loopback tests drive the same guarantees through a
//! real server session — warm queries never hit the engine, and a
//! subscriber patching its snapshot with streamed deltas converges to
//! the server's own catalog bytes.

use bdb_cluster::{loopback_pair, WireFormat};
use bdb_engine::codec::profile_to_value;
use bdb_engine::json::Value;
use bdb_engine::{Engine, EngineConfig};
use bdb_serve::{
    apply_delta_batch, Mutation, ServeClient, ServeSpec, ServeState, Server, ServerConfig,
    SnapshotEntry,
};
use bdb_sim::MachineConfig;
use bdb_workloads::Scale;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

fn small_spec() -> ServeSpec {
    ServeSpec::representatives(Scale::tiny())
        .with_workloads(&[
            "H-WordCount".to_owned(),
            "H-Grep".to_owned(),
            "S-Project".to_owned(),
        ])
        .expect("catalog ids resolve")
}

/// Spawns a loopback session thread against `server` and returns a
/// connected client. The session thread exits when the client says
/// `Bye` (or drops its transport).
fn session(server: &Server) -> ServeClient {
    let (client_end, server_end) = loopback_pair("test-session");
    let server = server.clone();
    std::thread::spawn(move || server.serve_session(Arc::new(server_end)));
    ServeClient::over(Arc::new(client_end), WireFormat::Json)
}

fn snapshot_lines(entries: &[SnapshotEntry]) -> Vec<String> {
    entries
        .iter()
        .map(|e| {
            format!(
                "{} {:016x} {}",
                e.key.render(),
                e.fingerprint,
                profile_to_value(&e.profile).encode()
            )
        })
        .collect()
}

#[test]
fn mutation_sequence_matches_cold_full_recompute_byte_for_byte() {
    let engine = Arc::new(Engine::in_memory());
    let mut state = ServeState::materialize(engine.clone(), small_spec()).expect("materialize");
    // Exercise every mutation kind: knob edit, workload add/remove,
    // config add/remove (add two so the remove leaves a mixed catalog),
    // and a scale change that invalidates everything.
    let mutations = [
        Mutation::SetKnob {
            config: "xeon-e5645".to_owned(),
            knob: "l1d.size_bytes".to_owned(),
            value: Value::UInt(16384),
        },
        Mutation::AddConfig {
            name: "atom-d510".to_owned(),
            machine: Box::new(MachineConfig::atom_d510()),
        },
        Mutation::AddWorkload {
            id: "M-Sort".to_owned(),
        },
        Mutation::AddConfig {
            name: "xeon-e5-2697".to_owned(),
            machine: Box::new(MachineConfig::xeon_e5_2697()),
        },
        Mutation::RemoveWorkload {
            id: "H-Grep".to_owned(),
        },
        Mutation::RemoveConfig {
            name: "xeon-e5-2697".to_owned(),
        },
        Mutation::SetScale { factor: 0.0625 },
    ];
    for (i, mutation) in mutations.iter().enumerate() {
        let batch = state.apply(mutation).expect("mutation applies");
        assert_eq!(batch.seq, (i + 1) as u64, "seq advances once per mutation");
    }
    assert_eq!(state.len(), 6, "2 configs x 3 workloads survive");

    let cold = ServeState::materialize(Arc::new(Engine::in_memory()), state.spec().clone())
        .expect("cold materialize");
    assert_eq!(
        state.snapshot_bytes(),
        cold.snapshot_bytes(),
        "incremental catalog must be byte-identical to a cold recompute"
    );
}

#[test]
fn warm_restart_re_materializes_without_recomputing() {
    let dir = std::env::temp_dir().join(format!("bdb-serve-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let cold_engine = Arc::new(Engine::new(EngineConfig::default().cache_dir(&dir)));
    let cold = ServeState::materialize(cold_engine.clone(), small_spec()).expect("cold");
    assert_eq!(cold_engine.counters().computed, 3, "cold run simulates");
    let cold_bytes = cold.snapshot_bytes();
    drop(cold);

    // A restarted daemon pointing at the same cache dir comes back warm:
    // every profile loads from disk, nothing is simulated.
    let warm_engine = Arc::new(Engine::new(EngineConfig::default().cache_dir(&dir)));
    let warm = ServeState::materialize(warm_engine.clone(), small_spec()).expect("warm");
    assert_eq!(
        warm_engine.counters().computed,
        0,
        "restart must not simulate"
    );
    assert_eq!(warm_engine.counters().disk_hits, 3);
    assert_eq!(
        warm.snapshot_bytes(),
        cold_bytes,
        "warm catalog is byte-identical"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn loopback_queries_and_snapshots_are_served_from_the_materialized_map() {
    let engine = Arc::new(Engine::in_memory());
    let state = ServeState::materialize(engine.clone(), small_spec()).expect("materialize");
    let keys = state.keys();
    let server = Server::new(state, ServerConfig::named("warm-test"));

    let mut client = session(&server);
    let info = client.hello("reader").expect("hello");
    assert_eq!(info.entries, 3);
    assert_eq!(info.seq, 0);

    let computed_before = engine.counters().computed;
    for key in &keys {
        let (fingerprint, profile) = client
            .query(key)
            .expect("query")
            .expect("served key is present");
        assert_ne!(fingerprint, 0);
        assert_eq!(profile.spec.id, key.workload);
    }
    let (seq, entries) = client.snapshot().expect("snapshot");
    assert_eq!(seq, 0);
    assert_eq!(entries.len(), 3);
    assert!(
        client
            .query(&bdb_serve::EntryKey::new("xeon-e5645", "NoSuchWorkload"))
            .expect("query")
            .is_none(),
        "unknown keys are NotFound, not errors"
    );
    assert_eq!(
        engine.counters().computed,
        computed_before,
        "warm queries and snapshots must never reach the engine"
    );

    let stats = client.stats().expect("stats");
    assert_eq!(stats.entries, 3);
    assert_eq!(
        stats.computed, 3,
        "only the initial materialization simulated"
    );
    assert_eq!(stats.sessions_active, 1);
    client.bye().expect("bye");
}

#[test]
fn subscriber_patches_snapshot_to_byte_identical_catalog() {
    let engine = Arc::new(Engine::in_memory());
    let state = ServeState::materialize(engine.clone(), small_spec()).expect("materialize");
    let server = Server::new(state, ServerConfig::named("delta-test"));

    let mut subscriber = session(&server);
    subscriber.hello("subscriber").expect("hello");
    let covered = subscriber.subscribe().expect("subscribe");
    let (snap_seq, entries) = subscriber.snapshot().expect("snapshot");
    assert_eq!(covered, snap_seq);
    let mut catalog: BTreeMap<String, SnapshotEntry> =
        entries.into_iter().map(|e| (e.key.render(), e)).collect();

    let mut mutator = session(&server);
    mutator.hello("mutator").expect("hello");
    let computed_before = engine.counters().computed;
    let outcome = mutator
        .mutate(Mutation::SetKnob {
            config: "xeon-e5645".to_owned(),
            knob: "l1d.size_bytes".to_owned(),
            value: Value::UInt(16384),
        })
        .expect("knob mutate");
    assert_eq!(outcome.seq, snap_seq + 1);
    assert_eq!(outcome.created, 0);
    assert_eq!(outcome.deleted, 0);
    assert!(outcome.updated >= 1, "shrinking L1d must move some profile");
    assert_eq!(
        engine.counters().computed,
        computed_before + 3,
        "the delta recompute touches exactly the affected entries"
    );
    let removed = mutator
        .mutate(Mutation::RemoveWorkload {
            id: "H-Grep".to_owned(),
        })
        .expect("remove mutate");
    assert_eq!(removed.deleted, 1);

    // The subscriber replays both pushed batches onto its snapshot…
    for expect_seq in [snap_seq + 1, snap_seq + 2] {
        let batch = subscriber
            .next_delta(Duration::from_secs(30))
            .expect("delta stream")
            .expect("batch arrives before timeout");
        assert_eq!(batch.seq, expect_seq, "batches arrive in strict seq order");
        apply_delta_batch(&mut catalog, &batch);
    }

    // …and must land on the server's own catalog, byte for byte.
    let (final_seq, fresh) = mutator.snapshot().expect("fresh snapshot");
    assert_eq!(final_seq, snap_seq + 2);
    let patched: Vec<SnapshotEntry> = catalog.into_values().collect();
    assert_eq!(snapshot_lines(&patched), snapshot_lines(&fresh));

    let stats = mutator.stats().expect("stats");
    assert_eq!(stats.subscribers, 1);
    assert_eq!(stats.delta_batches, 2);
    // The flusher credits `deltas_streamed` *after* each successful
    // send, so the counter can trail the subscriber's receipt by an
    // instruction or two — poll it to the full fan-out.
    let expected = outcome.updated + removed.deleted;
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let streamed = mutator.stats().expect("stats").deltas_streamed;
        if streamed == expected {
            break;
        }
        assert!(
            streamed < expected,
            "deltas_streamed {streamed} overshot the fan-out {expected}"
        );
        assert!(
            std::time::Instant::now() < deadline,
            "deltas_streamed {streamed} never reached {expected}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    subscriber.bye().expect("bye");
    mutator.bye().expect("bye");
}

#[test]
fn session_cap_sheds_with_a_deterministic_retry_hint() {
    let state =
        ServeState::materialize(Arc::new(Engine::in_memory()), small_spec()).expect("materialize");
    let server = Server::new(
        state,
        ServerConfig {
            max_clients: 0,
            ..ServerConfig::named("full")
        },
    );
    let mut client = session(&server);
    match client.hello("late") {
        Err(bdb_serve::ServeError::ServerFull {
            max_clients,
            retry_after_ticks,
        }) => {
            assert_eq!(max_clients, 0);
            // One session over a cap of zero: exactly one retry quantum.
            assert_eq!(retry_after_ticks, bdb_serve::RETRY_QUANTUM_TICKS);
        }
        other => panic!("expected a busy refusal, got {other:?}"),
    }
}

/// A server-side transport driven by a script: requests come from a
/// channel that stays open (so the session blocks instead of closing),
/// and the peer stops reading after `free_sends` replies — every later
/// send parks forever, wedging the subscriber's flusher thread mid-send
/// the way a stalled TCP peer would.
struct StuckSubscriber {
    requests: std::sync::Mutex<std::sync::mpsc::Receiver<Vec<u8>>>,
    _keep_open: std::sync::mpsc::Sender<Vec<u8>>,
    sends: std::sync::atomic::AtomicU64,
    free_sends: u64,
}

impl bdb_cluster::FrameTransport for StuckSubscriber {
    fn send_payload(&self, _payload: &[u8]) -> Result<(), bdb_cluster::TransportError> {
        let n = self.sends.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        if n >= self.free_sends {
            loop {
                std::thread::park();
            }
        }
        Ok(())
    }

    fn recv_payload(&self) -> Result<Vec<u8>, bdb_cluster::TransportError> {
        self.requests
            .lock()
            .expect("script lock")
            .recv()
            .map_err(|_| bdb_cluster::TransportError::Closed)
    }

    fn recv_payload_timeout(
        &self,
        timeout: Duration,
    ) -> Result<Option<Vec<u8>>, bdb_cluster::TransportError> {
        match self
            .requests
            .lock()
            .expect("script lock")
            .recv_timeout(timeout)
        {
            Ok(p) => Ok(Some(p)),
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => Ok(None),
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                Err(bdb_cluster::TransportError::Closed)
            }
        }
    }

    fn peer_label(&self) -> String {
        "stuck-subscriber".to_owned()
    }
}

#[test]
fn slow_subscriber_is_evicted_not_buffered_without_bound() {
    let state =
        ServeState::materialize(Arc::new(Engine::in_memory()), small_spec()).expect("materialize");
    let server = Server::new(
        state,
        ServerConfig {
            sub_queue: 1,
            ..ServerConfig::named("evict")
        },
    );

    // A subscriber that registers and then never reads another frame:
    // its one allowed send is the `Subscribed` reply, so the flusher
    // wedges on the first delta frame.
    let (tx, rx) = std::sync::mpsc::channel();
    tx.send(bdb_serve::encode_request(
        WireFormat::Json,
        &bdb_serve::ServeRequest::Subscribe { id: 1 },
    ))
    .expect("script send");
    let stuck = Arc::new(StuckSubscriber {
        requests: std::sync::Mutex::new(rx),
        _keep_open: tx,
        sends: std::sync::atomic::AtomicU64::new(0),
        free_sends: 1,
    });
    {
        let server = server.clone();
        let stuck: Arc<dyn bdb_cluster::FrameTransport> = stuck;
        std::thread::spawn(move || server.serve_session(stuck));
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while server.stats().subscribers < 1 {
        assert!(std::time::Instant::now() < deadline, "subscriber registers");
        std::thread::sleep(Duration::from_millis(5));
    }

    // Three effective mutations: the first delta wedges the flusher,
    // the queue (depth 1) fills, and the subscriber is shed instead of
    // buffered without bound.
    let mut mutator = session(&server);
    mutator.hello("mutator").expect("hello");
    for size in [16384u64, 32768, 8192] {
        mutator
            .mutate(Mutation::SetKnob {
                config: "xeon-e5645".to_owned(),
                knob: "l1d.size_bytes".to_owned(),
                value: Value::UInt(size),
            })
            .expect("mutation applies");
    }
    let stats = mutator.stats().expect("stats");
    assert_eq!(
        stats.subscribers_evicted, 1,
        "slow consumer shed exactly once"
    );
    assert_eq!(stats.subscribers, 0, "evicted subscriber unregistered");
    mutator.bye().expect("bye");
}

/// A server-side transport whose sends park on a gate after
/// `free_sends` frames, recording every delivered payload — a slow (but
/// not dead) peer. Opening the gate lets the flusher drain.
struct GatedSubscriber {
    requests: std::sync::Mutex<std::sync::mpsc::Receiver<Vec<u8>>>,
    _keep_open: std::sync::mpsc::Sender<Vec<u8>>,
    sent: std::sync::Mutex<Vec<Vec<u8>>>,
    gate_open: std::sync::Mutex<bool>,
    gate_cv: std::sync::Condvar,
    sends: std::sync::atomic::AtomicU64,
    free_sends: u64,
}

impl bdb_cluster::FrameTransport for GatedSubscriber {
    fn send_payload(&self, payload: &[u8]) -> Result<(), bdb_cluster::TransportError> {
        let n = self.sends.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        if n >= self.free_sends {
            let mut open = self.gate_open.lock().expect("gate lock");
            while !*open {
                open = self.gate_cv.wait(open).expect("gate wait");
            }
        }
        self.sent.lock().expect("sent lock").push(payload.to_vec());
        Ok(())
    }

    fn recv_payload(&self) -> Result<Vec<u8>, bdb_cluster::TransportError> {
        self.requests
            .lock()
            .expect("script lock")
            .recv()
            .map_err(|_| bdb_cluster::TransportError::Closed)
    }

    fn recv_payload_timeout(
        &self,
        timeout: Duration,
    ) -> Result<Option<Vec<u8>>, bdb_cluster::TransportError> {
        match self
            .requests
            .lock()
            .expect("script lock")
            .recv_timeout(timeout)
        {
            Ok(p) => Ok(Some(p)),
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => Ok(None),
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                Err(bdb_cluster::TransportError::Closed)
            }
        }
    }

    fn peer_label(&self) -> String {
        "gated-subscriber".to_owned()
    }
}

/// An evicted subscriber must receive a final `Error` notice (the shed
/// is announced, not silent), and `deltas_streamed` must count only the
/// frames that actually reached the peer — not frames discarded by the
/// eviction.
#[test]
fn evicted_subscriber_gets_a_farewell_error_frame() {
    let state =
        ServeState::materialize(Arc::new(Engine::in_memory()), small_spec()).expect("materialize");
    let server = Server::new(
        state,
        ServerConfig {
            sub_queue: 1,
            ..ServerConfig::named("evict-notice")
        },
    );

    let (tx, rx) = std::sync::mpsc::channel();
    tx.send(bdb_serve::encode_request(
        WireFormat::Json,
        &bdb_serve::ServeRequest::Subscribe { id: 1 },
    ))
    .expect("script send");
    // One free send for the `Subscribed` reply; the first delta frame
    // parks the flusher on the gate.
    let gated = Arc::new(GatedSubscriber {
        requests: std::sync::Mutex::new(rx),
        _keep_open: tx,
        sent: std::sync::Mutex::new(Vec::new()),
        gate_open: std::sync::Mutex::new(false),
        gate_cv: std::sync::Condvar::new(),
        sends: std::sync::atomic::AtomicU64::new(0),
        free_sends: 1,
    });
    {
        let server = server.clone();
        let clone: Arc<GatedSubscriber> = Arc::clone(&gated);
        let transport: Arc<dyn bdb_cluster::FrameTransport> = clone;
        std::thread::spawn(move || server.serve_session(transport));
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while server.stats().subscribers < 1 {
        assert!(std::time::Instant::now() < deadline, "subscriber registers");
        std::thread::sleep(Duration::from_millis(5));
    }

    let mut mutator = session(&server);
    mutator.hello("mutator").expect("hello");
    let knob = |size: u64| Mutation::SetKnob {
        config: "xeon-e5645".to_owned(),
        knob: "l1d.size_bytes".to_owned(),
        value: Value::UInt(size),
    };
    // Mutation 1's frame is popped by the flusher, which parks on the
    // gate mid-send; wait for that pickup (send #2 = Subscribed + this
    // frame) so the queue is deterministically empty again.
    mutator.mutate(knob(16384)).expect("mutation 1");
    while gated.sends.load(std::sync::atomic::Ordering::SeqCst) < 2 {
        assert!(
            std::time::Instant::now() < deadline,
            "flusher picks up the first delta frame"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    // Mutation 2 fills the depth-1 queue; mutation 3 finds it full and
    // evicts, queueing the farewell notice behind the undelivered frame.
    mutator.mutate(knob(32768)).expect("mutation 2");
    mutator.mutate(knob(8192)).expect("mutation 3");
    let stats = mutator.stats().expect("stats");
    assert_eq!(stats.subscribers_evicted, 1, "shed exactly once");
    assert_eq!(stats.subscribers, 0, "evicted subscriber unregistered");

    // Open the gate: the flusher drains the closed queue — delta 1,
    // delta 2, then the farewell — and exits.
    *gated.gate_open.lock().expect("gate lock") = true;
    gated.gate_cv.notify_all();
    while gated.sent.lock().expect("sent lock").len() < 4 {
        assert!(
            std::time::Instant::now() < deadline,
            "flusher drains the closed queue"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    let sent = gated.sent.lock().expect("sent lock").clone();
    assert_eq!(sent.len(), 4, "subscribed + 2 deltas + farewell");
    let mut delivered_deltas = 0u64;
    for frame in &sent[1..3] {
        match bdb_serve::decode_reply(frame).expect("delta frame decodes") {
            bdb_serve::ServeReply::Delta(batch) => delivered_deltas += batch.deltas.len() as u64,
            other => panic!("expected delta frame, got {other:?}"),
        }
    }
    match bdb_serve::decode_reply(&sent[3]).expect("farewell decodes") {
        bdb_serve::ServeReply::Error { id, message } => {
            assert_eq!(id, 0);
            assert!(
                message.contains("evicted"),
                "farewell names the eviction: {message}"
            );
        }
        other => panic!("expected the farewell error frame, got {other:?}"),
    }
    // Only the delivered frames are counted: the discarded third batch
    // and the farewell itself never touch `deltas_streamed`.
    assert_eq!(
        server.stats().deltas_streamed,
        delivered_deltas,
        "deltas_streamed counts delivery, not enqueueing"
    );
    mutator.bye().expect("bye");
}
