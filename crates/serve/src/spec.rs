//! The served catalog description and the mutation algebra that edits it.
//!
//! A [`ServeSpec`] names what the daemon keeps materialized: a set of
//! machine configs (keyed by a serving name), a set of workload ids, one
//! scale, and one node config. The catalog is the full cross product —
//! one entry per `config × workload`, addressed by [`EntryKey`]. A
//! [`Mutation`] produces a *new* spec (specs are immutable values); the
//! dependency index diffs the old and new specs to find exactly which
//! entries the edit invalidates.

use crate::knob::apply_machine_knob;
use crate::ServeError;
use bdb_engine::codec::{machine_config_from_value, machine_config_to_value};
use bdb_engine::codec::{node_config_from_value, node_config_to_value};
use bdb_engine::json::Value;
use bdb_engine::resolve_workload;
use bdb_node::NodeConfig;
use bdb_sim::MachineConfig;
use bdb_workloads::{catalog, Scale};
use std::collections::{BTreeMap, BTreeSet};

/// Address of one materialized catalog entry: a machine-config serving
/// name plus a workload id, rendered `config/workload` on the wire.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct EntryKey {
    /// The machine config's serving name (a [`ServeSpec::configs`] key).
    pub config: String,
    /// The workload id (e.g. `H-WordCount`).
    pub workload: String,
}

impl EntryKey {
    /// Builds a key from its two components.
    pub fn new(config: &str, workload: &str) -> Self {
        EntryKey {
            config: config.to_owned(),
            workload: workload.to_owned(),
        }
    }

    /// The wire rendering, `config/workload`.
    pub fn render(&self) -> String {
        format!("{}/{}", self.config, self.workload)
    }

    /// Parses the wire rendering. The config name cannot contain `/`
    /// (enforced when configs are added), so the first slash splits.
    pub fn parse(s: &str) -> Result<Self, ServeError> {
        match s.split_once('/') {
            Some((config, workload)) if !config.is_empty() && !workload.is_empty() => {
                Ok(EntryKey::new(config, workload))
            }
            _ => Err(ServeError::Decode(format!(
                "entry key {s:?} is not config/workload"
            ))),
        }
    }
}

impl std::fmt::Display for EntryKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.config, self.workload)
    }
}

/// What the daemon serves: machine configs × workload ids at one scale.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeSpec {
    /// Machine configs by serving name (names never contain `/`).
    pub configs: BTreeMap<String, MachineConfig>,
    /// Workload ids; every id must resolve in the workload catalog.
    pub workloads: BTreeSet<String>,
    /// The input scale every entry is profiled at.
    pub scale: Scale,
    /// The node config shared by every entry.
    pub node: NodeConfig,
}

impl ServeSpec {
    /// An empty spec (no configs, no workloads) at `scale`.
    pub fn empty(scale: Scale) -> Self {
        ServeSpec {
            configs: BTreeMap::new(),
            workloads: BTreeSet::new(),
            scale,
            node: NodeConfig::default(),
        }
    }

    /// The paper's 17-workload representative subset on the Xeon E5645
    /// (serving name `xeon-e5645`) — the default daemon catalog.
    pub fn representatives(scale: Scale) -> Self {
        let mut spec = ServeSpec::empty(scale);
        spec.configs
            .insert("xeon-e5645".to_owned(), MachineConfig::xeon_e5645());
        spec.workloads = catalog::representatives()
            .iter()
            .map(|w| w.spec.id.clone())
            .collect();
        spec
    }

    /// The full 77-workload catalog on the Xeon E5645.
    pub fn full_catalog(scale: Scale) -> Self {
        let mut spec = ServeSpec::representatives(scale);
        spec.workloads = catalog::full_catalog()
            .iter()
            .map(|w| w.spec.id.clone())
            .collect();
        spec
    }

    /// Replaces the workload set with an explicit id list. Ids are
    /// validated against the catalog; unknown ids are rejected.
    pub fn with_workloads(mut self, ids: &[String]) -> Result<Self, ServeError> {
        let mut set = BTreeSet::new();
        for id in ids {
            if resolve_workload(id).is_none() {
                return Err(ServeError::UnknownWorkload(id.clone()));
            }
            set.insert(id.clone());
        }
        self.workloads = set;
        Ok(self)
    }

    /// Every catalog entry the spec implies, in deterministic
    /// (config, workload) order.
    pub fn entries(&self) -> Vec<EntryKey> {
        let mut keys = Vec::with_capacity(self.configs.len() * self.workloads.len());
        for config in self.configs.keys() {
            for workload in &self.workloads {
                keys.push(EntryKey::new(config, workload));
            }
        }
        keys
    }

    /// Applies one mutation, returning the edited spec. The input spec
    /// is untouched; an `Err` means no state anywhere changed.
    pub fn apply(&self, mutation: &Mutation) -> Result<ServeSpec, ServeError> {
        let mut next = self.clone();
        match mutation {
            Mutation::SetKnob {
                config,
                knob,
                value,
            } => {
                let machine = next
                    .configs
                    .get(config)
                    .ok_or_else(|| ServeError::UnknownConfig(config.clone()))?;
                let edited = apply_machine_knob(machine, knob, value)?;
                next.configs.insert(config.clone(), edited);
            }
            Mutation::AddWorkload { id } => {
                if resolve_workload(id).is_none() {
                    return Err(ServeError::UnknownWorkload(id.clone()));
                }
                if !next.workloads.insert(id.clone()) {
                    return Err(ServeError::DuplicateWorkload(id.clone()));
                }
            }
            Mutation::RemoveWorkload { id } => {
                if !next.workloads.remove(id) {
                    return Err(ServeError::UnknownWorkload(id.clone()));
                }
            }
            Mutation::AddConfig { name, machine } => {
                if name.is_empty() || name.contains('/') {
                    return Err(ServeError::BadMutation(format!(
                        "config name {name:?} must be non-empty and slash-free"
                    )));
                }
                if next.configs.contains_key(name) {
                    return Err(ServeError::DuplicateConfig(name.clone()));
                }
                next.configs.insert(name.clone(), (**machine).clone());
            }
            Mutation::RemoveConfig { name } => {
                if next.configs.remove(name).is_none() {
                    return Err(ServeError::UnknownConfig(name.clone()));
                }
            }
            Mutation::SetScale { factor } => {
                if !factor.is_finite() || *factor <= 0.0 {
                    return Err(ServeError::BadMutation(format!(
                        "scale factor {factor} must be finite and positive"
                    )));
                }
                next.scale = Scale::custom(*factor);
            }
        }
        Ok(next)
    }
}

/// One edit to a [`ServeSpec`]. Applying a mutation never recomputes
/// more than the entries whose fingerprints it changes.
#[derive(Debug, Clone, PartialEq)]
pub enum Mutation {
    /// Sets one machine-config field through its dotted knob path
    /// (e.g. `l1d.size_bytes`, `pipeline.mem_latency`, `predictor`).
    SetKnob {
        /// The serving name of the config to edit.
        config: String,
        /// The dotted path into the config's canonical JSON form.
        knob: String,
        /// The new leaf value (number or string, matching the field).
        value: Value,
    },
    /// Adds a workload id to the served set (one new entry per config).
    AddWorkload {
        /// The catalog workload id.
        id: String,
    },
    /// Removes a workload id (deletes one entry per config).
    RemoveWorkload {
        /// The catalog workload id.
        id: String,
    },
    /// Adds a named machine config (one new entry per workload).
    AddConfig {
        /// The serving name (non-empty, slash-free).
        name: String,
        /// The full machine config (boxed: it dwarfs the other arms).
        machine: Box<MachineConfig>,
    },
    /// Removes a named machine config (deletes one entry per workload).
    RemoveConfig {
        /// The serving name.
        name: String,
    },
    /// Changes the input scale — invalidates the whole catalog.
    SetScale {
        /// The new scale factor (finite and positive).
        factor: f64,
    },
}

fn get<'a>(v: &'a Value, key: &str) -> Result<&'a Value, ServeError> {
    v.get(key)
        .ok_or_else(|| ServeError::Decode(format!("missing field {key:?}")))
}

fn get_str<'a>(v: &'a Value, key: &str) -> Result<&'a str, ServeError> {
    get(v, key)?
        .as_str()
        .ok_or_else(|| ServeError::Decode(format!("field {key:?} is not a string")))
}

/// Encodes a scale factor as its exact `f64` bit pattern (16 hex
/// digits), so a remote mutation profiles with bit-identical inputs.
pub fn scale_to_bits(scale: Scale) -> String {
    format!("{:016x}", scale.factor().to_bits())
}

/// Decodes [`scale_to_bits`], rejecting non-finite or non-positive
/// factors rather than panicking in `Scale::custom`.
pub fn scale_from_bits(bits: &str) -> Result<Scale, ServeError> {
    let bits = u64::from_str_radix(bits, 16)
        .map_err(|_| ServeError::Decode("scale_bits: expected 16 hex digits".to_owned()))?;
    let factor = f64::from_bits(bits);
    if !factor.is_finite() || factor <= 0.0 {
        return Err(ServeError::Decode(
            "scale_bits: factor must be finite and positive".to_owned(),
        ));
    }
    Ok(Scale::custom(factor))
}

/// Encodes a mutation as a canonical JSON value (alphabetical keys, so
/// JSON and BDBC transports re-encode to identical bytes).
pub fn mutation_to_value(m: &Mutation) -> Value {
    match m {
        Mutation::SetKnob {
            config,
            knob,
            value,
        } => Value::object(vec![
            ("config", Value::Str(config.clone())),
            ("knob", Value::Str(knob.clone())),
            ("op", Value::Str("set_knob".to_owned())),
            ("value", value.clone()),
        ]),
        Mutation::AddWorkload { id } => Value::object(vec![
            ("id", Value::Str(id.clone())),
            ("op", Value::Str("add_workload".to_owned())),
        ]),
        Mutation::RemoveWorkload { id } => Value::object(vec![
            ("id", Value::Str(id.clone())),
            ("op", Value::Str("remove_workload".to_owned())),
        ]),
        Mutation::AddConfig { name, machine } => Value::object(vec![
            ("machine", machine_config_to_value(machine)),
            ("name", Value::Str(name.clone())),
            ("op", Value::Str("add_config".to_owned())),
        ]),
        Mutation::RemoveConfig { name } => Value::object(vec![
            ("name", Value::Str(name.clone())),
            ("op", Value::Str("remove_config".to_owned())),
        ]),
        Mutation::SetScale { factor } => Value::object(vec![
            ("op", Value::Str("set_scale".to_owned())),
            (
                "scale_bits",
                Value::Str(scale_to_bits(Scale::custom(*factor))),
            ),
        ]),
    }
}

/// Decodes [`mutation_to_value`]. Structural validation only; semantic
/// checks (does the config exist?) happen in [`ServeSpec::apply`].
pub fn mutation_from_value(v: &Value) -> Result<Mutation, ServeError> {
    match get_str(v, "op")? {
        "set_knob" => Ok(Mutation::SetKnob {
            config: get_str(v, "config")?.to_owned(),
            knob: get_str(v, "knob")?.to_owned(),
            value: get(v, "value")?.clone(),
        }),
        "add_workload" => Ok(Mutation::AddWorkload {
            id: get_str(v, "id")?.to_owned(),
        }),
        "remove_workload" => Ok(Mutation::RemoveWorkload {
            id: get_str(v, "id")?.to_owned(),
        }),
        "add_config" => Ok(Mutation::AddConfig {
            name: get_str(v, "name")?.to_owned(),
            machine: Box::new(
                machine_config_from_value(get(v, "machine")?)
                    .map_err(|e| ServeError::Decode(e.0))?,
            ),
        }),
        "remove_config" => Ok(Mutation::RemoveConfig {
            name: get_str(v, "name")?.to_owned(),
        }),
        "set_scale" => Ok(Mutation::SetScale {
            factor: scale_from_bits(get_str(v, "scale_bits")?)?.factor(),
        }),
        other => Err(ServeError::Decode(format!("unknown mutation op {other:?}"))),
    }
}

/// Encodes a spec as a canonical JSON value (alphabetical keys).
pub fn spec_to_value(s: &ServeSpec) -> Value {
    Value::object(vec![
        (
            "configs",
            Value::Object(
                s.configs
                    .iter()
                    .map(|(name, m)| (name.clone(), machine_config_to_value(m)))
                    .collect(),
            ),
        ),
        ("node", node_config_to_value(&s.node)),
        ("scale_bits", Value::Str(scale_to_bits(s.scale))),
        (
            "workloads",
            Value::Array(s.workloads.iter().cloned().map(Value::Str).collect()),
        ),
    ])
}

/// Decodes [`spec_to_value`], validating names and workload ids.
pub fn spec_from_value(v: &Value) -> Result<ServeSpec, ServeError> {
    let Value::Object(config_pairs) = get(v, "configs")? else {
        return Err(ServeError::Decode(
            "field \"configs\" is not an object".to_owned(),
        ));
    };
    let mut configs = BTreeMap::new();
    for (name, mv) in config_pairs {
        if name.is_empty() || name.contains('/') {
            return Err(ServeError::Decode(format!(
                "config name {name:?} must be non-empty and slash-free"
            )));
        }
        let machine = machine_config_from_value(mv).map_err(|e| ServeError::Decode(e.0))?;
        configs.insert(name.clone(), machine);
    }
    let ids = get(v, "workloads")?
        .as_array()
        .ok_or_else(|| ServeError::Decode("field \"workloads\" is not an array".to_owned()))?;
    let mut workloads = BTreeSet::new();
    for id in ids {
        let id = id
            .as_str()
            .ok_or_else(|| ServeError::Decode("workload id is not a string".to_owned()))?;
        if resolve_workload(id).is_none() {
            return Err(ServeError::UnknownWorkload(id.to_owned()));
        }
        workloads.insert(id.to_owned());
    }
    Ok(ServeSpec {
        configs,
        workloads,
        scale: scale_from_bits(get_str(v, "scale_bits")?)?,
        node: node_config_from_value(get(v, "node")?).map_err(|e| ServeError::Decode(e.0))?,
    })
}
