//! `bdb-served` — the profiling-as-a-service daemon.
//!
//! Materializes the configured catalog once (through the engine's
//! caches, so a warm `BDB_CACHE_DIR` makes restart free), prints
//! `listening on <addr>` (scrapeable for ephemeral ports) and
//! `materialized <n> entries`, then serves sessions until a client
//! sends `Shutdown`. See DESIGN.md §17 for the protocol and the
//! incremental-recomputation contract.

use bdb_cluster::daemon_help_text;
use bdb_engine::{Engine, EngineConfig};
use bdb_serve::{ServeSpec, ServeState, Server, ServerConfig};
use bdb_workloads::Scale;
use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::Arc;

fn usage() -> String {
    daemon_help_text(
        "bdb-served",
        "profiling-as-a-service daemon with incremental delta recomputation",
        "bdb-served [--listen <addr>] [--name <name>] [--scale <s>] [--workloads <set>]",
        &[
            (
                "--listen <addr>",
                "Bind address (default: $BDB_SERVE_ADDR, else 127.0.0.1:0)",
            ),
            (
                "--name <name>",
                "Server name sent in Hello (default bdb-served)",
            ),
            (
                "--scale <s>",
                "Input scale: tiny | small | paper | <factor> (default tiny)",
            ),
            (
                "--workloads <set>",
                "Catalog: reps | all | comma-separated ids (default reps)",
            ),
        ],
        &[
            (
                "BDB_SERVE_ADDR",
                "Default bind address when --listen is omitted",
            ),
            (
                "BDB_SERVE_MAX_CLIENTS",
                "Concurrent session cap (default 64); excess sessions get a busy reply with a retry hint",
            ),
            (
                "BDB_SERVE_SUB_QUEUE",
                "Per-subscriber delta queue bound in frames (default 64); slower subscribers are evicted",
            ),
            (
                "BDB_SERVE_FORMAT",
                "Reply/delta payload format: json | binary (default: BDB_WIRE_FORMAT)",
            ),
        ],
    )
}

struct Args {
    listen: String,
    name: String,
    scale: Scale,
    workloads: String,
}

fn parse_scale(s: &str) -> Result<Scale, String> {
    match s {
        "tiny" => Ok(Scale::tiny()),
        "small" => Ok(Scale::small()),
        "paper" => Ok(Scale::paper()),
        other => match other.parse::<f64>() {
            Ok(f) if f.is_finite() && f > 0.0 => Ok(Scale::custom(f)),
            _ => Err(format!("bad scale {other:?}")),
        },
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        listen: std::env::var("BDB_SERVE_ADDR").unwrap_or_else(|_| "127.0.0.1:0".to_owned()),
        name: "bdb-served".to_owned(),
        scale: Scale::tiny(),
        workloads: "reps".to_owned(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = argv.get(i) {
        match arg.as_str() {
            "--listen" => args.listen = value(&mut i, "--listen")?,
            "--name" => args.name = value(&mut i, "--name")?,
            "--scale" => args.scale = parse_scale(&value(&mut i, "--scale")?)?,
            "--workloads" => args.workloads = value(&mut i, "--workloads")?,
            "-h" | "--help" => {
                print!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
        i += 1;
    }
    Ok(args)
}

fn build_spec(scale: Scale, workloads: &str) -> Result<ServeSpec, String> {
    match workloads {
        "reps" => Ok(ServeSpec::representatives(scale)),
        "all" => Ok(ServeSpec::full_catalog(scale)),
        list => {
            let ids: Vec<String> = list.split(',').map(str::to_owned).collect();
            ServeSpec::representatives(scale)
                .with_workloads(&ids)
                .map_err(|e| e.to_string())
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("bdb-served: {e}");
            eprint!("{}", usage());
            return ExitCode::from(2);
        }
    };
    let spec = match build_spec(args.scale, &args.workloads) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("bdb-served: {e}");
            return ExitCode::from(2);
        }
    };
    let listener = match TcpListener::bind(&args.listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("bdb-served: bind {}: {e}", args.listen);
            return ExitCode::from(2);
        }
    };
    let bound = listener
        .local_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| args.listen.clone());
    println!("listening on {bound}");

    let engine = Arc::new(Engine::new(EngineConfig::from_env()));
    let state = match ServeState::materialize(engine, spec) {
        Ok(state) => state,
        Err(e) => {
            eprintln!("bdb-served: materialize: {e}");
            return ExitCode::from(2);
        }
    };
    let computed = state.engine().counters().computed;
    println!(
        "materialized {} entries ({computed} computed, rest from cache)",
        state.len()
    );

    let mut config = ServerConfig::from_env();
    config.name = args.name;
    let server = Server::new(state, config);
    match server.serve_listener(&listener) {
        Ok(()) => {
            eprintln!("bdb-served: shutdown requested, exiting");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("bdb-served: {e}");
            ExitCode::from(1)
        }
    }
}
