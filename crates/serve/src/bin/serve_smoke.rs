//! `serve-smoke` — client and local oracle for the serve daemon.
//!
//! One binary, two roles, so `scripts/serve_smoke.sh` can diff them
//! byte-for-byte:
//!
//! * `--baseline` runs the catalog **locally** (fresh in-memory engine,
//!   no daemon) with the same `--mutate` sequence, printing snapshot
//!   lines — the cold-recompute oracle.
//! * `--connect <addr>` talks to a live daemon: `--snapshot`,
//!   `--query <key>`, `--mutate <spec>` (repeatable, in order),
//!   `--subscribe --expect-batches <n>` (take a snapshot, apply pushed
//!   deltas to it, print the result), `--stats`, `--shutdown`.
//!
//! Snapshot lines are `key fingerprint profile-json`, one per entry, in
//! key order — identical bytes whether they came from a baseline run, a
//! daemon snapshot, or a delta-patched snapshot, and whatever payload
//! format (`BDB_SERVE_FORMAT`) the wire used.
//!
//! Mutation specs: `knob:<config>:<path>=<value>`,
//! `add-workload:<id>`, `remove-workload:<id>`,
//! `add-config:<name>=<base>` (base: `xeon-e5645`, `xeon-e5-2697`,
//! `atom-d510`), `remove-config:<name>`, `scale:<factor>`.

use bdb_cluster::daemon_help_text;
use bdb_engine::codec::profile_to_value;
use bdb_engine::json::Value;
use bdb_engine::Engine;
use bdb_serve::{
    apply_delta_batch, machine_knobs, EntryKey, Mutation, ServeClient, ServeSpec, ServeState,
    SnapshotEntry,
};
use bdb_sim::MachineConfig;
use bdb_workloads::Scale;
use std::collections::BTreeMap;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

fn usage() -> String {
    daemon_help_text(
        "serve-smoke",
        "client and cold-recompute oracle for bdb-served",
        "serve-smoke (--baseline | --connect <addr>) [action flags]",
        &[
            (
                "--baseline",
                "Run the catalog locally and print snapshot lines",
            ),
            ("--connect <addr>", "Talk to a daemon at addr"),
            (
                "--scale <s>",
                "Baseline scale: tiny | small | paper | <factor>",
            ),
            (
                "--workloads <set>",
                "Baseline catalog: reps | all | comma-separated ids",
            ),
            (
                "--mutate <spec>",
                "Apply a mutation (repeatable, in order); see module docs",
            ),
            ("--snapshot", "Fetch and print the daemon's catalog"),
            ("--query <key>", "Fetch one entry (key is config/workload)"),
            (
                "--subscribe",
                "Subscribe, then patch a snapshot from deltas",
            ),
            (
                "--expect-batches <n>",
                "With --subscribe: batches to await before printing",
            ),
            ("--stats", "Print server + engine counters"),
            ("--shutdown", "Ask the daemon to exit"),
            ("--knobs", "List every machine-config knob path and exit"),
        ],
        &[(
            "BDB_SERVE_FORMAT",
            "Request payload format: json | binary (default: BDB_WIRE_FORMAT)",
        )],
    )
}

struct Args {
    baseline: bool,
    connect: Option<String>,
    scale: Scale,
    workloads: String,
    mutations: Vec<String>,
    snapshot: bool,
    query: Option<String>,
    subscribe: bool,
    expect_batches: u64,
    stats: bool,
    shutdown: bool,
    knobs: bool,
}

fn parse_scale(s: &str) -> Result<Scale, String> {
    match s {
        "tiny" => Ok(Scale::tiny()),
        "small" => Ok(Scale::small()),
        "paper" => Ok(Scale::paper()),
        other => match other.parse::<f64>() {
            Ok(f) if f.is_finite() && f > 0.0 => Ok(Scale::custom(f)),
            _ => Err(format!("bad scale {other:?}")),
        },
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        baseline: false,
        connect: None,
        scale: Scale::tiny(),
        workloads: "reps".to_owned(),
        mutations: Vec::new(),
        snapshot: false,
        query: None,
        subscribe: false,
        expect_batches: 1,
        stats: false,
        shutdown: false,
        knobs: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = argv.get(i) {
        match arg.as_str() {
            "--baseline" => args.baseline = true,
            "--connect" => args.connect = Some(value(&mut i, "--connect")?),
            "--scale" => args.scale = parse_scale(&value(&mut i, "--scale")?)?,
            "--workloads" => args.workloads = value(&mut i, "--workloads")?,
            "--mutate" => args.mutations.push(value(&mut i, "--mutate")?),
            "--snapshot" => args.snapshot = true,
            "--query" => args.query = Some(value(&mut i, "--query")?),
            "--subscribe" => args.subscribe = true,
            "--expect-batches" => {
                let v = value(&mut i, "--expect-batches")?;
                args.expect_batches = v.parse().map_err(|_| format!("bad batch count {v:?}"))?;
            }
            "--stats" => args.stats = true,
            "--shutdown" => args.shutdown = true,
            "--knobs" => args.knobs = true,
            "-h" | "--help" => {
                print!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
        i += 1;
    }
    Ok(args)
}

fn parse_leaf_value(s: &str) -> Value {
    if let Ok(u) = s.parse::<u64>() {
        return Value::UInt(u);
    }
    if let Ok(f) = s.parse::<f64>() {
        return Value::Float(f);
    }
    Value::Str(s.to_owned())
}

fn base_machine(name: &str) -> Result<MachineConfig, String> {
    match name {
        "xeon-e5645" => Ok(MachineConfig::xeon_e5645()),
        "xeon-e5-2697" => Ok(MachineConfig::xeon_e5_2697()),
        "atom-d510" => Ok(MachineConfig::atom_d510()),
        other => Err(format!(
            "unknown base machine {other:?} (xeon-e5645 | xeon-e5-2697 | atom-d510)"
        )),
    }
}

fn parse_mutation(spec: &str) -> Result<Mutation, String> {
    let (op, rest) = spec
        .split_once(':')
        .ok_or_else(|| format!("bad mutation {spec:?} (want op:...)"))?;
    match op {
        "knob" => {
            let (config, assignment) = rest.split_once(':').ok_or_else(|| {
                format!("bad knob mutation {spec:?} (want knob:config:path=value)")
            })?;
            let (path, value) = assignment
                .split_once('=')
                .ok_or_else(|| format!("bad knob mutation {spec:?} (missing =value)"))?;
            Ok(Mutation::SetKnob {
                config: config.to_owned(),
                knob: path.to_owned(),
                value: parse_leaf_value(value),
            })
        }
        "add-workload" => Ok(Mutation::AddWorkload {
            id: rest.to_owned(),
        }),
        "remove-workload" => Ok(Mutation::RemoveWorkload {
            id: rest.to_owned(),
        }),
        "add-config" => {
            let (name, base) = rest.split_once('=').ok_or_else(|| {
                format!("bad config mutation {spec:?} (want add-config:name=base)")
            })?;
            Ok(Mutation::AddConfig {
                name: name.to_owned(),
                machine: Box::new(base_machine(base)?),
            })
        }
        "remove-config" => Ok(Mutation::RemoveConfig {
            name: rest.to_owned(),
        }),
        "scale" => {
            let factor: f64 = rest.parse().map_err(|_| format!("bad scale {rest:?}"))?;
            Ok(Mutation::SetScale { factor })
        }
        other => Err(format!("unknown mutation op {other:?}")),
    }
}

fn build_spec(scale: Scale, workloads: &str) -> Result<ServeSpec, String> {
    match workloads {
        "reps" => Ok(ServeSpec::representatives(scale)),
        "all" => Ok(ServeSpec::full_catalog(scale)),
        list => {
            let ids: Vec<String> = list.split(',').map(str::to_owned).collect();
            ServeSpec::representatives(scale)
                .with_workloads(&ids)
                .map_err(|e| e.to_string())
        }
    }
}

fn entry_line(key: &str, fingerprint: u64, profile_json: &str) -> String {
    format!("{key} {fingerprint:016x} {profile_json}")
}

fn print_snapshot_entries(entries: &[SnapshotEntry]) {
    for e in entries {
        println!(
            "{}",
            entry_line(
                &e.key.render(),
                e.fingerprint,
                &profile_to_value(&e.profile).encode()
            )
        );
    }
}

fn run_baseline(args: &Args) -> Result<(), String> {
    let spec = build_spec(args.scale, &args.workloads)?;
    let engine = Arc::new(Engine::in_memory());
    let mut state = ServeState::materialize(engine, spec).map_err(|e| e.to_string())?;
    for raw in &args.mutations {
        let mutation = parse_mutation(raw)?;
        let batch = state.apply(&mutation).map_err(|e| e.to_string())?;
        eprintln!(
            "serve-smoke: baseline applied {raw} (seq {}, {} deltas)",
            batch.seq,
            batch.deltas.len()
        );
    }
    for key in state.keys() {
        if let (Some((fingerprint, _)), Some(bytes)) = (state.get(&key), state.get_bytes(&key)) {
            println!("{}", entry_line(&key.render(), fingerprint, bytes));
        }
    }
    Ok(())
}

fn run_remote(args: &Args, addr: &str) -> Result<(), String> {
    let mut client =
        ServeClient::connect(addr, Duration::from_secs(10)).map_err(|e| e.to_string())?;
    let info = client.hello("serve-smoke").map_err(|e| e.to_string())?;
    eprintln!(
        "serve-smoke: connected to {addr} ({} entries, seq {})",
        info.entries, info.seq
    );

    if args.subscribe {
        return run_subscriber(args, client);
    }

    for raw in &args.mutations {
        let mutation = parse_mutation(raw)?;
        let outcome = client.mutate(mutation).map_err(|e| e.to_string())?;
        eprintln!(
            "serve-smoke: mutated {raw} (seq {}, +{} ~{} -{})",
            outcome.seq, outcome.created, outcome.updated, outcome.deleted
        );
    }
    if let Some(key) = &args.query {
        let key = EntryKey::parse(key).map_err(|e| e.to_string())?;
        match client.query(&key).map_err(|e| e.to_string())? {
            Some((fingerprint, profile)) => println!(
                "{}",
                entry_line(
                    &key.render(),
                    fingerprint,
                    &profile_to_value(&profile).encode()
                )
            ),
            None => return Err(format!("no entry {}", key.render())),
        }
    }
    if args.snapshot {
        let (_seq, entries) = client.snapshot().map_err(|e| e.to_string())?;
        print_snapshot_entries(&entries);
    }
    if args.stats {
        let stats = client.stats().map_err(|e| e.to_string())?;
        println!("computed={}", stats.computed);
        println!("delta_batches={}", stats.delta_batches);
        println!("deltas_streamed={}", stats.deltas_streamed);
        println!("disk_hits={}", stats.disk_hits);
        println!("entries={}", stats.entries);
        println!("invalidated={}", stats.invalidated);
        println!("journal_hits={}", stats.journal_hits);
        println!("memory_hits={}", stats.memory_hits);
        println!("seq={}", stats.seq);
        println!("sessions_active={}", stats.sessions_active);
        println!("sessions_total={}", stats.sessions_total);
        println!("subscribers={}", stats.subscribers);
    }
    if args.shutdown {
        client.shutdown().map_err(|e| e.to_string())?;
        eprintln!("serve-smoke: daemon acknowledged shutdown");
        return Ok(());
    }
    let _ = client.bye();
    Ok(())
}

/// Subscribe, snapshot, patch the snapshot with pushed delta batches,
/// print the patched catalog. The printed bytes must equal a fresh
/// daemon snapshot *and* the baseline oracle — the client half of the
/// incremental-recomputation contract.
fn run_subscriber(args: &Args, mut client: ServeClient) -> Result<(), String> {
    let subscribed_seq = client.subscribe().map_err(|e| e.to_string())?;
    let (snap_seq, entries) = client.snapshot().map_err(|e| e.to_string())?;
    eprintln!("serve-smoke: subscribed at seq {subscribed_seq}, snapshot at seq {snap_seq}");
    let mut catalog: BTreeMap<String, SnapshotEntry> =
        entries.into_iter().map(|e| (e.key.render(), e)).collect();
    let mut applied = 0;
    while applied < args.expect_batches {
        match client
            .next_delta(Duration::from_secs(60))
            .map_err(|e| e.to_string())?
        {
            Some(batch) => {
                if batch.seq <= snap_seq {
                    eprintln!(
                        "serve-smoke: skipping batch seq {} (already in snapshot)",
                        batch.seq
                    );
                    continue;
                }
                apply_delta_batch(&mut catalog, &batch);
                applied += 1;
                eprintln!(
                    "serve-smoke: applied batch seq {} ({} deltas)",
                    batch.seq,
                    batch.deltas.len()
                );
            }
            None => return Err(format!("timed out waiting for batch {}", applied + 1)),
        }
    }
    for (key, e) in &catalog {
        println!(
            "{}",
            entry_line(key, e.fingerprint, &profile_to_value(&e.profile).encode())
        );
    }
    let _ = client.bye();
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("serve-smoke: {e}");
            eprint!("{}", usage());
            return ExitCode::from(2);
        }
    };
    if args.knobs {
        for knob in machine_knobs(&MachineConfig::xeon_e5645()) {
            println!("{knob}");
        }
        return ExitCode::SUCCESS;
    }
    let result = if args.baseline {
        run_baseline(&args)
    } else if let Some(addr) = args.connect.clone() {
        run_remote(&args, &addr)
    } else {
        Err("need --baseline, --connect, or --knobs".to_owned())
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve-smoke: {e}");
            ExitCode::from(1)
        }
    }
}
