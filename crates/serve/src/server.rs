//! The blocking serve daemon: sessions, subscriptions, delta fan-out.
//!
//! One thread per accepted connection, a single mutex around the
//! [`ServeState`] (mutations serialize; the rayon fan-out happens
//! *inside* `apply`, so one mutation still uses every core), and a
//! subscriber registry of [`FrameTransport`]s. Delta broadcast happens
//! **under the state lock**, so subscribers observe batches in strict
//! `seq` order; per-frame sends are atomic (the transport's writer is
//! its own mutex), so a broadcast never interleaves with a session
//! reply on the same connection.
//!
//! Warm restart is free: the server owns no persistence of its own.
//! Rebuilding [`ServeState`] over an engine whose `BDB_CACHE_DIR` /
//! `BDB_JOURNAL` point at the previous run's artifacts re-materializes
//! the whole catalog from disk without a single simulation — the
//! engine's `computed` counter (exposed via `Stats`) proves it.

use crate::proto::{
    decode_request, encode_reply, ServeReply, ServeRequest, ServeStats, SnapshotEntry,
    SERVE_PROTOCOL_VERSION,
};
use crate::state::{DeltaBatch, ServeState};
use crate::{Delta, ServeError};
use bdb_cluster::{FrameTransport, TcpTransport, TransportError, WireFormat};
use std::collections::BTreeMap;
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Daemon tunables, normally from [`ServerConfig::from_env`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The name sent in `Hello` replies.
    pub name: String,
    /// Concurrent-session cap; a session past the cap is refused with
    /// an `Error` reply before any request is read.
    pub max_clients: u64,
    /// Payload format for replies and delta pushes.
    pub format: WireFormat,
}

impl ServerConfig {
    /// A named config with library defaults (64 clients, JSON frames).
    pub fn named(name: &str) -> Self {
        ServerConfig {
            name: name.to_owned(),
            max_clients: 64,
            format: WireFormat::Json,
        }
    }

    /// Reads `BDB_SERVE_MAX_CLIENTS` (default 64) and
    /// `BDB_SERVE_FORMAT` (via
    /// [`crate::proto::serve_format_from_env`]).
    pub fn from_env() -> Self {
        let max_clients = std::env::var("BDB_SERVE_MAX_CLIENTS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ServerConfig {
            name: "bdb-served".to_owned(),
            max_clients,
            format: crate::proto::serve_format_from_env(),
        }
    }
}

struct Shared {
    state: Mutex<ServeState>,
    subscribers: Mutex<BTreeMap<u64, Arc<dyn FrameTransport>>>,
    config: ServerConfig,
    sessions_active: AtomicU64,
    sessions_total: AtomicU64,
    delta_batches: AtomicU64,
    deltas_streamed: AtomicU64,
    shutdown: AtomicBool,
    wake_addr: Mutex<Option<String>>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A poisoned lock means another session panicked mid-request; the
    // shared state itself is only ever mutated through `ServeState::apply`,
    // which is transactional, so continuing is safe.
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The daemon. Cheap to clone; clones share one state and registry.
#[derive(Clone)]
pub struct Server {
    shared: Arc<Shared>,
}

impl Server {
    /// Wraps a materialized catalog in a server.
    pub fn new(state: ServeState, config: ServerConfig) -> Server {
        Server {
            shared: Arc::new(Shared {
                state: Mutex::new(state),
                subscribers: Mutex::new(BTreeMap::new()),
                config,
                sessions_active: AtomicU64::new(0),
                sessions_total: AtomicU64::new(0),
                delta_batches: AtomicU64::new(0),
                deltas_streamed: AtomicU64::new(0),
                shutdown: AtomicBool::new(false),
                wake_addr: Mutex::new(None),
            }),
        }
    }

    /// Whether a `Shutdown` request has been accepted.
    pub fn is_shutdown(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// The counter snapshot served by `Stats`.
    pub fn stats(&self) -> ServeStats {
        let (entries, seq, counters) = {
            let state = lock(&self.shared.state);
            (state.len() as u64, state.seq(), state.engine().counters())
        };
        ServeStats {
            computed: counters.computed,
            delta_batches: self.shared.delta_batches.load(Ordering::SeqCst),
            deltas_streamed: self.shared.deltas_streamed.load(Ordering::SeqCst),
            disk_hits: counters.disk_hits,
            entries,
            invalidated: counters.invalidated,
            journal_hits: counters.journal_hits,
            memory_hits: counters.memory_hits,
            seq,
            sessions_active: self.shared.sessions_active.load(Ordering::SeqCst),
            sessions_total: self.shared.sessions_total.load(Ordering::SeqCst),
            subscribers: lock(&self.shared.subscribers).len() as u64,
        }
    }

    /// Accepts sessions until a `Shutdown` request arrives, spawning
    /// one thread per connection. Accept errors are skipped (the
    /// listener survives transient failures).
    pub fn serve_listener(&self, listener: &TcpListener) -> Result<(), ServeError> {
        let addr = listener
            .local_addr()
            .map_err(|e| ServeError::Io(e.to_string()))?;
        *lock(&self.shared.wake_addr) = Some(addr.to_string());
        for stream in listener.incoming() {
            if self.is_shutdown() {
                break;
            }
            let Ok(stream) = stream else { continue };
            let peer = stream
                .peer_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "?".to_owned());
            let Ok(transport) = TcpTransport::from_stream(stream, &peer) else {
                continue;
            };
            let server = self.clone();
            std::thread::spawn(move || {
                let _ = server.serve_session(Arc::new(transport));
            });
        }
        Ok(())
    }

    /// Runs one session to completion on the calling thread. Public so
    /// tests and benches can serve loopback transports without sockets.
    pub fn serve_session(&self, transport: Arc<dyn FrameTransport>) -> Result<(), ServeError> {
        let session_id = self.shared.sessions_total.fetch_add(1, Ordering::SeqCst) + 1;
        let active = self.shared.sessions_active.fetch_add(1, Ordering::SeqCst) + 1;
        let result = if active > self.shared.config.max_clients {
            let refusal = ServeError::ServerFull {
                max_clients: self.shared.config.max_clients,
            };
            let _ = self.send(
                &transport,
                &ServeReply::Error {
                    id: 0,
                    message: refusal.to_string(),
                },
            );
            Err(refusal)
        } else {
            self.session_loop(session_id, &transport)
        };
        lock(&self.shared.subscribers).remove(&session_id);
        self.shared.sessions_active.fetch_sub(1, Ordering::SeqCst);
        result
    }

    fn session_loop(
        &self,
        session_id: u64,
        transport: &Arc<dyn FrameTransport>,
    ) -> Result<(), ServeError> {
        loop {
            let payload = match transport.recv_payload() {
                Ok(p) => p,
                Err(TransportError::Closed) => return Ok(()),
                Err(e) => return Err(e.into()),
            };
            let request = match decode_request(&payload) {
                Ok(r) => r,
                Err(e) => {
                    self.send(
                        transport,
                        &ServeReply::Error {
                            id: 0,
                            message: e.to_string(),
                        },
                    )?;
                    continue;
                }
            };
            match request {
                ServeRequest::Hello { protocol, .. } => {
                    if protocol != SERVE_PROTOCOL_VERSION {
                        self.send(
                            transport,
                            &ServeReply::Error {
                                id: 0,
                                message: format!(
                                    "protocol {protocol} unsupported (server speaks {SERVE_PROTOCOL_VERSION})"
                                ),
                            },
                        )?;
                        return Ok(());
                    }
                    let (entries, seq) = {
                        let state = lock(&self.shared.state);
                        (state.len() as u64, state.seq())
                    };
                    self.send(
                        transport,
                        &ServeReply::Hello {
                            entries,
                            protocol: SERVE_PROTOCOL_VERSION,
                            seq,
                            server: self.shared.config.name.clone(),
                        },
                    )?;
                }
                ServeRequest::Query { id, key } => {
                    // The warm path: a lookup in the materialized map,
                    // never a simulation. The engine's `computed`
                    // counter staying flat across queries is the
                    // warm-serving proof the contract test checks.
                    let reply = {
                        let state = lock(&self.shared.state);
                        match state.get(&key) {
                            Some((fingerprint, profile)) => ServeReply::Profile {
                                fingerprint,
                                id,
                                key,
                                profile: Box::new(profile.clone()),
                            },
                            None => ServeReply::NotFound { id, key },
                        }
                    };
                    self.send(transport, &reply)?;
                }
                ServeRequest::Snapshot { id } => {
                    let reply = {
                        let state = lock(&self.shared.state);
                        let entries = state
                            .keys()
                            .into_iter()
                            .filter_map(|key| {
                                state.get(&key).map(|(fingerprint, profile)| SnapshotEntry {
                                    fingerprint,
                                    key: key.clone(),
                                    profile: Box::new(profile.clone()),
                                })
                            })
                            .collect();
                        ServeReply::Snapshot {
                            entries,
                            id,
                            seq: state.seq(),
                        }
                    };
                    self.send(transport, &reply)?;
                }
                ServeRequest::Mutate { id, mutation } => {
                    // Apply and broadcast under one lock acquisition:
                    // subscribers see batches in strict seq order.
                    let reply = {
                        let mut state = lock(&self.shared.state);
                        match state.apply(&mutation) {
                            Ok(batch) => {
                                self.broadcast(&batch);
                                let count = |f: fn(&Delta) -> bool| {
                                    batch.deltas.iter().filter(|d| f(d)).count() as u64
                                };
                                ServeReply::Mutated {
                                    created: count(|d| matches!(d, Delta::Created { .. })),
                                    deleted: count(|d| matches!(d, Delta::Deleted { .. })),
                                    id,
                                    seq: batch.seq,
                                    updated: count(|d| matches!(d, Delta::Updated { .. })),
                                }
                            }
                            Err(e) => ServeReply::Error {
                                id,
                                message: e.to_string(),
                            },
                        }
                    };
                    self.send(transport, &reply)?;
                }
                ServeRequest::Subscribe { id } => {
                    let seq = lock(&self.shared.state).seq();
                    lock(&self.shared.subscribers).insert(session_id, Arc::clone(transport));
                    self.send(transport, &ServeReply::Subscribed { id, seq })?;
                }
                ServeRequest::Stats { id } => {
                    let stats = self.stats();
                    self.send(transport, &ServeReply::Stats { id, stats })?;
                }
                ServeRequest::Shutdown { id } => {
                    self.shared.shutdown.store(true, Ordering::SeqCst);
                    self.send(transport, &ServeReply::ShuttingDown { id })?;
                    self.wake_listener();
                    return Ok(());
                }
                ServeRequest::Bye => return Ok(()),
            }
        }
    }

    fn send(
        &self,
        transport: &Arc<dyn FrameTransport>,
        reply: &ServeReply,
    ) -> Result<(), ServeError> {
        let payload = encode_reply(self.shared.config.format, reply);
        transport.send_payload(&payload).map_err(ServeError::from)
    }

    /// Pushes one batch to every subscriber; dead subscribers are
    /// dropped. Called with the state lock held (see `Mutate`).
    fn broadcast(&self, batch: &DeltaBatch) {
        if batch.deltas.is_empty() {
            return;
        }
        self.shared.delta_batches.fetch_add(1, Ordering::SeqCst);
        let payload = encode_reply(self.shared.config.format, &ServeReply::Delta(batch.clone()));
        let mut subscribers = lock(&self.shared.subscribers);
        let mut dead = Vec::new();
        for (&session_id, subscriber) in subscribers.iter() {
            match subscriber.send_payload(&payload) {
                Ok(()) => {
                    self.shared
                        .deltas_streamed
                        .fetch_add(batch.deltas.len() as u64, Ordering::SeqCst);
                }
                Err(_) => dead.push(session_id),
            }
        }
        for session_id in dead {
            subscribers.remove(&session_id);
        }
    }

    /// Unblocks `serve_listener`'s accept call after shutdown by
    /// connecting (and immediately dropping) a throwaway stream.
    fn wake_listener(&self) {
        if let Some(addr) = lock(&self.shared.wake_addr).clone() {
            let _ = std::net::TcpStream::connect(addr);
        }
    }
}
