//! The blocking serve daemon: sessions, subscriptions, delta fan-out.
//!
//! One thread per accepted connection, a single mutex around the
//! [`ServeState`] (mutations serialize; the rayon fan-out happens
//! *inside* `apply`, so one mutation still uses every core), and a
//! subscriber registry of bounded delta queues. Delta *enqueue* happens
//! **under the state lock**, so every subscriber's queue holds batches
//! in strict `seq` order; a dedicated flusher thread per subscriber
//! drains its queue onto the wire, so one stalled client never blocks a
//! mutation or the other subscribers. A subscriber that falls more than
//! `BDB_SERVE_SUB_QUEUE` batches behind is evicted (its queue is closed
//! and it stops receiving pushes) instead of growing without bound —
//! the `subscribers_evicted` counter records every shed.
//!
//! Overload is graceful, not fatal: a session past
//! `BDB_SERVE_MAX_CLIENTS` is refused with a [`ServeReply::Busy`]
//! carrying a deterministic, tick-denominated retry hint (proportional
//! to the overload depth), never a bare error.
//!
//! Warm restart is free: the server owns no persistence of its own.
//! Rebuilding [`ServeState`] over an engine whose `BDB_CACHE_DIR` /
//! `BDB_JOURNAL` point at the previous run's artifacts re-materializes
//! the whole catalog from disk without a single simulation — the
//! engine's `computed` counter (exposed via `Stats`) proves it.

use crate::proto::{
    decode_request, encode_reply, ServeReply, ServeRequest, ServeStats, SnapshotEntry,
    SERVE_PROTOCOL_VERSION,
};
use crate::state::{DeltaBatch, ServeState};
use crate::{Delta, ServeError};
use bdb_cluster::{FrameTransport, TcpTransport, TransportError, WireFormat};
use std::collections::{BTreeMap, VecDeque};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// One tick of the `Busy` retry hint per session over the cap. The
/// hint is `overload_depth × RETRY_QUANTUM_TICKS`: deterministic in the
/// load state (identical overload → identical hint) and linear, so
/// refused clients back off in proportion to the queue ahead of them.
pub const RETRY_QUANTUM_TICKS: u64 = 16;

/// Daemon tunables, normally from [`ServerConfig::from_env`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The name sent in `Hello` replies.
    pub name: String,
    /// Concurrent-session cap; a session past the cap is shed with a
    /// `Busy` reply (retry hint included) before any request is read.
    pub max_clients: u64,
    /// Per-subscriber delta queue depth; a subscriber whose queue is
    /// full when a batch arrives is evicted rather than buffered
    /// without bound.
    pub sub_queue: u64,
    /// Payload format for replies and delta pushes.
    pub format: WireFormat,
}

impl ServerConfig {
    /// A named config with library defaults (64 clients, 64-deep
    /// subscriber queues, JSON frames).
    pub fn named(name: &str) -> Self {
        ServerConfig {
            name: name.to_owned(),
            max_clients: 64,
            sub_queue: 64,
            format: WireFormat::Json,
        }
    }

    /// Reads `BDB_SERVE_MAX_CLIENTS` (default 64),
    /// `BDB_SERVE_SUB_QUEUE` (default 64, floored at 1), and
    /// `BDB_SERVE_FORMAT` (via
    /// [`crate::proto::serve_format_from_env`]).
    pub fn from_env() -> Self {
        let max_clients = std::env::var("BDB_SERVE_MAX_CLIENTS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        let sub_queue = std::env::var("BDB_SERVE_SUB_QUEUE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64u64)
            .max(1);
        ServerConfig {
            name: "bdb-served".to_owned(),
            max_clients,
            sub_queue,
            format: crate::proto::serve_format_from_env(),
        }
    }
}

/// One queued wire frame plus the delta count it carries (0 for the
/// eviction-notice `Error` frame) — the flusher credits
/// `deltas_streamed` only once the frame actually reaches the socket.
struct Frame {
    payload: Vec<u8>,
    deltas: u64,
}

/// The frames queued for one subscriber, plus its lifecycle flag.
/// `closed` is terminal: set by eviction, by session teardown, or by
/// the flusher itself on a send failure; once set, no further frames
/// are accepted, but the flusher still drains what is already queued —
/// that is what delivers the eviction notice.
#[derive(Default)]
struct SubQueue {
    frames: VecDeque<Frame>,
    closed: bool,
}

/// One subscriber: its transport plus the bounded queue its dedicated
/// flusher thread drains. Broadcast enqueues (cheap, under the state
/// lock); the flusher owns the potentially-slow socket writes.
struct Subscriber {
    transport: Arc<dyn FrameTransport>,
    queue: Mutex<SubQueue>,
    cv: Condvar,
    /// The server's shared `deltas_streamed` counter; bumped per frame
    /// *after* a successful send, so the stat measures delivery, not
    /// enqueueing frames that eviction may later discard.
    streamed: Arc<AtomicU64>,
}

impl Subscriber {
    /// Closes the queue and wakes the flusher so it can exit. Idempotent.
    fn close(&self) {
        lock(&self.queue).closed = true;
        self.cv.notify_all();
    }
}

/// The flusher loop: pop-or-wait, send, repeat. Exits when the queue is
/// closed and drained, or immediately on a send failure (the peer is
/// gone; `close` marks the queue so broadcast unregisters it).
fn flush_subscriber(sub: &Subscriber) {
    loop {
        let frame = {
            let mut queue = lock(&sub.queue);
            loop {
                if let Some(frame) = queue.frames.pop_front() {
                    break frame;
                }
                if queue.closed {
                    return;
                }
                queue = sub.cv.wait(queue).unwrap_or_else(PoisonError::into_inner);
            }
        };
        if sub.transport.send_payload(&frame.payload).is_err() {
            sub.close();
            return;
        }
        sub.streamed.fetch_add(frame.deltas, Ordering::SeqCst);
    }
}

struct Shared {
    state: Mutex<ServeState>,
    subscribers: Mutex<BTreeMap<u64, Arc<Subscriber>>>,
    config: ServerConfig,
    sessions_active: AtomicU64,
    sessions_total: AtomicU64,
    delta_batches: AtomicU64,
    /// `Arc`ed so each subscriber's flusher can credit deliveries.
    deltas_streamed: Arc<AtomicU64>,
    subscribers_evicted: AtomicU64,
    shutdown: AtomicBool,
    wake_addr: Mutex<Option<String>>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A poisoned lock means another session panicked mid-request; the
    // shared state itself is only ever mutated through `ServeState::apply`,
    // which is transactional, so continuing is safe.
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The daemon. Cheap to clone; clones share one state and registry.
#[derive(Clone)]
pub struct Server {
    shared: Arc<Shared>,
}

impl Server {
    /// Wraps a materialized catalog in a server.
    pub fn new(state: ServeState, config: ServerConfig) -> Server {
        Server {
            shared: Arc::new(Shared {
                state: Mutex::new(state),
                subscribers: Mutex::new(BTreeMap::new()),
                config,
                sessions_active: AtomicU64::new(0),
                sessions_total: AtomicU64::new(0),
                delta_batches: AtomicU64::new(0),
                deltas_streamed: Arc::new(AtomicU64::new(0)),
                subscribers_evicted: AtomicU64::new(0),
                shutdown: AtomicBool::new(false),
                wake_addr: Mutex::new(None),
            }),
        }
    }

    /// Whether a `Shutdown` request has been accepted.
    pub fn is_shutdown(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// The counter snapshot served by `Stats`.
    pub fn stats(&self) -> ServeStats {
        let (entries, seq, counters) = {
            let state = lock(&self.shared.state);
            (state.len() as u64, state.seq(), state.engine().counters())
        };
        ServeStats {
            computed: counters.computed,
            delta_batches: self.shared.delta_batches.load(Ordering::SeqCst),
            deltas_streamed: self.shared.deltas_streamed.load(Ordering::SeqCst),
            disk_hits: counters.disk_hits,
            entries,
            invalidated: counters.invalidated,
            journal_hits: counters.journal_hits,
            memory_hits: counters.memory_hits,
            seq,
            sessions_active: self.shared.sessions_active.load(Ordering::SeqCst),
            sessions_total: self.shared.sessions_total.load(Ordering::SeqCst),
            subscribers: lock(&self.shared.subscribers).len() as u64,
            subscribers_evicted: self.shared.subscribers_evicted.load(Ordering::SeqCst),
        }
    }

    /// Accepts sessions until a `Shutdown` request arrives, spawning
    /// one thread per connection. Accept errors are skipped (the
    /// listener survives transient failures).
    pub fn serve_listener(&self, listener: &TcpListener) -> Result<(), ServeError> {
        let addr = listener
            .local_addr()
            .map_err(|e| ServeError::Io(e.to_string()))?;
        *lock(&self.shared.wake_addr) = Some(addr.to_string());
        for stream in listener.incoming() {
            if self.is_shutdown() {
                break;
            }
            let Ok(stream) = stream else { continue };
            let peer = stream
                .peer_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "?".to_owned());
            let Ok(transport) = TcpTransport::from_stream(stream, &peer) else {
                continue;
            };
            let server = self.clone();
            std::thread::spawn(move || {
                let _ = server.serve_session(Arc::new(transport));
            });
        }
        Ok(())
    }

    /// Runs one session to completion on the calling thread. Public so
    /// tests and benches can serve loopback transports without sockets.
    pub fn serve_session(&self, transport: Arc<dyn FrameTransport>) -> Result<(), ServeError> {
        let session_id = self.shared.sessions_total.fetch_add(1, Ordering::SeqCst) + 1;
        let active = self.shared.sessions_active.fetch_add(1, Ordering::SeqCst) + 1;
        let max_clients = self.shared.config.max_clients;
        let result = if active > max_clients {
            // Shed, don't fail hard: the hint is deterministic in the
            // overload depth, so identical load states refuse
            // identically (and deeper overload backs clients off
            // further).
            let retry_after_ticks = (active - max_clients) * RETRY_QUANTUM_TICKS;
            let _ = self.send(
                &transport,
                &ServeReply::Busy {
                    id: 0,
                    max_clients,
                    retry_after_ticks,
                },
            );
            Err(ServeError::ServerFull {
                max_clients,
                retry_after_ticks,
            })
        } else {
            self.session_loop(session_id, &transport)
        };
        if let Some(sub) = lock(&self.shared.subscribers).remove(&session_id) {
            // Close the queue so the flusher thread drains and exits.
            sub.close();
        }
        self.shared.sessions_active.fetch_sub(1, Ordering::SeqCst);
        result
    }

    fn session_loop(
        &self,
        session_id: u64,
        transport: &Arc<dyn FrameTransport>,
    ) -> Result<(), ServeError> {
        loop {
            let payload = match transport.recv_payload() {
                Ok(p) => p,
                Err(TransportError::Closed) => return Ok(()),
                Err(e) => return Err(e.into()),
            };
            let request = match decode_request(&payload) {
                Ok(r) => r,
                Err(e) => {
                    self.send(
                        transport,
                        &ServeReply::Error {
                            id: 0,
                            message: e.to_string(),
                        },
                    )?;
                    continue;
                }
            };
            match request {
                ServeRequest::Hello { protocol, .. } => {
                    if protocol != SERVE_PROTOCOL_VERSION {
                        self.send(
                            transport,
                            &ServeReply::Error {
                                id: 0,
                                message: format!(
                                    "protocol {protocol} unsupported (server speaks {SERVE_PROTOCOL_VERSION})"
                                ),
                            },
                        )?;
                        return Ok(());
                    }
                    let (entries, seq) = {
                        let state = lock(&self.shared.state);
                        (state.len() as u64, state.seq())
                    };
                    self.send(
                        transport,
                        &ServeReply::Hello {
                            entries,
                            protocol: SERVE_PROTOCOL_VERSION,
                            seq,
                            server: self.shared.config.name.clone(),
                        },
                    )?;
                }
                ServeRequest::Query { id, key } => {
                    // The warm path: a lookup in the materialized map,
                    // never a simulation. The engine's `computed`
                    // counter staying flat across queries is the
                    // warm-serving proof the contract test checks.
                    let reply = {
                        let state = lock(&self.shared.state);
                        match state.get(&key) {
                            Some((fingerprint, profile)) => ServeReply::Profile {
                                fingerprint,
                                id,
                                key,
                                profile: Box::new(profile.clone()),
                            },
                            None => ServeReply::NotFound { id, key },
                        }
                    };
                    self.send(transport, &reply)?;
                }
                ServeRequest::Snapshot { id } => {
                    let reply = {
                        let state = lock(&self.shared.state);
                        let entries = state
                            .keys()
                            .into_iter()
                            .filter_map(|key| {
                                state.get(&key).map(|(fingerprint, profile)| SnapshotEntry {
                                    fingerprint,
                                    key: key.clone(),
                                    profile: Box::new(profile.clone()),
                                })
                            })
                            .collect();
                        ServeReply::Snapshot {
                            entries,
                            id,
                            seq: state.seq(),
                        }
                    };
                    self.send(transport, &reply)?;
                }
                ServeRequest::Mutate { id, mutation } => {
                    // Apply and broadcast under one lock acquisition:
                    // subscribers see batches in strict seq order.
                    let reply = {
                        let mut state = lock(&self.shared.state);
                        match state.apply(&mutation) {
                            Ok(batch) => {
                                self.broadcast(&batch);
                                let count = |f: fn(&Delta) -> bool| {
                                    batch.deltas.iter().filter(|d| f(d)).count() as u64
                                };
                                ServeReply::Mutated {
                                    created: count(|d| matches!(d, Delta::Created { .. })),
                                    deleted: count(|d| matches!(d, Delta::Deleted { .. })),
                                    id,
                                    seq: batch.seq,
                                    updated: count(|d| matches!(d, Delta::Updated { .. })),
                                }
                            }
                            Err(e) => ServeReply::Error {
                                id,
                                message: e.to_string(),
                            },
                        }
                    };
                    self.send(transport, &reply)?;
                }
                ServeRequest::Subscribe { id } => {
                    let sub = Arc::new(Subscriber {
                        transport: Arc::clone(transport),
                        queue: Mutex::new(SubQueue::default()),
                        cv: Condvar::new(),
                        streamed: Arc::clone(&self.shared.deltas_streamed),
                    });
                    // Register under the state lock (lock order: state
                    // → subscribers, same as Mutate/broadcast), so no
                    // batch with seq greater than the returned seq can
                    // be broadcast before this subscriber is visible.
                    let seq = {
                        let state = lock(&self.shared.state);
                        let mut subscribers = lock(&self.shared.subscribers);
                        if let Some(old) = subscribers.insert(session_id, Arc::clone(&sub)) {
                            old.close();
                        }
                        state.seq()
                    };
                    std::thread::spawn(move || flush_subscriber(&sub));
                    self.send(transport, &ServeReply::Subscribed { id, seq })?;
                }
                ServeRequest::Stats { id } => {
                    let stats = self.stats();
                    self.send(transport, &ServeReply::Stats { id, stats })?;
                }
                ServeRequest::Shutdown { id } => {
                    self.shared.shutdown.store(true, Ordering::SeqCst);
                    self.send(transport, &ServeReply::ShuttingDown { id })?;
                    self.wake_listener();
                    return Ok(());
                }
                ServeRequest::Bye => return Ok(()),
            }
        }
    }

    fn send(
        &self,
        transport: &Arc<dyn FrameTransport>,
        reply: &ServeReply,
    ) -> Result<(), ServeError> {
        let payload = encode_reply(self.shared.config.format, reply);
        transport.send_payload(&payload).map_err(ServeError::from)
    }

    /// Enqueues one batch onto every subscriber's bounded queue; the
    /// per-subscriber flusher threads do the socket writes (and credit
    /// `deltas_streamed` per delivered frame). Called with the state
    /// lock held (see `Mutate`), which is what gives every queue strict
    /// `seq` order — and is why this must never block on a slow peer. A
    /// subscriber whose queue is already full is evicted instead of
    /// buffered without bound: a final `Error` notice is queued (the
    /// flusher drains a closed queue, so the client learns it was shed
    /// rather than silently losing the stream), then the queue is
    /// closed and the subscriber unregistered. One whose flusher died
    /// of a send failure is silently dropped — the peer is gone.
    fn broadcast(&self, batch: &DeltaBatch) {
        if batch.deltas.is_empty() {
            return;
        }
        self.shared.delta_batches.fetch_add(1, Ordering::SeqCst);
        let payload = encode_reply(self.shared.config.format, &ServeReply::Delta(batch.clone()));
        let mut subscribers = lock(&self.shared.subscribers);
        let mut gone = Vec::new();
        for (&session_id, subscriber) in subscribers.iter() {
            let mut queue = lock(&subscriber.queue);
            if queue.closed {
                // The flusher hit a send failure; the peer is gone.
                gone.push(session_id);
                continue;
            }
            if queue.frames.len() as u64 >= self.shared.config.sub_queue {
                // Slow consumer: shed it rather than grow its queue,
                // with a best-effort farewell frame.
                let notice = encode_reply(
                    self.shared.config.format,
                    &ServeReply::Error {
                        id: 0,
                        message: format!(
                            "subscription evicted: {} undelivered delta batches exceeded \
                             the BDB_SERVE_SUB_QUEUE bound of {}",
                            queue.frames.len(),
                            self.shared.config.sub_queue
                        ),
                    },
                );
                queue.frames.push_back(Frame {
                    payload: notice,
                    deltas: 0,
                });
                queue.closed = true;
                drop(queue);
                subscriber.cv.notify_all();
                gone.push(session_id);
                self.shared
                    .subscribers_evicted
                    .fetch_add(1, Ordering::SeqCst);
                continue;
            }
            queue.frames.push_back(Frame {
                payload: payload.clone(),
                deltas: batch.deltas.len() as u64,
            });
            drop(queue);
            subscriber.cv.notify_all();
        }
        for session_id in gone {
            subscribers.remove(&session_id);
        }
    }

    /// Unblocks `serve_listener`'s accept call after shutdown by
    /// connecting (and immediately dropping) a throwaway stream.
    fn wake_listener(&self) {
        if let Some(addr) = lock(&self.shared.wake_addr).clone() {
            let _ = std::net::TcpStream::connect(addr);
        }
    }
}
