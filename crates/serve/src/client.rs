//! The serve client: request/reply with interleaved delta pushes.
//!
//! A subscribed session can receive an unsolicited `Delta` frame at any
//! moment — including between a request and its reply. The client
//! absorbs that: any `Delta` arriving while waiting for a reply is
//! queued, and [`ServeClient::next_delta`] drains the queue before
//! touching the socket. Replies are matched to requests by echo id, so
//! a misrouted frame is a loud [`ServeError::Protocol`], never a
//! silently wrong answer.

use crate::proto::{
    decode_reply, encode_request, serve_format_from_env, ServeReply, ServeRequest, ServeStats,
    SnapshotEntry, SERVE_PROTOCOL_VERSION,
};
use crate::spec::{EntryKey, Mutation};
use crate::state::{Delta, DeltaBatch};
use crate::ServeError;
use bdb_cluster::{FrameTransport, TcpTransport, WireFormat};
use bdb_wcrt::WorkloadProfile;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;
use std::time::Duration;

/// What a `Mutate` request changed, from the server's `Mutated` reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MutateOutcome {
    /// The post-mutation catalog sequence number.
    pub seq: u64,
    /// Entries created.
    pub created: u64,
    /// Entries whose profile bytes changed.
    pub updated: u64,
    /// Entries deleted.
    pub deleted: u64,
}

/// What the server said in its `Hello` reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionInfo {
    /// Materialized entry count at session start.
    pub entries: u64,
    /// Catalog sequence number at session start.
    pub seq: u64,
}

/// A blocking client for one serve session.
pub struct ServeClient {
    transport: Arc<dyn FrameTransport>,
    format: WireFormat,
    next_id: u64,
    pending: VecDeque<DeltaBatch>,
}

impl ServeClient {
    /// Connects over TCP, with the payload format from
    /// [`serve_format_from_env`].
    pub fn connect(addr: &str, timeout: Duration) -> Result<ServeClient, ServeError> {
        let transport = TcpTransport::connect(addr, timeout)?;
        Ok(ServeClient::over(
            Arc::new(transport),
            serve_format_from_env(),
        ))
    }

    /// Wraps an existing transport (loopback in tests).
    pub fn over(transport: Arc<dyn FrameTransport>, format: WireFormat) -> ServeClient {
        ServeClient {
            transport,
            format,
            next_id: 0,
            pending: VecDeque::new(),
        }
    }

    /// Opens the session; must be the first call.
    pub fn hello(&mut self, client: &str) -> Result<SessionInfo, ServeError> {
        let request = ServeRequest::Hello {
            client: client.to_owned(),
            protocol: SERVE_PROTOCOL_VERSION,
        };
        if let Err(e) = self
            .transport
            .send_payload(&encode_request(self.format, &request))
        {
            // A refused session hangs up before reading anything, but
            // its parting `Busy`/`Error` frame may already be queued;
            // surface the refusal instead of the bare transport failure.
            if let Ok(Some(payload)) = self
                .transport
                .recv_payload_timeout(Duration::from_millis(50))
            {
                match decode_reply(&payload) {
                    Ok(ServeReply::Error { message, .. }) => {
                        return Err(ServeError::Remote(message));
                    }
                    Ok(ServeReply::Busy {
                        max_clients,
                        retry_after_ticks,
                        ..
                    }) => {
                        return Err(ServeError::ServerFull {
                            max_clients,
                            retry_after_ticks,
                        });
                    }
                    _ => {}
                }
            }
            return Err(e.into());
        }
        match self.recv_reply()? {
            ServeReply::Hello {
                entries,
                protocol,
                seq,
                ..
            } => {
                if protocol != SERVE_PROTOCOL_VERSION {
                    return Err(ServeError::Protocol(format!(
                        "server speaks protocol {protocol}, client speaks {SERVE_PROTOCOL_VERSION}"
                    )));
                }
                Ok(SessionInfo { entries, seq })
            }
            ServeReply::Error { message, .. } => Err(ServeError::Remote(message)),
            ServeReply::Busy {
                max_clients,
                retry_after_ticks,
                ..
            } => Err(ServeError::ServerFull {
                max_clients,
                retry_after_ticks,
            }),
            other => Err(ServeError::Protocol(format!(
                "expected hello reply, got {other:?}"
            ))),
        }
    }

    /// Fetches one entry; `None` means the key is not served.
    pub fn query(&mut self, key: &EntryKey) -> Result<Option<(u64, WorkloadProfile)>, ServeError> {
        let id = self.fresh_id();
        match self.roundtrip(
            id,
            &ServeRequest::Query {
                id,
                key: key.clone(),
            },
        )? {
            ServeReply::Profile {
                fingerprint,
                profile,
                ..
            } => Ok(Some((fingerprint, *profile))),
            ServeReply::NotFound { .. } => Ok(None),
            other => Err(unexpected("profile", &other)),
        }
    }

    /// Fetches the whole catalog and the seq it reflects.
    pub fn snapshot(&mut self) -> Result<(u64, Vec<SnapshotEntry>), ServeError> {
        let id = self.fresh_id();
        match self.roundtrip(id, &ServeRequest::Snapshot { id })? {
            ServeReply::Snapshot { entries, seq, .. } => Ok((seq, entries)),
            other => Err(unexpected("snapshot", &other)),
        }
    }

    /// Applies one mutation on the server.
    pub fn mutate(&mut self, mutation: Mutation) -> Result<MutateOutcome, ServeError> {
        let id = self.fresh_id();
        match self.roundtrip(id, &ServeRequest::Mutate { id, mutation })? {
            ServeReply::Mutated {
                created,
                deleted,
                seq,
                updated,
                ..
            } => Ok(MutateOutcome {
                seq,
                created,
                updated,
                deleted,
            }),
            other => Err(unexpected("mutated", &other)),
        }
    }

    /// Registers for delta pushes; returns the seq already covered
    /// (pushed batches will all have `seq` greater than this).
    pub fn subscribe(&mut self) -> Result<u64, ServeError> {
        let id = self.fresh_id();
        match self.roundtrip(id, &ServeRequest::Subscribe { id })? {
            ServeReply::Subscribed { seq, .. } => Ok(seq),
            other => Err(unexpected("subscribed", &other)),
        }
    }

    /// Fetches server + engine counters.
    pub fn stats(&mut self) -> Result<ServeStats, ServeError> {
        let id = self.fresh_id();
        match self.roundtrip(id, &ServeRequest::Stats { id })? {
            ServeReply::Stats { stats, .. } => Ok(stats),
            other => Err(unexpected("stats", &other)),
        }
    }

    /// Asks the daemon to exit.
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        let id = self.fresh_id();
        match self.roundtrip(id, &ServeRequest::Shutdown { id })? {
            ServeReply::ShuttingDown { .. } => Ok(()),
            other => Err(unexpected("shutting_down", &other)),
        }
    }

    /// Closes the session cleanly.
    pub fn bye(self) -> Result<(), ServeError> {
        self.transport
            .send_payload(&encode_request(self.format, &ServeRequest::Bye))
            .map_err(ServeError::from)
    }

    /// The next pushed delta batch: queued batches first, then up to
    /// `timeout` waiting on the wire. `None` on timeout.
    pub fn next_delta(&mut self, timeout: Duration) -> Result<Option<DeltaBatch>, ServeError> {
        if let Some(batch) = self.pending.pop_front() {
            return Ok(Some(batch));
        }
        match self.transport.recv_payload_timeout(timeout)? {
            None => Ok(None),
            Some(payload) => match decode_reply(&payload)? {
                ServeReply::Delta(batch) => Ok(Some(batch)),
                other => Err(unexpected("delta", &other)),
            },
        }
    }

    fn fresh_id(&mut self) -> u64 {
        self.next_id += 1;
        self.next_id
    }

    /// Sends one request and waits for its id-matched reply, queueing
    /// any delta pushes that arrive in between.
    fn roundtrip(&mut self, id: u64, request: &ServeRequest) -> Result<ServeReply, ServeError> {
        self.transport
            .send_payload(&encode_request(self.format, request))?;
        loop {
            match self.recv_reply()? {
                ServeReply::Delta(batch) => self.pending.push_back(batch),
                ServeReply::Error { id: got, message } if got == id || got == 0 => {
                    return Err(ServeError::Remote(message));
                }
                ServeReply::Busy {
                    max_clients,
                    retry_after_ticks,
                    ..
                } => {
                    return Err(ServeError::ServerFull {
                        max_clients,
                        retry_after_ticks,
                    });
                }
                reply => {
                    let got = reply_id(&reply);
                    if got != Some(id) {
                        return Err(ServeError::Protocol(format!(
                            "reply id {got:?} does not match request id {id}"
                        )));
                    }
                    return Ok(reply);
                }
            }
        }
    }

    fn recv_reply(&mut self) -> Result<ServeReply, ServeError> {
        decode_reply(&self.transport.recv_payload()?)
    }
}

fn reply_id(reply: &ServeReply) -> Option<u64> {
    match reply {
        ServeReply::Profile { id, .. }
        | ServeReply::NotFound { id, .. }
        | ServeReply::Snapshot { id, .. }
        | ServeReply::Mutated { id, .. }
        | ServeReply::Subscribed { id, .. }
        | ServeReply::Stats { id, .. }
        | ServeReply::ShuttingDown { id }
        | ServeReply::Error { id, .. } => Some(*id),
        ServeReply::Hello { .. } | ServeReply::Delta(_) | ServeReply::Busy { .. } => None,
    }
}

fn unexpected(wanted: &str, got: &ServeReply) -> ServeError {
    match got {
        ServeReply::Error { message, .. } => ServeError::Remote(message.clone()),
        other => ServeError::Protocol(format!("expected {wanted} reply, got {other:?}")),
    }
}

/// Applies one delta batch to a snapshot held as `key → entry`. After
/// applying every batch with `seq` greater than the snapshot's, the map
/// equals the server's live catalog — the client half of the
/// incremental-recomputation contract.
pub fn apply_delta_batch(entries: &mut BTreeMap<String, SnapshotEntry>, batch: &DeltaBatch) {
    for delta in &batch.deltas {
        match delta {
            Delta::Created {
                key,
                fingerprint,
                profile,
            }
            | Delta::Updated {
                key,
                fingerprint,
                profile,
            } => {
                entries.insert(
                    key.render(),
                    SnapshotEntry {
                        fingerprint: *fingerprint,
                        key: key.clone(),
                        profile: Box::new(profile.clone()),
                    },
                );
            }
            Delta::Deleted { key } => {
                entries.remove(&key.render());
            }
        }
    }
}
