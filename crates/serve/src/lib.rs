//! `bdb-serve` — profiling-as-a-service with incremental delta
//! recomputation.
//!
//! The batch tools (`bdb-bench` bins, `bdb-cluster` fleets) answer one
//! question per process: build an engine, profile a catalog, print, exit.
//! This crate keeps the answer *resident*: a daemon materializes the
//! full workload × machine-config profile catalog once, then serves
//! point queries from memory and absorbs spec changes by recomputing
//! **only the entries a change actually invalidates** — never the whole
//! catalog — streaming `Created`/`Updated`/`Deleted` deltas to
//! subscribed clients.
//!
//! Layers, bottom up:
//!
//! * [`spec`] — [`ServeSpec`], the served catalog description (machine
//!   configs × workload ids at one scale), plus the [`Mutation`] algebra
//!   that edits it.
//! * [`knob`] — dotted-path knob edits (`l1d.size_bytes=65536`) applied
//!   to a machine config through its canonical JSON form, so every
//!   tunable the codec knows is reachable without per-field plumbing.
//! * [`index`] — the [`DepIndex`] mapping each catalog entry to its
//!   content fingerprint; diffing two indexes yields exactly the
//!   created/removed/changed entry sets a mutation implies.
//! * [`state`] — [`ServeState`], the materialized catalog riding a
//!   [`bdb_engine::Engine`]: applies mutations, recomputes the affected
//!   slice on the rayon pool, and emits ordered [`DeltaBatch`]es.
//! * [`proto`] — the request/reply protocol, encoded as canonical JSON
//!   or checksummed BDBC records (`ServeRequest`/`ServeDelta` kinds) on
//!   the same length-prefixed frames as the cluster wire.
//! * [`server`] / [`client`] — the blocking TCP daemon (thread per
//!   session, subscription fan-out, warm restart from the engine's
//!   crash-safe cache and journal) and the matching client.
//!
//! The governing contract, proven by tests and the `serve_smoke.sh`
//! harness: after any sequence of mutations, the materialized catalog is
//! **byte-identical** to a cold full recompute of the final spec, and
//! applying the streamed deltas to a stale snapshot reproduces the same
//! bytes.
//!
//! # Example (in-process, no sockets)
//!
//! ```
//! use bdb_engine::Engine;
//! use bdb_serve::{Mutation, ServeSpec, ServeState};
//! use bdb_workloads::Scale;
//! use std::sync::Arc;
//!
//! let spec = ServeSpec::representatives(Scale::tiny());
//! let mut state = ServeState::materialize(Arc::new(Engine::in_memory()), spec).unwrap();
//! let entries = state.len();
//! let batch = state
//!     .apply(&Mutation::SetKnob {
//!         config: "xeon-e5645".to_owned(),
//!         knob: "l1d.size_bytes".to_owned(),
//!         value: bdb_engine::json::Value::UInt(65536),
//!     })
//!     .unwrap();
//! assert!(!batch.deltas.is_empty() && batch.deltas.len() <= entries);
//! ```

pub mod client;
pub mod index;
pub mod knob;
pub mod proto;
pub mod server;
pub mod spec;
pub mod state;

pub use client::{apply_delta_batch, MutateOutcome, ServeClient, SessionInfo};
pub use index::{DepIndex, IndexDiff};
pub use knob::{apply_machine_knob, machine_knobs};
pub use proto::{
    decode_reply, decode_request, encode_reply, encode_request, serve_format_from_env, ServeReply,
    ServeRequest, ServeStats, SnapshotEntry, SERVE_PROTOCOL_VERSION,
};
pub use server::{Server, ServerConfig, RETRY_QUANTUM_TICKS};
pub use spec::{EntryKey, Mutation, ServeSpec};
pub use state::{Delta, DeltaBatch, ServeState};

use bdb_cluster::TransportError;

/// Any failure raised by the serving layers: bad specs or mutations,
/// protocol violations, or transport faults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// A workload id that no catalog entry resolves.
    UnknownWorkload(String),
    /// A machine-config name absent from the spec.
    UnknownConfig(String),
    /// An entry key absent from the materialized catalog.
    UnknownEntry(String),
    /// Adding a workload id the spec already serves.
    DuplicateWorkload(String),
    /// Adding a machine-config name the spec already serves.
    DuplicateConfig(String),
    /// A knob path or value the machine-config codec rejects.
    BadKnob {
        /// The dotted path as given, e.g. `l1d.size_bytes`.
        path: String,
        /// Why it was rejected.
        reason: String,
    },
    /// A structurally invalid mutation (e.g. non-positive scale).
    BadMutation(String),
    /// A payload that is not a valid serve message.
    Decode(String),
    /// A violation of the request/reply protocol.
    Protocol(String),
    /// A transport-level failure.
    Transport(TransportError),
    /// A socket-level failure outside any transport.
    Io(String),
    /// The server shed the session: too many concurrent clients. The
    /// refusal carries a deterministic, tick-denominated retry hint —
    /// graceful degradation, not a hard failure.
    ServerFull {
        /// The server's `BDB_SERVE_MAX_CLIENTS` cap.
        max_clients: u64,
        /// The server's suggested retry delay, in server ticks
        /// (proportional to how far over the cap it is).
        retry_after_ticks: u64,
    },
    /// An error reply relayed from the server.
    Remote(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownWorkload(id) => write!(f, "unknown workload {id:?}"),
            ServeError::UnknownConfig(name) => write!(f, "unknown machine config {name:?}"),
            ServeError::UnknownEntry(key) => write!(f, "no catalog entry {key:?}"),
            ServeError::DuplicateWorkload(id) => {
                write!(f, "workload {id:?} is already in the spec")
            }
            ServeError::DuplicateConfig(name) => {
                write!(f, "machine config {name:?} is already in the spec")
            }
            ServeError::BadKnob { path, reason } => write!(f, "bad knob {path:?}: {reason}"),
            ServeError::BadMutation(e) => write!(f, "bad mutation: {e}"),
            ServeError::Decode(e) => write!(f, "serve payload decode failed: {e}"),
            ServeError::Protocol(e) => write!(f, "protocol violation: {e}"),
            ServeError::Transport(e) => write!(f, "transport failure: {e}"),
            ServeError::Io(e) => write!(f, "socket failure: {e}"),
            ServeError::ServerFull {
                max_clients,
                retry_after_ticks,
            } => {
                write!(
                    f,
                    "server full ({max_clients} clients); retry after {retry_after_ticks} ticks"
                )
            }
            ServeError::Remote(e) => write!(f, "server replied with error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<TransportError> for ServeError {
    fn from(e: TransportError) -> Self {
        ServeError::Transport(e)
    }
}
