//! The materialized catalog and its incremental-recomputation core.
//!
//! [`ServeState`] owns the spec, its [`DepIndex`], and one materialized
//! [`Entry`] per catalog key (profile plus its canonical bytes).
//! [`ServeState::apply`] is the heart of the subsystem: diff the
//! dependency index across the mutation, recompute **only** the created
//! and changed entries (fanned out on the engine's rayon pool via
//! `profile_all`), and emit a [`DeltaBatch`] describing exactly what a
//! subscriber must do to its copy. Unchanged entries are never touched —
//! the engine's `computed` counter proves it — and a changed entry whose
//! recomputed profile is byte-identical to the old one (a knob that
//! doesn't reach that workload's behavior) produces **no** delta at all.
//!
//! The governing invariant, checked by the contract tests: after any
//! mutation sequence, [`ServeState::snapshot_bytes`] equals the bytes of
//! a cold [`ServeState::materialize`] of the final spec.

use crate::index::DepIndex;
use crate::spec::{EntryKey, Mutation, ServeSpec};
use crate::ServeError;
use bdb_engine::codec::profile_to_value;
use bdb_engine::json::Value;
use bdb_engine::{resolve_workload, Engine};
use bdb_wcrt::WorkloadProfile;
use bdb_workloads::WorkloadDef;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One materialized catalog entry.
#[derive(Debug, Clone)]
struct Entry {
    fingerprint: u64,
    profile: WorkloadProfile,
    /// `profile_to_value(profile).encode()` — computed once, reused for
    /// unchanged-detection, snapshots, and byte-identity checks.
    bytes: String,
}

/// One subscriber-visible change to the catalog.
#[derive(Debug, Clone)]
pub enum Delta {
    /// A new entry appeared (workload or config added).
    Created {
        /// The entry's key.
        key: EntryKey,
        /// The entry's new content fingerprint.
        fingerprint: u64,
        /// The freshly computed profile.
        profile: WorkloadProfile,
    },
    /// An existing entry's profile bytes changed.
    Updated {
        /// The entry's key.
        key: EntryKey,
        /// The entry's new content fingerprint.
        fingerprint: u64,
        /// The recomputed profile.
        profile: WorkloadProfile,
    },
    /// An entry disappeared (workload or config removed).
    Deleted {
        /// The entry's key.
        key: EntryKey,
    },
}

impl Delta {
    /// The key the delta applies to.
    pub fn key(&self) -> &EntryKey {
        match self {
            Delta::Created { key, .. } | Delta::Updated { key, .. } | Delta::Deleted { key } => key,
        }
    }
}

/// All deltas from one mutation, tagged with the post-mutation sequence
/// number. Applying batches in `seq` order to a snapshot taken at seq
/// `s` (skipping batches with `seq <= s`) reproduces the live catalog
/// byte-for-byte.
#[derive(Debug, Clone)]
pub struct DeltaBatch {
    /// The catalog sequence number after this mutation.
    pub seq: u64,
    /// The changes, in deterministic key order.
    pub deltas: Vec<Delta>,
}

/// The live catalog: spec + index + materialized entries on an engine.
pub struct ServeState {
    engine: Arc<Engine>,
    spec: ServeSpec,
    index: DepIndex,
    entries: BTreeMap<EntryKey, Entry>,
    seq: u64,
}

impl ServeState {
    /// Materializes the full catalog for `spec` — the cold start. Every
    /// entry is profiled (through the engine's memory/journal/disk
    /// caches, so a restart over a warm cache directory computes
    /// nothing). Fails without profiling if any workload id is unknown.
    pub fn materialize(engine: Arc<Engine>, spec: ServeSpec) -> Result<ServeState, ServeError> {
        let index = DepIndex::build(&spec);
        let keys = spec.entries();
        let entries = materialize_entries(&engine, &spec, &keys)?;
        Ok(ServeState {
            engine,
            spec,
            index,
            entries,
            seq: 0,
        })
    }

    /// The engine the catalog rides (its counters prove warm/cold and
    /// recomputation claims).
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// The current spec.
    pub fn spec(&self) -> &ServeSpec {
        &self.spec
    }

    /// The current sequence number (0 = freshly materialized).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Number of materialized entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entry keys, in deterministic order.
    pub fn keys(&self) -> Vec<EntryKey> {
        self.entries.keys().cloned().collect()
    }

    /// One entry's fingerprint and profile — the warm query path. Never
    /// computes; a miss is simply `None`.
    pub fn get(&self, key: &EntryKey) -> Option<(u64, &WorkloadProfile)> {
        self.entries.get(key).map(|e| (e.fingerprint, &e.profile))
    }

    /// One entry's canonical profile bytes.
    pub fn get_bytes(&self, key: &EntryKey) -> Option<&str> {
        self.entries.get(key).map(|e| e.bytes.as_str())
    }

    /// Applies one mutation: edits the spec, recomputes exactly the
    /// entries the [`DepIndex`] diff names, and returns the resulting
    /// delta batch (empty `deltas` if nothing observable changed — the
    /// sequence number still advances). On `Err` the state is untouched.
    pub fn apply(&mut self, mutation: &Mutation) -> Result<DeltaBatch, ServeError> {
        let next_spec = self.spec.apply(mutation)?;
        let next_index = DepIndex::build(&next_spec);
        let diff = self.index.diff(&next_index);
        let mut work: Vec<EntryKey> = Vec::with_capacity(diff.recompute_count());
        work.extend(diff.created.iter().cloned());
        work.extend(diff.changed.iter().cloned());
        work.sort();
        let fresh = materialize_entries(&self.engine, &next_spec, &work)?;

        let mut deltas = Vec::new();
        for key in &diff.removed {
            if let Some(old) = self.entries.remove(key) {
                self.engine.invalidate(old.fingerprint);
                deltas.push(Delta::Deleted { key: key.clone() });
            }
        }
        for (key, entry) in fresh {
            match self.entries.get(&key) {
                Some(old) => {
                    self.engine.invalidate(old.fingerprint);
                    if old.bytes != entry.bytes {
                        deltas.push(Delta::Updated {
                            key: key.clone(),
                            fingerprint: entry.fingerprint,
                            profile: entry.profile.clone(),
                        });
                    }
                }
                None => deltas.push(Delta::Created {
                    key: key.clone(),
                    fingerprint: entry.fingerprint,
                    profile: entry.profile.clone(),
                }),
            }
            self.entries.insert(key, entry);
        }
        deltas.sort_by(|a, b| a.key().cmp(b.key()));
        self.spec = next_spec;
        self.index = next_index;
        self.seq += 1;
        Ok(DeltaBatch {
            seq: self.seq,
            deltas,
        })
    }

    /// The catalog as a canonical JSON value: `{"entries": [...]}` with
    /// one `{"fingerprint", "key", "profile"}` object per entry, in key
    /// order. Deliberately excludes `seq`, so an incrementally mutated
    /// catalog and a cold materialization of the same spec encode to
    /// **identical bytes**.
    pub fn snapshot_value(&self) -> Value {
        let entries = self
            .entries
            .iter()
            .map(|(key, e)| {
                Value::object(vec![
                    ("fingerprint", Value::UInt(e.fingerprint)),
                    ("key", Value::Str(key.render())),
                    ("profile", profile_to_value(&e.profile)),
                ])
            })
            .collect();
        Value::object(vec![("entries", Value::Array(entries))])
    }

    /// [`ServeState::snapshot_value`] encoded — the byte-identity
    /// surface of the incremental-recomputation contract.
    pub fn snapshot_bytes(&self) -> String {
        self.snapshot_value().encode()
    }
}

/// Profiles the given keys under `spec`, grouping by config so each
/// group fans out across the engine's worker pool in one
/// `profile_all` call. Keys must be sorted; output order is irrelevant
/// (a `BTreeMap` comes back).
fn materialize_entries(
    engine: &Engine,
    spec: &ServeSpec,
    keys: &[EntryKey],
) -> Result<BTreeMap<EntryKey, Entry>, ServeError> {
    // Resolve everything up front: no profile is computed unless the
    // whole batch is valid, so a failed mutation has no side effects.
    let mut groups: Vec<(&str, Vec<WorkloadDef>)> = Vec::new();
    for key in keys {
        if !spec.configs.contains_key(&key.config) {
            return Err(ServeError::UnknownConfig(key.config.clone()));
        }
        let def = resolve_workload(&key.workload)
            .ok_or_else(|| ServeError::UnknownWorkload(key.workload.clone()))?;
        match groups.last_mut() {
            Some((config, defs)) if *config == key.config => defs.push(def),
            _ => groups.push((&key.config, vec![def])),
        }
    }
    let mut out = BTreeMap::new();
    for (config, defs) in groups {
        let machine = spec
            .configs
            .get(config)
            .ok_or_else(|| ServeError::UnknownConfig(config.to_owned()))?;
        let profiles = engine.profile_all(&defs, spec.scale, machine, &spec.node);
        for (def, profile) in defs.iter().zip(profiles) {
            let fingerprint =
                bdb_engine::profile_fingerprint(&def.spec.id, spec.scale, machine, &spec.node);
            let bytes = profile_to_value(&profile).encode();
            out.insert(
                EntryKey::new(config, &def.spec.id),
                Entry {
                    fingerprint,
                    profile,
                    bytes,
                },
            );
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdb_engine::json::Value as JsonValue;
    use bdb_workloads::Scale;

    fn small_spec() -> ServeSpec {
        ServeSpec::representatives(Scale::tiny())
            .with_workloads(&[
                "H-WordCount".to_owned(),
                "H-Grep".to_owned(),
                "S-Project".to_owned(),
            ])
            .unwrap()
    }

    #[test]
    fn knob_mutation_recomputes_only_affected_and_matches_cold() {
        let engine = Arc::new(Engine::in_memory());
        let mut state = ServeState::materialize(engine.clone(), small_spec()).unwrap();
        assert_eq!(state.len(), 3);
        let cold_computes = engine.counters().computed;
        assert_eq!(cold_computes, 3);

        let mutation = Mutation::SetKnob {
            config: "xeon-e5645".to_owned(),
            knob: "l1d.size_bytes".to_owned(),
            value: JsonValue::UInt(16384),
        };
        let batch = state.apply(&mutation).unwrap();
        assert_eq!(batch.seq, 1);
        // All three entries ride the mutated config, so all recompute…
        assert_eq!(engine.counters().computed, cold_computes + 3);
        assert_eq!(engine.counters().invalidated, 3);
        // …and shrinking L1d must move the needle on these workloads.
        assert!(!batch.deltas.is_empty());

        // Byte-identity against a cold materialization of the same spec.
        let cold =
            ServeState::materialize(Arc::new(Engine::in_memory()), state.spec().clone()).unwrap();
        assert_eq!(state.snapshot_bytes(), cold.snapshot_bytes());
    }

    #[test]
    fn workload_removal_emits_deletes_and_computes_nothing() {
        let engine = Arc::new(Engine::in_memory());
        let mut state = ServeState::materialize(engine.clone(), small_spec()).unwrap();
        let before = engine.counters().computed;
        let batch = state
            .apply(&Mutation::RemoveWorkload {
                id: "H-Grep".to_owned(),
            })
            .unwrap();
        assert_eq!(
            engine.counters().computed,
            before,
            "deletes must not profile"
        );
        assert_eq!(batch.deltas.len(), 1);
        assert!(matches!(&batch.deltas[0], Delta::Deleted { key } if key.workload == "H-Grep"));
        assert_eq!(state.len(), 2);
    }

    #[test]
    fn failed_mutation_leaves_state_untouched() {
        let engine = Arc::new(Engine::in_memory());
        let mut state = ServeState::materialize(engine.clone(), small_spec()).unwrap();
        let snapshot = state.snapshot_bytes();
        let seq = state.seq();
        let err = state.apply(&Mutation::SetKnob {
            config: "no-such-config".to_owned(),
            knob: "l1d.size_bytes".to_owned(),
            value: JsonValue::UInt(1),
        });
        assert!(matches!(err, Err(ServeError::UnknownConfig(_))));
        assert_eq!(state.seq(), seq);
        assert_eq!(state.snapshot_bytes(), snapshot);
    }
}
