//! Dotted-path knob edits on machine configs.
//!
//! Rather than plumbing a setter per tunable, a knob edit round-trips
//! the config through its canonical JSON form: encode, replace the leaf
//! the dotted path names (`l1d.size_bytes`, `pipeline.mem_latency`,
//! `predictor`, …), and strictly re-decode. The codec's validation is
//! the single source of truth for what values are legal — a typo'd path
//! or a wrong-typed value is rejected with the codec's own reason, and
//! no partially-edited config can ever exist.

use crate::ServeError;
use bdb_engine::codec::{machine_config_from_value, machine_config_to_value};
use bdb_engine::json::Value;
use bdb_sim::MachineConfig;

/// Applies one knob edit, returning the edited config. `path` is a
/// dotted path into the config's canonical JSON form; `value` replaces
/// the leaf it names. Fails (leaving nothing changed) if the path does
/// not exist, traverses a `null` (a config without an L3 has no
/// `l3.size_bytes`), or the codec rejects the edited config.
pub fn apply_machine_knob(
    machine: &MachineConfig,
    path: &str,
    value: &Value,
) -> Result<MachineConfig, ServeError> {
    let bad = |reason: String| ServeError::BadKnob {
        path: path.to_owned(),
        reason,
    };
    let mut v = machine_config_to_value(machine);
    set_path(&mut v, path, value.clone()).map_err(&bad)?;
    machine_config_from_value(&v).map_err(|e| bad(e.0))
}

/// Replaces the leaf `path` names inside `v` with `new`.
fn set_path(v: &mut Value, path: &str, new: Value) -> Result<(), String> {
    let mut cursor = v;
    let mut new = Some(new);
    let segments: Vec<&str> = path.split('.').collect();
    let last = segments.len().saturating_sub(1);
    for (depth, segment) in segments.iter().enumerate() {
        let Value::Object(pairs) = cursor else {
            return Err(format!(
                "segment {segment:?} traverses a non-object (is a parent null?)"
            ));
        };
        let known: Vec<String> = pairs.iter().map(|(k, _)| k.clone()).collect();
        let Some(slot) = pairs
            .iter_mut()
            .find(|(k, _)| k.as_str() == *segment)
            .map(|(_, slot)| slot)
        else {
            return Err(format!(
                "no field {segment:?} here; fields are: {}",
                known.join(", ")
            ));
        };
        if depth == last {
            *slot = new.take().unwrap_or(Value::Null);
            return Ok(());
        }
        cursor = slot;
    }
    Err("empty knob path".to_owned())
}

/// Every dotted knob path the config exposes, in canonical order — the
/// introspection surface behind `serve_smoke --knobs` and the docs
/// table. Leaves under an absent L3 (`l3: null`) are not listed.
pub fn machine_knobs(machine: &MachineConfig) -> Vec<String> {
    let mut paths = Vec::new();
    walk(&machine_config_to_value(machine), "", &mut paths);
    paths
}

fn walk(v: &Value, prefix: &str, out: &mut Vec<String>) {
    match v {
        Value::Object(pairs) => {
            for (key, child) in pairs {
                let path = if prefix.is_empty() {
                    key.clone()
                } else {
                    format!("{prefix}.{key}")
                };
                walk(child, &path, out);
            }
        }
        Value::Null => {}
        _ => out.push(prefix.to_owned()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_knob_changes_exactly_one_field() {
        let base = MachineConfig::xeon_e5645();
        let edited =
            apply_machine_knob(&base, "l1d.size_bytes", &Value::UInt(65536)).expect("valid knob");
        assert_eq!(edited.l1d.size_bytes, 65536);
        assert_eq!(edited.l1i, base.l1i);
        assert_eq!(edited.l2, base.l2);
        assert_eq!(edited.pipeline, base.pipeline);
    }

    #[test]
    fn nested_pipeline_knob_applies() {
        let base = MachineConfig::xeon_e5645();
        let edited = apply_machine_knob(&base, "pipeline.mem_latency", &Value::UInt(250))
            .expect("valid knob");
        assert_eq!(edited.pipeline.mem_latency, 250);
    }

    #[test]
    fn unknown_path_lists_the_real_fields() {
        let base = MachineConfig::xeon_e5645();
        let err =
            apply_machine_knob(&base, "l1d.way_count", &Value::UInt(8)).expect_err("bogus field");
        let ServeError::BadKnob { reason, .. } = err else {
            panic!("expected BadKnob, got {err:?}");
        };
        assert!(reason.contains("size_bytes"), "reason was: {reason}");
    }

    #[test]
    fn null_l3_cannot_be_edited_through() {
        let atom = MachineConfig::atom_d510();
        assert!(atom.l3.is_none(), "atom has no L3 in this repro");
        let err = apply_machine_knob(&atom, "l3.size_bytes", &Value::UInt(1 << 20));
        assert!(matches!(err, Err(ServeError::BadKnob { .. })), "{err:?}");
    }

    #[test]
    fn wrong_typed_value_is_rejected_by_the_codec() {
        let base = MachineConfig::xeon_e5645();
        let err = apply_machine_knob(&base, "l1d.size_bytes", &Value::Str("big".to_owned()));
        assert!(matches!(err, Err(ServeError::BadKnob { .. })), "{err:?}");
    }

    #[test]
    fn knob_listing_covers_the_leaves() {
        let knobs = machine_knobs(&MachineConfig::xeon_e5645());
        for expected in [
            "name",
            "l1d.size_bytes",
            "l1i.assoc",
            "l2.line_bytes",
            "pipeline.base_cpi",
            "predictor",
        ] {
            assert!(
                knobs.iter().any(|k| k == expected),
                "missing {expected} in {knobs:?}"
            );
        }
        let atom_knobs = machine_knobs(&MachineConfig::atom_d510());
        assert!(
            !atom_knobs.iter().any(|k| k.starts_with("l3.")),
            "null l3 must not list leaves: {atom_knobs:?}"
        );
    }
}
