//! The dependency index: entry → content fingerprint.
//!
//! Every catalog entry's profile is a pure function of
//! `(workload id, scale, machine config, node config)`, and
//! [`bdb_engine::profile_fingerprint`] hashes exactly those inputs — the
//! same key the engine's caches use. So an index built from a spec *is*
//! the dependency closure: diffing the index before and after a mutation
//! yields precisely the entries whose inputs changed, and nothing else.
//! Whatever a mutation touches — one knob on one config, a workload
//! add, a scale change — the recomputation set falls out of the same
//! diff, with no per-mutation invalidation rules to get wrong.

use crate::spec::{EntryKey, ServeSpec};
use bdb_engine::profile_fingerprint;
use std::collections::BTreeMap;

/// The entry → fingerprint map for one spec.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DepIndex {
    entries: BTreeMap<EntryKey, u64>,
}

impl DepIndex {
    /// Builds the index for `spec` — no profiling, just hashing.
    pub fn build(spec: &ServeSpec) -> DepIndex {
        let mut entries = BTreeMap::new();
        for (config, machine) in &spec.configs {
            for workload in &spec.workloads {
                let fingerprint = profile_fingerprint(workload, spec.scale, machine, &spec.node);
                entries.insert(EntryKey::new(config, workload), fingerprint);
            }
        }
        DepIndex { entries }
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The fingerprint of one entry, if indexed.
    pub fn get(&self, key: &EntryKey) -> Option<u64> {
        self.entries.get(key).copied()
    }

    /// Iterates entries in deterministic key order.
    pub fn iter(&self) -> impl Iterator<Item = (&EntryKey, u64)> {
        self.entries.iter().map(|(k, fp)| (k, *fp))
    }

    /// Diffs this index against its successor: which entries a mutation
    /// created, removed, or changed (same key, different fingerprint).
    /// Entries in neither set are untouched and must not be recomputed.
    pub fn diff(&self, next: &DepIndex) -> IndexDiff {
        let mut diff = IndexDiff::default();
        for (key, fingerprint) in &next.entries {
            match self.entries.get(key) {
                None => diff.created.push(key.clone()),
                Some(old) if old != fingerprint => diff.changed.push(key.clone()),
                Some(_) => {}
            }
        }
        for key in self.entries.keys() {
            if !next.entries.contains_key(key) {
                diff.removed.push(key.clone());
            }
        }
        diff
    }
}

/// The entry sets one mutation affects, each in deterministic key order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IndexDiff {
    /// Keys present only in the successor index.
    pub created: Vec<EntryKey>,
    /// Keys present only in the predecessor index.
    pub removed: Vec<EntryKey>,
    /// Keys in both whose fingerprint changed.
    pub changed: Vec<EntryKey>,
}

impl IndexDiff {
    /// Total entries needing recomputation (created + changed).
    pub fn recompute_count(&self) -> usize {
        self.created.len() + self.changed.len()
    }

    /// Whether the mutation touched nothing.
    pub fn is_empty(&self) -> bool {
        self.created.is_empty() && self.removed.is_empty() && self.changed.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Mutation;
    use bdb_engine::json::Value;
    use bdb_sim::MachineConfig;
    use bdb_workloads::Scale;

    fn two_config_spec() -> ServeSpec {
        let mut spec = ServeSpec::representatives(Scale::tiny());
        spec.configs
            .insert("atom-d510".to_owned(), MachineConfig::atom_d510());
        spec
    }

    #[test]
    fn knob_edit_changes_only_that_configs_entries() {
        let spec = two_config_spec();
        let index = DepIndex::build(&spec);
        let next = spec
            .apply(&Mutation::SetKnob {
                config: "xeon-e5645".to_owned(),
                knob: "l1d.size_bytes".to_owned(),
                value: Value::UInt(65536),
            })
            .unwrap();
        let diff = index.diff(&DepIndex::build(&next));
        assert!(diff.created.is_empty() && diff.removed.is_empty());
        assert_eq!(diff.changed.len(), spec.workloads.len());
        assert!(diff.changed.iter().all(|k| k.config == "xeon-e5645"));
    }

    #[test]
    fn workload_add_creates_one_entry_per_config() {
        let spec = two_config_spec();
        let without = spec
            .apply(&Mutation::RemoveWorkload {
                id: "H-WordCount".to_owned(),
            })
            .unwrap();
        let diff = DepIndex::build(&without).diff(&DepIndex::build(&spec));
        assert!(diff.changed.is_empty() && diff.removed.is_empty());
        assert_eq!(diff.created.len(), 2);
        assert!(diff.created.iter().all(|k| k.workload == "H-WordCount"));
    }

    #[test]
    fn scale_change_invalidates_everything() {
        let spec = two_config_spec();
        let rescaled = spec.apply(&Mutation::SetScale { factor: 0.05 }).unwrap();
        let diff = DepIndex::build(&spec).diff(&DepIndex::build(&rescaled));
        assert_eq!(diff.changed.len(), spec.entries().len());
        assert!(diff.created.is_empty() && diff.removed.is_empty());
    }

    #[test]
    fn identical_specs_diff_empty() {
        let spec = two_config_spec();
        let diff = DepIndex::build(&spec).diff(&DepIndex::build(&spec.clone()));
        assert!(diff.is_empty());
    }
}
