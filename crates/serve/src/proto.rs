//! The serve request/reply protocol.
//!
//! Payloads ride the same 4-byte length-prefixed frames as the cluster
//! wire ([`bdb_cluster::wire`]), but carry their own message set,
//! encoded either as canonical JSON or as checksummed BDBC records —
//! [`bdb_codec::RecordKind::ServeRequest`] for requests and
//! [`bdb_codec::RecordKind::ServeDelta`] for replies (delta streams are
//! the reply family's namesake). Receivers sniff per payload
//! ([`bdb_codec::is_binary`]), so JSON and binary clients interoperate
//! on one server.
//!
//! Every encoded object lists its keys **alphabetically**. That is what
//! makes the two formats interchangeable at the byte level: a BDBC
//! payload round-trips through `bval` (which sorts map keys) and
//! re-encodes to exactly the JSON a JSON-format peer produced.

use crate::spec::{mutation_from_value, mutation_to_value, EntryKey, Mutation};
use crate::state::{Delta, DeltaBatch};
use crate::ServeError;
use bdb_cluster::WireFormat;
use bdb_codec::{bval, RecordKind};
use bdb_engine::codec::{profile_from_value, profile_to_value};
use bdb_engine::json::{self, Value};
use bdb_wcrt::WorkloadProfile;

/// Version tag exchanged in `Hello`; bumped on incompatible changes.
///
/// History: v1 was the original request/reply set; v2 added the `busy`
/// overload refusal (sent *before* the `Hello` handshake, so the
/// version exchange cannot negotiate it away) and the
/// `subscribers_evicted` stats counter. The counter is decoded
/// leniently (absent → 0) so a v2 client still reads a v1 server's
/// `stats` replies.
pub const SERVE_PROTOCOL_VERSION: u64 = 2;

/// A client-to-server message. Every request except `Hello`/`Bye`
/// carries a client-chosen `id`, echoed verbatim in the reply so a
/// client can match replies arriving interleaved with delta pushes.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeRequest {
    /// Opens a session and checks protocol compatibility.
    Hello {
        /// The client's self-chosen name (diagnostics only).
        client: String,
        /// The client's [`SERVE_PROTOCOL_VERSION`].
        protocol: u64,
    },
    /// Looks up one catalog entry (warm path — never computes).
    Query {
        /// Echo id.
        id: u64,
        /// The entry to fetch.
        key: EntryKey,
    },
    /// Fetches the whole materialized catalog.
    Snapshot {
        /// Echo id.
        id: u64,
    },
    /// Applies one spec mutation (incremental recompute + delta
    /// fan-out to subscribers).
    Mutate {
        /// Echo id.
        id: u64,
        /// The edit.
        mutation: Mutation,
    },
    /// Registers this session for delta pushes.
    Subscribe {
        /// Echo id.
        id: u64,
    },
    /// Fetches server and engine counters.
    Stats {
        /// Echo id.
        id: u64,
    },
    /// Asks the daemon to stop accepting sessions and exit.
    Shutdown {
        /// Echo id.
        id: u64,
    },
    /// Clean session close.
    Bye,
}

/// A server-to-client message. (No `PartialEq`: profiles compare by
/// canonical bytes, via [`reply_to_value`]`.encode()`.)
#[derive(Debug, Clone)]
pub enum ServeReply {
    /// Session accepted.
    Hello {
        /// Materialized entry count.
        entries: u64,
        /// The server's [`SERVE_PROTOCOL_VERSION`].
        protocol: u64,
        /// Current catalog sequence number.
        seq: u64,
        /// The server's name.
        server: String,
    },
    /// A `Query` hit.
    Profile {
        /// The entry's content fingerprint.
        fingerprint: u64,
        /// Echo id.
        id: u64,
        /// The queried key.
        key: EntryKey,
        /// The materialized profile.
        profile: Box<WorkloadProfile>,
    },
    /// A `Query` miss (the key is not in the served spec).
    NotFound {
        /// Echo id.
        id: u64,
        /// The queried key.
        key: EntryKey,
    },
    /// The full catalog.
    Snapshot {
        /// One entry per catalog key, in key order.
        entries: Vec<SnapshotEntry>,
        /// Echo id.
        id: u64,
        /// The sequence number the snapshot reflects.
        seq: u64,
    },
    /// A `Mutate` was applied.
    Mutated {
        /// Entries created.
        created: u64,
        /// Entries deleted.
        deleted: u64,
        /// Echo id.
        id: u64,
        /// The post-mutation sequence number.
        seq: u64,
        /// Entries whose profile bytes changed.
        updated: u64,
    },
    /// Subscription registered.
    Subscribed {
        /// Echo id.
        id: u64,
        /// The sequence number at subscription time (deltas with
        /// `seq` greater than this will be pushed).
        seq: u64,
    },
    /// Server and engine counters.
    Stats {
        /// Echo id.
        id: u64,
        /// The counter snapshot.
        stats: ServeStats,
    },
    /// A pushed delta batch (no echo id — unsolicited).
    Delta(DeltaBatch),
    /// The daemon acknowledges `Shutdown` and will exit.
    ShuttingDown {
        /// Echo id.
        id: u64,
    },
    /// The request failed; the session stays usable.
    Error {
        /// Echo id (0 if the request was undecodable).
        id: u64,
        /// What went wrong.
        message: String,
    },
    /// The server is over its session cap and sheds this session
    /// instead of serving it. Unlike `Error`, this is a *scheduling*
    /// refusal: the catalog is healthy and the client should simply
    /// retry later. The hint is tick-denominated (the server has no
    /// wall-clock promise to make) and deterministic in the overload
    /// depth, so identical load states produce identical hints.
    Busy {
        /// Echo id (0 — refusal happens before any request decodes).
        id: u64,
        /// The server's session cap (`BDB_SERVE_MAX_CLIENTS`).
        max_clients: u64,
        /// Suggested retry delay, in server ticks: proportional to how
        /// far over the cap the server currently is.
        retry_after_ticks: u64,
    },
}

/// One catalog entry inside a `Snapshot` reply.
#[derive(Debug, Clone)]
pub struct SnapshotEntry {
    /// The entry's content fingerprint.
    pub fingerprint: u64,
    /// The entry's key.
    pub key: EntryKey,
    /// The materialized profile.
    pub profile: Box<WorkloadProfile>,
}

/// Server + engine counters, as served by `Stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Profiles actually simulated by the engine (cold work).
    pub computed: u64,
    /// Delta batches broadcast (one per effective mutation).
    pub delta_batches: u64,
    /// Individual delta frames delivered across all subscribers
    /// (the fan-out measure: batches × subscribers at send time).
    pub deltas_streamed: u64,
    /// Engine disk-cache hits.
    pub disk_hits: u64,
    /// Materialized entry count.
    pub entries: u64,
    /// Engine memo entries dropped by incremental invalidation.
    pub invalidated: u64,
    /// Engine journal hits.
    pub journal_hits: u64,
    /// Engine in-memory memo hits.
    pub memory_hits: u64,
    /// Current catalog sequence number.
    pub seq: u64,
    /// Sessions currently open.
    pub sessions_active: u64,
    /// Sessions ever opened.
    pub sessions_total: u64,
    /// Sessions currently subscribed to deltas.
    pub subscribers: u64,
    /// Subscribers evicted for falling more than `BDB_SERVE_SUB_QUEUE`
    /// delta batches behind (slow-consumer shedding).
    pub subscribers_evicted: u64,
}

fn get<'a>(v: &'a Value, key: &str) -> Result<&'a Value, ServeError> {
    v.get(key)
        .ok_or_else(|| ServeError::Decode(format!("missing field {key:?}")))
}

fn get_u64(v: &Value, key: &str) -> Result<u64, ServeError> {
    get(v, key)?
        .as_u64()
        .ok_or_else(|| ServeError::Decode(format!("field {key:?} is not a u64")))
}

/// Like [`get_u64`], but an *absent* field decodes as `default` — for
/// counters added after v1, so mixed-version stats decoding degrades
/// gracefully instead of erroring. A present-but-mistyped field still
/// fails loudly.
fn get_u64_or(v: &Value, key: &str, default: u64) -> Result<u64, ServeError> {
    match v.get(key) {
        None => Ok(default),
        Some(field) => field
            .as_u64()
            .ok_or_else(|| ServeError::Decode(format!("field {key:?} is not a u64"))),
    }
}

fn get_str<'a>(v: &'a Value, key: &str) -> Result<&'a str, ServeError> {
    get(v, key)?
        .as_str()
        .ok_or_else(|| ServeError::Decode(format!("field {key:?} is not a string")))
}

fn get_key(v: &Value, key: &str) -> Result<EntryKey, ServeError> {
    EntryKey::parse(get_str(v, key)?)
}

/// Encodes a request as a canonical JSON value (alphabetical keys).
pub fn request_to_value(req: &ServeRequest) -> Value {
    let tagged = |tag: &str, id: u64| {
        Value::object(vec![
            ("id", Value::UInt(id)),
            ("type", Value::Str(tag.to_owned())),
        ])
    };
    match req {
        ServeRequest::Hello { client, protocol } => Value::object(vec![
            ("client", Value::Str(client.clone())),
            ("protocol", Value::UInt(*protocol)),
            ("type", Value::Str("hello".to_owned())),
        ]),
        ServeRequest::Query { id, key } => Value::object(vec![
            ("id", Value::UInt(*id)),
            ("key", Value::Str(key.render())),
            ("type", Value::Str("query".to_owned())),
        ]),
        ServeRequest::Snapshot { id } => tagged("snapshot", *id),
        ServeRequest::Mutate { id, mutation } => Value::object(vec![
            ("id", Value::UInt(*id)),
            ("mutation", mutation_to_value(mutation)),
            ("type", Value::Str("mutate".to_owned())),
        ]),
        ServeRequest::Subscribe { id } => tagged("subscribe", *id),
        ServeRequest::Stats { id } => tagged("stats", *id),
        ServeRequest::Shutdown { id } => tagged("shutdown", *id),
        ServeRequest::Bye => Value::object(vec![("type", Value::Str("bye".to_owned()))]),
    }
}

/// Decodes [`request_to_value`].
pub fn request_from_value(v: &Value) -> Result<ServeRequest, ServeError> {
    match get_str(v, "type")? {
        "hello" => Ok(ServeRequest::Hello {
            client: get_str(v, "client")?.to_owned(),
            protocol: get_u64(v, "protocol")?,
        }),
        "query" => Ok(ServeRequest::Query {
            id: get_u64(v, "id")?,
            key: get_key(v, "key")?,
        }),
        "snapshot" => Ok(ServeRequest::Snapshot {
            id: get_u64(v, "id")?,
        }),
        "mutate" => Ok(ServeRequest::Mutate {
            id: get_u64(v, "id")?,
            mutation: mutation_from_value(get(v, "mutation")?)?,
        }),
        "subscribe" => Ok(ServeRequest::Subscribe {
            id: get_u64(v, "id")?,
        }),
        "stats" => Ok(ServeRequest::Stats {
            id: get_u64(v, "id")?,
        }),
        "shutdown" => Ok(ServeRequest::Shutdown {
            id: get_u64(v, "id")?,
        }),
        "bye" => Ok(ServeRequest::Bye),
        other => Err(ServeError::Decode(format!(
            "unknown request type {other:?}"
        ))),
    }
}

fn delta_to_value(d: &Delta) -> Value {
    match d {
        Delta::Created {
            key,
            fingerprint,
            profile,
        } => Value::object(vec![
            ("fingerprint", Value::UInt(*fingerprint)),
            ("key", Value::Str(key.render())),
            ("kind", Value::Str("created".to_owned())),
            ("profile", profile_to_value(profile)),
        ]),
        Delta::Updated {
            key,
            fingerprint,
            profile,
        } => Value::object(vec![
            ("fingerprint", Value::UInt(*fingerprint)),
            ("key", Value::Str(key.render())),
            ("kind", Value::Str("updated".to_owned())),
            ("profile", profile_to_value(profile)),
        ]),
        Delta::Deleted { key } => Value::object(vec![
            ("key", Value::Str(key.render())),
            ("kind", Value::Str("deleted".to_owned())),
        ]),
    }
}

fn delta_from_value(v: &Value) -> Result<Delta, ServeError> {
    let key = get_key(v, "key")?;
    let payload = || -> Result<(u64, WorkloadProfile), ServeError> {
        Ok((
            get_u64(v, "fingerprint")?,
            profile_from_value(get(v, "profile")?).map_err(|e| ServeError::Decode(e.0))?,
        ))
    };
    match get_str(v, "kind")? {
        "created" => {
            let (fingerprint, profile) = payload()?;
            Ok(Delta::Created {
                key,
                fingerprint,
                profile,
            })
        }
        "updated" => {
            let (fingerprint, profile) = payload()?;
            Ok(Delta::Updated {
                key,
                fingerprint,
                profile,
            })
        }
        "deleted" => Ok(Delta::Deleted { key }),
        other => Err(ServeError::Decode(format!("unknown delta kind {other:?}"))),
    }
}

fn stats_to_value(s: &ServeStats) -> Value {
    Value::object(vec![
        ("computed", Value::UInt(s.computed)),
        ("delta_batches", Value::UInt(s.delta_batches)),
        ("deltas_streamed", Value::UInt(s.deltas_streamed)),
        ("disk_hits", Value::UInt(s.disk_hits)),
        ("entries", Value::UInt(s.entries)),
        ("invalidated", Value::UInt(s.invalidated)),
        ("journal_hits", Value::UInt(s.journal_hits)),
        ("memory_hits", Value::UInt(s.memory_hits)),
        ("seq", Value::UInt(s.seq)),
        ("sessions_active", Value::UInt(s.sessions_active)),
        ("sessions_total", Value::UInt(s.sessions_total)),
        ("subscribers", Value::UInt(s.subscribers)),
        ("subscribers_evicted", Value::UInt(s.subscribers_evicted)),
    ])
}

fn stats_from_value(v: &Value) -> Result<ServeStats, ServeError> {
    Ok(ServeStats {
        computed: get_u64(v, "computed")?,
        delta_batches: get_u64(v, "delta_batches")?,
        deltas_streamed: get_u64(v, "deltas_streamed")?,
        disk_hits: get_u64(v, "disk_hits")?,
        entries: get_u64(v, "entries")?,
        invalidated: get_u64(v, "invalidated")?,
        journal_hits: get_u64(v, "journal_hits")?,
        memory_hits: get_u64(v, "memory_hits")?,
        seq: get_u64(v, "seq")?,
        sessions_active: get_u64(v, "sessions_active")?,
        sessions_total: get_u64(v, "sessions_total")?,
        subscribers: get_u64(v, "subscribers")?,
        subscribers_evicted: get_u64_or(v, "subscribers_evicted", 0)?,
    })
}

/// Encodes a reply as a canonical JSON value (alphabetical keys).
pub fn reply_to_value(reply: &ServeReply) -> Value {
    match reply {
        ServeReply::Hello {
            entries,
            protocol,
            seq,
            server,
        } => Value::object(vec![
            ("entries", Value::UInt(*entries)),
            ("protocol", Value::UInt(*protocol)),
            ("seq", Value::UInt(*seq)),
            ("server", Value::Str(server.clone())),
            ("type", Value::Str("hello".to_owned())),
        ]),
        ServeReply::Profile {
            fingerprint,
            id,
            key,
            profile,
        } => Value::object(vec![
            ("fingerprint", Value::UInt(*fingerprint)),
            ("id", Value::UInt(*id)),
            ("key", Value::Str(key.render())),
            ("profile", profile_to_value(profile)),
            ("type", Value::Str("profile".to_owned())),
        ]),
        ServeReply::NotFound { id, key } => Value::object(vec![
            ("id", Value::UInt(*id)),
            ("key", Value::Str(key.render())),
            ("type", Value::Str("not_found".to_owned())),
        ]),
        ServeReply::Snapshot { entries, id, seq } => Value::object(vec![
            (
                "entries",
                Value::Array(
                    entries
                        .iter()
                        .map(|e| {
                            Value::object(vec![
                                ("fingerprint", Value::UInt(e.fingerprint)),
                                ("key", Value::Str(e.key.render())),
                                ("profile", profile_to_value(&e.profile)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("id", Value::UInt(*id)),
            ("seq", Value::UInt(*seq)),
            ("type", Value::Str("snapshot".to_owned())),
        ]),
        ServeReply::Mutated {
            created,
            deleted,
            id,
            seq,
            updated,
        } => Value::object(vec![
            ("created", Value::UInt(*created)),
            ("deleted", Value::UInt(*deleted)),
            ("id", Value::UInt(*id)),
            ("seq", Value::UInt(*seq)),
            ("type", Value::Str("mutated".to_owned())),
            ("updated", Value::UInt(*updated)),
        ]),
        ServeReply::Subscribed { id, seq } => Value::object(vec![
            ("id", Value::UInt(*id)),
            ("seq", Value::UInt(*seq)),
            ("type", Value::Str("subscribed".to_owned())),
        ]),
        ServeReply::Stats { id, stats } => Value::object(vec![
            ("id", Value::UInt(*id)),
            ("stats", stats_to_value(stats)),
            ("type", Value::Str("stats".to_owned())),
        ]),
        ServeReply::Delta(batch) => Value::object(vec![
            (
                "deltas",
                Value::Array(batch.deltas.iter().map(delta_to_value).collect()),
            ),
            ("seq", Value::UInt(batch.seq)),
            ("type", Value::Str("delta".to_owned())),
        ]),
        ServeReply::ShuttingDown { id } => Value::object(vec![
            ("id", Value::UInt(*id)),
            ("type", Value::Str("shutting_down".to_owned())),
        ]),
        ServeReply::Error { id, message } => Value::object(vec![
            ("id", Value::UInt(*id)),
            ("message", Value::Str(message.clone())),
            ("type", Value::Str("error".to_owned())),
        ]),
        ServeReply::Busy {
            id,
            max_clients,
            retry_after_ticks,
        } => Value::object(vec![
            ("id", Value::UInt(*id)),
            ("max_clients", Value::UInt(*max_clients)),
            ("retry_after_ticks", Value::UInt(*retry_after_ticks)),
            ("type", Value::Str("busy".to_owned())),
        ]),
    }
}

/// Decodes [`reply_to_value`].
pub fn reply_from_value(v: &Value) -> Result<ServeReply, ServeError> {
    match get_str(v, "type")? {
        "hello" => Ok(ServeReply::Hello {
            entries: get_u64(v, "entries")?,
            protocol: get_u64(v, "protocol")?,
            seq: get_u64(v, "seq")?,
            server: get_str(v, "server")?.to_owned(),
        }),
        "profile" => Ok(ServeReply::Profile {
            fingerprint: get_u64(v, "fingerprint")?,
            id: get_u64(v, "id")?,
            key: get_key(v, "key")?,
            profile: Box::new(
                profile_from_value(get(v, "profile")?).map_err(|e| ServeError::Decode(e.0))?,
            ),
        }),
        "not_found" => Ok(ServeReply::NotFound {
            id: get_u64(v, "id")?,
            key: get_key(v, "key")?,
        }),
        "snapshot" => {
            let raw = get(v, "entries")?.as_array().ok_or_else(|| {
                ServeError::Decode("field \"entries\" is not an array".to_owned())
            })?;
            let mut entries = Vec::with_capacity(raw.len());
            for e in raw {
                entries.push(SnapshotEntry {
                    fingerprint: get_u64(e, "fingerprint")?,
                    key: get_key(e, "key")?,
                    profile: Box::new(
                        profile_from_value(get(e, "profile")?)
                            .map_err(|err| ServeError::Decode(err.0))?,
                    ),
                });
            }
            Ok(ServeReply::Snapshot {
                entries,
                id: get_u64(v, "id")?,
                seq: get_u64(v, "seq")?,
            })
        }
        "mutated" => Ok(ServeReply::Mutated {
            created: get_u64(v, "created")?,
            deleted: get_u64(v, "deleted")?,
            id: get_u64(v, "id")?,
            seq: get_u64(v, "seq")?,
            updated: get_u64(v, "updated")?,
        }),
        "subscribed" => Ok(ServeReply::Subscribed {
            id: get_u64(v, "id")?,
            seq: get_u64(v, "seq")?,
        }),
        "stats" => Ok(ServeReply::Stats {
            id: get_u64(v, "id")?,
            stats: stats_from_value(get(v, "stats")?)?,
        }),
        "delta" => {
            let raw = get(v, "deltas")?
                .as_array()
                .ok_or_else(|| ServeError::Decode("field \"deltas\" is not an array".to_owned()))?;
            let mut deltas = Vec::with_capacity(raw.len());
            for d in raw {
                deltas.push(delta_from_value(d)?);
            }
            Ok(ServeReply::Delta(DeltaBatch {
                seq: get_u64(v, "seq")?,
                deltas,
            }))
        }
        "shutting_down" => Ok(ServeReply::ShuttingDown {
            id: get_u64(v, "id")?,
        }),
        "error" => Ok(ServeReply::Error {
            id: get_u64(v, "id")?,
            message: get_str(v, "message")?.to_owned(),
        }),
        "busy" => Ok(ServeReply::Busy {
            id: get_u64(v, "id")?,
            max_clients: get_u64(v, "max_clients")?,
            retry_after_ticks: get_u64(v, "retry_after_ticks")?,
        }),
        other => Err(ServeError::Decode(format!("unknown reply type {other:?}"))),
    }
}

/// Encodes a request payload in `format` (the frame layer adds the
/// length prefix).
pub fn encode_request(format: WireFormat, req: &ServeRequest) -> Vec<u8> {
    encode_payload(format, RecordKind::ServeRequest, &request_to_value(req))
}

/// Decodes a request payload, sniffing JSON vs BDBC.
pub fn decode_request(payload: &[u8]) -> Result<ServeRequest, ServeError> {
    request_from_value(&payload_value(payload, RecordKind::ServeRequest)?)
}

/// Encodes a reply payload in `format`.
pub fn encode_reply(format: WireFormat, reply: &ServeReply) -> Vec<u8> {
    encode_payload(format, RecordKind::ServeDelta, &reply_to_value(reply))
}

/// Decodes a reply payload, sniffing JSON vs BDBC.
pub fn decode_reply(payload: &[u8]) -> Result<ServeReply, ServeError> {
    reply_from_value(&payload_value(payload, RecordKind::ServeDelta)?)
}

fn encode_payload(format: WireFormat, kind: RecordKind, value: &Value) -> Vec<u8> {
    match format {
        WireFormat::Json => value.encode().into_bytes(),
        WireFormat::Binary => bdb_codec::encode_record(kind, &bval::encode_value(value)),
    }
}

fn payload_value(payload: &[u8], kind: RecordKind) -> Result<Value, ServeError> {
    if bdb_codec::is_binary(payload) {
        let inner = bdb_codec::decode_record_of(kind, payload)
            .map_err(|e| ServeError::Decode(e.to_string()))?;
        bval::decode_value(inner).map_err(|e| ServeError::Decode(e.to_string()))
    } else {
        let text =
            std::str::from_utf8(payload).map_err(|_| ServeError::Decode("not UTF-8".to_owned()))?;
        json::parse(text).map_err(|e| ServeError::Decode(e.to_string()))
    }
}

/// The payload format selected by `BDB_SERVE_FORMAT` (`binary` / `bin`
/// / `bdbc` / `json`), falling back to `BDB_WIRE_FORMAT` when unset so
/// a mixed serve + cluster deployment needs one knob.
pub fn serve_format_from_env() -> WireFormat {
    match std::env::var("BDB_SERVE_FORMAT") {
        Ok(v) if matches!(v.as_str(), "binary" | "bin" | "bdbc") => WireFormat::Binary,
        Ok(v) if v.as_str() == "json" => WireFormat::Json,
        _ => WireFormat::from_env(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdb_workloads::{catalog, Scale};

    fn sample_profile() -> WorkloadProfile {
        let reps = catalog::representatives();
        let grep = reps
            .iter()
            .find(|w| w.spec.id == "H-Grep")
            .expect("H-Grep is representative");
        bdb_wcrt::profile_workload(
            grep,
            Scale::tiny(),
            bdb_sim::MachineConfig::xeon_e5645(),
            bdb_node::NodeConfig::default(),
        )
    }

    fn sample_requests() -> Vec<ServeRequest> {
        vec![
            ServeRequest::Hello {
                client: "smoke".to_owned(),
                protocol: SERVE_PROTOCOL_VERSION,
            },
            ServeRequest::Query {
                id: 1,
                key: EntryKey::new("xeon-e5645", "H-Grep"),
            },
            ServeRequest::Snapshot { id: 2 },
            ServeRequest::Mutate {
                id: 3,
                mutation: Mutation::SetKnob {
                    config: "xeon-e5645".to_owned(),
                    knob: "l1d.size_bytes".to_owned(),
                    value: Value::UInt(65536),
                },
            },
            ServeRequest::Mutate {
                id: 4,
                mutation: Mutation::AddConfig {
                    name: "atom".to_owned(),
                    machine: Box::new(bdb_sim::MachineConfig::atom_d510()),
                },
            },
            ServeRequest::Mutate {
                id: 5,
                mutation: Mutation::SetScale { factor: 0.125 },
            },
            ServeRequest::Subscribe { id: 6 },
            ServeRequest::Stats { id: 7 },
            ServeRequest::Shutdown { id: 8 },
            ServeRequest::Bye,
        ]
    }

    fn sample_replies() -> Vec<ServeReply> {
        let profile = Box::new(sample_profile());
        let key = EntryKey::new("xeon-e5645", "H-Grep");
        vec![
            ServeReply::Hello {
                entries: 17,
                protocol: SERVE_PROTOCOL_VERSION,
                seq: 3,
                server: "bdb-served".to_owned(),
            },
            ServeReply::Profile {
                fingerprint: 0xdead_beef,
                id: 1,
                key: key.clone(),
                profile: profile.clone(),
            },
            ServeReply::NotFound {
                id: 2,
                key: key.clone(),
            },
            ServeReply::Snapshot {
                entries: vec![SnapshotEntry {
                    fingerprint: 42,
                    key: key.clone(),
                    profile: profile.clone(),
                }],
                id: 3,
                seq: 4,
            },
            ServeReply::Mutated {
                created: 1,
                deleted: 2,
                id: 4,
                seq: 5,
                updated: 3,
            },
            ServeReply::Subscribed { id: 5, seq: 6 },
            ServeReply::Stats {
                id: 6,
                stats: ServeStats {
                    computed: 17,
                    entries: 17,
                    seq: 2,
                    ..ServeStats::default()
                },
            },
            ServeReply::Delta(DeltaBatch {
                seq: 7,
                deltas: vec![
                    Delta::Updated {
                        key: key.clone(),
                        fingerprint: 43,
                        profile: (*profile).clone(),
                    },
                    Delta::Deleted {
                        key: EntryKey::new("xeon-e5645", "H-Sort"),
                    },
                ],
            }),
            ServeReply::ShuttingDown { id: 8 },
            ServeReply::Error {
                id: 9,
                message: "unknown machine config \"no-such\"".to_owned(),
            },
            ServeReply::Busy {
                id: 0,
                max_clients: 64,
                retry_after_ticks: 32,
            },
        ]
    }

    #[test]
    fn requests_round_trip_in_both_formats() {
        for req in sample_requests() {
            for format in [WireFormat::Json, WireFormat::Binary] {
                let payload = encode_request(format, &req);
                let back = decode_request(&payload).expect("round trip");
                assert_eq!(back, req, "format {format:?}");
            }
        }
    }

    #[test]
    fn replies_round_trip_in_both_formats() {
        for reply in sample_replies() {
            let canonical = reply_to_value(&reply).encode();
            for format in [WireFormat::Json, WireFormat::Binary] {
                let payload = encode_reply(format, &reply);
                let back = decode_reply(&payload).expect("round trip");
                assert_eq!(
                    reply_to_value(&back).encode(),
                    canonical,
                    "format {format:?}"
                );
            }
        }
    }

    #[test]
    fn json_and_binary_reencode_to_identical_bytes() {
        // The cross-format interop contract: whatever format a payload
        // arrives in, decoding and re-encoding as JSON yields the same
        // canonical bytes, because every object's keys are already
        // alphabetical.
        for reply in sample_replies() {
            let json_payload = encode_reply(WireFormat::Json, &reply);
            let binary_payload = encode_reply(WireFormat::Binary, &reply);
            let via_json = reply_to_value(&decode_reply(&json_payload).expect("json")).encode();
            let via_binary =
                reply_to_value(&decode_reply(&binary_payload).expect("binary")).encode();
            assert_eq!(via_json, via_binary);
            assert_eq!(via_json.as_bytes(), json_payload.as_slice());
        }
    }

    #[test]
    fn wrong_record_kind_is_rejected() {
        let req = ServeRequest::Snapshot { id: 1 };
        let payload = encode_request(WireFormat::Binary, &req);
        // A request record handed to the reply decoder must fail
        // loudly, not decode into garbage.
        let err = decode_reply(&payload).expect_err("kind mismatch");
        assert!(matches!(err, ServeError::Decode(_)), "{err:?}");
    }

    #[test]
    fn v1_stats_without_subscribers_evicted_decode_leniently() {
        // A v1 server's stats reply predates the counter; a v2 client
        // must read it as 0 rather than refuse the whole reply.
        let v1 = json::parse(concat!(
            "{\"id\":6,\"stats\":{\"computed\":17,\"delta_batches\":0,",
            "\"deltas_streamed\":0,\"disk_hits\":0,\"entries\":17,",
            "\"invalidated\":0,\"journal_hits\":0,\"memory_hits\":0,",
            "\"seq\":2,\"sessions_active\":1,\"sessions_total\":1,",
            "\"subscribers\":0},\"type\":\"stats\"}"
        ))
        .expect("v1 stats reply parses");
        match reply_from_value(&v1).expect("v1 stats reply decodes") {
            ServeReply::Stats { stats, .. } => {
                assert_eq!(stats.subscribers_evicted, 0);
                assert_eq!(stats.computed, 17);
            }
            other => panic!("expected stats, got {other:?}"),
        }
        // A mistyped present field still fails loudly.
        let bad = json::parse("{\"subscribers_evicted\":\"nope\"}").expect("parses");
        assert!(super::get_u64_or(&bad, "subscribers_evicted", 0).is_err());
    }

    #[test]
    fn golden_fixture_shapes_still_decode() {
        // The frozen fixtures in contracts/fixtures/serve_*.json use
        // exactly these shapes; this pins the decoder to them.
        let req = json::parse(concat!(
            "{\"id\":7,\"mutation\":{\"config\":\"xeon\",\"knob\":\"l1d.size_bytes\",",
            "\"op\":\"set_knob\",\"value\":65536},\"type\":\"mutate\"}"
        ))
        .expect("request fixture parses");
        let decoded = request_from_value(&req).expect("request fixture decodes");
        assert!(matches!(
            decoded,
            ServeRequest::Mutate {
                id: 7,
                mutation: Mutation::SetKnob { .. }
            }
        ));
    }
}
