//! [`WorkloadProfile`] ⇄ JSON, hand-rolled.
//!
//! The cache stores one profile per file. Field order mirrors the struct
//! definitions so encoding is deterministic; enums are stored as their
//! variant names. Decoding is strict — any missing field, unknown variant,
//! or wrong-typed value is a [`DecodeError`], which the engine treats as a
//! cache miss (the file is recomputed and rewritten).

use crate::json::Value;
use bdb_datagen::DataSetId;
use bdb_node::{NodeConfig, SystemMetrics};
use bdb_sim::{
    BranchStats, CacheConfig, CacheStats, DirectionScheme, MachineConfig, MissRatioCurve,
    PerfReport, PipelineConfig, PipelineKind, Replacement, SweepMetric, SweepResult, TlbConfig,
};
use bdb_stacks::{DataBehavior, Relation, StackKind};
use bdb_trace::InstructionMix;
use bdb_wcrt::{MetricVector, SystemClass, WorkloadProfile, METRIC_COUNT};
use bdb_workloads::{Category, KernelKind, Scale, WorkloadSpec};

/// A cache file failed to decode (treated as a miss by the engine).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl DecodeError {
    fn field(field: &str, reason: &str) -> Self {
        DecodeError(format!("{field}: {reason}"))
    }
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "profile decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

fn get<'a>(v: &'a Value, key: &str) -> Result<&'a Value, DecodeError> {
    v.get(key).ok_or_else(|| DecodeError::field(key, "missing"))
}

fn get_u64(v: &Value, key: &str) -> Result<u64, DecodeError> {
    get(v, key)?
        .as_u64()
        .ok_or_else(|| DecodeError::field(key, "expected unsigned integer"))
}

fn get_f64(v: &Value, key: &str) -> Result<f64, DecodeError> {
    get(v, key)?
        .as_f64()
        .ok_or_else(|| DecodeError::field(key, "expected number"))
}

fn get_str<'a>(v: &'a Value, key: &str) -> Result<&'a str, DecodeError> {
    get(v, key)?
        .as_str()
        .ok_or_else(|| DecodeError::field(key, "expected string"))
}

macro_rules! enum_codec {
    ($encode:ident, $decode:ident, $ty:ty, [$($variant:ident),+ $(,)?]) => {
        fn $encode(v: $ty) -> Value {
            Value::Str(
                match v {
                    $(<$ty>::$variant => stringify!($variant),)+
                }
                .to_owned(),
            )
        }

        fn $decode(v: &Value, field: &str) -> Result<$ty, DecodeError> {
            let name = v
                .as_str()
                .ok_or_else(|| DecodeError::field(field, "expected variant string"))?;
            match name {
                $(stringify!($variant) => Ok(<$ty>::$variant),)+
                other => Err(DecodeError::field(
                    field,
                    &format!("unknown variant '{other}'"),
                )),
            }
        }
    };
}

enum_codec!(
    enc_stack,
    dec_stack,
    StackKind,
    [Hadoop, Spark, Mpi, Hive, Shark, Impala, Hbase, Native]
);
enum_codec!(
    enc_category,
    dec_category,
    Category,
    [DataAnalysis, Service, InteractiveAnalysis]
);
enum_codec!(
    enc_dataset,
    dec_dataset,
    DataSetId,
    [
        Wikipedia,
        AmazonReviews,
        GoogleWebGraph,
        FacebookSocial,
        EcommerceTransactions,
        ProfSearchResumes,
        TpcdsWeb,
    ]
);
enum_codec!(
    enc_kernel,
    dec_kernel,
    KernelKind,
    [
        WordCount,
        Sort,
        Grep,
        KMeans,
        PageRank,
        NaiveBayes,
        InvertedIndex,
        ConnectedComponents,
        Select,
        Project,
        OrderBy,
        Aggregation,
        Join,
        Difference,
        TpcDsQ3,
        TpcDsQ6,
        TpcDsQ8,
        TpcDsQ10,
        TpcDsQ13,
        KvRead,
        KvWrite,
        KvScan,
        SuiteKernel,
    ]
);
enum_codec!(
    enc_system_class,
    dec_system_class,
    SystemClass,
    [CpuIntensive, IoIntensive, Hybrid]
);
enum_codec!(
    enc_relation,
    dec_relation,
    Relation,
    [Equal, Less, MuchLess, Greater]
);
enum_codec!(enc_replacement, dec_replacement, Replacement, [Lru, Random]);
enum_codec!(
    enc_predictor,
    dec_predictor,
    DirectionScheme,
    [TwoLevel, Hybrid]
);
enum_codec!(
    enc_pipeline_kind,
    dec_pipeline_kind,
    PipelineKind,
    [InOrder, OutOfOrder]
);

fn enc_spec(spec: &WorkloadSpec) -> Value {
    Value::object(vec![
        ("id", Value::Str(spec.id.clone())),
        ("stack", enc_stack(spec.stack)),
        ("category", enc_category(spec.category)),
        ("dataset", enc_dataset(spec.dataset)),
        ("kernel", enc_kernel(spec.kernel)),
    ])
}

fn dec_spec(v: &Value) -> Result<WorkloadSpec, DecodeError> {
    Ok(WorkloadSpec {
        id: get_str(v, "id")?.to_owned(),
        stack: dec_stack(get(v, "stack")?, "stack")?,
        category: dec_category(get(v, "category")?, "category")?,
        dataset: dec_dataset(get(v, "dataset")?, "dataset")?,
        kernel: dec_kernel(get(v, "kernel")?, "kernel")?,
    })
}

fn enc_mix(mix: &InstructionMix) -> Value {
    Value::object(vec![
        ("loads", Value::UInt(mix.loads)),
        ("stores", Value::UInt(mix.stores)),
        ("branches", Value::UInt(mix.branches)),
        ("int_addr", Value::UInt(mix.int_addr)),
        ("fp_addr", Value::UInt(mix.fp_addr)),
        ("int_other", Value::UInt(mix.int_other)),
        ("fp", Value::UInt(mix.fp)),
        ("bytes_moved", Value::UInt(mix.bytes_moved)),
    ])
}

fn dec_mix(v: &Value) -> Result<InstructionMix, DecodeError> {
    Ok(InstructionMix {
        loads: get_u64(v, "loads")?,
        stores: get_u64(v, "stores")?,
        branches: get_u64(v, "branches")?,
        int_addr: get_u64(v, "int_addr")?,
        fp_addr: get_u64(v, "fp_addr")?,
        int_other: get_u64(v, "int_other")?,
        fp: get_u64(v, "fp")?,
        bytes_moved: get_u64(v, "bytes_moved")?,
    })
}

fn enc_cache_stats(c: &CacheStats) -> Value {
    Value::object(vec![
        ("accesses", Value::UInt(c.accesses)),
        ("misses", Value::UInt(c.misses)),
        ("writebacks", Value::UInt(c.writebacks)),
    ])
}

fn dec_cache_stats(v: &Value) -> Result<CacheStats, DecodeError> {
    Ok(CacheStats {
        accesses: get_u64(v, "accesses")?,
        misses: get_u64(v, "misses")?,
        writebacks: get_u64(v, "writebacks")?,
    })
}

fn enc_branch(b: &BranchStats) -> Value {
    Value::object(vec![
        ("branches", Value::UInt(b.branches)),
        ("mispredicts", Value::UInt(b.mispredicts)),
        ("conditionals", Value::UInt(b.conditionals)),
        ("cond_mispredicts", Value::UInt(b.cond_mispredicts)),
    ])
}

fn dec_branch(v: &Value) -> Result<BranchStats, DecodeError> {
    Ok(BranchStats {
        branches: get_u64(v, "branches")?,
        mispredicts: get_u64(v, "mispredicts")?,
        conditionals: get_u64(v, "conditionals")?,
        cond_mispredicts: get_u64(v, "cond_mispredicts")?,
    })
}

fn enc_report(r: &PerfReport) -> Value {
    Value::object(vec![
        ("platform", Value::Str(r.platform.clone())),
        ("mix", enc_mix(&r.mix)),
        ("instructions", Value::UInt(r.instructions)),
        ("cycles", Value::Float(r.cycles)),
        ("l1i", enc_cache_stats(&r.l1i)),
        ("l1d", enc_cache_stats(&r.l1d)),
        ("l2", enc_cache_stats(&r.l2)),
        ("l3", enc_cache_stats(&r.l3)),
        ("itlb_misses", Value::UInt(r.itlb_misses)),
        ("dtlb_misses", Value::UInt(r.dtlb_misses)),
        ("itlb_walks", Value::UInt(r.itlb_walks)),
        ("dtlb_walks", Value::UInt(r.dtlb_walks)),
        ("stlb_misses", Value::UInt(r.stlb_misses)),
        ("branch", enc_branch(&r.branch)),
        ("fetch_stall_cycles", Value::Float(r.fetch_stall_cycles)),
        ("data_stall_cycles", Value::Float(r.data_stall_cycles)),
        ("branch_stall_cycles", Value::Float(r.branch_stall_cycles)),
        ("tlb_stall_cycles", Value::Float(r.tlb_stall_cycles)),
        ("offcore_requests", Value::UInt(r.offcore_requests)),
        ("snoop_responses", Value::UInt(r.snoop_responses)),
    ])
}

fn dec_report(v: &Value) -> Result<PerfReport, DecodeError> {
    Ok(PerfReport {
        platform: get_str(v, "platform")?.to_owned(),
        mix: dec_mix(get(v, "mix")?)?,
        instructions: get_u64(v, "instructions")?,
        cycles: get_f64(v, "cycles")?,
        l1i: dec_cache_stats(get(v, "l1i")?)?,
        l1d: dec_cache_stats(get(v, "l1d")?)?,
        l2: dec_cache_stats(get(v, "l2")?)?,
        l3: dec_cache_stats(get(v, "l3")?)?,
        itlb_misses: get_u64(v, "itlb_misses")?,
        dtlb_misses: get_u64(v, "dtlb_misses")?,
        itlb_walks: get_u64(v, "itlb_walks")?,
        dtlb_walks: get_u64(v, "dtlb_walks")?,
        stlb_misses: get_u64(v, "stlb_misses")?,
        branch: dec_branch(get(v, "branch")?)?,
        fetch_stall_cycles: get_f64(v, "fetch_stall_cycles")?,
        data_stall_cycles: get_f64(v, "data_stall_cycles")?,
        branch_stall_cycles: get_f64(v, "branch_stall_cycles")?,
        tlb_stall_cycles: get_f64(v, "tlb_stall_cycles")?,
        offcore_requests: get_u64(v, "offcore_requests")?,
        snoop_responses: get_u64(v, "snoop_responses")?,
    })
}

fn enc_system(s: &SystemMetrics) -> Value {
    Value::object(vec![
        ("wall_seconds", Value::Float(s.wall_seconds)),
        ("cpu_utilization", Value::Float(s.cpu_utilization)),
        ("io_wait_ratio", Value::Float(s.io_wait_ratio)),
        ("weighted_io_ratio", Value::Float(s.weighted_io_ratio)),
        ("disk_bandwidth_mbps", Value::Float(s.disk_bandwidth_mbps)),
        ("net_bandwidth_mbps", Value::Float(s.net_bandwidth_mbps)),
    ])
}

fn dec_system(v: &Value) -> Result<SystemMetrics, DecodeError> {
    Ok(SystemMetrics {
        wall_seconds: get_f64(v, "wall_seconds")?,
        cpu_utilization: get_f64(v, "cpu_utilization")?,
        io_wait_ratio: get_f64(v, "io_wait_ratio")?,
        weighted_io_ratio: get_f64(v, "weighted_io_ratio")?,
        disk_bandwidth_mbps: get_f64(v, "disk_bandwidth_mbps")?,
        net_bandwidth_mbps: get_f64(v, "net_bandwidth_mbps")?,
    })
}

fn enc_behavior(b: &DataBehavior) -> Value {
    Value::object(vec![
        ("output", enc_relation(b.output)),
        (
            "intermediate",
            match b.intermediate {
                Some(r) => enc_relation(r),
                None => Value::Null,
            },
        ),
    ])
}

fn dec_behavior(v: &Value) -> Result<DataBehavior, DecodeError> {
    let intermediate = get(v, "intermediate")?;
    Ok(DataBehavior {
        output: dec_relation(get(v, "output")?, "output")?,
        intermediate: if intermediate.is_null() {
            None
        } else {
            Some(dec_relation(intermediate, "intermediate")?)
        },
    })
}

/// Encodes a profile as a [`Value`] tree.
pub fn profile_to_value(p: &WorkloadProfile) -> Value {
    Value::object(vec![
        ("spec", enc_spec(&p.spec)),
        ("report", enc_report(&p.report)),
        ("system", enc_system(&p.system)),
        ("system_class", enc_system_class(p.system_class)),
        ("data_behavior", enc_behavior(&p.data_behavior)),
        ("input_bytes", Value::UInt(p.input_bytes)),
        ("intermediate_bytes", Value::UInt(p.intermediate_bytes)),
        ("output_bytes", Value::UInt(p.output_bytes)),
        (
            "metrics",
            Value::Array(
                p.metrics
                    .values()
                    .iter()
                    .map(|&v| Value::Float(v))
                    .collect(),
            ),
        ),
    ])
}

/// Decodes a profile from a [`Value`] tree.
pub fn profile_from_value(v: &Value) -> Result<WorkloadProfile, DecodeError> {
    let metric_values = get(v, "metrics")?
        .as_array()
        .ok_or_else(|| DecodeError::field("metrics", "expected array"))?;
    if metric_values.len() != METRIC_COUNT {
        return Err(DecodeError::field(
            "metrics",
            &format!(
                "expected {METRIC_COUNT} values, got {}",
                metric_values.len()
            ),
        ));
    }
    let mut metrics = [0.0f64; METRIC_COUNT];
    for (slot, value) in metrics.iter_mut().zip(metric_values) {
        *slot = value
            .as_f64()
            .ok_or_else(|| DecodeError::field("metrics", "expected number"))?;
    }
    Ok(WorkloadProfile {
        spec: dec_spec(get(v, "spec")?)?,
        report: dec_report(get(v, "report")?)?,
        system: dec_system(get(v, "system")?)?,
        system_class: dec_system_class(get(v, "system_class")?, "system_class")?,
        data_behavior: dec_behavior(get(v, "data_behavior")?)?,
        input_bytes: get_u64(v, "input_bytes")?,
        intermediate_bytes: get_u64(v, "intermediate_bytes")?,
        output_bytes: get_u64(v, "output_bytes")?,
        metrics: MetricVector::from_values(metrics),
    })
}

fn enc_cache_config(c: &CacheConfig) -> Value {
    Value::object(vec![
        ("size_bytes", Value::UInt(c.size_bytes)),
        ("assoc", Value::UInt(c.assoc as u64)),
        ("line_bytes", Value::UInt(c.line_bytes)),
        ("replacement", enc_replacement(c.replacement)),
    ])
}

fn dec_cache_config(v: &Value) -> Result<CacheConfig, DecodeError> {
    Ok(CacheConfig {
        size_bytes: get_u64(v, "size_bytes")?,
        assoc: get_u64(v, "assoc")? as usize,
        line_bytes: get_u64(v, "line_bytes")?,
        replacement: dec_replacement(get(v, "replacement")?, "replacement")?,
    })
}

fn enc_tlb_config(t: &TlbConfig) -> Value {
    Value::object(vec![
        ("entries", Value::UInt(t.entries as u64)),
        ("assoc", Value::UInt(t.assoc as u64)),
        ("page_bytes", Value::UInt(t.page_bytes)),
    ])
}

fn dec_tlb_config(v: &Value) -> Result<TlbConfig, DecodeError> {
    Ok(TlbConfig {
        entries: get_u64(v, "entries")? as usize,
        assoc: get_u64(v, "assoc")? as usize,
        page_bytes: get_u64(v, "page_bytes")?,
    })
}

fn enc_pipeline(p: &PipelineConfig) -> Value {
    Value::object(vec![
        ("kind", enc_pipeline_kind(p.kind)),
        ("base_cpi", Value::Float(p.base_cpi)),
        ("l2_latency", Value::UInt(u64::from(p.l2_latency))),
        ("l3_latency", Value::UInt(u64::from(p.l3_latency))),
        ("mem_latency", Value::UInt(u64::from(p.mem_latency))),
        (
            "tlb_walk_latency",
            Value::UInt(u64::from(p.tlb_walk_latency)),
        ),
        ("stlb_latency", Value::UInt(u64::from(p.stlb_latency))),
    ])
}

fn dec_pipeline(v: &Value) -> Result<PipelineConfig, DecodeError> {
    Ok(PipelineConfig {
        kind: dec_pipeline_kind(get(v, "kind")?, "kind")?,
        base_cpi: get_f64(v, "base_cpi")?,
        l2_latency: get_u64(v, "l2_latency")? as u32,
        l3_latency: get_u64(v, "l3_latency")? as u32,
        mem_latency: get_u64(v, "mem_latency")? as u32,
        tlb_walk_latency: get_u64(v, "tlb_walk_latency")? as u32,
        stlb_latency: get_u64(v, "stlb_latency")? as u32,
    })
}

/// Encodes a full machine configuration (used by the cluster wire
/// protocol to ship the exact simulation inputs to workers).
pub fn machine_config_to_value(m: &MachineConfig) -> Value {
    Value::object(vec![
        ("name", Value::Str(m.name.clone())),
        ("l1i", enc_cache_config(&m.l1i)),
        ("l1d", enc_cache_config(&m.l1d)),
        ("l2", enc_cache_config(&m.l2)),
        (
            "l3",
            match &m.l3 {
                Some(c) => enc_cache_config(c),
                None => Value::Null,
            },
        ),
        ("itlb", enc_tlb_config(&m.itlb)),
        ("dtlb", enc_tlb_config(&m.dtlb)),
        ("stlb", enc_tlb_config(&m.stlb)),
        ("predictor", enc_predictor(m.predictor)),
        ("pipeline", enc_pipeline(&m.pipeline)),
    ])
}

/// Decodes a machine configuration (strict, like the profile codec).
pub fn machine_config_from_value(v: &Value) -> Result<MachineConfig, DecodeError> {
    let l3 = get(v, "l3")?;
    Ok(MachineConfig {
        name: get_str(v, "name")?.to_owned(),
        l1i: dec_cache_config(get(v, "l1i")?)?,
        l1d: dec_cache_config(get(v, "l1d")?)?,
        l2: dec_cache_config(get(v, "l2")?)?,
        l3: if l3.is_null() {
            None
        } else {
            Some(dec_cache_config(l3)?)
        },
        itlb: dec_tlb_config(get(v, "itlb")?)?,
        dtlb: dec_tlb_config(get(v, "dtlb")?)?,
        stlb: dec_tlb_config(get(v, "stlb")?)?,
        predictor: dec_predictor(get(v, "predictor")?, "predictor")?,
        pipeline: dec_pipeline(get(v, "pipeline")?)?,
    })
}

/// Encodes a node (system-metrics) configuration.
pub fn node_config_to_value(n: &NodeConfig) -> Value {
    Value::object(vec![
        ("clock_hz", Value::Float(n.clock_hz)),
        ("assumed_ipc", Value::Float(n.assumed_ipc)),
        ("instr_scale", Value::Float(n.instr_scale)),
        ("disk_bw", Value::Float(n.disk_bw)),
        ("disk_overhead_s", Value::Float(n.disk_overhead_s)),
        ("net_bw", Value::Float(n.net_bw)),
    ])
}

/// Decodes a node configuration.
pub fn node_config_from_value(v: &Value) -> Result<NodeConfig, DecodeError> {
    Ok(NodeConfig {
        clock_hz: get_f64(v, "clock_hz")?,
        assumed_ipc: get_f64(v, "assumed_ipc")?,
        instr_scale: get_f64(v, "instr_scale")?,
        disk_bw: get_f64(v, "disk_bw")?,
        disk_overhead_s: get_f64(v, "disk_overhead_s")?,
        net_bw: get_f64(v, "net_bw")?,
    })
}

enum_codec!(
    enc_sweep_metric,
    dec_sweep_metric,
    SweepMetric,
    [Instruction, Data, Unified]
);

fn enc_curve(c: &MissRatioCurve) -> Value {
    Value::object(vec![
        ("label", Value::Str(c.label.clone())),
        ("metric", enc_sweep_metric(c.metric)),
        (
            "points",
            Value::Array(
                c.points
                    .iter()
                    .map(|&(kib, ratio)| Value::Array(vec![Value::UInt(kib), Value::Float(ratio)]))
                    .collect(),
            ),
        ),
    ])
}

fn dec_curve(v: &Value) -> Result<MissRatioCurve, DecodeError> {
    let raw = get(v, "points")?
        .as_array()
        .ok_or_else(|| DecodeError::field("points", "expected array"))?;
    let mut points = Vec::with_capacity(raw.len());
    for point in raw {
        let pair = point
            .as_array()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| DecodeError::field("points", "expected [capacity, ratio] pairs"))?;
        let kib = pair[0]
            .as_u64()
            .ok_or_else(|| DecodeError::field("points", "expected unsigned capacity"))?;
        let ratio = pair[1]
            .as_f64()
            .ok_or_else(|| DecodeError::field("points", "expected numeric ratio"))?;
        points.push((kib, ratio));
    }
    Ok(MissRatioCurve {
        label: get_str(v, "label")?.to_owned(),
        metric: dec_sweep_metric(get(v, "metric")?, "metric")?,
        points,
    })
}

/// Encodes a sweep result (the run journal persists completed sweeps so
/// interrupted campaigns resume without re-tracing). Ratios travel as
/// canonical floats, so the roundtrip is bit-exact.
pub fn sweep_result_to_value(s: &SweepResult) -> Value {
    Value::object(vec![
        ("instruction", enc_curve(&s.instruction)),
        ("data", enc_curve(&s.data)),
        ("unified", enc_curve(&s.unified)),
    ])
}

/// Decodes a sweep result (strict, like the profile codec).
pub fn sweep_result_from_value(v: &Value) -> Result<SweepResult, DecodeError> {
    Ok(SweepResult {
        instruction: dec_curve(get(v, "instruction")?)?,
        data: dec_curve(get(v, "data")?)?,
        unified: dec_curve(get(v, "unified")?)?,
    })
}

/// Encodes a [`crate::task::Task`]. The scale factor travels as its exact
/// `f64` bit pattern so the worker profiles with bit-identical inputs.
pub fn task_to_value(t: &crate::task::Task) -> Value {
    Value::object(vec![
        ("workload_id", Value::Str(t.workload_id.clone())),
        (
            "scale_bits",
            Value::Str(format!("{:016x}", t.scale.factor().to_bits())),
        ),
        ("machine", machine_config_to_value(&t.machine)),
        ("node", node_config_to_value(&t.node)),
    ])
}

/// Decodes a [`crate::task::Task`]. Rejects non-finite or non-positive
/// scale factors rather than panicking in `Scale::custom`.
pub fn task_from_value(v: &Value) -> Result<crate::task::Task, DecodeError> {
    let bits = get_str(v, "scale_bits")?;
    let bits = u64::from_str_radix(bits, 16)
        .map_err(|_| DecodeError::field("scale_bits", "expected 16 hex digits"))?;
    let factor = f64::from_bits(bits);
    if !factor.is_finite() || factor <= 0.0 {
        return Err(DecodeError::field(
            "scale_bits",
            "scale factor must be finite and positive",
        ));
    }
    Ok(crate::task::Task {
        workload_id: get_str(v, "workload_id")?.to_owned(),
        scale: Scale::custom(factor),
        machine: machine_config_from_value(get(v, "machine")?)?,
        node: node_config_from_value(get(v, "node")?)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdb_wcrt::profile_workload;
    use bdb_workloads::{catalog, Scale};

    fn sample_profile() -> WorkloadProfile {
        let reps = catalog::representatives();
        let wc = reps
            .iter()
            .find(|w| w.spec.id == "H-WordCount")
            .expect("H-WordCount");
        profile_workload(
            wc,
            Scale::tiny(),
            MachineConfig::xeon_e5645(),
            NodeConfig::default(),
        )
    }

    #[test]
    fn real_profile_roundtrips_exactly() {
        let p = sample_profile();
        let bytes = profile_to_value(&p).encode();
        let back = profile_from_value(&crate::json::parse(&bytes).unwrap()).unwrap();
        assert_eq!(back.spec, p.spec);
        assert_eq!(back.report, p.report);
        assert_eq!(back.system, p.system);
        assert_eq!(back.system_class, p.system_class);
        assert_eq!(back.data_behavior, p.data_behavior);
        assert_eq!(
            (back.input_bytes, back.intermediate_bytes, back.output_bytes),
            (p.input_bytes, p.intermediate_bytes, p.output_bytes)
        );
        let a: Vec<u64> = p.metrics.values().iter().map(|v| v.to_bits()).collect();
        let b: Vec<u64> = back.metrics.values().iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b, "metric bits must survive the roundtrip");
        // Byte stability: re-encoding the decoded profile is the identity.
        assert_eq!(profile_to_value(&back).encode(), bytes);
    }

    #[test]
    fn decode_rejects_truncated_metrics() {
        let p = sample_profile();
        let mut v = profile_to_value(&p);
        if let Value::Object(pairs) = &mut v {
            for (k, val) in pairs.iter_mut() {
                if k == "metrics" {
                    *val = Value::Array(vec![Value::Float(1.0)]);
                }
            }
        }
        assert!(profile_from_value(&v).is_err());
    }

    #[test]
    fn task_roundtrips_exactly() {
        for machine in [
            MachineConfig::xeon_e5645(),
            MachineConfig::atom_d510(),
            MachineConfig::atom_sweep(64),
        ] {
            let task = crate::task::Task {
                workload_id: "H-WordCount".to_owned(),
                scale: Scale::custom(0.073),
                machine,
                node: NodeConfig::default(),
            };
            let bytes = task_to_value(&task).encode();
            let back = task_from_value(&crate::json::parse(&bytes).unwrap()).unwrap();
            assert_eq!(back.workload_id, task.workload_id);
            assert_eq!(
                back.scale.factor().to_bits(),
                task.scale.factor().to_bits(),
                "scale bits must survive"
            );
            assert_eq!(back.machine, task.machine);
            assert_eq!(back.node, task.node);
            // Byte stability: re-encoding the decoded task is the identity.
            assert_eq!(task_to_value(&back).encode(), bytes);
        }
    }

    #[test]
    fn task_decode_rejects_bad_scale() {
        let task = crate::task::Task {
            workload_id: "H-Grep".to_owned(),
            scale: Scale::tiny(),
            machine: MachineConfig::xeon_e5645(),
            node: NodeConfig::default(),
        };
        let good = task_to_value(&task).encode();
        let zero = format!("{:016x}", 0.0f64.to_bits());
        let nan = format!("{:016x}", f64::NAN.to_bits());
        let tiny = format!("{:016x}", Scale::tiny().factor().to_bits());
        for bad in [zero, nan] {
            let v = crate::json::parse(&good.replace(&tiny, &bad)).unwrap();
            assert!(task_from_value(&v).is_err(), "must reject factor {bad}");
        }
    }

    #[test]
    fn sweep_result_roundtrips_exactly() {
        let curve = |metric, bias: f64| MissRatioCurve {
            label: "probe".to_owned(),
            metric,
            points: vec![(16, 0.25 + bias), (64, 0.125 + bias), (256, bias / 3.0)],
        };
        let result = SweepResult {
            instruction: curve(SweepMetric::Instruction, 0.001),
            data: curve(SweepMetric::Data, 0.002),
            unified: curve(SweepMetric::Unified, 0.003),
        };
        let bytes = sweep_result_to_value(&result).encode();
        let back = sweep_result_from_value(&crate::json::parse(&bytes).unwrap()).unwrap();
        assert_eq!(back, result);
        // Byte stability: re-encoding the decoded result is the identity.
        assert_eq!(sweep_result_to_value(&back).encode(), bytes);
    }

    #[test]
    fn sweep_result_decode_rejects_malformed_points() {
        let result = SweepResult {
            instruction: MissRatioCurve {
                label: "p".to_owned(),
                metric: SweepMetric::Instruction,
                points: vec![(16, 0.5)],
            },
            data: MissRatioCurve {
                label: "p".to_owned(),
                metric: SweepMetric::Data,
                points: vec![(16, 0.5)],
            },
            unified: MissRatioCurve {
                label: "p".to_owned(),
                metric: SweepMetric::Unified,
                points: vec![(16, 0.5)],
            },
        };
        let good = sweep_result_to_value(&result).encode();
        let bad = good.replace("[16,0.5]", "[16]");
        assert!(sweep_result_from_value(&crate::json::parse(&bad).unwrap()).is_err());
    }

    #[test]
    fn decode_rejects_unknown_variant() {
        let v = crate::json::parse(
            &profile_to_value(&sample_profile())
                .encode()
                .replace("\"Hadoop\"", "\"Fortran\""),
        )
        .unwrap();
        assert!(profile_from_value(&v).is_err());
    }
}
