//! The engine's filesystem boundary: every byte the engine persists or
//! reads back flows through a [`CacheStore`].
//!
//! Two backends implement the trait:
//!
//! * [`RealFs`] — a thin passthrough to `std::fs`. This is the only
//!   place in `crates/engine` allowed to touch the filesystem directly
//!   (the `raw-fs` lint bans `std::fs` everywhere else in the crate).
//! * [`ChaosFs`] — a deterministic fault injector wrapping [`RealFs`].
//!   A seeded [`ChaosPlan`] schedules ENOSPC-style write failures, torn
//!   (partial) writes, rename failures, read errors, and read-time bit
//!   corruption — the storage-level twin of the frame-level
//!   [`FaultPlan`](../../cluster/src/fault.rs) the cluster tests use.
//!   Injected faults are counted ([`ChaosCounters`]) so tests can assert
//!   that the engine's [`CacheCounters`](crate::CacheCounters) account
//!   for every single one.
//!
//! The trait's error contract is deliberately coarse: callers degrade
//! (miss, recompute, stop journaling) rather than branch on error kinds,
//! so a [`StoreError`] only carries the failed operation and a message.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// CRC-64/XZ over `bytes` — the content checksum stamped into every
/// cache entry and journal frame. Re-exported from `bdb-codec`, the
/// single reference implementation shared with the binary container.
pub use bdb_codec::crc64;

/// A storage operation failed. Callers treat this as "degrade and keep
/// going" — the engine counts it and recomputes or stops persisting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreError {
    /// The operation that failed (`"read"`, `"write"`, ...).
    pub op: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl StoreError {
    fn new(op: &'static str, path: &Path, message: impl std::fmt::Display) -> Self {
        StoreError {
            op,
            message: format!("{}: {message}", path.display()),
        }
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "store {} failed: {}", self.op, self.message)
    }
}

impl std::error::Error for StoreError {}

/// Metadata for one regular file returned by [`CacheStore::list`].
#[derive(Debug, Clone)]
pub struct FileMeta {
    /// Full path of the file.
    pub path: PathBuf,
    /// File length in bytes.
    pub len: u64,
    /// Last-modified time — recency metadata for LRU eviction only.
    // bdb-lint: allow(determinism): eviction recency ordering only; never reaches profile bytes.
    pub modified: std::time::SystemTime,
}

/// Filesystem operations the engine needs, behind one seam so a fault
/// injector can sit underneath everything the engine persists.
///
/// Conventions: `read` distinguishes "not found" (`Ok(None)`) from real
/// I/O errors; `remove` of a missing file and `list` of a missing
/// directory succeed (idempotent cleanup); `list` is non-recursive and
/// returns regular files only, so subdirectories such as `quarantine/`
/// are invisible to cache-cap accounting.
pub trait CacheStore: Send + Sync {
    /// Creates `dir` and any missing parents.
    fn create_dir_all(&self, dir: &Path) -> Result<(), StoreError>;
    /// Reads a whole file; `Ok(None)` when it does not exist.
    fn read(&self, path: &Path) -> Result<Option<Vec<u8>>, StoreError>;
    /// Writes (creates or truncates) a whole file.
    fn write(&self, path: &Path, bytes: &[u8]) -> Result<(), StoreError>;
    /// Appends to a file, creating it if missing.
    fn append(&self, path: &Path, bytes: &[u8]) -> Result<(), StoreError>;
    /// Atomically renames `from` to `to` (same directory tree).
    fn rename(&self, from: &Path, to: &Path) -> Result<(), StoreError>;
    /// Removes a file; missing files are not an error.
    fn remove(&self, path: &Path) -> Result<(), StoreError>;
    /// Lists the regular files directly under `dir` (missing dir = empty).
    fn list(&self, dir: &Path) -> Result<Vec<FileMeta>, StoreError>;
    /// Best-effort mtime refresh marking `path` as recently used.
    fn touch(&self, path: &Path) -> Result<(), StoreError>;
}

/// The production backend: a passthrough to the host filesystem.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealFs;

impl CacheStore for RealFs {
    fn create_dir_all(&self, dir: &Path) -> Result<(), StoreError> {
        std::fs::create_dir_all(dir).map_err(|e| StoreError::new("create_dir_all", dir, e))
    }

    fn read(&self, path: &Path) -> Result<Option<Vec<u8>>, StoreError> {
        match std::fs::read(path) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(StoreError::new("read", path, e)),
        }
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
        std::fs::write(path, bytes).map_err(|e| StoreError::new("write", path, e))
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
        use std::io::Write as _;
        let mut file = std::fs::File::options()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| StoreError::new("append", path, e))?;
        file.write_all(bytes)
            .map_err(|e| StoreError::new("append", path, e))
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<(), StoreError> {
        std::fs::rename(from, to).map_err(|e| StoreError::new("rename", from, e))
    }

    fn remove(&self, path: &Path) -> Result<(), StoreError> {
        match std::fs::remove_file(path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(StoreError::new("remove", path, e)),
        }
    }

    fn list(&self, dir: &Path) -> Result<Vec<FileMeta>, StoreError> {
        let entries = match std::fs::read_dir(dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(StoreError::new("list", dir, e)),
        };
        let mut files = Vec::new();
        for entry in entries.flatten() {
            let Ok(meta) = entry.metadata() else {
                continue; // racing deletion; skip
            };
            if !meta.is_file() {
                continue;
            }
            files.push(FileMeta {
                path: entry.path(),
                len: meta.len(),
                // bdb-lint: allow(determinism): recency metadata for cache eviction only.
                modified: meta.modified().unwrap_or(std::time::SystemTime::UNIX_EPOCH),
            });
        }
        files.sort_by(|a, b| a.path.cmp(&b.path));
        Ok(files)
    }

    fn touch(&self, path: &Path) -> Result<(), StoreError> {
        let file = std::fs::File::options()
            .write(true)
            .open(path)
            .map_err(|e| StoreError::new("touch", path, e))?;
        // bdb-lint: allow(determinism): recency metadata for cache eviction only; never reaches profile bytes.
        file.set_modified(std::time::SystemTime::now())
            .map_err(|e| StoreError::new("touch", path, e))
    }
}

/// Seeded fault schedule for a [`ChaosFs`]. The default plan is
/// fault-free; each `Some(p)` arms one fault class to fire whenever the
/// schedule's next draw is divisible by `p` (so smaller periods fire
/// more often). The schedule is a pure function of `seed` and the
/// sequence of eligible operations — rerunning the same single-threaded
/// workload over the same plan injects the same faults at the same ops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Seed for the deterministic draw stream.
    pub seed: u64,
    /// ENOSPC-style failures: the write fails and nothing is written.
    pub write_error_period: Option<u64>,
    /// Torn writes: a strict prefix is written, then the op fails.
    pub torn_write_period: Option<u64>,
    /// Rename failures: the op fails and the source is left in place.
    pub rename_error_period: Option<u64>,
    /// Read failures on existing files.
    pub read_error_period: Option<u64>,
    /// Read-time single-bit corruption of `.json` / `.bin` payloads.
    pub read_corruption_period: Option<u64>,
}

impl ChaosPlan {
    /// A fault-free plan with the given seed.
    pub fn clean(seed: u64) -> Self {
        ChaosPlan {
            seed,
            write_error_period: None,
            torn_write_period: None,
            rename_error_period: None,
            read_error_period: None,
            read_corruption_period: None,
        }
    }

    /// An aggressive all-faults plan for soak tests: every fault class
    /// armed with small, mutually prime periods.
    pub fn storm(seed: u64) -> Self {
        ChaosPlan {
            seed,
            write_error_period: Some(5),
            torn_write_period: Some(7),
            rename_error_period: Some(6),
            read_error_period: Some(11),
            read_corruption_period: Some(3),
        }
    }
}

impl Default for ChaosPlan {
    fn default() -> Self {
        ChaosPlan::clean(0)
    }
}

/// How many faults a [`ChaosFs`] has injected, by class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosCounters {
    /// Writes/appends failed with nothing written.
    pub write_errors: u64,
    /// Writes/appends that persisted a strict prefix, then failed.
    pub torn_writes: u64,
    /// Renames failed with the source left intact.
    pub rename_errors: u64,
    /// Reads of existing files failed.
    pub read_errors: u64,
    /// `.json` / `.bin` reads returned payloads with one flipped bit.
    pub read_corruptions: u64,
}

impl ChaosCounters {
    /// Injected faults the engine observes as failed store operations
    /// (everything except silent read corruption, which surfaces as a
    /// quarantined entry instead).
    pub fn op_errors(&self) -> u64 {
        self.write_errors + self.torn_writes + self.rename_errors + self.read_errors
    }
}

/// A [`CacheStore`] that wraps [`RealFs`] and injects faults per a
/// seeded [`ChaosPlan`]. Only the data path is fault-eligible (`read`,
/// `write`, `append`, `rename`); `list`/`remove`/`touch`/`create_dir_all`
/// pass through untouched so fault accounting stays exact. Bit
/// corruption targets `.json` and `.bin` payloads (the checksummed
/// artifact classes), flips exactly one bit, and never touches the
/// final byte (the JSON entry terminator, which decoding tolerates) —
/// so every injected corruption is guaranteed to be detectable.
pub struct ChaosFs {
    inner: RealFs,
    plan: ChaosPlan,
    rng: Mutex<u64>,
    write_errors: AtomicU64,
    torn_writes: AtomicU64,
    rename_errors: AtomicU64,
    read_errors: AtomicU64,
    read_corruptions: AtomicU64,
}

impl ChaosFs {
    /// A chaos store over the real filesystem with the given plan.
    pub fn new(plan: ChaosPlan) -> Self {
        ChaosFs {
            inner: RealFs,
            // SplitMix64 needs a non-trivial starting increment.
            rng: Mutex::new(plan.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x1234_5678_9abc_def0),
            plan,
            write_errors: AtomicU64::new(0),
            torn_writes: AtomicU64::new(0),
            rename_errors: AtomicU64::new(0),
            read_errors: AtomicU64::new(0),
            read_corruptions: AtomicU64::new(0),
        }
    }

    /// Injected-fault counts so far.
    pub fn counters(&self) -> ChaosCounters {
        ChaosCounters {
            write_errors: self.write_errors.load(Ordering::Relaxed),
            torn_writes: self.torn_writes.load(Ordering::Relaxed),
            rename_errors: self.rename_errors.load(Ordering::Relaxed),
            read_errors: self.read_errors.load(Ordering::Relaxed),
            read_corruptions: self.read_corruptions.load(Ordering::Relaxed),
        }
    }

    /// SplitMix64 step — a deterministic draw stream.
    fn next(&self) -> u64 {
        let mut state = self
            .rng
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn fire(&self, period: Option<u64>) -> bool {
        period.is_some_and(|p| p > 0 && self.next().is_multiple_of(p))
    }

    fn fail(op: &'static str, path: &Path, what: &str) -> StoreError {
        StoreError::new(op, path, format!("injected chaos fault: {what}"))
    }

    /// Shared write/append fault logic: `Err` when a fault fired, after
    /// persisting a torn prefix via `put_prefix` if the fault is a torn
    /// write.
    fn write_fault(
        &self,
        op: &'static str,
        path: &Path,
        bytes: &[u8],
        put_prefix: impl FnOnce(&[u8]) -> Result<(), StoreError>,
    ) -> Result<(), StoreError> {
        if self.fire(self.plan.write_error_period) {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
            return Err(Self::fail(op, path, "out of space"));
        }
        if self.fire(self.plan.torn_write_period) && !bytes.is_empty() {
            let cut = (self.next() as usize) % bytes.len();
            // bdb-lint: allow(panic-reachability): cut < bytes.len() by the modulo above
            let _ = put_prefix(&bytes[..cut]);
            self.torn_writes.fetch_add(1, Ordering::Relaxed);
            return Err(Self::fail(op, path, "torn write"));
        }
        Ok(())
    }
}

impl CacheStore for ChaosFs {
    fn create_dir_all(&self, dir: &Path) -> Result<(), StoreError> {
        self.inner.create_dir_all(dir)
    }

    fn read(&self, path: &Path) -> Result<Option<Vec<u8>>, StoreError> {
        let Some(mut bytes) = self.inner.read(path)? else {
            return Ok(None);
        };
        if self.fire(self.plan.read_error_period) {
            self.read_errors.fetch_add(1, Ordering::Relaxed);
            return Err(Self::fail("read", path, "read error"));
        }
        let checksummed = path.extension().is_some_and(|e| e == "json" || e == "bin");
        if checksummed && bytes.len() >= 2 && self.fire(self.plan.read_corruption_period) {
            // Flip one bit anywhere except the final byte: decoding
            // tolerates a missing terminator, so a flip there could be
            // invisible, and accounting demands every injected
            // corruption be detected.
            let bit = (self.next() as usize) % ((bytes.len() - 1) * 8);
            bytes[bit / 8] ^= 1 << (bit % 8);
            self.read_corruptions.fetch_add(1, Ordering::Relaxed);
        }
        Ok(Some(bytes))
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
        self.write_fault("write", path, bytes, |prefix| {
            self.inner.write(path, prefix)
        })?;
        self.inner.write(path, bytes)
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
        self.write_fault("append", path, bytes, |prefix| {
            self.inner.append(path, prefix)
        })?;
        self.inner.append(path, bytes)
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<(), StoreError> {
        if self.fire(self.plan.rename_error_period) {
            self.rename_errors.fetch_add(1, Ordering::Relaxed);
            return Err(Self::fail("rename", from, "rename error"));
        }
        self.inner.rename(from, to)
    }

    fn remove(&self, path: &Path) -> Result<(), StoreError> {
        self.inner.remove(path)
    }

    fn list(&self, dir: &Path) -> Result<Vec<FileMeta>, StoreError> {
        self.inner.list(dir)
    }

    fn touch(&self, path: &Path) -> Result<(), StoreError> {
        self.inner.touch(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bdb-store-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn crc64_reexport_matches_the_xz_check_value() {
        // The checksum the store stamps is bdb-codec's CRC-64/XZ.
        assert_eq!(crc64(b"123456789"), 0x995d_c9bb_df19_39fa);
    }

    #[test]
    fn real_fs_read_write_roundtrip_and_not_found() {
        let dir = scratch("realfs");
        let path = dir.join("x.bin");
        assert_eq!(RealFs.read(&path).unwrap(), None);
        RealFs.write(&path, b"abc").unwrap();
        RealFs.append(&path, b"def").unwrap();
        assert_eq!(RealFs.read(&path).unwrap().unwrap(), b"abcdef");
        let to = dir.join("y.bin");
        RealFs.rename(&path, &to).unwrap();
        assert_eq!(RealFs.read(&path).unwrap(), None);
        assert_eq!(RealFs.list(&dir).unwrap().len(), 1);
        RealFs.remove(&to).unwrap();
        RealFs.remove(&to).unwrap(); // idempotent
        assert!(RealFs.list(&dir).unwrap().is_empty());
        assert!(RealFs.list(&dir.join("missing")).unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_schedule_is_deterministic_per_seed() {
        let dir = scratch("chaos-det");
        let run = |seed: u64| {
            let chaos = ChaosFs::new(ChaosPlan::storm(seed));
            let mut outcomes = Vec::new();
            for i in 0..40 {
                let path = dir.join(format!("f{i}.json"));
                outcomes.push(chaos.write(&path, b"{\"k\":1}\n").is_ok());
                outcomes.push(matches!(chaos.read(&path), Ok(Some(_))));
            }
            (outcomes, chaos.counters())
        };
        let (a1, c1) = run(42);
        let (a2, c2) = run(42);
        assert_eq!(a1, a2, "same seed must replay the same fault schedule");
        assert_eq!(c1, c2);
        let (b1, c3) = run(43);
        assert!(a1 != b1 || c1 != c3, "different seeds should diverge");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_persists_a_strict_prefix() {
        let dir = scratch("chaos-torn");
        let chaos = ChaosFs::new(ChaosPlan {
            torn_write_period: Some(1), // every write tears
            ..ChaosPlan::clean(7)
        });
        let path = dir.join("t.json");
        let payload = b"0123456789abcdef";
        assert!(chaos.write(&path, payload).is_err());
        let on_disk = RealFs.read(&path).unwrap().unwrap_or_default();
        assert!(on_disk.len() < payload.len(), "must be a strict prefix");
        assert_eq!(&payload[..on_disk.len()], &on_disk[..]);
        assert_eq!(chaos.counters().torn_writes, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_corruption_flips_one_bit_outside_the_last_byte() {
        let dir = scratch("chaos-flip");
        let chaos = ChaosFs::new(ChaosPlan {
            read_corruption_period: Some(1), // every json read corrupts
            ..ChaosPlan::clean(3)
        });
        let path = dir.join("c.json");
        let clean = b"{\"format\":2,\"profile\":{\"x\":12345678}}\n".to_vec();
        RealFs.write(&path, &clean).unwrap();
        for _ in 0..32 {
            let got = chaos.read(&path).unwrap().unwrap();
            let diff: Vec<usize> = (0..clean.len()).filter(|&i| got[i] != clean[i]).collect();
            assert_eq!(diff.len(), 1, "exactly one byte differs");
            assert!(diff[0] < clean.len() - 1, "last byte never corrupted");
            assert_eq!(
                (got[diff[0]] ^ clean[diff[0]]).count_ones(),
                1,
                "exactly one bit flipped"
            );
        }
        assert_eq!(chaos.counters().read_corruptions, 32);
        // Binary cache entries are corruption-eligible too.
        let bin = dir.join("c.bin");
        RealFs.write(&bin, &clean).unwrap();
        assert_ne!(chaos.read(&bin).unwrap().unwrap(), clean);
        // Reads of other extensions are never corrupted.
        let wal = dir.join("c.wal");
        RealFs.write(&wal, &clean).unwrap();
        assert_eq!(chaos.read(&wal).unwrap().unwrap(), clean);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
