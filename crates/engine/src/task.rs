//! The task boundary: one schedulable unit of profiling work.
//!
//! A [`Task`] names everything a measurement depends on — workload id,
//! scale, machine config, node config — in a form that can cross a
//! process or network boundary (see `bdb-cluster`). [`Engine::run_task`]
//! is the single entry point that turns a task back into a
//! [`WorkloadProfile`]; it consults the engine's caches exactly like
//! [`Engine::profile`], so a worker with a warm local cache never
//! re-simulates.
//!
//! The workload is carried *by id*, not by value: workload definitions
//! contain closures and cannot be serialized, but every id resolves
//! against the same checked-in catalog on every node, so sending the id
//! is equivalent to sending the workload (the `catalog-spec` lint pins
//! the catalog to the contract file). Machine and node configs are sent
//! in full — they are plain data and the fingerprint depends on their
//! exact field values.

use crate::{profile_fingerprint, Engine};
use bdb_node::NodeConfig;
use bdb_sim::MachineConfig;
use bdb_wcrt::WorkloadProfile;
use bdb_workloads::{catalog, Scale, WorkloadDef};

/// One unit of profiling work, self-describing across process boundaries.
#[derive(Debug, Clone, PartialEq)]
pub struct Task {
    /// Catalog id of the workload (e.g. `"H-WordCount"`). Resolved on the
    /// executing node via [`resolve_workload`].
    pub workload_id: String,
    /// Input scale; the exact `f64` factor participates in the
    /// fingerprint, so it is preserved bit-for-bit on the wire.
    pub scale: Scale,
    /// Full simulated-machine configuration.
    pub machine: MachineConfig,
    /// Full node (system-metrics) configuration.
    pub node: NodeConfig,
}

impl Task {
    /// Builds the task for profiling `workload` with the given inputs.
    pub fn new(
        workload: &WorkloadDef,
        scale: Scale,
        machine: &MachineConfig,
        node: &NodeConfig,
    ) -> Self {
        Task {
            workload_id: workload.spec.id.clone(),
            scale,
            machine: machine.clone(),
            node: *node,
        }
    }

    /// The task's content fingerprint — the same key the profile cache
    /// uses, and the key the cluster coordinator dedups results by.
    pub fn fingerprint(&self) -> u64 {
        profile_fingerprint(&self.workload_id, self.scale, &self.machine, &self.node)
    }
}

/// The result of executing one [`Task`].
#[derive(Debug, Clone)]
pub struct TaskResult {
    /// The executed task's [`Task::fingerprint`], echoed back so the
    /// consumer can verify the result answers the task it asked about.
    pub fingerprint: u64,
    /// The measured profile.
    pub profile: WorkloadProfile,
}

/// A task could not be executed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskError {
    /// The workload id resolves to nothing in this node's catalog —
    /// either a typo or a catalog-version skew between nodes.
    UnknownWorkload(String),
}

impl std::fmt::Display for TaskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskError::UnknownWorkload(id) => {
                write!(f, "unknown workload id {id:?} (catalog skew?)")
            }
        }
    }
}

impl std::error::Error for TaskError {}

/// Resolves a workload id against the full shipped universe: the 77
/// catalog workloads, the six MPI controls, and every comparison suite's
/// kernels — exactly the sets the bench binaries profile. First match
/// wins; ids are unique within each set.
pub fn resolve_workload(id: &str) -> Option<WorkloadDef> {
    let mut universe = catalog::full_catalog();
    universe.extend(catalog::mpi_workloads());
    for &suite in &catalog::ALL_SUITES {
        universe.extend(catalog::suite_workloads(suite));
    }
    universe.into_iter().find(|w| w.spec.id == id)
}

impl Engine {
    /// Executes one [`Task`]: resolves the workload, profiles it through
    /// the caches, and returns the profile tagged with the task's
    /// fingerprint. This is the entry point cluster workers call; its
    /// output is bit-identical to [`Engine::profile`] with the same
    /// inputs on any node.
    pub fn run_task(&self, task: &Task) -> Result<TaskResult, TaskError> {
        let workload = resolve_workload(&task.workload_id)
            .ok_or_else(|| TaskError::UnknownWorkload(task.workload_id.clone()))?;
        let profile = self.profile(&workload, task.scale, &task.machine, &task.node);
        Ok(TaskResult {
            fingerprint: task.fingerprint(),
            profile,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_task_matches_direct_profile() {
        let engine = Engine::serial();
        let defs = catalog::representatives();
        let def = &defs[0];
        let machine = MachineConfig::xeon_e5645();
        let node = NodeConfig::default();
        let task = Task::new(def, Scale::tiny(), &machine, &node);
        let via_task = engine.run_task(&task).unwrap();
        let direct = engine.profile(def, Scale::tiny(), &machine, &node);
        assert_eq!(via_task.fingerprint, task.fingerprint());
        assert_eq!(
            crate::codec::profile_to_value(&via_task.profile).encode(),
            crate::codec::profile_to_value(&direct).encode(),
            "task path must be byte-identical to the direct path"
        );
    }

    #[test]
    fn unknown_workload_is_an_error() {
        let engine = Engine::serial();
        let task = Task {
            workload_id: "no-such-workload".to_owned(),
            scale: Scale::tiny(),
            machine: MachineConfig::xeon_e5645(),
            node: NodeConfig::default(),
        };
        assert!(matches!(
            engine.run_task(&task),
            Err(TaskError::UnknownWorkload(id)) if id == "no-such-workload"
        ));
    }

    #[test]
    fn resolver_covers_catalog_mpi_and_suites() {
        for id in ["H-WordCount", "M-Sort"] {
            assert!(resolve_workload(id).is_some(), "{id} must resolve");
        }
        let suite_id = &catalog::suite_workloads(bdb_workloads::Suite::Hpcc)[0]
            .spec
            .id;
        assert!(resolve_workload(suite_id).is_some(), "{suite_id}");
    }
}
