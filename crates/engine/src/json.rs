//! Canonical JSON for the profile cache — a re-export of the workspace's
//! single reference implementation in [`bdb_codec::json`].
//!
//! Historically this module owned its own encoder; it now shares one
//! implementation with the linter and the binary codec so "canonical
//! bytes" is defined in exactly one place. The byte format is unchanged:
//! compact, insertion-ordered object keys, shortest-roundtrip floats via
//! `{:?}`, and the non-finite sentinels `"NaN"` / `"inf"` / `"-inf"`.

pub use bdb_codec::json::{parse, ParseError, Value};
