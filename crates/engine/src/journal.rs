//! Write-ahead run journal: durable checkpoints for fleet progress.
//!
//! A [`RunJournal`] is an append-only file of length-prefixed records —
//! the same framing discipline as the cluster wire protocol
//! (`crates/cluster/src/wire.rs`): a 4-byte big-endian payload length,
//! the payload, then a big-endian CRC-64 of the payload. The payload is
//! either a canonical-JSON record or a BDBC `JournalRecord` (per the
//! engine's [`CacheFormat`]); loading sniffs each payload's bytes, so a
//! journal written in one format resumes under the other. The
//! journal checkpoints every completed profile and sweep, so an
//! interrupted `profile_all`, sweep campaign, or cluster coordinator
//! resumes exactly where it stopped instead of re-running finished work.
//!
//! Crash tolerance is structural: a crash (or injected torn write) can
//! only damage the *tail* of an append-only file, and the per-record CRC
//! makes a damaged tail detectable. Loading walks frames from the start
//! and stops at the first frame that is short, oversized, or fails its
//! CRC; everything before it is trusted, everything after is discarded
//! and the file is truncated back to the valid prefix. The first record
//! is always a `start` record carrying the run's context string (the
//! command line, in practice); a journal whose context does not match is
//! discarded wholesale — resuming under different inputs would splice
//! results from a different run.
//!
//! The journal degrades, never blocks: any append failure marks the
//! journal broken and stops journaling for the rest of the run. The
//! engine keeps computing — the next run simply resumes from the last
//! durable record. Replayed results are byte-identical to recomputation
//! by the determinism contract, which is what makes resume safe at all.

use crate::codec;
use crate::json::Value;
use crate::store::{crc64, CacheStore, StoreError};
use crate::CacheFormat;
use bdb_sim::SweepResult;
use bdb_wcrt::WorkloadProfile;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

/// Hard cap on one journal record's payload, mirroring the wire
/// protocol's frame cap: anything larger is treated as corruption.
pub const MAX_RECORD_BYTES: usize = 16 * 1024 * 1024;

/// What [`RunJournal::open`] found on disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Completed profiles loaded from the journal.
    pub loaded_tasks: usize,
    /// Completed sweeps loaded from the journal.
    pub loaded_sweeps: usize,
    /// Bytes of damaged tail discarded during load.
    pub discarded_bytes: usize,
    /// An existing journal was discarded (context mismatch or a header
    /// too damaged to validate).
    pub reset: bool,
    /// Store operations that failed while opening (the engine folds
    /// these into its `disk_errors` counter).
    pub io_errors: u64,
}

struct Loaded {
    tasks: BTreeMap<u64, WorkloadProfile>,
    sweeps: BTreeMap<u64, SweepResult>,
    valid_len: usize,
}

/// An append-only, CRC-framed checkpoint log for one run. See the
/// module docs for the crash-tolerance model.
pub struct RunJournal {
    store: Arc<dyn CacheStore>,
    path: PathBuf,
    format: CacheFormat,
    tasks: BTreeMap<u64, WorkloadProfile>,
    sweeps: BTreeMap<u64, SweepResult>,
    broken: bool,
}

impl RunJournal {
    /// Opens (and, when `resume` is set, loads) the journal at `path`.
    ///
    /// With `resume`, an existing journal whose `start` record matches
    /// `context` is loaded — completed records become available through
    /// [`completed_task`](Self::completed_task) /
    /// [`completed_sweep`](Self::completed_sweep), and any damaged tail
    /// is truncated away. Without `resume`, or when the context does not
    /// match, the file is overwritten with a fresh journal containing
    /// just the `start` record. `format` selects the payload encoding
    /// for new records; loading accepts both regardless.
    pub fn open(
        store: Arc<dyn CacheStore>,
        path: PathBuf,
        context: &str,
        resume: bool,
        format: CacheFormat,
    ) -> (RunJournal, JournalStats) {
        let mut stats = JournalStats::default();
        if resume {
            match store.read(&path) {
                Ok(Some(bytes)) => match Self::parse(&bytes, context) {
                    Ok(loaded) => {
                        stats.loaded_tasks = loaded.tasks.len();
                        stats.loaded_sweeps = loaded.sweeps.len();
                        let mut broken = false;
                        if loaded.valid_len < bytes.len() {
                            stats.discarded_bytes = bytes.len() - loaded.valid_len;
                            // Truncate the damaged tail so appends extend
                            // the valid prefix, not the garbage.
                            // bdb-lint: allow(panic-reachability): guarded above — valid_len < bytes.len()
                            if store.write(&path, &bytes[..loaded.valid_len]).is_err() {
                                stats.io_errors += 1;
                                broken = true;
                            }
                        }
                        return (
                            RunJournal {
                                store,
                                path,
                                format,
                                tasks: loaded.tasks,
                                sweeps: loaded.sweeps,
                                broken,
                            },
                            stats,
                        );
                    }
                    Err(()) => stats.reset = true,
                },
                Ok(None) => {}
                Err(_) => stats.io_errors += 1,
            }
        }
        // Fresh journal: just the start record.
        if let Some(parent) = path.parent() {
            let _ = store.create_dir_all(parent);
        }
        let start = Value::object(vec![
            ("kind", Value::Str("start".to_owned())),
            ("context", Value::Str(context.to_owned())),
        ]);
        let broken = match store.write(&path, &frame(&start, format)) {
            Ok(()) => false,
            Err(_) => {
                stats.io_errors += 1;
                true
            }
        };
        (
            RunJournal {
                store,
                path,
                format,
                tasks: BTreeMap::new(),
                sweeps: BTreeMap::new(),
                broken,
            },
            stats,
        )
    }

    /// The profile journaled for `fingerprint`, if the run already
    /// completed it.
    pub fn completed_task(&self, fingerprint: u64) -> Option<&WorkloadProfile> {
        self.tasks.get(&fingerprint)
    }

    /// The sweep journaled under `key`, if the run already completed it.
    pub fn completed_sweep(&self, key: u64) -> Option<&SweepResult> {
        self.sweeps.get(&key)
    }

    /// Completed profiles currently known to the journal.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Completed sweeps currently known to the journal.
    pub fn sweep_count(&self) -> usize {
        self.sweeps.len()
    }

    /// Whether an earlier store failure disabled journaling for this
    /// run (results are still computed, just not checkpointed).
    pub fn is_broken(&self) -> bool {
        self.broken
    }

    /// Journals a completed profile. Returns `Ok(true)` when a record
    /// was durably appended, `Ok(false)` when nothing needed writing
    /// (duplicate, or journal already broken), and `Err` on the store
    /// failure that just broke the journal.
    pub fn record_task(
        &mut self,
        fingerprint: u64,
        profile: &WorkloadProfile,
    ) -> Result<bool, StoreError> {
        if self.broken || self.tasks.contains_key(&fingerprint) {
            return Ok(false);
        }
        let record = Value::object(vec![
            ("kind", Value::Str("task".to_owned())),
            ("fingerprint", Value::Str(format!("{fingerprint:016x}"))),
            ("profile", codec::profile_to_value(profile)),
        ]);
        match self.store.append(&self.path, &frame(&record, self.format)) {
            Ok(()) => {
                self.tasks.insert(fingerprint, profile.clone());
                Ok(true)
            }
            Err(e) => {
                self.broken = true;
                Err(e)
            }
        }
    }

    /// Journals a completed sweep under `key` (see [`sweep_key`]).
    /// Same return contract as [`record_task`](Self::record_task).
    pub fn record_sweep(&mut self, key: u64, result: &SweepResult) -> Result<bool, StoreError> {
        if self.broken || self.sweeps.contains_key(&key) {
            return Ok(false);
        }
        let record = Value::object(vec![
            ("kind", Value::Str("sweep".to_owned())),
            ("key", Value::Str(format!("{key:016x}"))),
            ("result", codec::sweep_result_to_value(result)),
        ]);
        match self.store.append(&self.path, &frame(&record, self.format)) {
            Ok(()) => {
                self.sweeps.insert(key, result.clone());
                Ok(true)
            }
            Err(e) => {
                self.broken = true;
                Err(e)
            }
        }
    }

    /// Journals an in-flight assignment (pure provenance: `assign`
    /// records are ignored on load, but make a crashed coordinator's
    /// journal show what was dispatched and never finished).
    pub fn record_assign(&mut self, fingerprint: u64) -> Result<(), StoreError> {
        if self.broken {
            return Ok(());
        }
        let record = Value::object(vec![
            ("kind", Value::Str("assign".to_owned())),
            ("fingerprint", Value::Str(format!("{fingerprint:016x}"))),
        ]);
        match self.store.append(&self.path, &frame(&record, self.format)) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.broken = true;
                Err(e)
            }
        }
    }

    /// Walks frames from the start. `Err(())` means the journal is
    /// unusable (no valid `start` record, or its context differs);
    /// otherwise returns everything loadable plus the byte length of the
    /// valid prefix (shorter than the file when the tail is damaged).
    fn parse(bytes: &[u8], context: &str) -> Result<Loaded, ()> {
        let mut tasks = BTreeMap::new();
        let mut sweeps = BTreeMap::new();
        let mut offset = 0usize;
        let mut first = true;
        while offset < bytes.len() {
            let Some((payload, next)) = next_frame(bytes, offset) else {
                break; // torn or corrupt tail: discard from here
            };
            let Some(value) = decode_payload(payload) else {
                break;
            };
            let Some(kind) = value.get("kind").and_then(Value::as_str) else {
                break;
            };
            if first {
                if kind != "start" || value.get("context").and_then(Value::as_str) != Some(context)
                {
                    return Err(());
                }
                first = false;
                offset = next;
                continue;
            }
            let ok = match kind {
                "task" => (|| {
                    let fp = hex_u64(value.get("fingerprint")?.as_str()?)?;
                    let profile = codec::profile_from_value(value.get("profile")?).ok()?;
                    tasks.insert(fp, profile);
                    Some(())
                })()
                .is_some(),
                "sweep" => (|| {
                    let key = hex_u64(value.get("key")?.as_str()?)?;
                    let result = codec::sweep_result_from_value(value.get("result")?).ok()?;
                    sweeps.insert(key, result);
                    Some(())
                })()
                .is_some(),
                "assign" => true,
                _ => false,
            };
            if !ok {
                break;
            }
            offset = next;
        }
        if first {
            // Never saw a valid start record: nothing to trust.
            return Err(());
        }
        Ok(Loaded {
            tasks,
            sweeps,
            valid_len: offset,
        })
    }
}

/// The journal key for a sweep: a CRC-64 over the sweep label and the
/// exact capacity list. Sweeps are driven by arbitrary closures whose
/// content cannot be fingerprinted, so a journaled sweep is only valid
/// under the same run context (the journal's `start` record pins that).
pub fn sweep_key(label: &str, capacities_kib: &[u64]) -> u64 {
    let mut bytes = Vec::with_capacity(label.len() + 1 + capacities_kib.len() * 8);
    bytes.extend_from_slice(label.as_bytes());
    bytes.push(0);
    for &kib in capacities_kib {
        bytes.extend_from_slice(&kib.to_be_bytes());
    }
    crc64(&bytes)
}

/// One framed record: `[u32 BE payload len][payload][u64 BE CRC-64]`.
/// The payload is canonical JSON or a BDBC `JournalRecord` per `format`.
fn frame(record: &Value, format: CacheFormat) -> Vec<u8> {
    let payload = match format {
        CacheFormat::Json => record.encode().into_bytes(),
        CacheFormat::Binary => bdb_codec::encode_record(
            bdb_codec::RecordKind::JournalRecord,
            &bdb_codec::bval::encode_value(record),
        ),
    };
    let mut out = Vec::with_capacity(payload.len() + 12);
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&crc64(&payload).to_be_bytes());
    out
}

/// Sniffs a frame payload's encoding from its bytes and decodes it:
/// BDBC-magic payloads are binary journal records, anything else is
/// canonical JSON. `None` on any decode failure (a damaged tail).
fn decode_payload(payload: &[u8]) -> Option<Value> {
    if bdb_codec::is_binary(payload) {
        let inner =
            bdb_codec::decode_record_of(bdb_codec::RecordKind::JournalRecord, payload).ok()?;
        bdb_codec::bval::decode_value(inner).ok()
    } else {
        std::str::from_utf8(payload)
            .ok()
            .and_then(|text| crate::json::parse(text).ok())
    }
}

/// Decodes the frame at `offset`; `None` when it is short, oversized,
/// or fails its CRC (all treated as a damaged tail).
fn next_frame(bytes: &[u8], offset: usize) -> Option<(&[u8], usize)> {
    let rest = bytes.get(offset..)?;
    let len_bytes: [u8; 4] = rest.get(..4)?.try_into().ok()?;
    let len = u32::from_be_bytes(len_bytes) as usize;
    if len > MAX_RECORD_BYTES {
        return None;
    }
    let payload = rest.get(4..4 + len)?;
    let crc_bytes: [u8; 8] = rest.get(4 + len..4 + len + 8)?.try_into().ok()?;
    if crc64(payload) != u64::from_be_bytes(crc_bytes) {
        return None;
    }
    Some((payload, offset + 4 + len + 8))
}

fn hex_u64(s: &str) -> Option<u64> {
    u64::from_str_radix(s, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::RealFs;
    use bdb_node::NodeConfig;
    use bdb_sim::{MachineConfig, MissRatioCurve, SweepMetric};
    use bdb_wcrt::profile_workload;
    use bdb_workloads::{catalog, Scale};

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("bdb-journal-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_profile(id: &str) -> WorkloadProfile {
        let reps = catalog::representatives();
        let w = reps.iter().find(|w| w.spec.id == id).unwrap();
        profile_workload(
            w,
            Scale::tiny(),
            MachineConfig::xeon_e5645(),
            NodeConfig::default(),
        )
    }

    fn sample_sweep() -> SweepResult {
        let curve = |metric| MissRatioCurve {
            label: "probe".to_owned(),
            metric,
            points: vec![(16, 0.5), (64, 0.25)],
        };
        SweepResult {
            instruction: curve(SweepMetric::Instruction),
            data: curve(SweepMetric::Data),
            unified: curve(SweepMetric::Unified),
        }
    }

    #[test]
    fn records_survive_reopen() {
        let dir = scratch("reopen");
        let path = dir.join("run.wal");
        let store: Arc<dyn CacheStore> = Arc::new(RealFs);
        let p = sample_profile("H-WordCount");
        let s = sample_sweep();

        let (mut journal, stats) =
            RunJournal::open(store.clone(), path.clone(), "ctx", false, CacheFormat::Json);
        assert_eq!(stats, JournalStats::default());
        assert!(journal.record_task(0xabc, &p).unwrap());
        assert!(!journal.record_task(0xabc, &p).unwrap(), "dedup");
        assert!(journal.record_sweep(0xdef, &s).unwrap());
        journal.record_assign(0x123).unwrap();

        let (resumed, stats) =
            RunJournal::open(store.clone(), path.clone(), "ctx", true, CacheFormat::Json);
        assert_eq!((stats.loaded_tasks, stats.loaded_sweeps), (1, 1));
        assert_eq!(stats.discarded_bytes, 0);
        assert!(!stats.reset);
        let back = resumed.completed_task(0xabc).unwrap();
        assert_eq!(
            crate::codec::profile_to_value(back).encode(),
            crate::codec::profile_to_value(&p).encode(),
            "journaled profile must replay byte-identically"
        );
        assert_eq!(resumed.completed_sweep(0xdef).unwrap(), &s);
        assert!(resumed.completed_task(0x123).is_none(), "assign ≠ done");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_discarded_and_truncated() {
        let dir = scratch("torn");
        let path = dir.join("run.wal");
        let store: Arc<dyn CacheStore> = Arc::new(RealFs);
        let p = sample_profile("H-WordCount");
        let (mut journal, _) =
            RunJournal::open(store.clone(), path.clone(), "ctx", false, CacheFormat::Json);
        journal.record_task(1, &p).unwrap();
        let good = std::fs::read(&path).unwrap();
        let good_len = good.len();

        // A second record torn at every prefix length still resumes the
        // first record and truncates the tail back to the valid prefix.
        let record2 = {
            journal.record_task(2, &p).unwrap();
            std::fs::read(&path).unwrap()[good_len..].to_vec()
        };
        for cut in 0..record2.len() {
            let mut torn = good.clone();
            torn.extend_from_slice(&record2[..cut]);
            std::fs::write(&path, &torn).unwrap();
            let (resumed, stats) =
                RunJournal::open(store.clone(), path.clone(), "ctx", true, CacheFormat::Json);
            assert_eq!(stats.loaded_tasks, 1, "cut {cut}");
            assert_eq!(stats.discarded_bytes, cut, "cut {cut}");
            assert!(resumed.completed_task(1).is_some());
            assert!(resumed.completed_task(2).is_none());
            assert_eq!(
                std::fs::read(&path).unwrap().len(),
                good_len,
                "cut {cut}: file truncated to the valid prefix"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_record_body_discards_the_rest() {
        let dir = scratch("flip");
        let path = dir.join("run.wal");
        let store: Arc<dyn CacheStore> = Arc::new(RealFs);
        let p = sample_profile("H-WordCount");
        let (mut journal, _) =
            RunJournal::open(store.clone(), path.clone(), "ctx", false, CacheFormat::Json);
        journal.record_task(1, &p).unwrap();
        let good_len = std::fs::read(&path).unwrap().len();
        journal.record_task(2, &p).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a payload bit inside the second record: its CRC fails, so
        // the load keeps record 1 and truncates the rest away.
        let target = good_len + 20;
        bytes[target] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let (resumed, stats) = RunJournal::open(store, path, "ctx", true, CacheFormat::Json);
        assert_eq!(stats.loaded_tasks, 1);
        assert!(stats.discarded_bytes > 0);
        assert!(resumed.completed_task(2).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn context_mismatch_resets_the_journal() {
        let dir = scratch("ctx");
        let path = dir.join("run.wal");
        let store: Arc<dyn CacheStore> = Arc::new(RealFs);
        let p = sample_profile("H-WordCount");
        let (mut journal, _) = RunJournal::open(
            store.clone(),
            path.clone(),
            "run A",
            false,
            CacheFormat::Json,
        );
        journal.record_task(1, &p).unwrap();
        let (resumed, stats) = RunJournal::open(
            store.clone(),
            path.clone(),
            "run B",
            true,
            CacheFormat::Json,
        );
        assert!(stats.reset, "different context must not replay");
        assert_eq!(resumed.task_count(), 0);
        // And the reset journal is usable under the new context.
        let (again, stats) = RunJournal::open(store, path, "run B", true, CacheFormat::Json);
        assert!(!stats.reset);
        assert_eq!(again.task_count(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_without_resume_discards_existing_records() {
        let dir = scratch("fresh");
        let path = dir.join("run.wal");
        let store: Arc<dyn CacheStore> = Arc::new(RealFs);
        let p = sample_profile("H-WordCount");
        let (mut journal, _) =
            RunJournal::open(store.clone(), path.clone(), "ctx", false, CacheFormat::Json);
        journal.record_task(1, &p).unwrap();
        let (fresh, stats) = RunJournal::open(store, path, "ctx", false, CacheFormat::Json);
        assert_eq!(fresh.task_count(), 0);
        assert_eq!(stats.loaded_tasks, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn binary_journal_resumes_in_either_format() {
        let dir = scratch("binary");
        let path = dir.join("run.wal");
        let store: Arc<dyn CacheStore> = Arc::new(RealFs);
        let p = sample_profile("H-WordCount");
        let s = sample_sweep();
        let (mut journal, _) = RunJournal::open(
            store.clone(),
            path.clone(),
            "ctx",
            false,
            CacheFormat::Binary,
        );
        assert!(journal.record_task(0xabc, &p).unwrap());
        assert!(journal.record_sweep(0xdef, &s).unwrap());
        let binary_len = std::fs::metadata(&path).unwrap().len();

        // A JSON-configured engine resumes the binary journal: loading
        // sniffs each payload, so the format knob never strands a run.
        let (resumed, stats) =
            RunJournal::open(store.clone(), path.clone(), "ctx", true, CacheFormat::Json);
        assert_eq!((stats.loaded_tasks, stats.loaded_sweeps), (1, 1));
        assert_eq!(
            crate::codec::profile_to_value(resumed.completed_task(0xabc).unwrap()).encode(),
            crate::codec::profile_to_value(&p).encode(),
        );
        assert_eq!(resumed.completed_sweep(0xdef).unwrap(), &s);

        // The binary journal is smaller than the same records framed as
        // canonical JSON (modestly — profiles are float-heavy; the big
        // wins are in the columnar trace chunks).
        let json_path = dir.join("run-json.wal");
        let (mut json_journal, _) = RunJournal::open(
            store.clone(),
            json_path.clone(),
            "ctx",
            false,
            CacheFormat::Json,
        );
        json_journal.record_task(0xabc, &p).unwrap();
        json_journal.record_sweep(0xdef, &s).unwrap();
        let json_len = std::fs::metadata(&json_path).unwrap().len();
        assert!(
            binary_len * 4 < json_len * 3,
            "binary journal ({binary_len} B) should be at least 25% under the JSON one ({json_len} B)"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_key_separates_inputs() {
        let base = sweep_key("icache", &[16, 64]);
        assert_ne!(base, sweep_key("dcache", &[16, 64]));
        assert_ne!(base, sweep_key("icache", &[16, 64, 256]));
        assert_ne!(base, sweep_key("icache", &[64, 16]));
        assert_eq!(base, sweep_key("icache", &[16, 64]));
    }
}
