//! Execution engine — the one way figures, tables, sweeps, and the 77→17
//! reduction obtain measurements.
//!
//! Every consumer used to call `bdb_wcrt::profile::profile_workload` (or
//! the `sweep` harness) directly and serially. The [`Engine`] wraps those
//! entry points with two orthogonal services:
//!
//! * **Parallel fan-out** — [`Engine::profile_all`] and [`Engine::sweep`]
//!   dispatch independent simulations across a rayon thread pool. Results
//!   are collected back into catalog order, so output is bit-identical to
//!   a serial run (the `profile_is_deterministic` contract extends to the
//!   parallel path: same inputs, same bytes, any thread count).
//! * **Profile cache** — profiling the full catalog at paper scale takes
//!   minutes; the 45-metric vector for a given (workload, scale, machine
//!   config, node config) never changes. The engine memoizes profiles in
//!   memory and, when a cache directory is configured, as one JSON file
//!   per profile keyed by a content fingerprint. Re-running a figure
//!   binary after changing only presentation code touches no simulation.
//!
//! Capacity sweeps run the workload generator exactly **once** in either
//! [`SweepMode`]: the default fused mode streams its events into
//! capacity-independent L1 event streams and replays those per capacity
//! (trace-once/replay-many, DESIGN.md §13); per-point mode records the
//! trace into a pooled buffer and replays a full machine per capacity.
//! Points parallelize across the pool (each is independent) but are
//! *not* cached: a sweep is driven by an arbitrary workload closure
//! whose content cannot be fingerprinted.
//!
//! # Examples
//!
//! ```
//! use bdb_engine::Engine;
//! use bdb_node::NodeConfig;
//! use bdb_sim::MachineConfig;
//! use bdb_workloads::{catalog, Scale};
//!
//! let engine = Engine::in_memory();
//! let reps = catalog::representatives();
//! let profiles = engine.profile_all(
//!     &reps[..2],
//!     Scale::tiny(),
//!     &MachineConfig::xeon_e5645(),
//!     &NodeConfig::default(),
//! );
//! assert_eq!(profiles.len(), 2);
//! assert_eq!(profiles[0].spec.id, reps[0].spec.id);
//! ```

pub mod codec;
pub mod json;
pub mod task;

pub use task::{resolve_workload, Task, TaskError, TaskResult};

use bdb_node::NodeConfig;
use bdb_sim::{
    assemble_sweep, fused_point, sweep_point_replay, MachineConfig, SweepFamily, SweepResult,
    SweepStreams,
};
use bdb_trace::{TraceBufferPool, TraceSink};
use bdb_wcrt::{profile_workload, WorkloadProfile};
use bdb_workloads::{Scale, WorkloadDef};
use rayon::prelude::*;
// The in-memory cache below is keyed-lookup only (get/insert by
// fingerprint, never iterated), so map order cannot reach profile bytes.
// bdb-lint: allow(determinism): keyed-lookup-only memo, never iterated.
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Bumped whenever the cache file layout changes; old files then decode
/// as misses and are rewritten.
pub const CACHE_FORMAT_VERSION: u64 = 1;

/// How [`Engine::sweep`] computes its points.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SweepMode {
    /// Trace once, replay the extracted L1 streams per capacity (the
    /// fast path; byte-identical to `PerPoint` by contract).
    #[default]
    Fused,
    /// Re-run the workload on a full machine per capacity — the
    /// reference path, kept as the oracle and escape hatch.
    PerPoint,
}

/// How an [`Engine`] runs and where it remembers results.
#[derive(Debug, Clone, Default)]
pub struct EngineConfig {
    /// Worker threads for `profile_all` / `sweep`. `None` uses the
    /// machine's available parallelism; `Some(1)` is fully serial.
    pub threads: Option<usize>,
    /// Directory for the on-disk profile cache (one JSON file per
    /// profile). `None` disables the disk cache.
    pub cache_dir: Option<PathBuf>,
    /// Whether to also memoize profiles in memory (cheap; only worth
    /// disabling in cache-behaviour tests).
    pub no_memory_cache: bool,
    /// Size cap for the on-disk cache in bytes. When a write pushes the
    /// directory past the cap, least-recently-used entries (hits refresh
    /// recency) are evicted until it fits. `None` means unbounded.
    pub cache_max_bytes: Option<u64>,
    /// Sweep execution strategy (fused trace-replay by default).
    pub sweep_mode: SweepMode,
}

impl EngineConfig {
    /// Caps the worker pool at `threads`.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Enables the on-disk cache under `dir`.
    #[must_use]
    pub fn cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Disables the in-memory memo (the disk cache, if any, still works).
    #[must_use]
    pub fn without_memory_cache(mut self) -> Self {
        self.no_memory_cache = true;
        self
    }

    /// Caps the on-disk cache at `bytes` (LRU-style eviction).
    #[must_use]
    pub fn cache_max_bytes(mut self, bytes: u64) -> Self {
        self.cache_max_bytes = Some(bytes);
        self
    }

    /// Selects the sweep execution strategy.
    #[must_use]
    pub fn sweep_mode(mut self, mode: SweepMode) -> Self {
        self.sweep_mode = mode;
        self
    }

    /// Builds a config from the standard `BDB_*` environment knobs — the
    /// one place their semantics live, shared by the bench harness and
    /// the cluster worker daemon so the two cannot drift:
    ///
    /// * `BDB_CACHE_DIR` — disk-cache directory (default:
    ///   `results/cache/` at the workspace root).
    /// * `BDB_NO_CACHE=1` — disable the disk cache for this run.
    /// * `BDB_THREADS=<n>` — cap the worker pool (default: all cores).
    /// * `BDB_CACHE_MAX_BYTES=<n>` — cap the disk cache; LRU entries are
    ///   evicted past the cap (default: unbounded).
    /// * `BDB_SWEEP_MODE=per-point` — use the per-point reference sweep
    ///   instead of the fused trace-replay path (default: `fused`; the
    ///   two are byte-identical by contract).
    pub fn from_env() -> Self {
        let mut config = EngineConfig::default();
        if std::env::var_os("BDB_NO_CACHE").is_none() {
            let dir = std::env::var_os("BDB_CACHE_DIR")
                .map(PathBuf::from)
                .unwrap_or_else(|| {
                    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/cache"))
                });
            config = config.cache_dir(dir);
        }
        if let Some(threads) = std::env::var("BDB_THREADS")
            .ok()
            .and_then(|t| t.parse().ok())
        {
            config = config.threads(threads);
        }
        if let Some(bytes) = std::env::var("BDB_CACHE_MAX_BYTES")
            .ok()
            .and_then(|b| b.parse().ok())
        {
            config = config.cache_max_bytes(bytes);
        }
        if let Ok(mode) = std::env::var("BDB_SWEEP_MODE") {
            if matches!(mode.as_str(), "per-point" | "perpoint" | "per_point") {
                config = config.sweep_mode(SweepMode::PerPoint);
            }
        }
        config
    }
}

/// Cache-traffic counters (monotonic over the engine's lifetime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Profiles served from the in-memory memo.
    pub memory_hits: u64,
    /// Profiles decoded from a cache file.
    pub disk_hits: u64,
    /// Profiles actually simulated.
    pub computed: u64,
}

/// How the engine dispatches independent simulations.
///
/// Degradation is always safe: the parallel path is bit-identical to the
/// serial one, so falling back from `Pool` to `Serial` (when thread-pool
/// construction fails) changes wall-clock time, never output bytes.
enum Dispatch {
    /// A dedicated pool capped at the configured width.
    Pool(rayon::ThreadPool),
    /// The ambient rayon context (machine parallelism).
    Ambient,
    /// Plain serial iteration on the calling thread — used for
    /// `threads = 1` and as the fallback when pool construction fails.
    Serial,
}

/// The parallel, cache-aware measurement engine. See the crate docs.
pub struct Engine {
    dispatch: Dispatch,
    cache_dir: Option<PathBuf>,
    cache_max_bytes: Option<u64>,
    sweep_mode: SweepMode,
    /// Recycled trace buffers for per-point sweeps (which record once and
    /// replay a full machine per capacity): consecutive sweeps and
    /// concurrent sweep callers reuse recorded-trace chunk allocations.
    buffers: TraceBufferPool,
    // bdb-lint: allow(determinism): keyed-lookup-only memo, never iterated.
    memory: Option<Mutex<HashMap<u64, WorkloadProfile>>>,
    memory_hits: AtomicU64,
    disk_hits: AtomicU64,
    computed: AtomicU64,
}

impl Engine {
    /// Builds an engine from `config`. The cache directory is created
    /// eagerly; if creation fails the disk cache is disabled (profiling
    /// still works, nothing persists). Likewise, if the worker pool
    /// cannot be built the engine degrades to serial execution rather
    /// than panicking — output is identical either way.
    pub fn new(config: EngineConfig) -> Self {
        let dispatch = match config.threads {
            None => Dispatch::Ambient,
            Some(1) => Dispatch::Serial,
            Some(n) => rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build()
                .map_or(Dispatch::Serial, Dispatch::Pool),
        };
        let cache_dir = config
            .cache_dir
            .filter(|dir| std::fs::create_dir_all(dir).is_ok());
        Engine {
            dispatch,
            cache_dir,
            cache_max_bytes: config.cache_max_bytes,
            sweep_mode: config.sweep_mode,
            buffers: TraceBufferPool::new(),
            // bdb-lint: allow(determinism): keyed-lookup-only memo.
            memory: (!config.no_memory_cache).then(|| Mutex::new(HashMap::new())),
            memory_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            computed: AtomicU64::new(0),
        }
    }

    /// Parallel engine with the in-memory memo only (no disk cache).
    pub fn in_memory() -> Self {
        Engine::new(EngineConfig::default())
    }

    /// Single-threaded engine with all caching disabled — the baseline
    /// the parallel path must match bit for bit.
    pub fn serial() -> Self {
        Engine::new(EngineConfig::default().threads(1).without_memory_cache())
    }

    /// Worker threads `profile_all` / `sweep` fan out to.
    pub fn worker_threads(&self) -> usize {
        match &self.dispatch {
            Dispatch::Pool(pool) => pool.current_num_threads(),
            Dispatch::Ambient => rayon::current_num_threads(),
            Dispatch::Serial => 1,
        }
    }

    /// Cache-traffic counters so far.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            memory_hits: self.memory_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            computed: self.computed.load(Ordering::Relaxed),
        }
    }

    /// The cache file a profile persists to, if a disk cache is
    /// configured.
    pub fn cache_file(
        &self,
        workload: &WorkloadDef,
        scale: Scale,
        machine: &MachineConfig,
        node: &NodeConfig,
    ) -> Option<PathBuf> {
        let key = profile_fingerprint(&workload.spec.id, scale, machine, node);
        self.cache_dir
            .as_ref()
            .map(|dir| dir.join(cache_file_name(&workload.spec.id, key)))
    }

    /// Profiles one workload, consulting the caches first.
    pub fn profile(
        &self,
        workload: &WorkloadDef,
        scale: Scale,
        machine: &MachineConfig,
        node: &NodeConfig,
    ) -> WorkloadProfile {
        let key = profile_fingerprint(&workload.spec.id, scale, machine, node);
        if let Some(memory) = &self.memory {
            if let Some(hit) = lock(memory).get(&key) {
                self.memory_hits.fetch_add(1, Ordering::Relaxed);
                return hit.clone();
            }
        }
        if let Some(profile) = self.read_cache_file(&workload.spec.id, key) {
            self.disk_hits.fetch_add(1, Ordering::Relaxed);
            self.remember(key, &profile);
            return profile;
        }
        let profile = profile_workload(workload, scale, machine.clone(), *node);
        self.computed.fetch_add(1, Ordering::Relaxed);
        self.write_cache_file(&workload.spec.id, key, &profile);
        self.remember(key, &profile);
        profile
    }

    /// Profiles every workload, fanning the independent simulations out
    /// across the worker pool. The result vector is in `workloads` order
    /// and bit-identical to calling [`Engine::profile`] in a serial loop.
    pub fn profile_all(
        &self,
        workloads: &[WorkloadDef],
        scale: Scale,
        machine: &MachineConfig,
        node: &NodeConfig,
    ) -> Vec<WorkloadProfile> {
        if matches!(self.dispatch, Dispatch::Serial) {
            return workloads
                .iter()
                .map(|w| self.profile(w, scale, machine, node))
                .collect();
        }
        self.install(|| {
            workloads
                .par_iter()
                .map(|w| self.profile(w, scale, machine, node))
                .collect()
        })
    }

    /// Runs a capacity sweep (paper §5.4), fanned out across the worker
    /// pool per swept capacity. Equivalent to [`bdb_sim::sweep`]; the
    /// curves are assembled in `capacities_kib` order, so output is
    /// identical at any thread count and in either [`SweepMode`].
    ///
    /// Either mode runs the workload generator exactly **once**. In the
    /// default fused mode its events stream straight into the extracted
    /// L1 event streams ([`bdb_sim::SweepStreams::record`] — no trace is
    /// materialized) and each capacity point replays those streams
    /// ([`bdb_sim::fused_point`]). In per-point mode
    /// (`BDB_SWEEP_MODE=per-point`) the trace is recorded into a pooled
    /// buffer and a full machine replays it per capacity
    /// ([`bdb_sim::sweep_point_replay`]) — the reference semantics, one
    /// whole machine per point, without re-generating.
    ///
    /// # Panics
    ///
    /// Panics if `capacities_kib` is empty.
    pub fn sweep<F>(&self, label: &str, capacities_kib: &[u64], workload: F) -> SweepResult
    where
        F: Fn(&mut dyn TraceSink) + Sync,
    {
        assert!(
            !capacities_kib.is_empty(),
            "sweep needs at least one capacity"
        );
        let points = match self.sweep_mode {
            SweepMode::Fused => {
                let streams = SweepStreams::record(|sink| workload(sink));
                let family = SweepFamily::atom();
                if matches!(self.dispatch, Dispatch::Serial) {
                    capacities_kib
                        .iter()
                        .map(|&kib| fused_point(&family, kib, &streams))
                        .collect()
                } else {
                    self.install(|| {
                        capacities_kib
                            .par_iter()
                            .map(|&kib| fused_point(&family, kib, &streams))
                            .collect()
                    })
                }
            }
            SweepMode::PerPoint => {
                let mut buffer = self.buffers.checkout();
                workload(&mut buffer);
                let points = if matches!(self.dispatch, Dispatch::Serial) {
                    capacities_kib
                        .iter()
                        .map(|&kib| sweep_point_replay(kib, &buffer))
                        .collect()
                } else {
                    self.install(|| {
                        capacities_kib
                            .par_iter()
                            .map(|&kib| sweep_point_replay(kib, &buffer))
                            .collect()
                    })
                };
                self.buffers.checkin(buffer);
                points
            }
        };
        assemble_sweep(label, capacities_kib, points)
    }

    fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        match &self.dispatch {
            Dispatch::Pool(pool) => pool.install(f),
            Dispatch::Ambient | Dispatch::Serial => f(),
        }
    }

    fn remember(&self, key: u64, profile: &WorkloadProfile) {
        if let Some(memory) = &self.memory {
            lock(memory).insert(key, profile.clone());
        }
    }

    fn read_cache_file(&self, id: &str, key: u64) -> Option<WorkloadProfile> {
        let path = self.cache_dir.as_ref()?.join(cache_file_name(id, key));
        let bytes = std::fs::read_to_string(&path).ok()?;
        let profile = decode_cache_entry(&bytes, key)?;
        // A hit refreshes the entry's recency so LRU eviction spares hot
        // entries. Best-effort: a failed touch only skews eviction order.
        if self.cache_max_bytes.is_some() {
            touch(&path);
        }
        Some(profile)
    }

    fn write_cache_file(&self, id: &str, key: u64, profile: &WorkloadProfile) {
        let Some(dir) = &self.cache_dir else {
            return;
        };
        let path = dir.join(cache_file_name(id, key));
        let bytes = encode_cache_entry(key, profile);
        // Write-to-temp + rename so concurrent engines never observe a
        // half-written entry; all writers produce identical bytes, so the
        // last rename winning is harmless.
        let tmp = dir.join(format!(
            ".{}.tmp{}",
            cache_file_name(id, key),
            std::process::id()
        ));
        if std::fs::write(&tmp, bytes).is_ok() && std::fs::rename(&tmp, &path).is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        if let Some(cap) = self.cache_max_bytes {
            enforce_cache_cap(dir, cap);
        }
    }
}

/// Best-effort mtime refresh marking a cache entry as recently used.
fn touch(path: &Path) {
    if let Ok(file) = std::fs::File::options().write(true).open(path) {
        // bdb-lint: allow(determinism): recency metadata for cache eviction only; never reaches profile bytes.
        let _ = file.set_modified(std::time::SystemTime::now());
    }
}

/// Evicts least-recently-used cache entries until the directory's `.json`
/// entries total at most `max_bytes`. Recency is file mtime (refreshed on
/// hits); ties break on file name so eviction order is deterministic.
/// Eviction removes whole files only — surviving entries are never
/// rewritten, so a cap can shrink the cache but never corrupt it.
fn enforce_cache_cap(dir: &Path, max_bytes: u64) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    // bdb-lint: allow(determinism): eviction recency ordering only; never reaches profile bytes.
    let mut files: Vec<(std::time::SystemTime, PathBuf, u64)> = entries
        .flatten()
        .filter_map(|e| {
            let path = e.path();
            if path.extension()? != "json" {
                return None;
            }
            let meta = e.metadata().ok()?;
            Some((meta.modified().ok()?, path, meta.len()))
        })
        .collect();
    let mut total: u64 = files.iter().map(|(_, _, len)| len).sum();
    if total <= max_bytes {
        return;
    }
    files.sort_by(|(at, ap, _), (bt, bp, _)| (at, ap).cmp(&(bt, bp)));
    for (_, path, len) in files {
        if total <= max_bytes {
            break;
        }
        if std::fs::remove_file(&path).is_ok() {
            total = total.saturating_sub(len);
        }
    }
}

/// Locks the memo with poison recovery: a panic in another profiling
/// thread must not cascade into every later cache lookup. The map holds
/// only fully-computed profiles (inserted after simulation completes),
/// so a poisoned guard still sees consistent data.
fn lock<'a>(
    // bdb-lint: allow(determinism): keyed-lookup-only memo, never iterated.
    memory: &'a Mutex<HashMap<u64, WorkloadProfile>>,
    // bdb-lint: allow(determinism): keyed-lookup-only memo, never iterated.
) -> std::sync::MutexGuard<'a, HashMap<u64, WorkloadProfile>> {
    memory
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Content fingerprint of one measurement: FNV-1a over the cache format
/// version, the workload id, the exact scale factor bits, and the full
/// `Debug` renderings of both hardware configs. Any change to either
/// config type therefore changes every key, which is exactly right — the
/// measurement inputs changed.
pub fn profile_fingerprint(
    workload_id: &str,
    scale: Scale,
    machine: &MachineConfig,
    node: &NodeConfig,
) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(CACHE_FORMAT_VERSION);
    h.write(workload_id.as_bytes());
    h.write_u64(scale.factor().to_bits());
    h.write(format!("{machine:?}").as_bytes());
    h.write(format!("{node:?}").as_bytes());
    h.finish()
}

struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
        }
        // Length terminator so concatenated fields cannot alias.
        self.write_u64(bytes.len() as u64);
    }

    fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

fn cache_file_name(id: &str, key: u64) -> String {
    let safe: String = id
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    format!("{safe}-{key:016x}.json")
}

fn encode_cache_entry(key: u64, profile: &WorkloadProfile) -> String {
    let mut text = json::Value::object(vec![
        ("format", json::Value::UInt(CACHE_FORMAT_VERSION)),
        ("fingerprint", json::Value::Str(format!("{key:016x}"))),
        ("profile", codec::profile_to_value(profile)),
    ])
    .encode();
    text.push('\n');
    text
}

fn decode_cache_entry(bytes: &str, expected_key: u64) -> Option<WorkloadProfile> {
    let value = json::parse(bytes.trim_end()).ok()?;
    if value.get("format")?.as_u64()? != CACHE_FORMAT_VERSION {
        return None;
    }
    if value.get("fingerprint")?.as_str()? != format!("{expected_key:016x}") {
        return None;
    }
    codec::profile_from_value(value.get("profile")?).ok()
}

/// Loads every valid cache entry under `dir` (diagnostics / inspection).
pub fn read_cache_dir(dir: &Path) -> Vec<WorkloadProfile> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut profiles: Vec<(PathBuf, WorkloadProfile)> = entries
        .flatten()
        .filter_map(|e| {
            let path = e.path();
            if path.extension()? != "json" {
                return None;
            }
            let bytes = std::fs::read_to_string(&path).ok()?;
            let value = json::parse(bytes.trim_end()).ok()?;
            if value.get("format")?.as_u64()? != CACHE_FORMAT_VERSION {
                return None;
            }
            let profile = codec::profile_from_value(value.get("profile")?).ok()?;
            Some((path, profile))
        })
        .collect();
    profiles.sort_by(|(a, _), (b, _)| a.cmp(b));
    profiles.into_iter().map(|(_, p)| p).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdb_workloads::catalog;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("bdb-engine-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn reps(n: usize) -> Vec<WorkloadDef> {
        catalog::representatives().into_iter().take(n).collect()
    }

    fn profile_bits(p: &WorkloadProfile) -> (u64, u64, Vec<u64>) {
        (
            p.report.instructions,
            p.report.cycles.to_bits(),
            p.metrics.values().iter().map(|v| v.to_bits()).collect(),
        )
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let workloads = reps(4);
        let machine = MachineConfig::xeon_e5645();
        let node = NodeConfig::default();
        let parallel = Engine::new(EngineConfig::default().threads(4)).profile_all(
            &workloads,
            Scale::tiny(),
            &machine,
            &node,
        );
        let serial = Engine::serial().profile_all(&workloads, Scale::tiny(), &machine, &node);
        assert_eq!(parallel.len(), serial.len());
        for (p, s) in parallel.iter().zip(&serial) {
            assert_eq!(p.spec.id, s.spec.id, "order must be catalog order");
            assert_eq!(profile_bits(p), profile_bits(s), "{}", p.spec.id);
        }
    }

    #[test]
    fn memory_cache_serves_repeat_lookups() {
        let workloads = reps(2);
        let engine = Engine::in_memory();
        let machine = MachineConfig::xeon_e5645();
        let node = NodeConfig::default();
        let first = engine.profile_all(&workloads, Scale::tiny(), &machine, &node);
        let again = engine.profile_all(&workloads, Scale::tiny(), &machine, &node);
        let counters = engine.counters();
        assert_eq!(counters.computed, 2);
        assert_eq!(counters.memory_hits, 2);
        for (a, b) in first.iter().zip(&again) {
            assert_eq!(profile_bits(a), profile_bits(b));
        }
    }

    #[test]
    fn disk_cache_round_trips_identical_bytes() {
        let dir = scratch_dir("disk");
        let workloads = reps(1);
        let machine = MachineConfig::xeon_e5645();
        let node = NodeConfig::default();

        let cold_engine = Engine::new(
            EngineConfig::default()
                .threads(1)
                .cache_dir(&dir)
                .without_memory_cache(),
        );
        let cold = cold_engine.profile(&workloads[0], Scale::tiny(), &machine, &node);
        let path = cold_engine
            .cache_file(&workloads[0], Scale::tiny(), &machine, &node)
            .unwrap();
        let cold_bytes = std::fs::read_to_string(&path).expect("cache file written");

        // A fresh engine over the same directory must hit, not recompute,
        // and leave the exact bytes in place.
        let warm_engine = Engine::new(
            EngineConfig::default()
                .threads(1)
                .cache_dir(&dir)
                .without_memory_cache(),
        );
        let warm = warm_engine.profile(&workloads[0], Scale::tiny(), &machine, &node);
        assert_eq!(warm_engine.counters().disk_hits, 1);
        assert_eq!(warm_engine.counters().computed, 0);
        assert_eq!(profile_bits(&cold), profile_bits(&warm));
        let warm_bytes = std::fs::read_to_string(&path).unwrap();
        assert_eq!(warm_bytes, cold_bytes, "warm read must return cold bytes");

        // The diagnostics loader sees the entry too.
        assert_eq!(read_cache_dir(&dir).len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_cache_entry_is_recomputed() {
        let dir = scratch_dir("corrupt");
        let workloads = reps(1);
        let machine = MachineConfig::xeon_e5645();
        let node = NodeConfig::default();
        let engine = Engine::new(
            EngineConfig::default()
                .threads(1)
                .cache_dir(&dir)
                .without_memory_cache(),
        );
        let p = engine.profile(&workloads[0], Scale::tiny(), &machine, &node);
        let path = engine
            .cache_file(&workloads[0], Scale::tiny(), &machine, &node)
            .unwrap();
        std::fs::write(&path, "{not json").unwrap();
        let q = engine.profile(&workloads[0], Scale::tiny(), &machine, &node);
        assert_eq!(engine.counters().computed, 2, "corrupt entry must miss");
        assert_eq!(profile_bits(&p), profile_bits(&q));
        // The miss rewrote a valid entry.
        assert!(decode_cache_entry(
            &std::fs::read_to_string(&path).unwrap(),
            profile_fingerprint(&workloads[0].spec.id, Scale::tiny(), &machine, &node),
        )
        .is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_cap_evicts_without_corrupting_survivors() {
        let dir = scratch_dir("evict");
        let workloads = reps(4);
        let machine = MachineConfig::xeon_e5645();
        let node = NodeConfig::default();

        // Measure one entry to size the cap at roughly two entries.
        let probe = Engine::new(
            EngineConfig::default()
                .threads(1)
                .cache_dir(&dir)
                .without_memory_cache(),
        );
        probe.profile(&workloads[0], Scale::tiny(), &machine, &node);
        let entry_bytes = std::fs::metadata(
            probe
                .cache_file(&workloads[0], Scale::tiny(), &machine, &node)
                .unwrap(),
        )
        .unwrap()
        .len();
        let _ = std::fs::remove_dir_all(&dir);

        let cap = entry_bytes * 2 + entry_bytes / 2;
        let engine = Engine::new(
            EngineConfig::default()
                .threads(1)
                .cache_dir(&dir)
                .without_memory_cache()
                .cache_max_bytes(cap),
        );
        for w in &workloads {
            engine.profile(w, Scale::tiny(), &machine, &node);
        }

        // The cap held: at most two entries survive and the total fits.
        let survivors = read_cache_dir(&dir);
        assert!(
            (1..=2).contains(&survivors.len()),
            "expected 1-2 survivors under the cap, got {}",
            survivors.len()
        );
        let total: u64 = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .map(|e| e.metadata().unwrap().len())
            .sum();
        assert!(total <= cap, "cache dir {total} B exceeds cap {cap} B");

        // Surviving entries are intact: each decodes and is served as a
        // disk hit with bytes identical to a fresh recompute.
        for p in &survivors {
            let w = workloads
                .iter()
                .find(|w| w.spec.id == p.spec.id)
                .expect("survivor is one of the profiled workloads");
            let warm = Engine::new(
                EngineConfig::default()
                    .threads(1)
                    .cache_dir(&dir)
                    .without_memory_cache(),
            );
            let served = warm.profile(w, Scale::tiny(), &machine, &node);
            assert_eq!(warm.counters().disk_hits, 1, "{} must hit", w.spec.id);
            let fresh = Engine::serial().profile(w, Scale::tiny(), &machine, &node);
            assert_eq!(profile_bits(&served), profile_bits(&fresh), "{}", w.spec.id);
        }

        // Evicted entries are recomputed transparently.
        let recount = Engine::new(
            EngineConfig::default()
                .threads(1)
                .cache_dir(&dir)
                .without_memory_cache()
                .cache_max_bytes(cap),
        );
        for w in &workloads {
            recount.profile(w, Scale::tiny(), &machine, &node);
        }
        assert_eq!(
            recount.counters().computed + recount.counters().disk_hits,
            workloads.len() as u64
        );
        assert!(
            recount.counters().computed >= 2,
            "evicted entries recompute"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_hits_refresh_recency_for_eviction() {
        let dir = scratch_dir("lru");
        let workloads = reps(3);
        let machine = MachineConfig::xeon_e5645();
        let node = NodeConfig::default();
        let entry_bytes = {
            let probe = Engine::new(
                EngineConfig::default()
                    .threads(1)
                    .cache_dir(&dir)
                    .without_memory_cache(),
            );
            probe.profile(&workloads[0], Scale::tiny(), &machine, &node);
            let len = std::fs::metadata(
                probe
                    .cache_file(&workloads[0], Scale::tiny(), &machine, &node)
                    .unwrap(),
            )
            .unwrap()
            .len();
            let _ = std::fs::remove_dir_all(&dir);
            len
        };

        // Cap fits two entries. Write A then B, re-read A (refreshing its
        // recency), then write C: B, not A, must be the eviction victim.
        let engine = Engine::new(
            EngineConfig::default()
                .threads(1)
                .cache_dir(&dir)
                .without_memory_cache()
                .cache_max_bytes(entry_bytes * 2 + entry_bytes / 2),
        );
        let mtime = |w: &WorkloadDef| {
            std::fs::metadata(
                engine
                    .cache_file(w, Scale::tiny(), &machine, &node)
                    .unwrap(),
            )
            .and_then(|m| m.modified())
            .ok()
        };
        engine.profile(&workloads[0], Scale::tiny(), &machine, &node);
        engine.profile(&workloads[1], Scale::tiny(), &machine, &node);
        let before = mtime(&workloads[0]).expect("entry A exists");
        // File mtimes can be coarse; wait until the touch is observable.
        for _ in 0..50 {
            engine.profile(&workloads[0], Scale::tiny(), &machine, &node);
            if mtime(&workloads[0]).is_some_and(|t| t > before) {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        assert_eq!(engine.counters().computed, 2);
        engine.profile(&workloads[2], Scale::tiny(), &machine, &node);

        let check = Engine::new(
            EngineConfig::default()
                .threads(1)
                .cache_dir(&dir)
                .without_memory_cache(),
        );
        check.profile(&workloads[0], Scale::tiny(), &machine, &node);
        assert_eq!(
            check.counters().disk_hits,
            1,
            "recently-read entry A must survive eviction"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_separates_inputs() {
        let machine = MachineConfig::xeon_e5645();
        let atom = MachineConfig::atom_sweep(64);
        let node = NodeConfig::default();
        let base = profile_fingerprint("H-WordCount", Scale::tiny(), &machine, &node);
        assert_ne!(
            base,
            profile_fingerprint("H-Grep", Scale::tiny(), &machine, &node)
        );
        assert_ne!(
            base,
            profile_fingerprint("H-WordCount", Scale::small(), &machine, &node)
        );
        assert_ne!(
            base,
            profile_fingerprint("H-WordCount", Scale::tiny(), &atom, &node)
        );
        assert_eq!(
            base,
            profile_fingerprint("H-WordCount", Scale::tiny(), &machine, &node)
        );
    }

    fn sweep_probe_workload(sink: &mut dyn TraceSink) {
        let mut layout = bdb_trace::CodeLayout::new();
        let region = layout.region("kernel", 16 * 1024);
        let mut ctx = bdb_trace::ExecCtx::new(&layout, sink);
        let data = ctx.heap_alloc(64 * 1024, 64);
        ctx.frame(region, |ctx| {
            for i in 0..20_000u64 {
                ctx.read(data.addr(i * 64 % data.len()), 8);
                ctx.int_other(1);
            }
        });
    }

    #[test]
    fn engine_sweep_matches_serial_sweep() {
        let serial = bdb_sim::sweep("probe", &[16, 64, 256], sweep_probe_workload);
        let engine = Engine::new(EngineConfig::default().threads(3));
        let parallel = engine.sweep("probe", &[16, 64, 256], sweep_probe_workload);
        assert_eq!(parallel, serial);
    }

    #[test]
    fn sweep_modes_are_byte_identical_at_any_thread_count() {
        let caps = [16u64, 64, 256];
        let reference =
            bdb_sim::sweep_per_point(&SweepFamily::atom(), "probe", &caps, sweep_probe_workload);
        for threads in [1, 3] {
            for mode in [SweepMode::Fused, SweepMode::PerPoint] {
                let engine = Engine::new(EngineConfig::default().threads(threads).sweep_mode(mode));
                let result = engine.sweep("probe", &caps, sweep_probe_workload);
                assert_eq!(result, reference, "mode {mode:?} at {threads} threads");
            }
        }
    }

    #[test]
    fn sweep_mode_env_knob_selects_per_point() {
        // Env-var parsing only; never mutate the process env in tests.
        let fused = EngineConfig::default();
        assert_eq!(fused.sweep_mode, SweepMode::Fused);
        let per_point = EngineConfig::default().sweep_mode(SweepMode::PerPoint);
        assert_eq!(per_point.sweep_mode, SweepMode::PerPoint);
    }
}
