//! Execution engine — the one way figures, tables, sweeps, and the 77→17
//! reduction obtain measurements.
//!
//! Every consumer used to call `bdb_wcrt::profile::profile_workload` (or
//! the `sweep` harness) directly and serially. The [`Engine`] wraps those
//! entry points with two orthogonal services:
//!
//! * **Parallel fan-out** — [`Engine::profile_all`] and [`Engine::sweep`]
//!   dispatch independent simulations across a rayon thread pool. Results
//!   are collected back into catalog order, so output is bit-identical to
//!   a serial run (the `profile_is_deterministic` contract extends to the
//!   parallel path: same inputs, same bytes, any thread count).
//! * **Profile cache** — profiling the full catalog at paper scale takes
//!   minutes; the 45-metric vector for a given (workload, scale, machine
//!   config, node config) never changes. The engine memoizes profiles in
//!   memory and, when a cache directory is configured, as one JSON file
//!   per profile keyed by a content fingerprint. Re-running a figure
//!   binary after changing only presentation code touches no simulation.
//!
//! Persistence is crash-safe and integrity-checked (DESIGN.md §14):
//! every filesystem access flows through the [`store::CacheStore`] seam
//! (real backend or a seeded fault-injecting [`ChaosFs`]), cache entries
//! carry a CRC-64 content checksum and are moved to a `quarantine/`
//! subdirectory when verification fails — never silently reused or
//! recomputed over — and an optional write-ahead [`RunJournal`]
//! checkpoints completed profiles and sweeps so an interrupted run
//! resumes (`BDB_RESUME`) byte-identical to an uninterrupted one.
//!
//! Capacity sweeps run the workload generator exactly **once** in either
//! [`SweepMode`]: the default fused mode streams its events into
//! capacity-independent L1 event streams and replays those per capacity
//! (trace-once/replay-many, DESIGN.md §13); per-point mode records the
//! trace into a pooled buffer and replays a full machine per capacity.
//! Points parallelize across the pool (each is independent) but are
//! *not* cached: a sweep is driven by an arbitrary workload closure
//! whose content cannot be fingerprinted.
//!
//! # Examples
//!
//! ```
//! use bdb_engine::Engine;
//! use bdb_node::NodeConfig;
//! use bdb_sim::MachineConfig;
//! use bdb_workloads::{catalog, Scale};
//!
//! let engine = Engine::in_memory();
//! let reps = catalog::representatives();
//! let profiles = engine.profile_all(
//!     &reps[..2],
//!     Scale::tiny(),
//!     &MachineConfig::xeon_e5645(),
//!     &NodeConfig::default(),
//! );
//! assert_eq!(profiles.len(), 2);
//! assert_eq!(profiles[0].spec.id, reps[0].spec.id);
//! ```

pub mod codec;
pub mod journal;
pub mod json;
pub mod store;
pub mod task;

pub use journal::{sweep_key, JournalStats, RunJournal};
pub use store::{
    crc64, CacheStore, ChaosCounters, ChaosFs, ChaosPlan, FileMeta, RealFs, StoreError,
};
pub use task::{resolve_workload, Task, TaskError, TaskResult};

use bdb_node::NodeConfig;
use bdb_sim::{
    assemble_sweep, fused_points_parallel, sweep_point_replay, MachineConfig, StreamArena,
    SweepFamily, SweepResult,
};
use bdb_trace::{TraceBufferPool, TraceSink};
use bdb_wcrt::{profile_workload, WorkloadProfile};
use bdb_workloads::{Scale, WorkloadDef};
use rayon::prelude::*;
// The in-memory cache below is keyed-lookup only (get/insert by
// fingerprint, never iterated), so map order cannot reach profile bytes.
// bdb-lint: allow(determinism): keyed-lookup-only memo, never iterated.
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Bumped whenever the cache file layout changes. The version feeds
/// [`profile_fingerprint`], so old-format files simply stop being
/// referenced (their keys no longer occur) and fresh entries are written
/// under new names. Version 2 added the `crc64` content checksum;
/// version 3 moved the canonical encoder into `bdb-codec` and added the
/// binary (BDBC) entry form selected by [`CacheFormat`].
pub const CACHE_FORMAT_VERSION: u64 = 3;

/// On-disk encoding for cache entries and journal frame payloads.
/// Readers sniff the bytes (the binary container opens with the `BDBC`
/// magic, which can never begin a JSON entry), so the two formats
/// interoperate: the knob only chooses what new writes look like.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum CacheFormat {
    /// One canonical-JSON envelope per entry (`.json`) — the
    /// human-readable debug/interchange form.
    #[default]
    Json,
    /// One checksummed BDBC binary record per entry (`.bin`) — the
    /// compact form; losslessly convertible to and from the JSON form.
    Binary,
}

impl CacheFormat {
    /// File extension entries of this format are stored under.
    pub fn extension(self) -> &'static str {
        match self {
            CacheFormat::Json => "json",
            CacheFormat::Binary => "bin",
        }
    }

    /// The other format — the read path falls back to it so flipping
    /// `BDB_CACHE_FORMAT` over an existing cache re-serves entries
    /// instead of recomputing them.
    pub fn other(self) -> Self {
        match self {
            CacheFormat::Json => CacheFormat::Binary,
            CacheFormat::Binary => CacheFormat::Json,
        }
    }
}

/// Subdirectory of the cache dir where entries that fail verification
/// are moved (bytes preserved for forensics, never reused or
/// recomputed-over in place).
pub const QUARANTINE_DIR: &str = "quarantine";

/// Minimum sweep work — trace events times capacity points — before the
/// auto point width fans one sweep's replay across threads. Below this,
/// pool setup and per-point stream sharing cost more than the replay
/// itself (the old "1 thread beats 4 at tiny scale" inversion), so the
/// engine replays serially. An explicit `BDB_POINT_THREADS` overrides
/// the threshold. The value is roughly where the parallel path breaks
/// even on commodity cores: a few million replayed events.
pub const POINT_PARALLEL_MIN_WORK: u64 = 8 * 1024 * 1024;

/// How [`Engine::sweep`] computes its points.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SweepMode {
    /// Trace once, replay the extracted L1 streams per capacity (the
    /// fast path; byte-identical to `PerPoint` by contract).
    #[default]
    Fused,
    /// Re-run the workload on a full machine per capacity — the
    /// reference path, kept as the oracle and escape hatch.
    PerPoint,
}

/// How an [`Engine`] runs and where it remembers results.
#[derive(Clone, Default)]
pub struct EngineConfig {
    /// Worker threads for `profile_all` / `sweep`. `None` uses the
    /// machine's available parallelism; `Some(1)` is fully serial.
    pub threads: Option<usize>,
    /// Threads one sweep fans its capacity points across (intra-workload
    /// parallelism). `None` derives a width from the worker pool and
    /// falls back to serial replay below the
    /// [`POINT_PARALLEL_MIN_WORK`] threshold; an explicit value always
    /// wins, threshold included.
    pub point_threads: Option<usize>,
    /// Directory for the on-disk profile cache (one JSON file per
    /// profile). `None` disables the disk cache.
    pub cache_dir: Option<PathBuf>,
    /// Whether to also memoize profiles in memory (cheap; only worth
    /// disabling in cache-behaviour tests).
    pub no_memory_cache: bool,
    /// Size cap for the on-disk cache in bytes. When a write pushes the
    /// directory past the cap, least-recently-used entries (hits refresh
    /// recency) are evicted until it fits. `None` means unbounded.
    pub cache_max_bytes: Option<u64>,
    /// Encoding for new cache entries and journal frames (JSON by
    /// default; readers accept both regardless).
    pub cache_format: CacheFormat,
    /// Sweep execution strategy (fused trace-replay by default).
    pub sweep_mode: SweepMode,
    /// Storage backend behind every engine filesystem access. `None`
    /// uses the real filesystem ([`RealFs`]); chaos tests inject a
    /// seeded [`ChaosFs`].
    pub store: Option<Arc<dyn CacheStore>>,
    /// Path of the write-ahead run journal (see [`RunJournal`]). `None`
    /// disables journaling.
    pub journal_path: Option<PathBuf>,
    /// Whether to load completed work from an existing journal instead
    /// of starting it fresh.
    pub resume: bool,
    /// Context string pinned into the journal's `start` record; a
    /// journal resumes only under a byte-identical context (in the
    /// bench bins: the command line minus `--resume`).
    pub journal_context: String,
}

impl std::fmt::Debug for EngineConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineConfig")
            .field("threads", &self.threads)
            .field("point_threads", &self.point_threads)
            .field("cache_dir", &self.cache_dir)
            .field("no_memory_cache", &self.no_memory_cache)
            .field("cache_max_bytes", &self.cache_max_bytes)
            .field("cache_format", &self.cache_format)
            .field("sweep_mode", &self.sweep_mode)
            .field("store", &self.store.as_ref().map(|_| "<custom>"))
            .field("journal_path", &self.journal_path)
            .field("resume", &self.resume)
            .field("journal_context", &self.journal_context)
            .finish()
    }
}

impl EngineConfig {
    /// Caps the worker pool at `threads`.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Fans each sweep's capacity points across `threads` workers,
    /// bypassing the [`POINT_PARALLEL_MIN_WORK`] threshold (an explicit
    /// width is an instruction, not a hint).
    #[must_use]
    pub fn point_threads(mut self, threads: usize) -> Self {
        self.point_threads = Some(threads);
        self
    }

    /// Enables the on-disk cache under `dir`.
    #[must_use]
    pub fn cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Disables the in-memory memo (the disk cache, if any, still works).
    #[must_use]
    pub fn without_memory_cache(mut self) -> Self {
        self.no_memory_cache = true;
        self
    }

    /// Caps the on-disk cache at `bytes` (LRU-style eviction).
    #[must_use]
    pub fn cache_max_bytes(mut self, bytes: u64) -> Self {
        self.cache_max_bytes = Some(bytes);
        self
    }

    /// Selects the encoding for new cache entries and journal frames.
    #[must_use]
    pub fn cache_format(mut self, format: CacheFormat) -> Self {
        self.cache_format = format;
        self
    }

    /// Selects the sweep execution strategy.
    #[must_use]
    pub fn sweep_mode(mut self, mode: SweepMode) -> Self {
        self.sweep_mode = mode;
        self
    }

    /// Routes every filesystem access through `store` (tests inject a
    /// seeded [`ChaosFs`] here).
    #[must_use]
    pub fn store(mut self, store: Arc<dyn CacheStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// Enables the write-ahead run journal at `path`.
    #[must_use]
    pub fn journal(mut self, path: impl Into<PathBuf>) -> Self {
        self.journal_path = Some(path.into());
        self
    }

    /// Resumes completed work from an existing journal (no-op without
    /// [`journal`](Self::journal)).
    #[must_use]
    pub fn resume(mut self) -> Self {
        self.resume = true;
        self
    }

    /// Sets the journal context string (see the field docs).
    #[must_use]
    pub fn journal_context(mut self, context: impl Into<String>) -> Self {
        self.journal_context = context.into();
        self
    }

    /// Builds a config from the standard `BDB_*` environment knobs — the
    /// one place their semantics live, shared by the bench harness and
    /// the cluster worker daemon so the two cannot drift:
    ///
    /// * `BDB_CACHE_DIR` — disk-cache directory (default:
    ///   `results/cache/` at the workspace root).
    /// * `BDB_NO_CACHE=1` — disable the disk cache for this run.
    /// * `BDB_THREADS=<n>` — cap the worker pool (default: all cores).
    /// * `BDB_POINT_THREADS=<n>` — fan each sweep's capacity points
    ///   across `n` threads, even below the auto threshold (default:
    ///   auto — width follows the worker pool, and small sweeps stay
    ///   serial; see [`POINT_PARALLEL_MIN_WORK`]).
    /// * `BDB_CACHE_MAX_BYTES=<n>` — cap the disk cache; LRU entries are
    ///   evicted past the cap (default: unbounded).
    /// * `BDB_CACHE_FORMAT=binary` — persist new cache entries and
    ///   journal frames as checksummed BDBC binary records instead of
    ///   canonical JSON (default: `json`). Readers sniff the bytes, so
    ///   the two formats interoperate in one cache directory.
    /// * `BDB_SWEEP_MODE=per-point` — use the per-point reference sweep
    ///   instead of the fused trace-replay path (default: `fused`; the
    ///   two are byte-identical by contract).
    /// * `BDB_JOURNAL=<path>` — write-ahead run journal checkpointing
    ///   completed profiles and sweeps (default: none).
    /// * `BDB_RESUME=1` — resume completed work from the journal
    ///   (implies a default journal path of `results/journal/run.wal`
    ///   at the workspace root when `BDB_JOURNAL` is unset).
    pub fn from_env() -> Self {
        let mut config = EngineConfig::default();
        if std::env::var_os("BDB_NO_CACHE").is_none() {
            let dir = std::env::var_os("BDB_CACHE_DIR")
                .map(PathBuf::from)
                .unwrap_or_else(|| {
                    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/cache"))
                });
            config = config.cache_dir(dir);
        }
        if let Some(threads) = std::env::var("BDB_THREADS")
            .ok()
            .and_then(|t| t.parse().ok())
        {
            config = config.threads(threads);
        }
        if let Some(threads) = std::env::var("BDB_POINT_THREADS")
            .ok()
            .and_then(|t| t.parse().ok())
        {
            config = config.point_threads(threads);
        }
        if let Some(bytes) = std::env::var("BDB_CACHE_MAX_BYTES")
            .ok()
            .and_then(|b| b.parse().ok())
        {
            config = config.cache_max_bytes(bytes);
        }
        if let Ok(format) = std::env::var("BDB_CACHE_FORMAT") {
            if matches!(format.as_str(), "binary" | "bin" | "bdbc") {
                config = config.cache_format(CacheFormat::Binary);
            }
        }
        if let Ok(mode) = std::env::var("BDB_SWEEP_MODE") {
            if matches!(mode.as_str(), "per-point" | "perpoint" | "per_point") {
                config = config.sweep_mode(SweepMode::PerPoint);
            }
        }
        if let Some(path) = std::env::var_os("BDB_JOURNAL") {
            config = config.journal(PathBuf::from(path));
        }
        if std::env::var_os("BDB_RESUME").is_some() {
            config = config.resume();
            if config.journal_path.is_none() {
                config = config.journal(PathBuf::from(concat!(
                    env!("CARGO_MANIFEST_DIR"),
                    "/../../results/journal/run.wal"
                )));
            }
        }
        if config.journal_path.is_some() {
            config = config.journal_context(argv_journal_context());
        }
        config
    }
}

/// The default journal context: the process's own command line minus the
/// `--resume` flag itself, so "the same command, resumed" matches while
/// any change to the inputs (scale, workload list, cluster set) resets
/// the journal instead of splicing in stale results.
pub fn argv_journal_context() -> String {
    std::env::args()
        .filter(|arg| arg != "--resume")
        .collect::<Vec<_>>()
        .join(" ")
}

/// Cache-traffic counters (monotonic over the engine's lifetime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Profiles served from the in-memory memo.
    pub memory_hits: u64,
    /// Profiles decoded from a cache file.
    pub disk_hits: u64,
    /// Profiles and sweeps replayed from the run journal.
    pub journal_hits: u64,
    /// Profiles actually simulated.
    pub computed: u64,
    /// Store operations that failed (reads, writes, renames, journal
    /// appends). The old code swallowed all of these with `.ok()`.
    pub disk_errors: u64,
    /// Cache entries that failed verification and were moved to the
    /// [`QUARANTINE_DIR`] subdirectory.
    pub corrupt_quarantined: u64,
    /// Stale `.tmp` files from crashed writers reclaimed at startup.
    pub tmp_reclaimed: u64,
    /// Memoized profiles dropped via [`Engine::invalidate`] (incremental
    /// recomputation marking entries stale).
    pub invalidated: u64,
    /// Profiles computed elsewhere and admitted via [`Engine::admit`]
    /// (the cluster's replicated result tier pushing entries here).
    pub replicas_admitted: u64,
}

/// How the engine dispatches independent simulations.
///
/// Degradation is always safe: the parallel path is bit-identical to the
/// serial one, so falling back from `Pool` to `Serial` (when thread-pool
/// construction fails) changes wall-clock time, never output bytes.
enum Dispatch {
    /// A dedicated pool capped at the configured width.
    Pool(rayon::ThreadPool),
    /// The ambient rayon context (machine parallelism).
    Ambient,
    /// Plain serial iteration on the calling thread — used for
    /// `threads = 1` and as the fallback when pool construction fails.
    Serial,
}

/// The parallel, cache-aware measurement engine. See the crate docs.
pub struct Engine {
    dispatch: Dispatch,
    store: Arc<dyn CacheStore>,
    cache_dir: Option<PathBuf>,
    cache_max_bytes: Option<u64>,
    cache_format: CacheFormat,
    sweep_mode: SweepMode,
    /// Threads one sweep fans its capacity points across (`None` =
    /// derive from the pool, threshold-gated).
    point_threads: Option<usize>,
    /// Recycled trace buffers for per-point sweeps (which record once and
    /// replay a full machine per capacity): consecutive sweeps and
    /// concurrent sweep callers reuse recorded-trace chunk allocations.
    buffers: TraceBufferPool,
    /// Recycled RLE stream buffers for fused sweeps — repeated sweeps
    /// reuse the extracted-stream vectors instead of reallocating them.
    streams: StreamArena,
    // bdb-lint: allow(determinism): keyed-lookup-only memo, never iterated.
    memory: Option<Mutex<HashMap<u64, WorkloadProfile>>>,
    journal: Option<Mutex<RunJournal>>,
    memory_hits: AtomicU64,
    disk_hits: AtomicU64,
    journal_hits: AtomicU64,
    computed: AtomicU64,
    disk_errors: AtomicU64,
    corrupt_quarantined: AtomicU64,
    tmp_reclaimed: AtomicU64,
    invalidated: AtomicU64,
    replicas_admitted: AtomicU64,
}

impl Engine {
    /// Builds an engine from `config`. The cache directory is created
    /// eagerly; if creation fails the disk cache is disabled (profiling
    /// still works, nothing persists). Likewise, if the worker pool
    /// cannot be built the engine degrades to serial execution rather
    /// than panicking — output is identical either way.
    pub fn new(config: EngineConfig) -> Self {
        let dispatch = match config.threads {
            None => Dispatch::Ambient,
            Some(1) => Dispatch::Serial,
            Some(n) => rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build()
                .map_or(Dispatch::Serial, Dispatch::Pool),
        };
        let store: Arc<dyn CacheStore> = config.store.unwrap_or_else(|| Arc::new(RealFs));
        let cache_dir = config
            .cache_dir
            .filter(|dir| store.create_dir_all(dir).is_ok());
        let tmp_reclaimed = cache_dir
            .as_ref()
            .map_or(0, |dir| reclaim_stale_tmp(store.as_ref(), dir));
        let mut disk_errors = 0u64;
        let journal = config.journal_path.map(|path| {
            let (journal, stats) = RunJournal::open(
                store.clone(),
                path,
                &config.journal_context,
                config.resume,
                config.cache_format,
            );
            disk_errors += stats.io_errors;
            Mutex::new(journal)
        });
        Engine {
            dispatch,
            store,
            cache_dir,
            cache_max_bytes: config.cache_max_bytes,
            cache_format: config.cache_format,
            sweep_mode: config.sweep_mode,
            point_threads: config.point_threads,
            buffers: TraceBufferPool::new(),
            streams: StreamArena::new(),
            // bdb-lint: allow(determinism): keyed-lookup-only memo.
            memory: (!config.no_memory_cache).then(|| Mutex::new(HashMap::new())),
            journal,
            memory_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            journal_hits: AtomicU64::new(0),
            computed: AtomicU64::new(0),
            disk_errors: AtomicU64::new(disk_errors),
            corrupt_quarantined: AtomicU64::new(0),
            tmp_reclaimed: AtomicU64::new(tmp_reclaimed),
            invalidated: AtomicU64::new(0),
            replicas_admitted: AtomicU64::new(0),
        }
    }

    /// Completed work currently known to this engine's journal as
    /// `(tasks, sweeps)`, or `None` when journaling is disabled. Right
    /// after construction this is what a resume preloaded.
    pub fn journal_preloaded(&self) -> Option<(usize, usize)> {
        let journal = self.journal.as_ref()?;
        let guard = lock_journal(journal);
        Some((guard.task_count(), guard.sweep_count()))
    }

    /// Parallel engine with the in-memory memo only (no disk cache).
    pub fn in_memory() -> Self {
        Engine::new(EngineConfig::default())
    }

    /// Single-threaded engine with all caching disabled — the baseline
    /// the parallel path must match bit for bit.
    pub fn serial() -> Self {
        Engine::new(EngineConfig::default().threads(1).without_memory_cache())
    }

    /// Worker threads `profile_all` / `sweep` fan out to.
    pub fn worker_threads(&self) -> usize {
        match &self.dispatch {
            Dispatch::Pool(pool) => pool.current_num_threads(),
            Dispatch::Ambient => rayon::current_num_threads(),
            Dispatch::Serial => 1,
        }
    }

    /// Threads one sweep fans its capacity points across when the work
    /// clears the [`POINT_PARALLEL_MIN_WORK`] threshold: the configured
    /// `BDB_POINT_THREADS` width, or the worker-pool width when unset.
    pub fn point_threads(&self) -> usize {
        self.point_threads.unwrap_or_else(|| self.worker_threads())
    }

    /// Width one sweep's capacity-point replay actually fans out to, for
    /// a sweep of `events` trace events replayed at `points` capacities.
    ///
    /// Below [`POINT_PARALLEL_MIN_WORK`] (events × points) the auto
    /// width demotes to serial: forking a pool costs more than replaying
    /// a small trace, which is how 1 thread used to beat 4 at tiny
    /// scale. An explicit `BDB_POINT_THREADS` is an instruction, not a
    /// hint, and skips the threshold.
    pub fn point_fanout(&self, events: u64, points: usize) -> usize {
        let width = self.point_threads();
        if width <= 1 {
            return 1;
        }
        if self.point_threads.is_none()
            && events.saturating_mul(points as u64) < POINT_PARALLEL_MIN_WORK
        {
            return 1;
        }
        width
    }

    /// Cache-traffic counters so far.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            memory_hits: self.memory_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            journal_hits: self.journal_hits.load(Ordering::Relaxed),
            computed: self.computed.load(Ordering::Relaxed),
            disk_errors: self.disk_errors.load(Ordering::Relaxed),
            corrupt_quarantined: self.corrupt_quarantined.load(Ordering::Relaxed),
            tmp_reclaimed: self.tmp_reclaimed.load(Ordering::Relaxed),
            invalidated: self.invalidated.load(Ordering::Relaxed),
            replicas_admitted: self.replicas_admitted.load(Ordering::Relaxed),
        }
    }

    /// Admits a profile computed *elsewhere* (a replica pushed by the
    /// cluster coordinator) into this engine's caches: persisted exactly
    /// like a locally computed entry — same CRC-64 envelope, same
    /// tmp+rename write, same LRU cap — and memoized. Read-side
    /// verification is unchanged, so a replica that corrupts on disk
    /// quarantines independently of every other copy.
    pub fn admit(&self, workload_id: &str, fingerprint: u64, profile: &WorkloadProfile) {
        self.write_cache_file(workload_id, fingerprint, profile);
        self.remember(fingerprint, profile);
        self.replicas_admitted.fetch_add(1, Ordering::Relaxed);
    }

    /// The content fingerprints of every entry in the disk cache, sorted
    /// and deduplicated — what a cluster worker advertises in `Hello` so
    /// the coordinator can route matching tasks to warm machines. Keys
    /// are parsed from file names only; no entry bytes are read or
    /// verified here (a corrupt entry is still quarantined at read time,
    /// and the task then recomputes).
    pub fn cached_fingerprints(&self) -> Vec<u64> {
        let Some(dir) = &self.cache_dir else {
            return Vec::new();
        };
        let Ok(files) = self.store.list(dir) else {
            return Vec::new();
        };
        let mut keys: Vec<u64> = files
            .iter()
            .filter_map(|meta| {
                let name = meta.path.file_name()?.to_str()?;
                let stem = name
                    .strip_suffix(".json")
                    .or_else(|| name.strip_suffix(".bin"))?;
                let (_, hex) = stem.rsplit_once('-')?;
                if hex.len() != 16 {
                    return None;
                }
                u64::from_str_radix(hex, 16).ok()
            })
            .collect();
        keys.sort_unstable();
        keys.dedup();
        keys
    }

    /// Drops one memoized profile by fingerprint, returning whether an
    /// entry was present. This is the invalidation hook incremental
    /// consumers (`bdb-serve`) use when a spec or knob change supersedes
    /// an entry: the stale profile stops occupying memo space, and a
    /// later request for the *same* fingerprint recomputes (or re-reads
    /// disk) instead of trusting a value the caller declared stale. The
    /// disk cache is content-keyed by the same fingerprint, so entries
    /// there stay valid by construction and are left in place.
    pub fn invalidate(&self, fingerprint: u64) -> bool {
        let Some(memory) = &self.memory else {
            return false;
        };
        let dropped = lock(memory).remove(&fingerprint).is_some();
        if dropped {
            self.invalidated.fetch_add(1, Ordering::Relaxed);
        }
        dropped
    }

    /// [`Engine::invalidate`] for a [`Task`]: drops the memo entry the
    /// task's fingerprint keys.
    pub fn invalidate_task(&self, task: &Task) -> bool {
        self.invalidate(task.fingerprint())
    }

    /// The cache file a profile persists to, if a disk cache is
    /// configured.
    pub fn cache_file(
        &self,
        workload: &WorkloadDef,
        scale: Scale,
        machine: &MachineConfig,
        node: &NodeConfig,
    ) -> Option<PathBuf> {
        let key = profile_fingerprint(&workload.spec.id, scale, machine, node);
        self.cache_dir
            .as_ref()
            .map(|dir| dir.join(cache_file_name(&workload.spec.id, key, self.cache_format)))
    }

    /// Profiles one workload, consulting the caches first.
    pub fn profile(
        &self,
        workload: &WorkloadDef,
        scale: Scale,
        machine: &MachineConfig,
        node: &NodeConfig,
    ) -> WorkloadProfile {
        let key = profile_fingerprint(&workload.spec.id, scale, machine, node);
        if let Some(memory) = &self.memory {
            if let Some(hit) = lock(memory).get(&key) {
                self.memory_hits.fetch_add(1, Ordering::Relaxed);
                return hit.clone();
            }
        }
        if let Some(journal) = &self.journal {
            let hit = lock_journal(journal).completed_task(key).cloned();
            if let Some(profile) = hit {
                self.journal_hits.fetch_add(1, Ordering::Relaxed);
                self.remember(key, &profile);
                return profile;
            }
        }
        if let Some(profile) = self.read_cache_file(&workload.spec.id, key) {
            self.disk_hits.fetch_add(1, Ordering::Relaxed);
            self.remember(key, &profile);
            return profile;
        }
        let profile = profile_workload(workload, scale, machine.clone(), *node);
        self.computed.fetch_add(1, Ordering::Relaxed);
        self.write_cache_file(&workload.spec.id, key, &profile);
        self.journal_task(key, &profile);
        self.remember(key, &profile);
        profile
    }

    /// Profiles every workload, fanning the independent simulations out
    /// across the worker pool. The result vector is in `workloads` order
    /// and bit-identical to calling [`Engine::profile`] in a serial loop.
    pub fn profile_all(
        &self,
        workloads: &[WorkloadDef],
        scale: Scale,
        machine: &MachineConfig,
        node: &NodeConfig,
    ) -> Vec<WorkloadProfile> {
        if matches!(self.dispatch, Dispatch::Serial) {
            return workloads
                .iter()
                .map(|w| self.profile(w, scale, machine, node))
                .collect();
        }
        self.install(|| {
            workloads
                .par_iter()
                .map(|w| self.profile(w, scale, machine, node))
                .collect()
        })
    }

    /// Runs a capacity sweep (paper §5.4), fanning the independent
    /// capacity points across [`Engine::point_fanout`] threads when the
    /// sweep is big enough to pay for them (serial below
    /// [`POINT_PARALLEL_MIN_WORK`]; `BDB_POINT_THREADS` overrides).
    /// Equivalent to [`bdb_sim::sweep`]; the curves are assembled in
    /// `capacities_kib` order, so output is identical at any thread
    /// count and in either [`SweepMode`].
    ///
    /// Either mode runs the workload generator exactly **once**. In the
    /// default fused mode its events stream straight into the extracted
    /// L1 event streams ([`bdb_sim::SweepStreams::record`] — no trace is
    /// materialized) and each capacity point replays those streams
    /// ([`bdb_sim::fused_point`]). In per-point mode
    /// (`BDB_SWEEP_MODE=per-point`) the trace is recorded into a pooled
    /// buffer and a full machine replays it per capacity
    /// ([`bdb_sim::sweep_point_replay`]) — the reference semantics, one
    /// whole machine per point, without re-generating.
    ///
    /// # Panics
    ///
    /// Panics if `capacities_kib` is empty.
    pub fn sweep<F>(&self, label: &str, capacities_kib: &[u64], workload: F) -> SweepResult
    where
        F: Fn(&mut dyn TraceSink) + Sync,
    {
        self.sweep_with_fanout(label, capacities_kib, &workload, None)
    }

    /// Runs every labelled sweep job at the same capacities, fanning
    /// *workloads* across the worker pool and splitting the leftover
    /// width across each sweep's capacity points. With `J` jobs on a
    /// `W`-wide pool each sweep replays its points `max(W / J, 1)` wide,
    /// so workloads × points fill the pool without oversubscribing it —
    /// the shape that scales past the per-workload Amdahl ceiling (one
    /// sweep's serial trace extraction bounds its own speedup, but not
    /// the batch's). Results are in `jobs` order and byte-identical to
    /// calling [`Engine::sweep`] in a serial loop.
    pub fn sweep_all<F>(&self, jobs: &[(String, F)], capacities_kib: &[u64]) -> Vec<SweepResult>
    where
        F: Fn(&mut dyn TraceSink) + Sync,
    {
        let width = self.worker_threads();
        if matches!(self.dispatch, Dispatch::Serial) || jobs.len() <= 1 || width <= 1 {
            return jobs
                .iter()
                .map(|(label, workload)| {
                    self.sweep_with_fanout(label, capacities_kib, workload, None)
                })
                .collect();
        }
        // Explicit inner width: the shim's pool-local width is not
        // inherited by its workers, so each sweep must be told its
        // share of the pool rather than asking the ambient context.
        let inner = (width / jobs.len().min(width)).max(1);
        self.install(|| {
            jobs.par_iter()
                .map(|(label, workload)| {
                    self.sweep_with_fanout(label, capacities_kib, workload, Some(inner))
                })
                .collect()
        })
    }

    /// [`Engine::sweep`] with an optional cap on the capacity-point
    /// fan-out width — [`Engine::sweep_all`] passes each job its share
    /// of the pool so nested parallelism cannot oversubscribe.
    fn sweep_with_fanout<F>(
        &self,
        label: &str,
        capacities_kib: &[u64],
        workload: &F,
        fanout_cap: Option<usize>,
    ) -> SweepResult
    where
        F: Fn(&mut dyn TraceSink) + Sync,
    {
        assert!(
            !capacities_kib.is_empty(),
            "sweep needs at least one capacity"
        );
        // Sweeps are driven by arbitrary closures whose content cannot
        // be fingerprinted, so journaled sweeps are keyed by (label,
        // capacities) and gated by the journal's context string: only
        // the byte-identical command line replays them.
        let key = journal::sweep_key(label, capacities_kib);
        if let Some(journal) = &self.journal {
            let hit = lock_journal(journal).completed_sweep(key).cloned();
            if let Some(result) = hit {
                self.journal_hits.fetch_add(1, Ordering::Relaxed);
                return result;
            }
        }
        let cap_width = |fanout: usize| match fanout_cap {
            Some(cap) => fanout.min(cap.max(1)),
            None => fanout,
        };
        let points = match self.sweep_mode {
            SweepMode::Fused => {
                let mut streams = self.streams.checkout();
                streams.record_into(|sink| workload(sink));
                let family = SweepFamily::atom();
                let fanout =
                    cap_width(self.point_fanout(streams.event_count(), capacities_kib.len()));
                let points = fused_points_parallel(&family, capacities_kib, &streams, fanout);
                self.streams.checkin(streams);
                points
            }
            SweepMode::PerPoint => {
                let mut buffer = self.buffers.checkout();
                workload(&mut buffer);
                let fanout = cap_width(self.point_fanout(buffer.len(), capacities_kib.len()));
                let points = if fanout <= 1 {
                    capacities_kib
                        .iter()
                        .map(|&kib| sweep_point_replay(kib, &buffer))
                        .collect()
                } else {
                    match rayon::ThreadPoolBuilder::new().num_threads(fanout).build() {
                        Ok(pool) => pool.install(|| {
                            capacities_kib
                                .par_iter()
                                .map(|&kib| sweep_point_replay(kib, &buffer))
                                .collect()
                        }),
                        // Degradation is safe: same bytes, serially.
                        Err(_) => capacities_kib
                            .iter()
                            .map(|&kib| sweep_point_replay(kib, &buffer))
                            .collect(),
                    }
                };
                self.buffers.checkin(buffer);
                points
            }
        };
        let result = assemble_sweep(label, capacities_kib, points);
        if let Some(journal) = &self.journal {
            if lock_journal(journal).record_sweep(key, &result).is_err() {
                self.disk_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        result
    }

    fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        match &self.dispatch {
            Dispatch::Pool(pool) => pool.install(f),
            Dispatch::Ambient | Dispatch::Serial => f(),
        }
    }

    fn remember(&self, key: u64, profile: &WorkloadProfile) {
        if let Some(memory) = &self.memory {
            lock(memory).insert(key, profile.clone());
        }
    }

    fn read_cache_file(&self, id: &str, key: u64) -> Option<WorkloadProfile> {
        let dir = self.cache_dir.as_ref()?;
        // Prefer the configured format, then fall back to the other
        // extension: flipping `BDB_CACHE_FORMAT` over an existing cache
        // keeps serving the old entries instead of recomputing.
        for format in [self.cache_format, self.cache_format.other()] {
            let path = dir.join(cache_file_name(id, key, format));
            let bytes = match self.store.read(&path) {
                Ok(Some(bytes)) => bytes,
                Ok(None) => continue,
                Err(_) => {
                    self.disk_errors.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
            };
            match verify_cache_entry(&bytes, key) {
                Ok(profile) => {
                    // A hit refreshes the entry's recency so LRU eviction
                    // spares hot entries. Best-effort: a failed touch only
                    // skews eviction order.
                    if self.cache_max_bytes.is_some() {
                        let _ = self.store.touch(&path);
                    }
                    return Some(profile);
                }
                Err(_) => self.quarantine(dir, &path),
            }
        }
        None
    }

    /// Moves an entry that failed verification into [`QUARANTINE_DIR`]:
    /// the damaged bytes are preserved for forensics and the slot is
    /// freed for a fresh entry — never silently reused, never
    /// recomputed-over in place. If even the move fails, the entry is
    /// removed so the live cache cannot keep serving it.
    fn quarantine(&self, dir: &Path, path: &Path) {
        self.corrupt_quarantined.fetch_add(1, Ordering::Relaxed);
        let moved = path.file_name().is_some_and(|name| {
            let quarantine_dir = dir.join(QUARANTINE_DIR);
            if self.store.create_dir_all(&quarantine_dir).is_err() {
                return false;
            }
            match self.store.rename(path, &quarantine_dir.join(name)) {
                Ok(()) => true,
                Err(_) => {
                    self.disk_errors.fetch_add(1, Ordering::Relaxed);
                    false
                }
            }
        });
        if !moved {
            let _ = self.store.remove(path);
        }
    }

    fn write_cache_file(&self, id: &str, key: u64, profile: &WorkloadProfile) {
        let Some(dir) = &self.cache_dir else {
            return;
        };
        let path = dir.join(cache_file_name(id, key, self.cache_format));
        let bytes = encode_cache_entry(key, profile, self.cache_format);
        // Write-to-temp + rename so concurrent engines never observe a
        // half-written entry; all writers produce identical bytes, so the
        // last rename winning is harmless. Both failure arms remove the
        // temp file — a failed write used to leak its partial `.tmp`.
        let tmp = dir.join(format!(
            ".{}.tmp{}",
            cache_file_name(id, key, self.cache_format),
            std::process::id()
        ));
        match self.store.write(&tmp, &bytes) {
            Ok(()) => {
                if self.store.rename(&tmp, &path).is_err() {
                    self.disk_errors.fetch_add(1, Ordering::Relaxed);
                    let _ = self.store.remove(&tmp);
                }
            }
            Err(_) => {
                self.disk_errors.fetch_add(1, Ordering::Relaxed);
                let _ = self.store.remove(&tmp);
            }
        }
        if let Some(cap) = self.cache_max_bytes {
            enforce_cache_cap(self.store.as_ref(), dir, cap);
        }
    }

    fn journal_task(&self, key: u64, profile: &WorkloadProfile) {
        if let Some(journal) = &self.journal {
            if lock_journal(journal).record_task(key, profile).is_err() {
                self.disk_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Removes stale temp files left by crashed writers. They are invisible
/// to [`enforce_cache_cap`] (which only counts `.json` / `.bin`), so
/// without this startup sweep they would accumulate forever.
fn reclaim_stale_tmp(store: &dyn CacheStore, dir: &Path) -> u64 {
    let Ok(files) = store.list(dir) else {
        return 0;
    };
    let mut reclaimed = 0;
    for meta in files {
        let name = meta
            .path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        if name.starts_with('.') && name.contains(".tmp") && store.remove(&meta.path).is_ok() {
            reclaimed += 1;
        }
    }
    reclaimed
}

/// Evicts least-recently-used cache entries until the directory's
/// `.json` and `.bin` entries total at most `max_bytes`. Recency is file
/// mtime (refreshed on hits); ties break on file name so eviction order
/// is deterministic.
/// Eviction removes whole files only — surviving entries are never
/// rewritten, so a cap can shrink the cache but never corrupt it.
/// Quarantined entries live in a subdirectory, which [`CacheStore::list`]
/// does not descend into, so they never count against the cap.
fn enforce_cache_cap(store: &dyn CacheStore, dir: &Path, max_bytes: u64) {
    let Ok(listed) = store.list(dir) else {
        return;
    };
    let mut files: Vec<FileMeta> = listed
        .into_iter()
        .filter(|meta| {
            meta.path
                .extension()
                .is_some_and(|e| e == "json" || e == "bin")
        })
        .collect();
    let mut total: u64 = files.iter().map(|meta| meta.len).sum();
    if total <= max_bytes {
        return;
    }
    files.sort_by(|a, b| (a.modified, &a.path).cmp(&(b.modified, &b.path)));
    for meta in files {
        if total <= max_bytes {
            break;
        }
        if store.remove(&meta.path).is_ok() {
            total = total.saturating_sub(meta.len);
        }
    }
}

/// Locks the memo with poison recovery: a panic in another profiling
/// thread must not cascade into every later cache lookup. The map holds
/// only fully-computed profiles (inserted after simulation completes),
/// so a poisoned guard still sees consistent data.
fn lock<'a>(
    // bdb-lint: allow(determinism): keyed-lookup-only memo, never iterated.
    memory: &'a Mutex<HashMap<u64, WorkloadProfile>>,
    // bdb-lint: allow(determinism): keyed-lookup-only memo, never iterated.
) -> std::sync::MutexGuard<'a, HashMap<u64, WorkloadProfile>> {
    memory
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Locks the journal with the same poison-recovery rationale as [`lock`]:
/// the journal only ever holds fully-appended records.
fn lock_journal(journal: &Mutex<RunJournal>) -> std::sync::MutexGuard<'_, RunJournal> {
    journal
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Content fingerprint of one measurement: FNV-1a over the cache format
/// version, the workload id, the exact scale factor bits, and the full
/// `Debug` renderings of both hardware configs. Any change to either
/// config type therefore changes every key, which is exactly right — the
/// measurement inputs changed.
pub fn profile_fingerprint(
    workload_id: &str,
    scale: Scale,
    machine: &MachineConfig,
    node: &NodeConfig,
) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(CACHE_FORMAT_VERSION);
    h.write(workload_id.as_bytes());
    h.write_u64(scale.factor().to_bits());
    h.write(format!("{machine:?}").as_bytes());
    h.write(format!("{node:?}").as_bytes());
    h.finish()
}

struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
        }
        // Length terminator so concatenated fields cannot alias.
        self.write_u64(bytes.len() as u64);
    }

    fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

fn cache_file_name(id: &str, key: u64, format: CacheFormat) -> String {
    let safe: String = id
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    format!("{safe}-{key:016x}.{}", format.extension())
}

fn encode_cache_entry(key: u64, profile: &WorkloadProfile, format: CacheFormat) -> Vec<u8> {
    let body = codec::profile_to_value(profile);
    match format {
        CacheFormat::Json => {
            let crc = crc64(body.encode().as_bytes());
            let mut text = json::Value::object(vec![
                ("format", json::Value::UInt(CACHE_FORMAT_VERSION)),
                ("crc64", json::Value::Str(format!("{crc:016x}"))),
                ("fingerprint", json::Value::Str(format!("{key:016x}"))),
                ("profile", body),
            ])
            .encode();
            text.push('\n');
            text.into_bytes()
        }
        // The BDBC container carries its own version and CRC-64 trailer,
        // so the binary entry is just the fingerprinted payload.
        CacheFormat::Binary => bdb_codec::encode_record(
            bdb_codec::RecordKind::CacheEntry,
            &bdb_codec::encode_cache_payload(key, &body),
        ),
    }
}

/// Verifies and decodes one cache entry against the key it was looked up
/// under. This is the single decode path for every reader (the engine's
/// own cache reads and [`read_cache_dir`]), so no two readers can
/// disagree on what counts as a valid entry. The entry's format is
/// sniffed from its bytes (binary entries open with the `BDBC` magic),
/// so readers work regardless of the writer's [`CacheFormat`]. Any
/// failure — bad UTF-8, bad JSON, non-canonical bytes, wrong format
/// version, checksum or fingerprint mismatch, undecodable profile — is
/// grounds for quarantine: entries are written canonically, so a valid
/// entry can only fail here if its bytes changed underneath us.
pub fn verify_cache_entry(bytes: &[u8], expected_key: u64) -> Result<WorkloadProfile, String> {
    if bdb_codec::is_binary(bytes) {
        return verify_binary_cache_entry(bytes, expected_key);
    }
    let text = std::str::from_utf8(bytes).map_err(|_| "entry is not UTF-8".to_owned())?;
    let body = text.trim_end();
    let value = json::parse(body).map_err(|_| "entry is not valid JSON".to_owned())?;
    // Canonical-byte stability first: stored entries are canonical, so
    // even damage that still parses to an equal JSON value (e.g. a case
    // flip inside a float exponent) re-encodes differently and is
    // caught before the checksum is even consulted.
    if value.encode() != body {
        return Err("entry bytes are not canonical".to_owned());
    }
    if value.get("format").and_then(|v| v.as_u64()) != Some(CACHE_FORMAT_VERSION) {
        return Err(format!(
            "unsupported cache format (want {CACHE_FORMAT_VERSION})"
        ));
    }
    let stored_crc = value
        .get("crc64")
        .and_then(|v| v.as_str())
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .ok_or_else(|| "missing or malformed crc64".to_owned())?;
    let profile_value = value
        .get("profile")
        .ok_or_else(|| "missing profile".to_owned())?;
    let actual_crc = crc64(profile_value.encode().as_bytes());
    if stored_crc != actual_crc {
        return Err(format!(
            "checksum mismatch: stored {stored_crc:016x}, computed {actual_crc:016x}"
        ));
    }
    let expected = format!("{expected_key:016x}");
    if value.get("fingerprint").and_then(|v| v.as_str()) != Some(expected.as_str()) {
        return Err(format!("fingerprint mismatch (want {expected})"));
    }
    codec::profile_from_value(profile_value).map_err(|e| e.to_string())
}

/// The binary arm of [`verify_cache_entry`]: container (magic, version,
/// kind, exact length, CRC-64 trailer), fingerprint, byte-stability
/// under re-encode, then profile decode — the same failure classes the
/// JSON arm checks, in the same order of cheapness.
fn verify_binary_cache_entry(bytes: &[u8], expected_key: u64) -> Result<WorkloadProfile, String> {
    let payload = bdb_codec::decode_record_of(bdb_codec::RecordKind::CacheEntry, bytes)
        .map_err(|e| e.to_string())?;
    let (fingerprint, profile_value) =
        bdb_codec::decode_cache_payload(payload).map_err(|e| e.to_string())?;
    if fingerprint != expected_key {
        return Err(format!("fingerprint mismatch (want {expected_key:016x})"));
    }
    let reencoded = bdb_codec::encode_record(
        bdb_codec::RecordKind::CacheEntry,
        &bdb_codec::encode_cache_payload(fingerprint, &profile_value),
    );
    if reencoded != bytes {
        return Err("entry bytes are not canonical".to_owned());
    }
    codec::profile_from_value(&profile_value).map_err(|e| e.to_string())
}

/// Loads every valid cache entry under `dir` (diagnostics / inspection).
/// Each entry is verified by [`verify_cache_entry`] against the
/// fingerprint in its own file name — the same decode-and-verify path
/// the engine's cache reads use. Read-only: entries that fail
/// verification are skipped here, not quarantined.
pub fn read_cache_dir(dir: &Path) -> Vec<WorkloadProfile> {
    let Ok(files) = RealFs.list(dir) else {
        return Vec::new();
    };
    let mut profiles: Vec<(PathBuf, WorkloadProfile)> = files
        .into_iter()
        .filter_map(|meta| {
            let path = meta.path;
            let ext = path.extension()?;
            if ext != "json" && ext != "bin" {
                return None;
            }
            // `cache_file_name` ends the stem with `-{key:016x}`.
            let (_, hex) = path.file_stem()?.to_str()?.rsplit_once('-')?;
            let key = u64::from_str_radix(hex, 16).ok()?;
            let bytes = RealFs.read(&path).ok()??;
            let profile = verify_cache_entry(&bytes, key).ok()?;
            Some((path, profile))
        })
        .collect();
    profiles.sort_by(|(a, _), (b, _)| a.cmp(b));
    profiles.into_iter().map(|(_, p)| p).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdb_workloads::catalog;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("bdb-engine-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn reps(n: usize) -> Vec<WorkloadDef> {
        catalog::representatives().into_iter().take(n).collect()
    }

    fn profile_bits(p: &WorkloadProfile) -> (u64, u64, Vec<u64>) {
        (
            p.report.instructions,
            p.report.cycles.to_bits(),
            p.metrics.values().iter().map(|v| v.to_bits()).collect(),
        )
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let workloads = reps(4);
        let machine = MachineConfig::xeon_e5645();
        let node = NodeConfig::default();
        let parallel = Engine::new(EngineConfig::default().threads(4)).profile_all(
            &workloads,
            Scale::tiny(),
            &machine,
            &node,
        );
        let serial = Engine::serial().profile_all(&workloads, Scale::tiny(), &machine, &node);
        assert_eq!(parallel.len(), serial.len());
        for (p, s) in parallel.iter().zip(&serial) {
            assert_eq!(p.spec.id, s.spec.id, "order must be catalog order");
            assert_eq!(profile_bits(p), profile_bits(s), "{}", p.spec.id);
        }
    }

    #[test]
    fn invalidate_drops_the_memo_entry_and_counts() {
        let workloads = reps(1);
        let engine = Engine::in_memory();
        let machine = MachineConfig::xeon_e5645();
        let node = NodeConfig::default();
        let w = &workloads[0];
        let key = profile_fingerprint(&w.spec.id, Scale::tiny(), &machine, &node);
        engine.profile(w, Scale::tiny(), &machine, &node);
        assert_eq!(engine.counters().computed, 1);
        assert!(engine.invalidate(key), "entry was memoized");
        assert!(!engine.invalidate(key), "second drop is a no-op");
        assert_eq!(engine.counters().invalidated, 1);
        // The next request recomputes instead of hitting the memo.
        engine.profile(w, Scale::tiny(), &machine, &node);
        let counters = engine.counters();
        assert_eq!(counters.computed, 2);
        assert_eq!(counters.memory_hits, 0);
    }

    #[test]
    fn memory_cache_serves_repeat_lookups() {
        let workloads = reps(2);
        let engine = Engine::in_memory();
        let machine = MachineConfig::xeon_e5645();
        let node = NodeConfig::default();
        let first = engine.profile_all(&workloads, Scale::tiny(), &machine, &node);
        let again = engine.profile_all(&workloads, Scale::tiny(), &machine, &node);
        let counters = engine.counters();
        assert_eq!(counters.computed, 2);
        assert_eq!(counters.memory_hits, 2);
        for (a, b) in first.iter().zip(&again) {
            assert_eq!(profile_bits(a), profile_bits(b));
        }
    }

    #[test]
    fn disk_cache_round_trips_identical_bytes() {
        let dir = scratch_dir("disk");
        let workloads = reps(1);
        let machine = MachineConfig::xeon_e5645();
        let node = NodeConfig::default();

        let cold_engine = Engine::new(
            EngineConfig::default()
                .threads(1)
                .cache_dir(&dir)
                .without_memory_cache(),
        );
        let cold = cold_engine.profile(&workloads[0], Scale::tiny(), &machine, &node);
        let path = cold_engine
            .cache_file(&workloads[0], Scale::tiny(), &machine, &node)
            .unwrap();
        let cold_bytes = std::fs::read_to_string(&path).expect("cache file written");

        // A fresh engine over the same directory must hit, not recompute,
        // and leave the exact bytes in place.
        let warm_engine = Engine::new(
            EngineConfig::default()
                .threads(1)
                .cache_dir(&dir)
                .without_memory_cache(),
        );
        let warm = warm_engine.profile(&workloads[0], Scale::tiny(), &machine, &node);
        assert_eq!(warm_engine.counters().disk_hits, 1);
        assert_eq!(warm_engine.counters().computed, 0);
        assert_eq!(profile_bits(&cold), profile_bits(&warm));
        let warm_bytes = std::fs::read_to_string(&path).unwrap();
        assert_eq!(warm_bytes, cold_bytes, "warm read must return cold bytes");

        // The diagnostics loader sees the entry too.
        assert_eq!(read_cache_dir(&dir).len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn binary_cache_round_trips_and_interops_with_json_readers() {
        let dir = scratch_dir("bincache");
        let workloads = reps(1);
        let machine = MachineConfig::xeon_e5645();
        let node = NodeConfig::default();
        let binary = Engine::new(
            EngineConfig::default()
                .threads(1)
                .cache_dir(&dir)
                .without_memory_cache()
                .cache_format(CacheFormat::Binary),
        );
        let cold = binary.profile(&workloads[0], Scale::tiny(), &machine, &node);
        let path = binary
            .cache_file(&workloads[0], Scale::tiny(), &machine, &node)
            .unwrap();
        assert_eq!(path.extension().unwrap(), "bin");
        let bytes = std::fs::read(&path).expect("binary entry written");
        assert!(bdb_codec::is_binary(&bytes));

        // A fresh binary engine hits the entry.
        let warm = Engine::new(
            EngineConfig::default()
                .threads(1)
                .cache_dir(&dir)
                .without_memory_cache()
                .cache_format(CacheFormat::Binary),
        );
        let served = warm.profile(&workloads[0], Scale::tiny(), &machine, &node);
        assert_eq!(warm.counters().disk_hits, 1);
        assert_eq!(profile_bits(&cold), profile_bits(&served));

        // A JSON-configured engine falls back to the .bin entry — the
        // knob only affects writers, never what readers accept.
        let json_reader = Engine::new(
            EngineConfig::default()
                .threads(1)
                .cache_dir(&dir)
                .without_memory_cache(),
        );
        let via_json = json_reader.profile(&workloads[0], Scale::tiny(), &machine, &node);
        assert_eq!(json_reader.counters().disk_hits, 1);
        assert_eq!(json_reader.counters().computed, 0);
        assert_eq!(profile_bits(&cold), profile_bits(&via_json));

        // The diagnostics loader decodes the binary entry too, and the
        // binary entry is a fraction of the JSON entry's size.
        assert_eq!(read_cache_dir(&dir).len(), 1);
        let json_len = encode_cache_entry(
            profile_fingerprint(&workloads[0].spec.id, Scale::tiny(), &machine, &node),
            &cold,
            CacheFormat::Json,
        )
        .len();
        // Profiles are float-heavy (45 f64 metrics at 9 B each in
        // binary), so the entry-level win is modest; the ≥10x win lives
        // in the columnar trace chunks. Still: strictly, usefully smaller.
        assert!(
            bytes.len() * 4 < json_len * 3,
            "binary entry ({} B) should be at least 25% under the JSON entry ({json_len} B)",
            bytes.len()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_binary_entry_is_quarantined_and_recomputed() {
        let dir = scratch_dir("bincorrupt");
        let workloads = reps(1);
        let machine = MachineConfig::xeon_e5645();
        let node = NodeConfig::default();
        let engine = Engine::new(
            EngineConfig::default()
                .threads(1)
                .cache_dir(&dir)
                .without_memory_cache()
                .cache_format(CacheFormat::Binary),
        );
        let p = engine.profile(&workloads[0], Scale::tiny(), &machine, &node);
        let path = engine
            .cache_file(&workloads[0], Scale::tiny(), &machine, &node)
            .unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let q = engine.profile(&workloads[0], Scale::tiny(), &machine, &node);
        assert_eq!(engine.counters().computed, 2, "corrupt entry must miss");
        assert_eq!(engine.counters().corrupt_quarantined, 1);
        assert_eq!(profile_bits(&p), profile_bits(&q));
        // Damaged bytes preserved in quarantine/, fresh entry rewritten.
        let quarantined = dir.join(QUARANTINE_DIR).join(path.file_name().unwrap());
        assert_eq!(std::fs::read(&quarantined).unwrap(), bytes);
        let key = profile_fingerprint(&workloads[0].spec.id, Scale::tiny(), &machine, &node);
        assert!(verify_cache_entry(&std::fs::read(&path).unwrap(), key).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_cache_entry_is_quarantined_and_recomputed() {
        let dir = scratch_dir("corrupt");
        let workloads = reps(1);
        let machine = MachineConfig::xeon_e5645();
        let node = NodeConfig::default();
        let engine = Engine::new(
            EngineConfig::default()
                .threads(1)
                .cache_dir(&dir)
                .without_memory_cache(),
        );
        let p = engine.profile(&workloads[0], Scale::tiny(), &machine, &node);
        let path = engine
            .cache_file(&workloads[0], Scale::tiny(), &machine, &node)
            .unwrap();
        std::fs::write(&path, "{not json").unwrap();
        let q = engine.profile(&workloads[0], Scale::tiny(), &machine, &node);
        assert_eq!(engine.counters().computed, 2, "corrupt entry must miss");
        assert_eq!(engine.counters().corrupt_quarantined, 1);
        assert_eq!(profile_bits(&p), profile_bits(&q));
        // The damaged bytes moved to quarantine/ — preserved, not
        // recomputed-over in place.
        let quarantined = dir.join(QUARANTINE_DIR).join(path.file_name().unwrap());
        assert_eq!(std::fs::read_to_string(&quarantined).unwrap(), "{not json");
        // The miss rewrote a fresh valid entry in the live slot.
        let key = profile_fingerprint(&workloads[0].spec.id, Scale::tiny(), &machine, &node);
        assert!(verify_cache_entry(&std::fs::read(&path).unwrap(), key).is_ok());
        // The quarantine subdirectory is invisible to the diagnostics
        // loader (and to cap enforcement, which shares `list`).
        assert_eq!(read_cache_dir(&dir).len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_fingerprint_entry_is_quarantined_not_served() {
        let dir = scratch_dir("wrongkey");
        let workloads = reps(2);
        let machine = MachineConfig::xeon_e5645();
        let node = NodeConfig::default();
        let engine = Engine::new(
            EngineConfig::default()
                .threads(1)
                .cache_dir(&dir)
                .without_memory_cache(),
        );
        engine.profile(&workloads[0], Scale::tiny(), &machine, &node);
        let path_a = engine
            .cache_file(&workloads[0], Scale::tiny(), &machine, &node)
            .unwrap();
        let path_b = engine
            .cache_file(&workloads[1], Scale::tiny(), &machine, &node)
            .unwrap();
        // A valid entry parked under the wrong key must not be served.
        std::fs::copy(&path_a, &path_b).unwrap();
        engine.profile(&workloads[1], Scale::tiny(), &machine, &node);
        assert_eq!(engine.counters().computed, 2, "foreign entry must miss");
        assert_eq!(engine.counters().corrupt_quarantined, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_tmp_files_are_reclaimed_at_startup() {
        let dir = scratch_dir("tmpsweep");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(".H-Grep-00ff.json.tmp4242"), "partial").unwrap();
        std::fs::write(dir.join(".other.json.tmp7"), "partial").unwrap();
        let engine = Engine::new(
            EngineConfig::default()
                .threads(1)
                .cache_dir(&dir)
                .without_memory_cache(),
        );
        assert_eq!(engine.counters().tmp_reclaimed, 2);
        assert!(
            std::fs::read_dir(&dir).unwrap().next().is_none(),
            "stale tmp files must be gone"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_cache_write_counts_and_leaves_no_tmp() {
        let dir = scratch_dir("wfail");
        let workloads = reps(1);
        let machine = MachineConfig::xeon_e5645();
        let node = NodeConfig::default();
        let chaos = Arc::new(ChaosFs::new(ChaosPlan {
            write_error_period: Some(1), // every write fails
            ..ChaosPlan::clean(9)
        }));
        let engine = Engine::new(
            EngineConfig::default()
                .threads(1)
                .cache_dir(&dir)
                .without_memory_cache()
                .store(chaos),
        );
        engine.profile(&workloads[0], Scale::tiny(), &machine, &node);
        assert_eq!(engine.counters().disk_errors, 1, "failed write counted");
        assert!(
            std::fs::read_dir(&dir).unwrap().next().is_none(),
            "failed write must not leak a tmp file"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_cap_evicts_without_corrupting_survivors() {
        let dir = scratch_dir("evict");
        let workloads = reps(4);
        let machine = MachineConfig::xeon_e5645();
        let node = NodeConfig::default();

        // Measure one entry to size the cap at roughly two entries.
        let probe = Engine::new(
            EngineConfig::default()
                .threads(1)
                .cache_dir(&dir)
                .without_memory_cache(),
        );
        probe.profile(&workloads[0], Scale::tiny(), &machine, &node);
        let entry_bytes = std::fs::metadata(
            probe
                .cache_file(&workloads[0], Scale::tiny(), &machine, &node)
                .unwrap(),
        )
        .unwrap()
        .len();
        let _ = std::fs::remove_dir_all(&dir);

        let cap = entry_bytes * 2 + entry_bytes / 2;
        let engine = Engine::new(
            EngineConfig::default()
                .threads(1)
                .cache_dir(&dir)
                .without_memory_cache()
                .cache_max_bytes(cap),
        );
        for w in &workloads {
            engine.profile(w, Scale::tiny(), &machine, &node);
        }

        // The cap held: at most two entries survive and the total fits.
        let survivors = read_cache_dir(&dir);
        assert!(
            (1..=2).contains(&survivors.len()),
            "expected 1-2 survivors under the cap, got {}",
            survivors.len()
        );
        let total: u64 = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .map(|e| e.metadata().unwrap().len())
            .sum();
        assert!(total <= cap, "cache dir {total} B exceeds cap {cap} B");

        // Surviving entries are intact: each decodes and is served as a
        // disk hit with bytes identical to a fresh recompute.
        for p in &survivors {
            let w = workloads
                .iter()
                .find(|w| w.spec.id == p.spec.id)
                .expect("survivor is one of the profiled workloads");
            let warm = Engine::new(
                EngineConfig::default()
                    .threads(1)
                    .cache_dir(&dir)
                    .without_memory_cache(),
            );
            let served = warm.profile(w, Scale::tiny(), &machine, &node);
            assert_eq!(warm.counters().disk_hits, 1, "{} must hit", w.spec.id);
            let fresh = Engine::serial().profile(w, Scale::tiny(), &machine, &node);
            assert_eq!(profile_bits(&served), profile_bits(&fresh), "{}", w.spec.id);
        }

        // Evicted entries are recomputed transparently.
        let recount = Engine::new(
            EngineConfig::default()
                .threads(1)
                .cache_dir(&dir)
                .without_memory_cache()
                .cache_max_bytes(cap),
        );
        for w in &workloads {
            recount.profile(w, Scale::tiny(), &machine, &node);
        }
        assert_eq!(
            recount.counters().computed + recount.counters().disk_hits,
            workloads.len() as u64
        );
        assert!(
            recount.counters().computed >= 2,
            "evicted entries recompute"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_hits_refresh_recency_for_eviction() {
        let dir = scratch_dir("lru");
        let workloads = reps(3);
        let machine = MachineConfig::xeon_e5645();
        let node = NodeConfig::default();
        let entry_bytes = {
            let probe = Engine::new(
                EngineConfig::default()
                    .threads(1)
                    .cache_dir(&dir)
                    .without_memory_cache(),
            );
            probe.profile(&workloads[0], Scale::tiny(), &machine, &node);
            let len = std::fs::metadata(
                probe
                    .cache_file(&workloads[0], Scale::tiny(), &machine, &node)
                    .unwrap(),
            )
            .unwrap()
            .len();
            let _ = std::fs::remove_dir_all(&dir);
            len
        };

        // Cap fits two entries. Write A then B, re-read A (refreshing its
        // recency), then write C: B, not A, must be the eviction victim.
        let engine = Engine::new(
            EngineConfig::default()
                .threads(1)
                .cache_dir(&dir)
                .without_memory_cache()
                .cache_max_bytes(entry_bytes * 2 + entry_bytes / 2),
        );
        let mtime = |w: &WorkloadDef| {
            std::fs::metadata(
                engine
                    .cache_file(w, Scale::tiny(), &machine, &node)
                    .unwrap(),
            )
            .and_then(|m| m.modified())
            .ok()
        };
        engine.profile(&workloads[0], Scale::tiny(), &machine, &node);
        engine.profile(&workloads[1], Scale::tiny(), &machine, &node);
        let before = mtime(&workloads[0]).expect("entry A exists");
        // File mtimes can be coarse; wait until the touch is observable.
        for _ in 0..50 {
            engine.profile(&workloads[0], Scale::tiny(), &machine, &node);
            if mtime(&workloads[0]).is_some_and(|t| t > before) {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        assert_eq!(engine.counters().computed, 2);
        engine.profile(&workloads[2], Scale::tiny(), &machine, &node);

        let check = Engine::new(
            EngineConfig::default()
                .threads(1)
                .cache_dir(&dir)
                .without_memory_cache(),
        );
        check.profile(&workloads[0], Scale::tiny(), &machine, &node);
        assert_eq!(
            check.counters().disk_hits,
            1,
            "recently-read entry A must survive eviction"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_separates_inputs() {
        let machine = MachineConfig::xeon_e5645();
        let atom = MachineConfig::atom_sweep(64);
        let node = NodeConfig::default();
        let base = profile_fingerprint("H-WordCount", Scale::tiny(), &machine, &node);
        assert_ne!(
            base,
            profile_fingerprint("H-Grep", Scale::tiny(), &machine, &node)
        );
        assert_ne!(
            base,
            profile_fingerprint("H-WordCount", Scale::small(), &machine, &node)
        );
        assert_ne!(
            base,
            profile_fingerprint("H-WordCount", Scale::tiny(), &atom, &node)
        );
        assert_eq!(
            base,
            profile_fingerprint("H-WordCount", Scale::tiny(), &machine, &node)
        );
    }

    fn sweep_probe_workload(sink: &mut dyn TraceSink) {
        let mut layout = bdb_trace::CodeLayout::new();
        let region = layout.region("kernel", 16 * 1024);
        let mut ctx = bdb_trace::ExecCtx::new(&layout, sink);
        let data = ctx.heap_alloc(64 * 1024, 64);
        ctx.frame(region, |ctx| {
            for i in 0..20_000u64 {
                ctx.read(data.addr(i * 64 % data.len()), 8);
                ctx.int_other(1);
            }
        });
    }

    #[test]
    fn engine_sweep_matches_serial_sweep() {
        let serial = bdb_sim::sweep("probe", &[16, 64, 256], sweep_probe_workload);
        let engine = Engine::new(EngineConfig::default().threads(3));
        let parallel = engine.sweep("probe", &[16, 64, 256], sweep_probe_workload);
        assert_eq!(parallel, serial);
    }

    #[test]
    fn sweep_modes_are_byte_identical_at_any_thread_count() {
        let caps = [16u64, 64, 256];
        let reference =
            bdb_sim::sweep_per_point(&SweepFamily::atom(), "probe", &caps, sweep_probe_workload);
        for threads in [1, 3] {
            for mode in [SweepMode::Fused, SweepMode::PerPoint] {
                let engine = Engine::new(EngineConfig::default().threads(threads).sweep_mode(mode));
                let result = engine.sweep("probe", &caps, sweep_probe_workload);
                assert_eq!(result, reference, "mode {mode:?} at {threads} threads");
            }
        }
    }

    #[test]
    fn sweep_mode_env_knob_selects_per_point() {
        // Env-var parsing only; never mutate the process env in tests.
        let fused = EngineConfig::default();
        assert_eq!(fused.sweep_mode, SweepMode::Fused);
        let per_point = EngineConfig::default().sweep_mode(SweepMode::PerPoint);
        assert_eq!(per_point.sweep_mode, SweepMode::PerPoint);
    }

    #[test]
    fn point_fanout_demotes_small_sweeps_to_serial() {
        // Auto width: big sweeps fan out, small ones stay serial — the
        // fix for the tiny-scale "1 thread beats 4" inversion.
        let engine = Engine::new(EngineConfig::default().threads(4));
        assert_eq!(engine.point_threads(), 4);
        let points = 10usize;
        let below = POINT_PARALLEL_MIN_WORK / points as u64 - 1;
        let above = POINT_PARALLEL_MIN_WORK / points as u64 + 1;
        assert_eq!(engine.point_fanout(below, points), 1, "below threshold");
        assert_eq!(engine.point_fanout(above, points), 4, "above threshold");
        // An explicit width is an instruction: no threshold, any size.
        let pinned = Engine::new(EngineConfig::default().threads(4).point_threads(2));
        assert_eq!(pinned.point_threads(), 2);
        assert_eq!(pinned.point_fanout(1, 1), 2);
        // Width 1 (explicit or serial dispatch) never fans out.
        let serial = Engine::serial();
        assert_eq!(serial.point_fanout(u64::MAX, points), 1);
    }

    #[test]
    fn point_parallel_sweep_is_byte_identical_on_both_threshold_sides() {
        let caps = [16u64, 64, 256];
        let reference = bdb_sim::sweep("probe", &caps, sweep_probe_workload);
        // The tiny probe sits below the work threshold (auto → serial);
        // explicit point widths force the parallel replay on the same
        // trace, covering both sides of the threshold.
        for point_threads in [1usize, 2, 4] {
            for mode in [SweepMode::Fused, SweepMode::PerPoint] {
                let engine = Engine::new(
                    EngineConfig::default()
                        .threads(2)
                        .point_threads(point_threads)
                        .sweep_mode(mode),
                );
                let result = engine.sweep("probe", &caps, sweep_probe_workload);
                assert_eq!(
                    result, reference,
                    "{mode:?} at {point_threads} point threads"
                );
            }
            let auto = Engine::new(EngineConfig::default().threads(point_threads));
            assert_eq!(auto.sweep("probe", &caps, sweep_probe_workload), reference);
        }
    }

    #[test]
    fn sweep_all_matches_serial_sweep_loop() {
        let caps = [16u64, 64, 256];
        type Job = fn(&mut dyn TraceSink);
        let jobs: Vec<(String, Job)> = vec![
            ("alpha".to_owned(), sweep_probe_workload),
            ("beta".to_owned(), sweep_probe_workload),
            ("gamma".to_owned(), sweep_probe_workload),
        ];
        let serial: Vec<SweepResult> = jobs
            .iter()
            .map(|(label, w)| Engine::serial().sweep(label, &caps, w))
            .collect();
        for threads in [1usize, 4] {
            let engine = Engine::new(EngineConfig::default().threads(threads));
            let batch = engine.sweep_all(&jobs, &caps);
            assert_eq!(batch, serial, "{threads} threads");
        }
    }

    #[test]
    fn repeated_engine_sweeps_reuse_the_stream_arena() {
        // Same engine, back-to-back sweeps: the second record reuses the
        // first sweep's stream buffers (behavioural check: results stay
        // identical; the capacity reuse itself is pinned in bdb-sim).
        let engine = Engine::new(EngineConfig::default().threads(2));
        let caps = [16u64, 64];
        let first = engine.sweep("probe", &caps, sweep_probe_workload);
        let second = engine.sweep("probe", &caps, sweep_probe_workload);
        assert_eq!(first, second);
    }
}
