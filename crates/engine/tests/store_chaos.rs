//! Storage-chaos soak: the crash-safety acceptance test.
//!
//! A seeded [`ChaosFs`] injects ENOSPC-style write failures, torn
//! writes, rename failures, read errors, and read-time bit corruption
//! under a journaled, disk-cached engine, and the run is killed at every
//! task boundary. The contract under test:
//!
//! 1. **Byte identity.** A resumed run's profiles are byte-identical to
//!    an uninterrupted serial run, for every seeded fault schedule and
//!    every kill point.
//! 2. **Exact fault accounting.** Every injected fault is visible in
//!    [`CacheCounters`]: failed store ops land in `disk_errors`,
//!    injected bit corruption lands in `corrupt_quarantined` — nothing
//!    lost, nothing double-counted.
//! 3. **No silent damage.** Entries surviving in the main cache dir all
//!    decode cleanly; damaged ones are in `quarantine/`, not reused.
//!
//! `BDB_CHAOS_SEEDS=<n>` widens the seed sweep (CI's chaos-smoke job
//! sets it); the default keeps local runs quick.

use bdb_engine::{codec, CacheFormat, CacheStore, ChaosFs, ChaosPlan, Engine, EngineConfig};
use bdb_node::NodeConfig;
use bdb_sim::MachineConfig;
use bdb_wcrt::WorkloadProfile;
use bdb_workloads::{catalog, Scale, WorkloadDef};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const CONTEXT: &str = "store-chaos soak";

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bdb-chaos-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fleet() -> Vec<WorkloadDef> {
    catalog::representatives().into_iter().take(4).collect()
}

fn bytes_of(profiles: &[WorkloadProfile]) -> Vec<String> {
    profiles
        .iter()
        .map(|p| codec::profile_to_value(p).encode())
        .collect()
}

fn baseline(workloads: &[WorkloadDef]) -> Vec<String> {
    bytes_of(&Engine::serial().profile_all(
        workloads,
        Scale::tiny(),
        &MachineConfig::xeon_e5645(),
        &NodeConfig::default(),
    ))
}

/// A single-threaded journaled engine over `chaos`, so the fault
/// schedule (and therefore the accounting) is deterministic per seed.
fn chaos_engine(chaos: &Arc<ChaosFs>, dir: &Path, resume: bool, format: CacheFormat) -> Engine {
    let store: Arc<dyn CacheStore> = Arc::<ChaosFs>::clone(chaos);
    let mut config = EngineConfig::default()
        .threads(1)
        .store(store)
        .cache_dir(dir.join("cache"))
        .cache_format(format)
        .journal(dir.join("run.wal"))
        .journal_context(CONTEXT);
    if resume {
        config = config.resume();
    }
    Engine::new(config)
}

/// Injected faults and engine counters must balance exactly: every
/// failed op is one `disk_errors` tick, every injected corruption is one
/// `corrupt_quarantined` tick.
fn assert_accounted(engine: &Engine, chaos: &ChaosFs, leg: &str) {
    let counters = engine.counters();
    let injected = chaos.counters();
    assert_eq!(
        counters.disk_errors,
        injected.op_errors(),
        "{leg}: disk_errors must equal injected op faults ({injected:?} vs {counters:?})"
    );
    assert_eq!(
        counters.corrupt_quarantined, injected.read_corruptions,
        "{leg}: every injected corruption must be quarantined ({injected:?} vs {counters:?})"
    );
}

/// Entries still in the main cache dir must all decode cleanly — damage
/// either never landed (torn tmp writes are discarded) or was moved to
/// `quarantine/`.
fn assert_no_silent_damage(dir: &Path) {
    let cache = dir.join("cache");
    let entry_files = std::fs::read_dir(&cache)
        .map(|entries| {
            entries
                .flatten()
                .filter(|e| {
                    e.path()
                        .extension()
                        .is_some_and(|x| x == "json" || x == "bin")
                })
                .count()
        })
        .unwrap_or(0);
    let decoded = bdb_engine::read_cache_dir(&cache).len();
    assert_eq!(
        decoded, entry_files,
        "every surviving main-dir entry must verify"
    );
}

fn seed_count() -> u64 {
    std::env::var("BDB_CHAOS_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
}

#[test]
fn resumed_chaos_runs_are_byte_identical_and_fully_accounted() {
    let workloads = fleet();
    let serial = baseline(&workloads);
    let machine = MachineConfig::xeon_e5645();
    let node = NodeConfig::default();

    for seed in 0..seed_count() {
        for kill_point in 0..=workloads.len() {
            let dir = scratch(&format!("soak-{seed}-{kill_point}"));

            // Alternate the cache format across seeds, and flip it
            // between lives: the fault accounting and quarantine
            // contracts are format-independent, and a resumed engine
            // must read whatever format the first life wrote (readers
            // sniff bytes; the knob only selects what gets written).
            let (format1, format2) = if seed % 2 == 0 {
                (CacheFormat::Json, CacheFormat::Binary)
            } else {
                (CacheFormat::Binary, CacheFormat::Json)
            };

            // First life: profile the first `kill_point` workloads under
            // a storm of injected faults, then "die" (drop the engine).
            let chaos1 = Arc::new(ChaosFs::new(ChaosPlan::storm(seed)));
            {
                let engine = chaos_engine(&chaos1, &dir, false, format1);
                for w in &workloads[..kill_point] {
                    let p = engine.profile(w, Scale::tiny(), &machine, &node);
                    assert_eq!(
                        codec::profile_to_value(&p).encode(),
                        serial[workloads
                            .iter()
                            .position(|x| x.spec.id == w.spec.id)
                            .unwrap()],
                        "seed {seed} kill {kill_point}: first-life profile diverged"
                    );
                }
                assert_accounted(&engine, &chaos1, "first life");
            }

            // Second life: resume over the same directory, under a
            // *different* fault schedule, and finish the whole fleet.
            let chaos2 = Arc::new(ChaosFs::new(ChaosPlan::storm(seed.wrapping_add(1000))));
            let engine = chaos_engine(&chaos2, &dir, true, format2);
            let resumed = engine.profile_all(&workloads, Scale::tiny(), &machine, &node);
            assert_eq!(
                bytes_of(&resumed),
                serial,
                "seed {seed} kill {kill_point}: resumed bytes diverged from serial"
            );
            assert_accounted(&engine, &chaos2, "second life");
            assert_no_silent_damage(&dir);

            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

#[test]
fn resume_replays_journaled_tasks_instead_of_recomputing() {
    let workloads = fleet();
    let machine = MachineConfig::xeon_e5645();
    let node = NodeConfig::default();
    let dir = scratch("resume-honesty");

    // No disk cache: the journal must be the only reuse channel, so the
    // counters prove exactly where each profile came from.
    let journaled = |resume: bool| {
        let mut config = EngineConfig::default()
            .threads(1)
            .journal(dir.join("run.wal"))
            .journal_context(CONTEXT);
        if resume {
            config = config.resume();
        }
        Engine::new(config)
    };

    let first = journaled(false);
    for w in &workloads[..2] {
        first.profile(w, Scale::tiny(), &machine, &node);
    }
    assert_eq!(first.counters().computed, 2);
    drop(first);

    let second = journaled(true);
    assert_eq!(second.journal_preloaded(), Some((2, 0)));
    second.profile_all(&workloads, Scale::tiny(), &machine, &node);
    let counters = second.counters();
    assert_eq!(
        counters.journal_hits, 2,
        "two tasks must come from the journal"
    );
    assert_eq!(counters.computed, 2, "only the unfinished tasks recompute");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resumed_sweep_does_not_rerun_the_generator() {
    let def = fleet().remove(0);
    let capacities = [16u64, 64];
    let dir = scratch("sweep-resume");
    let invocations = AtomicU64::new(0);
    let workload = |machine: &mut dyn bdb_trace::TraceSink| {
        invocations.fetch_add(1, Ordering::Relaxed);
        let _ = def.run(machine, Scale::tiny());
    };

    let journaled = |resume: bool| {
        let mut config = EngineConfig::default()
            .threads(1)
            .journal(dir.join("run.wal"))
            .journal_context(CONTEXT);
        if resume {
            config = config.resume();
        }
        Engine::new(config)
    };

    let first = journaled(false);
    let cold = first.sweep("sweep-resume", &capacities, workload);
    let cold_runs = invocations.load(Ordering::Relaxed);
    assert!(cold_runs >= 1, "cold sweep must run the generator");
    drop(first);

    let second = journaled(true);
    assert_eq!(second.journal_preloaded(), Some((0, 1)));
    let warm = second.sweep("sweep-resume", &capacities, workload);
    assert_eq!(
        invocations.load(Ordering::Relaxed),
        cold_runs,
        "resumed sweep must not re-run the workload generator"
    );
    assert_eq!(second.counters().journal_hits, 1);
    assert_eq!(
        codec::sweep_result_to_value(&warm).encode(),
        codec::sweep_result_to_value(&cold).encode(),
        "journal-replayed sweep must be byte-identical"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
