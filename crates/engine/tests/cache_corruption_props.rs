//! Corruption properties of the checksummed cache format.
//!
//! Starting from a genuine cache entry written by the engine, truncate
//! it at **every** byte offset and flip random bits: decoding must
//! always be a clean, detected failure — never a panic, never a wrong
//! profile — and at the engine level a damaged entry must land in
//! `quarantine/` while the workload is recomputed correctly.

use bdb_engine::{codec, verify_cache_entry, Engine, EngineConfig, QUARANTINE_DIR};
use bdb_node::NodeConfig;
use bdb_sim::MachineConfig;
use bdb_workloads::{catalog, Scale, WorkloadDef};
use proptest::prelude::*;
use std::path::PathBuf;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bdb-corrupt-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One genuine cache entry: `(bytes on disk, fingerprint key, canonical
/// profile bytes)` for the first representative workload. Computed once
/// and shared — the property tests damage copies, never the original.
fn genuine_entry(tag: &str) -> (Vec<u8>, u64, String) {
    static ENTRY: std::sync::OnceLock<(Vec<u8>, u64, String)> = std::sync::OnceLock::new();
    ENTRY.get_or_init(|| compute_genuine_entry(tag)).clone()
}

fn compute_genuine_entry(tag: &str) -> (Vec<u8>, u64, String) {
    let dir = scratch(tag);
    let workload: WorkloadDef = catalog::representatives().remove(0);
    let machine = MachineConfig::xeon_e5645();
    let node = NodeConfig::default();
    let engine = Engine::new(EngineConfig::default().threads(1).cache_dir(&dir));
    let profile = engine.profile(&workload, Scale::tiny(), &machine, &node);
    let path = engine
        .cache_file(&workload, Scale::tiny(), &machine, &node)
        .expect("disk cache configured");
    let bytes = std::fs::read(&path).expect("engine wrote the entry");
    let key = bdb_engine::profile_fingerprint(&workload.spec.id, Scale::tiny(), &machine, &node);
    let canonical = codec::profile_to_value(&profile).encode();
    let _ = std::fs::remove_dir_all(&dir);
    (bytes, key, canonical)
}

#[test]
fn truncation_at_every_offset_is_a_detected_failure() {
    let (bytes, key, canonical) = genuine_entry("truncate");
    assert!(bytes.len() > 2, "entry must be non-trivial");
    let whole = verify_cache_entry(&bytes, key).expect("pristine entry verifies");
    assert_eq!(codec::profile_to_value(&whole).encode(), canonical);
    for cut in 0..bytes.len() {
        let outcome = verify_cache_entry(&bytes[..cut], key);
        if cut == bytes.len() - 1 {
            // Only the trailing newline is gone — the body is intact,
            // and decoding tolerates a missing terminator.
            let profile = outcome.expect("terminator-only truncation still verifies");
            assert_eq!(codec::profile_to_value(&profile).encode(), canonical);
        } else {
            assert!(
                outcome.is_err(),
                "truncation at byte {cut} of {} must be detected",
                bytes.len()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any single bit flip outside the trailing newline is detected.
    /// (The terminator byte is excluded for the same reason `ChaosFs`
    /// never corrupts it: whitespace damage there is trimmed away
    /// before decoding, so nothing was actually lost.)
    #[test]
    fn any_single_bit_flip_is_a_detected_failure(bit_seed in any::<u64>()) {
        let (bytes, key, _) = genuine_entry("flip1");
        let bit = (bit_seed as usize) % ((bytes.len() - 1) * 8);
        let mut damaged = bytes.clone();
        damaged[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(
            verify_cache_entry(&damaged, key).is_err(),
            "flipping bit {bit} went undetected"
        );
    }

    /// Multi-bit damage (a burst of up to 8 random flips) never panics
    /// and never yields a profile under the original key unless the
    /// flips cancelled out to the original bytes.
    #[test]
    fn random_bit_bursts_never_yield_a_wrong_profile(
        seeds in collection::vec(any::<u64>(), 1..8),
    ) {
        let (bytes, key, canonical) = genuine_entry("burst");
        let mut damaged = bytes.clone();
        for seed in seeds {
            let bit = (seed as usize) % ((bytes.len() - 1) * 8);
            damaged[bit / 8] ^= 1 << (bit % 8);
        }
        match verify_cache_entry(&damaged, key) {
            Err(_) => prop_assert!(damaged != bytes, "undamaged entry must verify"),
            Ok(profile) => {
                // Flips can cancel pairwise; verification may only
                // succeed if the bytes really are pristine again.
                prop_assert_eq!(&damaged, &bytes, "damaged bytes verified");
                prop_assert_eq!(codec::profile_to_value(&profile).encode(), canonical);
            }
        }
    }
}

#[test]
fn engine_quarantines_damaged_entries_and_recomputes_cleanly() {
    let dir = scratch("engine-quarantine");
    let workload: WorkloadDef = catalog::representatives().remove(0);
    let machine = MachineConfig::xeon_e5645();
    let node = NodeConfig::default();
    let cold = Engine::new(EngineConfig::default().threads(1).cache_dir(&dir));
    let clean = cold.profile(&workload, Scale::tiny(), &machine, &node);
    let clean_bytes = codec::profile_to_value(&clean).encode();
    let path = cold
        .cache_file(&workload, Scale::tiny(), &machine, &node)
        .expect("disk cache configured");
    let pristine = std::fs::read(&path).expect("entry written");
    drop(cold);

    for (round, bit) in [0usize, 7, 123].into_iter().enumerate() {
        let mut damaged = pristine.clone();
        let bit = bit % ((damaged.len() - 1) * 8);
        damaged[bit / 8] ^= 1 << (bit % 8);
        std::fs::write(&path, &damaged).expect("plant damaged entry");

        let engine = Engine::new(
            EngineConfig::default()
                .threads(1)
                .cache_dir(&dir)
                .without_memory_cache(),
        );
        let recomputed = engine.profile(&workload, Scale::tiny(), &machine, &node);
        assert_eq!(
            codec::profile_to_value(&recomputed).encode(),
            clean_bytes,
            "recomputed profile must match the clean run"
        );
        let counters = engine.counters();
        assert_eq!(counters.corrupt_quarantined, 1, "round {round}");
        assert_eq!(counters.computed, 1, "damage must be a miss, not a hit");
        let quarantined = std::fs::read_dir(dir.join(QUARANTINE_DIR))
            .map(|entries| entries.flatten().count())
            .unwrap_or(0);
        assert!(quarantined >= 1, "round {round}: damaged entry preserved");
        // The slot was rewritten with a fresh, valid entry.
        assert_eq!(std::fs::read(&path).expect("rewritten entry"), pristine);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
