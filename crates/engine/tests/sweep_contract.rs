//! The fused-sweep contract: trace-once/replay-many output is
//! **byte-identical** to the per-point serial sweep — for every workload
//! in the 77-entry catalog, in both engine modes, at any thread count.
//!
//! This is the guard the ISSUE demands: the fused path may only ship
//! while `assemble_sweep` produces the same bits as the reference path.

use bdb_engine::{Engine, EngineConfig, SweepMode};
use bdb_sim::{sweep_per_point, sweep_replay, SweepFamily, SweepResult, PAPER_SWEEP_KIB};
use bdb_trace::TraceBuffer;
use bdb_workloads::{catalog, CatalogSet, Scale};

fn assert_bit_identical(fused: &SweepResult, reference: &SweepResult, id: &str) {
    assert_eq!(fused, reference, "{id}: sweep results differ");
    for (curve, ref_curve) in [
        (&fused.instruction, &reference.instruction),
        (&fused.data, &reference.data),
        (&fused.unified, &reference.unified),
    ] {
        assert_eq!(curve.label, ref_curve.label, "{id}: label differs");
        for ((kib, ratio), (ref_kib, ref_ratio)) in curve.points.iter().zip(&ref_curve.points) {
            assert_eq!(kib, ref_kib, "{id}: capacity axis differs");
            assert_eq!(
                ratio.to_bits(),
                ref_ratio.to_bits(),
                "{id}: {:?} ratio bits differ at {kib} KiB",
                curve.metric
            );
        }
    }
}

#[test]
fn fused_sweep_is_byte_identical_across_full_catalog() {
    let workloads = CatalogSet::Full.workloads();
    assert_eq!(workloads.len(), 77);
    let family = SweepFamily::atom();
    let scale = Scale::tiny();
    // A small/medium/large capacity subset keeps debug-mode runtime
    // bounded; the full paper axis is swept on representatives below.
    let caps = [16u64, 128, 2048];
    for def in &workloads {
        let buffer = TraceBuffer::capture(|sink| {
            let _ = def.run(sink, scale);
        });
        let fused = sweep_replay(&family, &def.spec.id, &caps, &buffer);
        let per_point = sweep_per_point(&family, &def.spec.id, &caps, |sink| {
            let _ = def.run(sink, scale);
        });
        assert_bit_identical(&fused, &per_point, &def.spec.id);
    }
}

#[test]
fn fused_sweep_matches_per_point_on_full_paper_axis() {
    let family = SweepFamily::atom();
    let scale = Scale::tiny();
    for def in catalog::representatives().iter().take(4) {
        let fused = bdb_sim::sweep(&def.spec.id, &PAPER_SWEEP_KIB, |sink| {
            let _ = def.run(sink, scale);
        });
        let per_point = sweep_per_point(&family, &def.spec.id, &PAPER_SWEEP_KIB, |sink| {
            let _ = def.run(sink, scale);
        });
        assert_bit_identical(&fused, &per_point, &def.spec.id);
    }
}

#[test]
fn point_parallel_sweep_is_byte_identical_across_full_catalog() {
    // The ISSUE's acceptance contract: sweep bytes stay identical to
    // serial across `BDB_POINT_THREADS` ∈ {1, 2, 4} for all 77
    // workloads. Widths are pinned via the builder (the same code path
    // the env knob feeds) so the test never mutates the process env.
    let workloads = CatalogSet::Full.workloads();
    assert_eq!(workloads.len(), 77);
    let scale = Scale::tiny();
    let caps = [16u64, 128, 2048];
    let serial = Engine::serial();
    let engines: Vec<Engine> = [1usize, 2, 4]
        .iter()
        .map(|&t| Engine::new(EngineConfig::default().threads(2).point_threads(t)))
        .collect();
    for def in &workloads {
        let reference = serial.sweep(&def.spec.id, &caps, |sink| {
            let _ = def.run(sink, scale);
        });
        for (engine, threads) in engines.iter().zip([1usize, 2, 4]) {
            let result = engine.sweep(&def.spec.id, &caps, |sink| {
                let _ = def.run(sink, scale);
            });
            assert_bit_identical(
                &result,
                &reference,
                &format!("{} @ {threads} point threads", def.spec.id),
            );
        }
    }
}

#[test]
fn sweep_all_is_byte_identical_to_serial_loop() {
    // Workload-level fan-out composed with point-level fan-out must not
    // change a single bit relative to sweeping each job serially.
    let scale = Scale::tiny();
    let caps = [16u64, 128, 2048];
    let defs: Vec<_> = catalog::representatives().into_iter().take(6).collect();
    let serial = Engine::serial();
    let reference: Vec<SweepResult> = defs
        .iter()
        .map(|def| {
            serial.sweep(&def.spec.id, &caps, |sink| {
                let _ = def.run(sink, scale);
            })
        })
        .collect();
    let jobs: Vec<(String, _)> = defs
        .iter()
        .map(|def| {
            (
                def.spec.id.clone(),
                move |sink: &mut dyn bdb_trace::TraceSink| {
                    let _ = def.run(sink, scale);
                },
            )
        })
        .collect();
    for threads in [2usize, 4] {
        let engine = Engine::new(EngineConfig::default().threads(threads));
        let batch = engine.sweep_all(&jobs, &caps);
        assert_eq!(batch.len(), reference.len());
        for ((got, want), def) in batch.iter().zip(&reference).zip(&defs) {
            assert_bit_identical(got, want, &format!("{} via sweep_all", def.spec.id));
        }
    }
}

#[test]
fn engine_modes_agree_with_reference_across_thread_counts() {
    let scale = Scale::tiny();
    let caps = [16u64, 256];
    let defs = catalog::representatives();
    let def = &defs[0];
    let reference = sweep_per_point(&SweepFamily::atom(), &def.spec.id, &caps, |sink| {
        let _ = def.run(sink, scale);
    });
    for threads in [1usize, 4] {
        for mode in [SweepMode::Fused, SweepMode::PerPoint] {
            let engine = Engine::new(
                EngineConfig::default()
                    .threads(threads)
                    .without_memory_cache()
                    .sweep_mode(mode),
            );
            let result = engine.sweep(&def.spec.id, &caps, |sink| {
                let _ = def.run(sink, scale);
            });
            assert_bit_identical(&result, &reference, &def.spec.id);
        }
    }
}
