//! The engine's two contracts, exercised end to end:
//!
//! 1. **Parallel = serial, bit for bit.** `Engine::profile_all` over the
//!    full 77-workload catalog must reproduce the direct serial
//!    `bdb_wcrt::profile::profile_all` path exactly — same order, same
//!    instruction counts, same cycle bits, same metric bits — at any
//!    thread count.
//! 2. **Cache transparency.** A warm cache hit must return exactly the
//!    bytes the cold run wrote, and the decoded profile must be
//!    bit-identical to the freshly computed one.

use bdb_engine::{Engine, EngineConfig};
use bdb_node::NodeConfig;
use bdb_sim::MachineConfig;
use bdb_wcrt::WorkloadProfile;
use bdb_workloads::{catalog, CatalogSet, Scale};
use proptest::prelude::*;

fn bits(p: &WorkloadProfile) -> (String, u64, u64, Vec<u64>) {
    (
        p.spec.id.clone(),
        p.report.instructions,
        p.report.cycles.to_bits(),
        p.metrics.values().iter().map(|v| v.to_bits()).collect(),
    )
}

#[test]
fn parallel_profile_all_is_bit_identical_to_serial_over_full_catalog() {
    let workloads = CatalogSet::Full.workloads();
    assert_eq!(workloads.len(), 77);
    let machine = MachineConfig::xeon_e5645();
    let node = NodeConfig::default();

    let serial = bdb_wcrt::profile::profile_all(&workloads, Scale::tiny(), &machine, &node);
    let parallel = Engine::in_memory().profile_all(&workloads, Scale::tiny(), &machine, &node);

    assert_eq!(parallel.len(), serial.len());
    for (p, s) in parallel.iter().zip(&serial) {
        assert_eq!(bits(p), bits(s), "{} diverged", s.spec.id);
    }
}

#[test]
fn warm_cache_hit_returns_cold_run_bytes() {
    let dir = std::env::temp_dir().join(format!("bdb-engine-contract-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let workloads: Vec<_> = catalog::representatives().into_iter().take(3).collect();
    let machine = MachineConfig::xeon_e5645();
    let node = NodeConfig::default();

    let cold_engine = Engine::new(
        EngineConfig::default()
            .cache_dir(&dir)
            .without_memory_cache(),
    );
    let cold = cold_engine.profile_all(&workloads, Scale::tiny(), &machine, &node);
    let cold_bytes: Vec<String> = workloads
        .iter()
        .map(|w| {
            let path = cold_engine
                .cache_file(w, Scale::tiny(), &machine, &node)
                .unwrap();
            std::fs::read_to_string(path).expect("cold run wrote the cache file")
        })
        .collect();

    let warm_engine = Engine::new(
        EngineConfig::default()
            .cache_dir(&dir)
            .without_memory_cache(),
    );
    let warm = warm_engine.profile_all(&workloads, Scale::tiny(), &machine, &node);
    assert_eq!(warm_engine.counters().disk_hits, workloads.len() as u64);
    assert_eq!(
        warm_engine.counters().computed,
        0,
        "warm run must not simulate"
    );

    for ((w, c), cold_text) in warm.iter().zip(&cold).zip(&cold_bytes) {
        assert_eq!(bits(w), bits(c), "{}", c.spec.id);
        let path = warm_engine
            .cache_file(
                &workloads
                    .iter()
                    .find(|x| x.spec.id == c.spec.id)
                    .unwrap()
                    .clone(),
                Scale::tiny(),
                &machine,
                &node,
            )
            .unwrap();
        let warm_text = std::fs::read_to_string(path).unwrap();
        assert_eq!(&warm_text, cold_text, "{} cache bytes changed", c.spec.id);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any subset of the catalog, any thread count: the engine's parallel
    /// output equals a serial per-workload loop, in order and in bits.
    #[test]
    fn random_subsets_match_serial(
        start in 0usize..70,
        len in 1usize..5,
        threads in 2usize..9,
    ) {
        let catalog = CatalogSet::Full.workloads();
        let end = (start + len).min(catalog.len());
        let subset = &catalog[start..end];
        let machine = MachineConfig::xeon_e5645();
        let node = NodeConfig::default();
        let parallel = Engine::new(EngineConfig::default().threads(threads))
            .profile_all(subset, Scale::tiny(), &machine, &node);
        let serial = Engine::serial().profile_all(subset, Scale::tiny(), &machine, &node);
        prop_assert_eq!(parallel.len(), serial.len());
        for (p, s) in parallel.iter().zip(&serial) {
            prop_assert_eq!(bits(p), bits(s));
        }
    }
}
