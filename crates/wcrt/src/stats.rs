//! Column statistics: the Gaussian normalization step of the WCRT
//! pipeline (paper §3: "we normalize these metric values to a Gaussian
//! distribution").

/// Mean of a slice (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation (0 for empty input).
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Z-score normalizes each column of a row-major matrix in place.
///
/// Constant columns (zero variance) are set to zero rather than NaN, so
/// degenerate metrics simply stop contributing to distances.
///
/// # Panics
///
/// Panics if rows have inconsistent lengths.
pub fn zscore(data: &mut [Vec<f64>]) {
    let Some(first) = data.first() else { return };
    let dims = first.len();
    assert!(data.iter().all(|r| r.len() == dims), "ragged matrix");
    for d in 0..dims {
        let col: Vec<f64> = data.iter().map(|r| r[d]).collect();
        let m = mean(&col);
        let s = std_dev(&col);
        for row in data.iter_mut() {
            row[d] = if s > 1e-12 { (row[d] - m) / s } else { 0.0 };
        }
    }
}

/// Squared Euclidean distance.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!((std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
    }

    #[test]
    fn zscore_centers_and_scales() {
        let mut m = vec![vec![1.0, 10.0], vec![2.0, 20.0], vec![3.0, 30.0]];
        zscore(&mut m);
        for d in 0..2 {
            let col: Vec<f64> = m.iter().map(|r| r[d]).collect();
            assert!(mean(&col).abs() < 1e-12);
            assert!((std_dev(&col) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn zscore_zeroes_constant_columns() {
        let mut m = vec![vec![5.0, 1.0], vec![5.0, 2.0]];
        zscore(&mut m);
        assert_eq!(m[0][0], 0.0);
        assert_eq!(m[1][0], 0.0);
        assert!(m[0][1] < m[1][1]);
    }

    #[test]
    fn dist_sq_is_squared_euclidean() {
        assert_eq!(dist_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(dist_sq(&[], &[]), 0.0);
    }

    proptest::proptest! {
        #[test]
        fn zscore_is_idempotent_in_shape(rows in 2usize..12, cols in 1usize..6, seed in 0u64..1000) {
            let mut x = seed;
            let mut next = move || {
                x ^= x << 13; x ^= x >> 7; x ^= x << 17;
                (x % 1000) as f64 / 37.0
            };
            let mut m: Vec<Vec<f64>> = (0..rows).map(|_| (0..cols).map(|_| next()).collect()).collect();
            zscore(&mut m);
            proptest::prop_assert_eq!(m.len(), rows);
            for row in &m {
                proptest::prop_assert_eq!(row.len(), cols);
                for v in row {
                    proptest::prop_assert!(v.is_finite());
                }
            }
        }
    }
}
