//! The paper's §3.2.1 system-behaviour classification rules.
//!
//! > "1) For a workload, if the CPU utilization is larger than 85%, we
//! > consider it CPU-Intensive; 2) For a workload, if the average weighted
//! > Disk I/O time ratio is larger than 10 or the I/O wait ratio is larger
//! > than 20% and the CPU utilization is less than 60%, we consider it
//! > I/O-Intensive; 3) other workloads … are considered as hybrid."

use bdb_node::SystemMetrics;
use serde::{Deserialize, Serialize};
use std::fmt;

/// System-behaviour class of a workload (paper Table 2, last column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SystemClass {
    /// CPU utilization > 85 %.
    CpuIntensive,
    /// Heavy disk pressure with a mostly idle CPU.
    IoIntensive,
    /// Everything in between.
    Hybrid,
}

impl fmt::Display for SystemClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SystemClass::CpuIntensive => "CPU-Intensive",
            SystemClass::IoIntensive => "IO-Intensive",
            SystemClass::Hybrid => "Hybrid",
        };
        f.write_str(s)
    }
}

/// Applies the paper's thresholds to one run's system metrics.
pub fn classify_system(m: &SystemMetrics) -> SystemClass {
    if m.cpu_utilization > 85.0 {
        SystemClass::CpuIntensive
    } else if m.weighted_io_ratio > 10.0 || (m.io_wait_ratio > 20.0 && m.cpu_utilization < 60.0) {
        SystemClass::IoIntensive
    } else {
        SystemClass::Hybrid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(cpu: f64, iowait: f64, weighted: f64) -> SystemMetrics {
        SystemMetrics {
            wall_seconds: 1.0,
            cpu_utilization: cpu,
            io_wait_ratio: iowait,
            weighted_io_ratio: weighted,
            disk_bandwidth_mbps: 0.0,
            net_bandwidth_mbps: 0.0,
        }
    }

    #[test]
    fn high_cpu_is_cpu_intensive() {
        assert_eq!(
            classify_system(&metrics(90.0, 50.0, 50.0)),
            SystemClass::CpuIntensive
        );
    }

    #[test]
    fn deep_queue_is_io_intensive() {
        assert_eq!(
            classify_system(&metrics(30.0, 5.0, 15.0)),
            SystemClass::IoIntensive
        );
    }

    #[test]
    fn iowait_rule_requires_low_cpu() {
        assert_eq!(
            classify_system(&metrics(30.0, 25.0, 1.0)),
            SystemClass::IoIntensive
        );
        assert_eq!(
            classify_system(&metrics(70.0, 25.0, 1.0)),
            SystemClass::Hybrid
        );
    }

    #[test]
    fn middle_ground_is_hybrid() {
        assert_eq!(
            classify_system(&metrics(70.0, 10.0, 2.0)),
            SystemClass::Hybrid
        );
        assert_eq!(
            classify_system(&metrics(85.0, 0.0, 0.0)),
            SystemClass::Hybrid
        );
    }

    #[test]
    fn display_matches_paper_terms() {
        assert_eq!(SystemClass::CpuIntensive.to_string(), "CPU-Intensive");
        assert_eq!(SystemClass::IoIntensive.to_string(), "IO-Intensive");
        assert_eq!(SystemClass::Hybrid.to_string(), "Hybrid");
    }
}
