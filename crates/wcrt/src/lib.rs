//! WCRT — the Workload Characterization and Reduction Tool.
//!
//! This crate is the reproduction of the paper's released artifact: the
//! pipeline that turns raw per-workload measurements into the paper's
//! headline reduction of **77 workloads → 17 representatives**.
//!
//! The pipeline (paper §3):
//!
//! 1. [`profile`](profile::profile_workload) — run a workload on the
//!    simulated Xeon E5645 and the node model, collecting the
//!    [`MetricVector`] of **45 micro-architectural metrics** (instruction
//!    mix, cache, TLB, branch, pipeline, off-core, operation intensity,
//!    and system behaviour),
//! 2. [`stats::zscore`] — normalize each metric to a standard Gaussian,
//! 3. [`pca::Pca`] — principal component analysis via a from-scratch
//!    Jacobi eigensolver, keeping the components that explain a target
//!    variance fraction,
//! 4. [`kmeans`] — seeded K-means++ clustering in PCA space,
//! 5. [`subset`] — pick the workload nearest each centroid as that
//!    cluster's representative.
//!
//! [`reduction::reduce`] chains steps 2–5; [`classify`] implements the
//! paper's §3.2.1 CPU-/I/O-intensive/hybrid rules; [`report`] renders the
//! aligned text tables the benchmark binaries print.
//!
//! # Examples
//!
//! ```
//! use bdb_wcrt::{kmeans, pca, stats};
//!
//! // Three obvious clusters in 2-D.
//! let data = vec![
//!     vec![0.0, 0.1], vec![0.1, 0.0],
//!     vec![5.0, 5.1], vec![5.1, 4.9],
//!     vec![9.0, 0.1], vec![9.2, 0.0],
//! ];
//! let mut normalized = data.clone();
//! stats::zscore(&mut normalized);
//! let pca = pca::Pca::fit(&normalized, 0.99);
//! let projected = pca.transform(&normalized);
//! let result = kmeans::kmeans(&projected, 3, 42, 100);
//! assert_eq!(result.assignments[0], result.assignments[1]);
//! assert_ne!(result.assignments[0], result.assignments[2]);
//! ```

pub mod archindep;
pub mod classify;
pub mod kmeans;
pub mod kselect;
pub mod metrics;
pub mod pca;
pub mod profile;
pub mod reduction;
pub mod report;
pub mod stats;
pub mod subset;

pub use archindep::{characterize, ArchIndepVector, ARCHINDEP_COUNT, ARCHINDEP_NAMES};
pub use classify::SystemClass;
pub use metrics::{MetricVector, METRIC_COUNT, METRIC_NAMES};
pub use profile::{profile_workload, WorkloadProfile};
pub use reduction::{reduce, ReductionResult};
