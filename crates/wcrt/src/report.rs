//! Aligned text tables for the benchmark binaries' output.
//!
//! The table/figure regenerators print the paper's rows as plain text;
//! this keeps the harness dependency-free and diffable.

/// A simple left-headered, right-aligned-numbers text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row arity differs from the header arity.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                // First column left-aligned (names), the rest right-aligned.
                if i == 0 {
                    line.push_str(&format!("{cell:<w$}"));
                } else {
                    line.push_str(&format!("{cell:>w$}"));
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// Formats a float with 2 decimals (the tables' default).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a ratio as a percentage with 1 decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["workload", "IPC"]);
        t.row(["H-WordCount", "1.10"]);
        t.row(["x", "0.80"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("workload"));
        assert!(lines[2].starts_with("H-WordCount"));
        // Right alignment of numeric column.
        assert!(lines[3].ends_with("0.80"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(f1(1.25), "1.2");
        assert_eq!(pct(0.187), "18.7%");
    }

    #[test]
    fn len_and_empty() {
        let mut t = TextTable::new(["a"]);
        assert!(t.is_empty());
        t.row(["x"]);
        assert_eq!(t.len(), 1);
    }
}
