//! Architecture-independent workload characterization — the paper's stated
//! future work ("we will perform system-independent characterization work
//! on representative big data workloads", §6, in the style of Hoste &
//! Eeckhout and Joshi et al.).
//!
//! Instead of counters from one machine, a workload is summarized by
//! properties of its *trace alone*: instruction mix, branch predictability
//! proxies (taken rate, transition rate), instruction/data reuse-distance
//! distributions, and machine-independent footprints. Two workloads that
//! look alike here look alike on *any* microarchitecture, which makes this
//! vector the more defensible basis for subsetting.

use bdb_node::NodeConfig;
use bdb_sim::MachineConfig;
use bdb_trace::{InstructionMix, MicroOp, ReuseHistogram, ReuseProfiler, TraceSink};
use bdb_workloads::{Scale, WorkloadDef};
use serde::{Deserialize, Serialize};

/// Number of architecture-independent metrics.
pub const ARCHINDEP_COUNT: usize = 20;

/// Metric names, index-aligned with [`ArchIndepVector::values`].
pub const ARCHINDEP_NAMES: [&str; ARCHINDEP_COUNT] = [
    "load_ratio",
    "store_ratio",
    "branch_ratio",
    "integer_ratio",
    "fp_ratio",
    "int_addr_share",
    "data_movement_ratio",
    "operation_intensity",
    "branch_taken_rate",
    "branch_transition_rate",
    "instr_footprint_lines",
    "data_footprint_lines",
    "instr_reuse_p50_log2",
    "instr_reuse_p90_log2",
    "data_reuse_p50_log2",
    "data_reuse_p90_log2",
    "instr_cold_ratio",
    "data_cold_ratio",
    "instr_miss_at_512_lines",
    "data_miss_at_512_lines",
];

/// The architecture-independent characterization of one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchIndepVector {
    values: Vec<f64>,
}

impl ArchIndepVector {
    /// The metric values, index-aligned with [`ARCHINDEP_NAMES`].
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Value of the named metric.
    pub fn get(&self, name: &str) -> Option<f64> {
        ARCHINDEP_NAMES
            .iter()
            .position(|&n| n == name)
            .map(|i| self.values[i])
    }
}

/// Collects everything [`ArchIndepVector`] needs in one trace pass.
#[derive(Debug)]
pub struct ArchIndepSink {
    mix: InstructionMix,
    instr_reuse: ReuseProfiler,
    data_reuse: ReuseProfiler,
    branches: u64,
    taken: u64,
    transitions: u64,
    last_taken: bool,
}

impl ArchIndepSink {
    /// Creates a collector.
    pub fn new() -> Self {
        Self {
            mix: InstructionMix::default(),
            instr_reuse: ReuseProfiler::new(64),
            data_reuse: ReuseProfiler::new(64),
            branches: 0,
            taken: 0,
            transitions: 0,
            last_taken: false,
        }
    }

    /// Finalizes the characterization vector.
    pub fn finish(&self) -> ArchIndepVector {
        let instr = self.instr_reuse.histogram();
        let data = self.data_reuse.histogram();
        let (int_addr, _, _) = self.mix.integer_breakdown();
        let b = self.branches.max(1) as f64;
        let values = vec![
            self.mix.load_ratio(),
            self.mix.store_ratio(),
            self.mix.branch_ratio(),
            self.mix.integer_ratio(),
            self.mix.fp_ratio(),
            int_addr,
            self.mix.data_movement_ratio(),
            self.mix.operation_intensity(),
            self.taken as f64 / b,
            self.transitions as f64 / b,
            (instr.footprint_lines(0.005) as f64).log2(),
            (data.footprint_lines(0.005) as f64).log2(),
            percentile_log2(&instr, 0.50),
            percentile_log2(&instr, 0.90),
            percentile_log2(&data, 0.50),
            percentile_log2(&data, 0.90),
            cold_ratio(&instr),
            cold_ratio(&data),
            instr.predicted_miss_ratio(512),
            data.predicted_miss_ratio(512),
        ];
        ArchIndepVector { values }
    }
}

impl Default for ArchIndepSink {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceSink for ArchIndepSink {
    fn exec(&mut self, pc: u64, op: MicroOp) {
        self.mix.record(&op);
        self.instr_reuse.touch(pc);
        match op {
            MicroOp::Load { addr, .. } | MicroOp::Store { addr, .. } => {
                self.data_reuse.touch(addr);
            }
            MicroOp::Branch { taken, .. } => {
                self.branches += 1;
                if taken {
                    self.taken += 1;
                }
                if self.branches > 1 && taken != self.last_taken {
                    self.transitions += 1;
                }
                self.last_taken = taken;
            }
            _ => {}
        }
    }
}

fn cold_ratio(h: &ReuseHistogram) -> f64 {
    let total = h.total();
    if total == 0 {
        0.0
    } else {
        h.cold as f64 / total as f64
    }
}

/// Log2 of the reuse-distance percentile `q` (0 for an empty histogram).
fn percentile_log2(h: &ReuseHistogram, q: f64) -> f64 {
    let reuses: u64 = h.buckets.iter().sum();
    if reuses == 0 {
        return 0.0;
    }
    let target = (reuses as f64 * q) as u64;
    let mut acc = 0u64;
    for (i, &count) in h.buckets.iter().enumerate() {
        acc += count;
        if acc >= target.max(1) {
            return i as f64;
        }
    }
    h.buckets.len() as f64
}

/// Characterizes a workload architecture-independently (one trace pass,
/// no machine model).
pub fn characterize(workload: &WorkloadDef, scale: Scale) -> ArchIndepVector {
    let mut sink = ArchIndepSink::new();
    let _ = workload.run(&mut sink, scale);
    sink.finish()
}

/// Compares the architecture-*dependent* reduction (45 machine metrics)
/// with the architecture-*independent* one over the same workloads:
/// returns `(dependent assignments, independent assignments)` from K-means
/// with identical `k` and seed. Agreement between the two partitions is
/// evidence that the paper's subset is not an artifact of the E5645.
pub fn compare_partitions(
    workloads: &[WorkloadDef],
    scale: Scale,
    k: usize,
    seed: u64,
) -> (Vec<usize>, Vec<usize>) {
    use crate::{kmeans::kmeans, pca::Pca, stats::zscore};
    // Architecture-dependent matrix via the usual profile path.
    let profiles = crate::profile::profile_all(
        workloads,
        scale,
        &MachineConfig::xeon_e5645(),
        &NodeConfig::default(),
    );
    let mut dep: Vec<Vec<f64>> = profiles
        .iter()
        .map(|p| p.metrics.values().to_vec())
        .collect();
    zscore(&mut dep);
    let dep_pca = Pca::fit(&dep, 0.9);
    let dep_assign = kmeans(&dep_pca.transform(&dep), k, seed, 300).assignments;

    let mut indep: Vec<Vec<f64>> = workloads
        .iter()
        .map(|w| characterize(w, scale).values().to_vec())
        .collect();
    zscore(&mut indep);
    let indep_pca = Pca::fit(&indep, 0.9);
    let indep_assign = kmeans(&indep_pca.transform(&indep), k, seed, 300).assignments;
    (dep_assign, indep_assign)
}

/// Rand index between two partitions of the same items (1.0 = identical
/// groupings up to relabeling).
pub fn rand_index(a: &[usize], b: &[usize]) -> f64 {
    assert_eq!(a.len(), b.len(), "partitions must cover the same items");
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let mut agree = 0u64;
    let mut total = 0u64;
    for i in 0..n {
        for j in (i + 1)..n {
            let same_a = a[i] == a[j];
            let same_b = b[i] == b[j];
            if same_a == same_b {
                agree += 1;
            }
            total += 1;
        }
    }
    agree as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdb_workloads::catalog;

    #[test]
    fn names_match_count() {
        assert_eq!(ARCHINDEP_NAMES.len(), ARCHINDEP_COUNT);
        let set: std::collections::HashSet<_> = ARCHINDEP_NAMES.iter().collect();
        assert_eq!(set.len(), ARCHINDEP_COUNT);
    }

    #[test]
    fn characterize_produces_finite_bounded_vector() {
        let reps = catalog::representatives();
        let grep = reps.iter().find(|w| w.spec.id == "S-Grep").expect("S-Grep");
        let v = characterize(grep, Scale::tiny());
        assert_eq!(v.values().len(), ARCHINDEP_COUNT);
        assert!(v.values().iter().all(|x| x.is_finite()));
        assert!(v.get("branch_taken_rate").unwrap() <= 1.0);
        assert!(v.get("load_ratio").unwrap() > 0.0);
        assert!(v.get("instr_footprint_lines").unwrap() > 0.0);
    }

    #[test]
    fn deep_stack_has_larger_instruction_footprint() {
        let mut defs = catalog::full_catalog();
        defs.extend(catalog::mpi_workloads());
        let h = characterize(
            defs.iter()
                .find(|w| w.spec.id == "H-WordCount")
                .expect("H-WordCount"),
            Scale::tiny(),
        );
        let m = characterize(
            defs.iter()
                .find(|w| w.spec.id == "M-WordCount")
                .expect("M-WordCount"),
            Scale::tiny(),
        );
        assert!(
            h.get("instr_footprint_lines").unwrap() > m.get("instr_footprint_lines").unwrap(),
            "Hadoop {} vs MPI {}",
            h.get("instr_footprint_lines").unwrap(),
            m.get("instr_footprint_lines").unwrap()
        );
    }

    #[test]
    fn rand_index_basics() {
        assert_eq!(rand_index(&[0, 0, 1, 1], &[1, 1, 0, 0]), 1.0);
        assert!(rand_index(&[0, 0, 1, 1], &[0, 1, 0, 1]) < 0.5);
        assert_eq!(rand_index(&[0], &[3]), 1.0);
    }

    #[test]
    fn characterization_is_deterministic() {
        let reps = catalog::representatives();
        let def = reps
            .iter()
            .find(|w| w.spec.id == "I-SelectQuery")
            .expect("workload");
        let a = characterize(def, Scale::tiny());
        let b = characterize(def, Scale::tiny());
        assert_eq!(a, b);
    }
}
