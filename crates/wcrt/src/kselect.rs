//! Choosing K: the paper states "there are 17 clusters in the final
//! results" without showing the selection; this module provides the
//! standard instruments — an inertia sweep with elbow detection and the
//! Bayesian information criterion — so the reproduction can *derive* a K
//! rather than assert one.

use crate::kmeans::kmeans;

/// Inertia for each `k` in `1..=k_max` (index 0 holds k = 1).
pub fn inertia_sweep(data: &[Vec<f64>], k_max: usize, seed: u64) -> Vec<f64> {
    (1..=k_max.min(data.len()))
        .map(|k| kmeans(data, k, seed, 200).inertia)
        .collect()
}

/// Elbow of an inertia curve: the k (1-based) maximizing the distance to
/// the chord between the first and last points — the usual "knee" rule.
///
/// Returns 1 for degenerate curves.
pub fn elbow(inertias: &[f64]) -> usize {
    if inertias.len() < 3 {
        return inertias.len().max(1);
    }
    let n = inertias.len() as f64;
    let (y0, y1) = (inertias[0], inertias[inertias.len() - 1]);
    let mut best = (1usize, f64::MIN);
    for (i, &y) in inertias.iter().enumerate() {
        let x = i as f64;
        // Distance from (x, y) to the line through (0, y0) and (n-1, y1).
        let num = ((y1 - y0) * x - (n - 1.0) * (y - y0)).abs();
        let den = ((y1 - y0).powi(2) + (n - 1.0).powi(2)).sqrt();
        let d = num / den.max(1e-12);
        if d > best.1 {
            best = (i + 1, d);
        }
    }
    best.0
}

/// BIC of a K-means solution under a spherical-Gaussian model
/// (Pelleg & Moore's X-means formulation). Lower is better.
pub fn bic(data: &[Vec<f64>], k: usize, seed: u64) -> f64 {
    let n = data.len() as f64;
    let d = data.first().map(Vec::len).unwrap_or(0) as f64;
    let result = kmeans(data, k, seed, 200);
    let variance = (result.inertia / (n - k as f64).max(1.0)).max(1e-12);
    let log_likelihood = -0.5 * n * (variance.ln() + d * (2.0 * std::f64::consts::PI).ln() + 1.0);
    let params = k as f64 * (d + 1.0);
    -2.0 * log_likelihood + params * n.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for c in 0..3 {
            for i in 0..12 {
                pts.push(vec![
                    c as f64 * 20.0 + (i % 3) as f64 * 0.2,
                    (i % 4) as f64 * 0.2,
                ]);
            }
        }
        pts
    }

    #[test]
    fn inertia_decreases_with_k() {
        let data = three_blobs();
        let sweep = inertia_sweep(&data, 6, 7);
        for w in sweep.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "{sweep:?}");
        }
    }

    #[test]
    fn elbow_finds_true_cluster_count() {
        let data = three_blobs();
        let sweep = inertia_sweep(&data, 8, 7);
        let k = elbow(&sweep);
        assert!((2..=4).contains(&k), "elbow {k} from {sweep:?}");
    }

    #[test]
    fn elbow_degenerate_inputs() {
        assert_eq!(elbow(&[]), 1);
        assert_eq!(elbow(&[5.0]), 1);
        assert_eq!(elbow(&[5.0, 1.0]), 2);
    }

    #[test]
    fn bic_prefers_true_k_over_underfit() {
        let data = three_blobs();
        assert!(bic(&data, 3, 7) < bic(&data, 1, 7));
    }
}
