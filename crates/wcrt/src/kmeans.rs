//! Seeded K-means clustering (K-means++ initialization, Lloyd iterations).
//!
//! The final stage of the WCRT pipeline: "we use K-Means to cluster the 77
//! workloads, and there are 17 clusters in the final results" (paper §3).

use crate::stats::dist_sq;
use rand::{Rng, SeedableRng};

/// Clustering outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansResult {
    /// Cluster index per input row.
    pub assignments: Vec<usize>,
    /// Cluster centroids.
    pub centroids: Vec<Vec<f64>>,
    /// Sum of squared distances to assigned centroids.
    pub inertia: f64,
}

impl KMeansResult {
    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Sizes of each cluster.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.centroids.len()];
        for &a in &self.assignments {
            sizes[a] += 1;
        }
        sizes
    }
}

/// Runs K-means++ then Lloyd iterations.
///
/// Deterministic for a given `(data, k, seed)`; `max_iters` bounds the
/// Lloyd loop (it usually converges much earlier).
///
/// # Panics
///
/// Panics if `k == 0` or `k > data.len()`, or the matrix is ragged.
pub fn kmeans(data: &[Vec<f64>], k: usize, seed: u64, max_iters: usize) -> KMeansResult {
    assert!(k > 0, "k must be positive");
    assert!(k <= data.len(), "k = {k} exceeds {} points", data.len());
    let dims = data[0].len();
    assert!(data.iter().all(|r| r.len() == dims), "ragged matrix");

    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    // K-means++ seeding.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(data[rng.gen_range(0..data.len())].clone());
    while centroids.len() < k {
        let d2: Vec<f64> = data
            .iter()
            .map(|p| {
                centroids
                    .iter()
                    .map(|c| dist_sq(p, c))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let total: f64 = d2.iter().sum();
        if total <= 1e-18 {
            // All remaining points coincide with centroids; pick arbitrary.
            centroids.push(data[rng.gen_range(0..data.len())].clone());
            continue;
        }
        let mut target = rng.gen::<f64>() * total;
        let mut chosen = data.len() - 1;
        for (i, &w) in d2.iter().enumerate() {
            if target <= w {
                chosen = i;
                break;
            }
            target -= w;
        }
        centroids.push(data[chosen].clone());
    }

    let mut assignments = vec![0usize; data.len()];
    for _ in 0..max_iters {
        // Assign.
        let mut changed = false;
        for (i, p) in data.iter().enumerate() {
            let best = centroids
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| dist_sq(p, a).total_cmp(&dist_sq(p, b)))
                .map(|(j, _)| j)
                // bdb-lint: allow(panic-hygiene): k >= 1 is asserted at entry.
                .expect("k >= 1");
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        // Update.
        let mut sums = vec![vec![0.0f64; dims]; k];
        let mut counts = vec![0usize; k];
        for (p, &a) in data.iter().zip(&assignments) {
            counts[a] += 1;
            for (s, x) in sums[a].iter_mut().zip(p) {
                *s += x;
            }
        }
        for (c, (sum, count)) in centroids.iter_mut().zip(sums.iter().zip(&counts)) {
            if *count > 0 {
                *c = sum.iter().map(|s| s / *count as f64).collect();
            }
            // Empty clusters keep their centroid (will usually recapture).
        }
        if !changed {
            break;
        }
    }
    let inertia = data
        .iter()
        .zip(&assignments)
        .map(|(p, &a)| dist_sq(p, &centroids[a]))
        .sum();
    KMeansResult {
        assignments,
        centroids,
        inertia,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for c in 0..3 {
            let base = c as f64 * 10.0;
            for i in 0..10 {
                pts.push(vec![
                    base + (i % 3) as f64 * 0.1,
                    base - (i % 2) as f64 * 0.1,
                ]);
            }
        }
        pts
    }

    #[test]
    fn recovers_well_separated_blobs() {
        let data = blobs();
        let r = kmeans(&data, 3, 7, 100);
        // Each block of 10 points lands in one cluster.
        for block in 0..3 {
            let first = r.assignments[block * 10];
            assert!(
                r.assignments[block * 10..(block + 1) * 10]
                    .iter()
                    .all(|&a| a == first),
                "block {block} split: {:?}",
                r.assignments
            );
        }
        let mut sizes = r.cluster_sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![10, 10, 10]);
        assert!(r.inertia < 1.0, "inertia {}", r.inertia);
    }

    #[test]
    fn deterministic_for_seed() {
        let data = blobs();
        assert_eq!(kmeans(&data, 3, 5, 50), kmeans(&data, 3, 5, 50));
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let data = vec![vec![0.0], vec![1.0], vec![2.0], vec![5.0]];
        let r = kmeans(&data, 4, 1, 50);
        assert!(r.inertia < 1e-18);
        let mut sizes = r.cluster_sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 1, 1, 1]);
    }

    #[test]
    fn more_clusters_never_increase_inertia() {
        let data = blobs();
        let i2 = kmeans(&data, 2, 3, 100).inertia;
        let i3 = kmeans(&data, 3, 3, 100).inertia;
        let i5 = kmeans(&data, 5, 3, 100).inertia;
        assert!(i3 <= i2 + 1e-9);
        assert!(i5 <= i3 + 1e-9);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn k_larger_than_n_panics() {
        let _ = kmeans(&[vec![0.0]], 2, 0, 10);
    }

    proptest::proptest! {
        #[test]
        fn assignments_in_range(seed in 0u64..200, k in 1usize..5) {
            let mut x = seed | 1;
            let mut next = move || {
                x ^= x << 13; x ^= x >> 7; x ^= x << 17;
                (x % 100) as f64 / 10.0
            };
            let data: Vec<Vec<f64>> = (0..12).map(|_| vec![next(), next()]).collect();
            let r = kmeans(&data, k, seed, 50);
            proptest::prop_assert!(r.assignments.iter().all(|&a| a < k));
            proptest::prop_assert_eq!(r.assignments.len(), 12);
            proptest::prop_assert!(r.inertia.is_finite());
        }
    }
}
