//! The 45-metric characterization vector (paper §3).
//!
//! The paper selects 45 metrics "covering the characteristics of
//! instruction mix, cache behavior, TLB behavior, branch execution,
//! pipeline behavior, off-core requests and snoop responses, parallelism,
//! and operation intensity". This module defines our concrete 45, sourced
//! from the simulator's [`PerfReport`] and the node model's
//! [`SystemMetrics`].

use bdb_node::SystemMetrics;
use bdb_sim::PerfReport;
use serde::{Deserialize, Serialize};

/// Number of characterization metrics.
pub const METRIC_COUNT: usize = 45;

/// Metric names, index-aligned with [`MetricVector::values`].
pub const METRIC_NAMES: [&str; METRIC_COUNT] = [
    // Instruction mix (paper category 1)
    "load_ratio",
    "store_ratio",
    "branch_ratio",
    "integer_ratio",
    "fp_ratio",
    "int_addr_share",
    "fp_addr_share",
    "int_other_share",
    "data_movement_ratio",
    // Operation intensity (category 8)
    "operation_intensity",
    "bytes_per_instr",
    // Cache behaviour (category 2)
    "l1i_mpki",
    "l1i_miss_ratio",
    "l1d_mpki",
    "l1d_miss_ratio",
    "l2_mpki",
    "l2_miss_ratio",
    "l3_mpki",
    "l3_miss_ratio",
    "l1d_writeback_pki",
    "l2_writeback_pki",
    "mem_access_pki",
    // TLB behaviour (category 3)
    "itlb_mpki",
    "itlb_miss_ratio",
    "dtlb_mpki",
    "dtlb_miss_ratio",
    "stlb_mpki",
    // Branch execution (category 4)
    "branch_mispredict_ratio",
    "branch_mispredict_pki",
    "cond_branch_share",
    "branch_stall_frac",
    // Pipeline behaviour (category 5)
    "ipc",
    "cpi",
    "frontend_stall_frac",
    "data_stall_frac",
    "tlb_stall_frac",
    "peak_efficiency",
    // Off-core requests & snoop responses (category 6)
    "offcore_rpki",
    "snoop_rpki",
    "offcore_per_kmem",
    // Parallelism proxies (category 7)
    "miss_depth_ratio",
    // System behaviour
    "cpu_utilization",
    "io_wait_ratio",
    "weighted_io_ratio",
    "disk_bandwidth_mbps",
];

/// One workload's 45-metric characterization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricVector {
    values: Vec<f64>,
}

impl MetricVector {
    /// Builds the vector from the simulator report and system metrics.
    pub fn from_measurements(report: &PerfReport, system: &SystemMetrics) -> Self {
        let mix = &report.mix;
        let instr = report.instructions.max(1) as f64;
        let pki = |x: u64| x as f64 * 1000.0 / instr;
        let ratio = |num: u64, den: u64| {
            if den == 0 {
                0.0
            } else {
                num as f64 / den as f64
            }
        };
        let (int_addr, fp_addr, int_other) = mix.integer_breakdown();
        let cycles = report.cycles.max(1.0);
        let mem_ops = (mix.loads + mix.stores).max(1);
        let values = [
            mix.load_ratio(),
            mix.store_ratio(),
            mix.branch_ratio(),
            mix.integer_ratio(),
            mix.fp_ratio(),
            int_addr,
            fp_addr,
            int_other,
            mix.data_movement_ratio(),
            mix.operation_intensity(),
            mix.bytes_moved as f64 / instr,
            report.l1i_mpki(),
            report.l1i.miss_ratio(),
            report.l1d_mpki(),
            report.l1d.miss_ratio(),
            report.l2_mpki(),
            report.l2.miss_ratio(),
            report.l3_mpki(),
            report.l3.miss_ratio(),
            pki(report.l1d.writebacks),
            pki(report.l2.writebacks),
            pki(report.l3.misses),
            report.itlb_mpki(),
            ratio(report.itlb_misses, report.instructions),
            report.dtlb_mpki(),
            ratio(report.dtlb_misses, mix.loads + mix.stores),
            pki(report.stlb_misses),
            report.branch.mispredict_ratio(),
            report.branch_mpki(),
            ratio(report.branch.conditionals, report.branch.branches.max(1)),
            report.branch_stall_cycles / cycles,
            report.ipc(),
            cycles / instr,
            report.frontend_stall_fraction(),
            report.data_stall_cycles / cycles,
            report.tlb_stall_cycles / cycles,
            report.ipc() * 0.5, // fraction of the 2-wide sustainable peak
            report.offcore_rpki(),
            report.snoop_rpki(),
            ratio(report.offcore_requests * 1000, mem_ops),
            ratio(report.l3.misses, report.l1d.misses.max(1)),
            system.cpu_utilization,
            system.io_wait_ratio,
            system.weighted_io_ratio,
            system.disk_bandwidth_mbps,
        ];
        Self {
            values: values.to_vec(),
        }
    }

    /// Builds a vector directly from values (tests, synthetic data).
    pub fn from_values(values: [f64; METRIC_COUNT]) -> Self {
        Self {
            values: values.to_vec(),
        }
    }

    /// The metric values, index-aligned with [`METRIC_NAMES`].
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Value of the named metric.
    pub fn get(&self, name: &str) -> Option<f64> {
        METRIC_NAMES
            .iter()
            .position(|&n| n == name)
            .map(|i| self.values[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdb_sim::{Machine, MachineConfig};
    use bdb_trace::{CodeLayout, ExecCtx};

    fn sample_report() -> PerfReport {
        let mut layout = CodeLayout::new();
        let main = layout.region("m", 8192);
        let mut machine = Machine::new(MachineConfig::xeon_e5645());
        let mut ctx = ExecCtx::new(&layout, &mut machine);
        let data = ctx.heap_alloc(64 * 1024, 64);
        ctx.frame(main, |ctx| {
            let top = ctx.loop_start();
            for i in 0..5000u64 {
                ctx.read(data.addr(i * 8 % data.len()), 8);
                ctx.int_other(2);
                ctx.fp_ops(1);
                ctx.loop_back(top, i < 4999);
            }
        });
        drop(ctx);
        machine.report()
    }

    fn sample_system() -> SystemMetrics {
        SystemMetrics {
            wall_seconds: 10.0,
            cpu_utilization: 70.0,
            io_wait_ratio: 10.0,
            weighted_io_ratio: 3.0,
            disk_bandwidth_mbps: 55.0,
            net_bandwidth_mbps: 12.0,
        }
    }

    #[test]
    fn names_are_unique_and_count_45() {
        let set: std::collections::HashSet<_> = METRIC_NAMES.iter().collect();
        assert_eq!(set.len(), METRIC_COUNT);
        assert_eq!(METRIC_NAMES.len(), 45);
    }

    #[test]
    fn vector_is_finite_and_plausible() {
        let v = MetricVector::from_measurements(&sample_report(), &sample_system());
        for (name, x) in METRIC_NAMES.iter().zip(v.values()) {
            assert!(x.is_finite(), "{name} not finite");
        }
        assert!(v.get("ipc").unwrap() > 0.0);
        assert!(v.get("load_ratio").unwrap() > 0.0);
        assert!((v.get("cpu_utilization").unwrap() - 70.0).abs() < 1e-9);
    }

    #[test]
    fn ratios_are_bounded() {
        let v = MetricVector::from_measurements(&sample_report(), &sample_system());
        for name in [
            "load_ratio",
            "store_ratio",
            "branch_ratio",
            "fp_ratio",
            "l1i_miss_ratio",
            "branch_mispredict_ratio",
            "frontend_stall_frac",
        ] {
            let x = v.get(name).unwrap();
            assert!((0.0..=1.0).contains(&x), "{name} = {x}");
        }
    }

    #[test]
    fn get_unknown_metric_is_none() {
        let v = MetricVector::from_values([0.0; METRIC_COUNT]);
        assert!(v.get("nope").is_none());
    }
}
