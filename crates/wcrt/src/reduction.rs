//! The headline WCRT pipeline: 45-metric vectors → z-score → PCA →
//! K-means → representative subset (paper §3: 77 workloads → 17).

use crate::kmeans::{kmeans, KMeansResult};
use crate::pca::Pca;
use crate::profile::WorkloadProfile;
use crate::stats::zscore;
use crate::subset::select_representatives;

/// Configuration of one reduction run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReductionConfig {
    /// Number of clusters (the paper lands on 17).
    pub k: usize,
    /// PCA variance fraction to retain.
    pub variance_keep: f64,
    /// Clustering seed.
    pub seed: u64,
    /// Lloyd iteration cap.
    pub max_iters: usize,
}

impl Default for ReductionConfig {
    fn default() -> Self {
        Self {
            k: 17,
            variance_keep: 0.9,
            seed: 2015,
            max_iters: 300,
        }
    }
}

/// Output of a reduction run.
#[derive(Debug, Clone)]
pub struct ReductionResult {
    /// Workload ids in input order.
    pub ids: Vec<String>,
    /// PCA dimensionality that survived.
    pub pca_dims: usize,
    /// Variance explained by the retained components.
    pub explained_variance: f64,
    /// Raw clustering result.
    pub clustering: KMeansResult,
    /// Indices (into `ids`) of the chosen representatives, one per
    /// non-empty cluster.
    pub representative_indices: Vec<usize>,
}

impl ReductionResult {
    /// Ids of the representatives.
    pub fn representative_ids(&self) -> Vec<&str> {
        self.representative_indices
            .iter()
            .map(|&i| self.ids[i].as_str())
            .collect()
    }

    /// `(representative id, cluster size)` pairs sorted by descending size —
    /// the parenthesized counts of the paper's Table 2.
    pub fn weighted_representatives(&self) -> Vec<(&str, usize)> {
        let sizes = self.clustering.cluster_sizes();
        let mut out: Vec<(&str, usize)> = self
            .representative_indices
            .iter()
            .map(|&i| {
                let cluster = self.clustering.assignments[i];
                (self.ids[i].as_str(), sizes[cluster])
            })
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        out
    }
}

/// Runs the reduction over profiled workloads.
///
/// # Panics
///
/// Panics if `profiles` is empty or `config.k` exceeds the profile count.
pub fn reduce(profiles: &[WorkloadProfile], config: ReductionConfig) -> ReductionResult {
    assert!(!profiles.is_empty(), "nothing to reduce");
    let ids: Vec<String> = profiles.iter().map(|p| p.spec.id.clone()).collect();
    let mut matrix: Vec<Vec<f64>> = profiles
        .iter()
        .map(|p| p.metrics.values().to_vec())
        .collect();
    zscore(&mut matrix);
    let pca = Pca::fit(&matrix, config.variance_keep);
    let projected = pca.transform(&matrix);
    let clustering = kmeans(&projected, config.k, config.seed, config.max_iters);
    let representative_indices = select_representatives(&projected, &clustering);
    ReductionResult {
        ids,
        pca_dims: pca.dims(),
        explained_variance: pca.explained_variance(),
        clustering,
        representative_indices,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{MetricVector, METRIC_COUNT};
    use crate::profile::WorkloadProfile;
    use bdb_node::SystemMetrics;
    use bdb_sim::{Machine, MachineConfig};
    use bdb_stacks::{RunStats, StackKind};
    use bdb_trace::TraceSink;
    use bdb_workloads::{Category, KernelKind, WorkloadSpec};

    /// Builds a synthetic profile whose metric vector is `values`.
    fn synthetic_profile(id: &str, values: [f64; METRIC_COUNT]) -> WorkloadProfile {
        let mut machine = Machine::new(MachineConfig::xeon_e5645());
        machine.exec(0x400_000, bdb_trace::MicroOp::Fp);
        let report = machine.report();
        let system = SystemMetrics {
            wall_seconds: 1.0,
            cpu_utilization: 50.0,
            io_wait_ratio: 0.0,
            weighted_io_ratio: 0.0,
            disk_bandwidth_mbps: 0.0,
            net_bandwidth_mbps: 0.0,
        };
        WorkloadProfile {
            spec: WorkloadSpec {
                id: id.into(),
                stack: StackKind::Native,
                category: Category::DataAnalysis,
                dataset: bdb_datagen::DataSetId::Wikipedia,
                kernel: KernelKind::SuiteKernel,
            },
            system_class: crate::classify::classify_system(&system),
            data_behavior: RunStats::default().data_behavior(),
            input_bytes: 1,
            intermediate_bytes: 0,
            output_bytes: 1,
            report,
            system,
            metrics: MetricVector::from_values(values),
        }
    }

    #[test]
    fn reduce_groups_similar_profiles() {
        let mut profiles = Vec::new();
        for i in 0..6 {
            let mut v = [0.0; METRIC_COUNT];
            // Two families: metrics dominated by index 0 or index 1.
            if i < 3 {
                v[0] = 10.0 + i as f64 * 0.01;
                v[5] = 1.0;
            } else {
                v[1] = 10.0 + i as f64 * 0.01;
                v[7] = 1.0;
            }
            profiles.push(synthetic_profile(&format!("w{i}"), v));
        }
        let result = reduce(
            &profiles,
            ReductionConfig {
                k: 2,
                ..Default::default()
            },
        );
        assert_eq!(result.representative_indices.len(), 2);
        let a = result.clustering.assignments[0];
        assert!(result.clustering.assignments[..3].iter().all(|&x| x == a));
        assert!(result.clustering.assignments[3..].iter().all(|&x| x != a));
        let weights = result.weighted_representatives();
        assert_eq!(weights.iter().map(|(_, n)| n).sum::<usize>(), 6);
    }
}
