//! Principal component analysis with a from-scratch Jacobi eigensolver.
#![allow(clippy::needless_range_loop)] // matrix math reads clearest indexed
//!
//! WCRT uses PCA "to reduce the dimensions" of the 45-metric space before
//! clustering (paper §3). We compute the covariance matrix of the
//! (normalized) data and diagonalize it with cyclic Jacobi rotations —
//! exact, dependency-free, and plenty fast for 45×45.

/// A fitted PCA model.
#[derive(Debug, Clone)]
pub struct Pca {
    /// Principal axes, strongest first; each is a unit vector in input space.
    components: Vec<Vec<f64>>,
    /// Eigenvalue (variance) per retained component.
    eigenvalues: Vec<f64>,
    /// Total variance across *all* dimensions (for explained-variance math).
    total_variance: f64,
    /// Column means subtracted before projection.
    means: Vec<f64>,
}

impl Pca {
    /// Fits a PCA keeping the smallest set of leading components whose
    /// eigenvalues explain at least `variance_keep` of the total variance.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty, rows are ragged, or
    /// `variance_keep` is outside `(0, 1]`.
    pub fn fit(data: &[Vec<f64>], variance_keep: f64) -> Self {
        assert!(!data.is_empty(), "PCA needs data");
        assert!(
            variance_keep > 0.0 && variance_keep <= 1.0,
            "variance fraction must be in (0, 1]"
        );
        let dims = data[0].len();
        assert!(data.iter().all(|r| r.len() == dims), "ragged matrix");
        let n = data.len() as f64;
        let means: Vec<f64> = (0..dims)
            .map(|d| data.iter().map(|r| r[d]).sum::<f64>() / n)
            .collect();
        // Covariance matrix.
        let mut cov = vec![vec![0.0f64; dims]; dims];
        for row in data {
            for i in 0..dims {
                let di = row[i] - means[i];
                for j in i..dims {
                    cov[i][j] += di * (row[j] - means[j]);
                }
            }
        }
        for i in 0..dims {
            for j in i..dims {
                cov[i][j] /= n;
                cov[j][i] = cov[i][j];
            }
        }
        let total_variance: f64 = (0..dims).map(|i| cov[i][i]).sum();
        let (eigenvalues, eigenvectors) = jacobi_eigen(cov);
        // Sort descending by eigenvalue.
        let mut order: Vec<usize> = (0..dims).collect();
        order.sort_by(|&a, &b| eigenvalues[b].total_cmp(&eigenvalues[a]));
        let mut kept_values = Vec::new();
        let mut kept_vectors = Vec::new();
        let mut acc = 0.0;
        for &i in &order {
            kept_values.push(eigenvalues[i].max(0.0));
            kept_vectors.push(eigenvectors[i].clone());
            acc += eigenvalues[i].max(0.0);
            if total_variance > 0.0 && acc / total_variance >= variance_keep {
                break;
            }
        }
        Self {
            components: kept_vectors,
            eigenvalues: kept_values,
            total_variance,
            means,
        }
    }

    /// Number of retained components.
    pub fn dims(&self) -> usize {
        self.components.len()
    }

    /// Eigenvalues of the retained components (descending).
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Fraction of total variance the retained components explain.
    pub fn explained_variance(&self) -> f64 {
        if self.total_variance <= 0.0 {
            return 1.0;
        }
        self.eigenvalues.iter().sum::<f64>() / self.total_variance
    }

    /// Projects rows into the retained-component space.
    ///
    /// # Panics
    ///
    /// Panics if a row's dimensionality differs from the fitted data.
    pub fn transform(&self, data: &[Vec<f64>]) -> Vec<Vec<f64>> {
        data.iter()
            .map(|row| {
                assert_eq!(row.len(), self.means.len(), "dimension mismatch");
                self.components
                    .iter()
                    .map(|axis| {
                        axis.iter()
                            .zip(row.iter().zip(&self.means))
                            .map(|(a, (x, m))| a * (x - m))
                            .sum()
                    })
                    .collect()
            })
            .collect()
    }
}

/// Cyclic Jacobi diagonalization of a symmetric matrix.
/// Returns `(eigenvalues, eigenvectors)` where `eigenvectors[i]` is the
/// unit eigenvector for `eigenvalues[i]`.
fn jacobi_eigen(mut a: Vec<Vec<f64>>) -> (Vec<f64>, Vec<Vec<f64>>) {
    let n = a.len();
    // v starts as identity; columns become eigenvectors.
    let mut v = vec![vec![0.0f64; n]; n];
    for (i, row) in v.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    for _sweep in 0..100 {
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += a[i][j] * a[i][j];
            }
        }
        if off < 1e-20 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                if a[p][q].abs() < 1e-15 {
                    continue;
                }
                let theta = (a[q][q] - a[p][p]) / (2.0 * a[p][q]);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                for k in 0..n {
                    let akp = a[k][p];
                    let akq = a[k][q];
                    a[k][p] = c * akp - s * akq;
                    a[k][q] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[p][k];
                    let aqk = a[q][k];
                    a[p][k] = c * apk - s * aqk;
                    a[q][k] = s * apk + c * aqk;
                }
                for row in v.iter_mut() {
                    let vp = row[p];
                    let vq = row[q];
                    row[p] = c * vp - s * vq;
                    row[q] = s * vp + c * vq;
                }
            }
        }
    }
    let eigenvalues: Vec<f64> = (0..n).map(|i| a[i][i]).collect();
    let eigenvectors: Vec<Vec<f64>> = (0..n)
        .map(|col| (0..n).map(|row| v[row][col]).collect())
        .collect();
    (eigenvalues, eigenvectors)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jacobi_diagonalizes_known_matrix() {
        // Eigenvalues of [[2,1],[1,2]] are 3 and 1.
        let (mut vals, vecs) = jacobi_eigen(vec![vec![2.0, 1.0], vec![1.0, 2.0]]);
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((vals[0] - 1.0).abs() < 1e-10);
        assert!((vals[1] - 3.0).abs() < 1e-10);
        // Eigenvectors are unit length.
        for v in vecs {
            let norm: f64 = v.iter().map(|x| x * x).sum();
            assert!((norm - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn pca_finds_dominant_direction() {
        // Points along the y = x line with small noise: one strong component.
        let data: Vec<Vec<f64>> = (0..50)
            .map(|i| {
                let t = i as f64 / 10.0;
                vec![t, t + if i % 2 == 0 { 0.01 } else { -0.01 }]
            })
            .collect();
        let pca = Pca::fit(&data, 0.95);
        assert_eq!(pca.dims(), 1, "one component should suffice");
        assert!(pca.explained_variance() > 0.99);
        // The axis should be ~ (1/sqrt2, 1/sqrt2).
        let axis = &pca.components[0];
        assert!((axis[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 0.01);
    }

    #[test]
    fn transform_projects_to_component_count() {
        let data = vec![
            vec![1.0, 2.0, 3.0],
            vec![4.0, 5.0, 6.0],
            vec![1.0, 5.0, 3.0],
        ];
        let pca = Pca::fit(&data, 1.0);
        let t = pca.transform(&data);
        assert_eq!(t.len(), 3);
        assert!(t.iter().all(|r| r.len() == pca.dims()));
    }

    #[test]
    fn pca_preserves_pairwise_distances_at_full_variance() {
        let data = vec![
            vec![1.0, 0.0, 2.0],
            vec![0.0, 1.0, 1.0],
            vec![3.0, 2.0, 0.0],
            vec![1.5, 1.5, 1.5],
        ];
        let pca = Pca::fit(&data, 1.0);
        let t = pca.transform(&data);
        for i in 0..data.len() {
            for j in (i + 1)..data.len() {
                let d_in = crate::stats::dist_sq(&data[i], &data[j]);
                let d_out = crate::stats::dist_sq(&t[i], &t[j]);
                assert!(
                    (d_in - d_out).abs() < 1e-8,
                    "distance changed: {d_in} vs {d_out}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "needs data")]
    fn empty_data_panics() {
        let _ = Pca::fit(&[], 0.9);
    }

    proptest::proptest! {
        #[test]
        fn eigenvalues_sum_to_trace(seed in 0u64..500) {
            let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
            let mut next = move || {
                x ^= x << 13; x ^= x >> 7; x ^= x << 17;
                ((x % 2000) as f64 - 1000.0) / 250.0
            };
            // Random symmetric 5x5 matrix.
            let n = 5;
            let mut m = vec![vec![0.0; n]; n];
            for i in 0..n {
                for j in i..n {
                    let val = next();
                    m[i][j] = val;
                    m[j][i] = val;
                }
            }
            let trace: f64 = (0..n).map(|i| m[i][i]).sum();
            let (vals, _) = jacobi_eigen(m);
            let sum: f64 = vals.iter().sum();
            proptest::prop_assert!((sum - trace).abs() < 1e-6, "sum {} trace {}", sum, trace);
        }
    }
}
