//! Workload profiling: one run = one simulated `perf stat` plus proc-fs
//! sample plus data-volume accounting — everything the rest of the WCRT
//! pipeline consumes.

use crate::classify::{classify_system, SystemClass};
use crate::metrics::MetricVector;
use bdb_node::{Node, NodeConfig, SystemMetrics};
use bdb_sim::{Machine, MachineConfig, PerfReport};
use bdb_stacks::{DataBehavior, RunStats};
use bdb_workloads::{Scale, WorkloadDef, WorkloadSpec};
use serde::{Deserialize, Serialize};

/// Everything measured about one workload run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Workload identity.
    pub spec: WorkloadSpec,
    /// Simulated hardware-counter report.
    pub report: PerfReport,
    /// Simulated proc-fs metrics.
    pub system: SystemMetrics,
    /// System-behaviour class (paper §3.2.1 rules).
    pub system_class: SystemClass,
    /// Data-behaviour class (paper §3.2.2 rules).
    pub data_behavior: DataBehavior,
    /// Input/intermediate/output volumes.
    pub input_bytes: u64,
    /// Intermediate bytes (spills, shuffles).
    pub intermediate_bytes: u64,
    /// Output bytes.
    pub output_bytes: u64,
    /// The 45-metric characterization vector.
    pub metrics: MetricVector,
}

/// Profiles one workload at `scale` on the given machine and node models.
pub fn profile_workload(
    workload: &WorkloadDef,
    scale: Scale,
    machine_config: MachineConfig,
    node_config: NodeConfig,
) -> WorkloadProfile {
    let mut machine = Machine::new(machine_config);
    let stats: RunStats = workload.run(&mut machine, scale);
    let report = machine.report();
    let mut node = Node::new(node_config);
    for phase in &stats.phases {
        node.run_phase(phase.clone());
    }
    let system = node.metrics();
    let metrics = MetricVector::from_measurements(&report, &system);
    WorkloadProfile {
        spec: workload.spec.clone(),
        system_class: classify_system(&system),
        data_behavior: stats.data_behavior(),
        input_bytes: stats.input_bytes,
        intermediate_bytes: stats.intermediate_bytes,
        output_bytes: stats.output_bytes,
        report,
        system,
        metrics,
    }
}

/// Profiles many workloads (convenience for the reduction pipeline and the
/// benchmark binaries).
pub fn profile_all(
    workloads: &[WorkloadDef],
    scale: Scale,
    machine_config: &MachineConfig,
    node_config: &NodeConfig,
) -> Vec<WorkloadProfile> {
    workloads
        .iter()
        .map(|w| profile_workload(w, scale, machine_config.clone(), *node_config))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdb_workloads::catalog;

    #[test]
    fn profile_produces_finite_metrics() {
        let reps = catalog::representatives();
        let wc = reps
            .iter()
            .find(|w| w.spec.id == "H-WordCount")
            .expect("H-WordCount");
        let p = profile_workload(
            wc,
            Scale::tiny(),
            MachineConfig::xeon_e5645(),
            NodeConfig::default(),
        );
        assert!(p.report.instructions > 10_000);
        assert!(p.report.ipc() > 0.0);
        assert!(p.metrics.values().iter().all(|v| v.is_finite()));
        assert!(p.input_bytes > 0);
    }

    #[test]
    fn profile_is_deterministic() {
        let reps = catalog::representatives();
        let grep = reps.iter().find(|w| w.spec.id == "S-Grep").expect("S-Grep");
        let run = || {
            let p = profile_workload(
                grep,
                Scale::tiny(),
                MachineConfig::xeon_e5645(),
                NodeConfig::default(),
            );
            (
                p.report.instructions,
                p.report.cycles.to_bits(),
                p.metrics.values().to_vec(),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
        assert_eq!(a.2, b.2);
    }

    #[test]
    fn service_profile_differs_from_batch_profile() {
        let reps = catalog::representatives();
        let read = reps.iter().find(|w| w.spec.id == "H-Read").expect("H-Read");
        let wc = reps.iter().find(|w| w.spec.id == "M-WordCount").or(None);
        assert!(wc.is_none(), "MPI workloads are not representatives");
        let p = profile_workload(
            read,
            Scale::tiny(),
            MachineConfig::xeon_e5645(),
            NodeConfig::default(),
        );
        // The service workload has nontrivial front-end pressure.
        assert!(
            p.report.l1i_mpki() > 1.0,
            "service L1I MPKI {}",
            p.report.l1i_mpki()
        );
    }
}
