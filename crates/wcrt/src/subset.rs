//! Representative selection: after clustering, WCRT keeps one workload per
//! cluster — the member nearest the centroid.

use crate::kmeans::KMeansResult;
use crate::stats::dist_sq;

/// For each non-empty cluster, returns the index of the member nearest the
/// centroid, in cluster order.
pub fn select_representatives(data: &[Vec<f64>], clustering: &KMeansResult) -> Vec<usize> {
    let mut reps = Vec::new();
    for (c, centroid) in clustering.centroids.iter().enumerate() {
        let best = clustering
            .assignments
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a == c)
            .min_by(|&(i, _), &(j, _)| {
                dist_sq(&data[i], centroid).total_cmp(&dist_sq(&data[j], centroid))
            })
            .map(|(i, _)| i);
        if let Some(i) = best {
            reps.push(i);
        }
    }
    reps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::kmeans;

    #[test]
    fn picks_one_member_per_cluster() {
        let data = vec![vec![0.0], vec![0.2], vec![0.1], vec![10.0], vec![10.1]];
        let clustering = kmeans(&data, 2, 9, 50);
        let reps = select_representatives(&data, &clustering);
        assert_eq!(reps.len(), 2);
        // One rep from each blob.
        let blob_of = |i: usize| usize::from(data[i][0] > 5.0);
        assert_ne!(blob_of(reps[0]), blob_of(reps[1]));
    }

    #[test]
    fn representative_is_nearest_to_centroid() {
        let data = vec![vec![0.0], vec![1.0], vec![0.4]];
        let clustering = kmeans(&data, 1, 3, 50);
        let reps = select_representatives(&data, &clustering);
        // Centroid ~0.4667; nearest point is 0.4 (index 2).
        assert_eq!(reps, vec![2]);
    }

    #[test]
    fn empty_clusters_are_skipped() {
        // Construct a degenerate clustering manually.
        let data = vec![vec![0.0], vec![0.1]];
        let clustering = KMeansResult {
            assignments: vec![0, 0],
            centroids: vec![vec![0.05], vec![99.0]],
            inertia: 0.0,
        };
        let reps = select_representatives(&data, &clustering);
        assert_eq!(reps.len(), 1);
    }
}
