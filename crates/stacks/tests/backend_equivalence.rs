//! Property test: for *randomly generated* query plans over randomly
//! generated tables, the Hive, Shark, and Impala backends must return the
//! same rows. This is the strongest evidence that the three engines really
//! implement one relational semantics with only the stack differing.

use bdb_datagen::{Field, FieldKind, Schema, Table};
use bdb_stacks::dataflow::SparkStack;
use bdb_stacks::mapreduce::HadoopStack;
use bdb_stacks::sql::{execute_hive, execute_impala, execute_shark, Agg, ImpalaStack, Plan, Pred};
use bdb_trace::{CodeLayout, ExecCtx, NullSink};
use proptest::prelude::*;

fn table_strategy() -> impl Strategy<Value = Table> {
    proptest::collection::vec((0i64..40, 0i64..6, 0u32..5000u32, 0usize..4), 1..60).prop_map(
        |rows| {
            let schema = Schema::new([
                ("id", FieldKind::I64),
                ("grp", FieldKind::I64),
                ("price", FieldKind::F64),
                ("cat", FieldKind::Str),
            ]);
            const CATS: [&str; 4] = ["a", "b", "c", "d"];
            let rows = rows
                .into_iter()
                .map(|(id, grp, price, cat)| {
                    vec![
                        Field::I64(id),
                        Field::I64(grp),
                        Field::F64(f64::from(price) / 100.0),
                        Field::Str(CATS[cat].to_owned()),
                    ]
                })
                .collect();
            Table::from_rows(schema, rows)
        },
    )
}

fn plan_strategy() -> impl Strategy<Value = Plan> {
    let pred = prop_oneof![
        (0i64..40).prop_map(|v| Pred::I64Eq(0, v)),
        (0i64..30, 1i64..20).prop_map(|(lo, w)| Pred::I64Between(0, lo, lo + w)),
        (0usize..4).prop_map(|c| Pred::StrEq(3, ["a", "b", "c", "d"][c].to_owned())),
        (0u32..4000).prop_map(|v| Pred::F64Gt(2, f64::from(v) / 100.0)),
    ];
    // A filtered scan, optionally followed by one relational operator.
    (pred, 0usize..5).prop_map(|(p, shape)| {
        let base = Plan::scan(0).filter(p);
        match shape {
            0 => base,
            1 => base.project(vec![1, 2]),
            2 => base.aggregate(vec![1], Agg::SumF64(2)),
            3 => base.aggregate(vec![3], Agg::CountStar),
            // No limit after sort: ties may order differently per backend,
            // and canon() compares as a set anyway.
            _ => base.sort(0, true),
        }
    })
}

/// Canonical, float-tolerant row rendering for comparison.
fn canon(mut rows: Vec<Vec<Field>>) -> Vec<String> {
    let mut out: Vec<String> = rows
        .drain(..)
        .map(|r| {
            r.iter()
                .map(|f| match f {
                    Field::F64(x) => format!("F({x:.6})"),
                    Field::I64(x) => format!("I({x})"),
                    Field::Str(s) => format!("S({s})"),
                })
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect();
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn three_backends_agree(table in table_strategy(), plan in plan_strategy()) {
        let tables = [&table];
        let impala = {
            let mut layout = CodeLayout::new();
            let stack = ImpalaStack::register(&mut layout);
            let mut sink = NullSink;
            let mut ctx = ExecCtx::new(&layout, &mut sink);
            canon(execute_impala(&mut ctx, &stack, &tables, &plan).0)
        };
        let hive = {
            let mut layout = CodeLayout::new();
            let stack = HadoopStack::register(&mut layout);
            let mut sink = NullSink;
            let mut ctx = ExecCtx::new(&layout, &mut sink);
            canon(execute_hive(&mut ctx, &stack, &tables, &plan).0)
        };
        let shark = {
            let mut layout = CodeLayout::new();
            let stack = SparkStack::register(&mut layout);
            let mut sink = NullSink;
            let mut ctx = ExecCtx::new(&layout, &mut sink);
            canon(execute_shark(&mut ctx, &stack, &tables, &plan).0)
        };
        prop_assert_eq!(&impala, &hive, "impala vs hive");
        prop_assert_eq!(&impala, &shark, "impala vs shark");
    }
}
