//! The Hadoop-like MapReduce engine.
//!
//! A deliberately *deep* stack: per record, execution passes through the
//! input format, record reader, deserializers, the map runner, the output
//! collector, partitioner, and serializers; periodically through progress
//! reporting, logging, heartbeats, and GC scans; per spill through a real
//! traced sort (optionally a combiner) and the spill writer; and on the
//! reduce side through shuffle fetch, merge, grouping, the reduce runner,
//! and the output writer. Each of those routines owns kilobytes of code
//! region with a wide invocation spread, which is how the engine
//! accumulates the ~1 MiB instruction footprint the paper measures for
//! Hadoop workloads (Figure 6) — while the *work* (sorting, grouping,
//! copying, user map/reduce) is real computation on real records.

use crate::record::{trace_copy, trace_scan, trace_stream, Record, RecordBuffer};
use crate::runtime::{Routine, RunStats};
use crate::sort::{group_runs, traced_sort_by_key};
use bdb_node::Phase;
use bdb_trace::{CodeLayout, ExecCtx, MemRegion, OpMix};

/// Receives records emitted by mappers, combiners, and reducers.
#[derive(Debug, Default)]
pub struct Emitter {
    records: Vec<Record>,
}

impl Emitter {
    /// Creates an empty emitter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Emits one record.
    pub fn emit(&mut self, record: Record) {
        self.records.push(record);
    }

    /// Number of records emitted so far.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if nothing was emitted.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Takes the emitted records, leaving the emitter empty.
    pub fn take(&mut self) -> Vec<Record> {
        std::mem::take(&mut self.records)
    }
}

/// User map function.
pub trait Mapper {
    /// Maps one input record. `value_addr` is the simulated address of the
    /// record's bytes (for tracing data touches inside the mapper).
    fn map(&mut self, ctx: &mut ExecCtx<'_>, record: &Record, value_addr: u64, out: &mut Emitter);
}

/// User reduce (and combine) function.
pub trait Reducer {
    /// Reduces one key group. `addr` is the simulated address of the first
    /// grouped record.
    fn reduce(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        key: &[u8],
        values: &[Record],
        addr: u64,
        out: &mut Emitter,
    );
}

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MapReduceConfig {
    /// Number of reduce partitions.
    pub reduces: usize,
    /// Input records per map task (split size).
    pub split_records: usize,
    /// Collector records per spill.
    pub spill_records: usize,
    /// Records between framework service ticks (progress, counters).
    pub service_interval: usize,
    /// Whether to run the combiner before spilling.
    pub use_combiner: bool,
}

impl Default for MapReduceConfig {
    fn default() -> Self {
        Self {
            reduces: 4,
            split_records: 512,
            spill_records: 256,
            service_interval: 48,
            use_combiner: false,
        }
    }
}

/// The registered routine set of the Hadoop-like stack.
///
/// Region sizes and spreads are the reproduction's model of the Hadoop +
/// JVM code base (~1.2 MiB of hot framework text).
#[derive(Debug, Clone)]
pub struct HadoopStack {
    mix: OpMix,
    /// JVM runtime service farm (class lookup, codecs, NIO buffers, CRC,
    /// reflection glue…) touched on every record path — the bulk of the
    /// Hadoop instruction footprint.
    jvm: Vec<Routine>,
    // one-time
    job_setup: Routine,
    task_setup: Routine,
    // per-record, map side
    input_format: Routine,
    record_reader: Routine,
    deserialize: Routine,
    map_runner: Routine,
    collector: Routine,
    partitioner: Routine,
    serializer: Routine,
    // periodic services
    progress: Routine,
    gc_minor: Routine,
    logging: Routine,
    heartbeat: Routine,
    // spill
    sort: Routine,
    combine_runner: Routine,
    spill_writer: Routine,
    // reduce side
    shuffle_fetch: Routine,
    merge: Routine,
    grouping: Routine,
    reduce_runner: Routine,
    output_writer: Routine,
}

impl HadoopStack {
    /// Registers all framework routines in `layout`.
    pub fn register(layout: &mut CodeLayout) -> Self {
        let r = |layout: &mut CodeLayout, name: &str, kib: u64, units: u32, spread: u64| {
            Routine::register(layout, format!("hadoop::{name}"), kib * 1024, units, spread)
        };
        Self {
            mix: OpMix::framework(),
            jvm: (0..10)
                .map(|i| {
                    Routine::register(layout, format!("hadoop::jvm_svc_{i}"), 56 * 1024, 8, 100)
                })
                .collect(),
            job_setup: r(layout, "job_setup", 96, 2500, 100),
            task_setup: r(layout, "task_setup", 64, 900, 100),
            input_format: r(layout, "input_format", 24, 8, 95),
            record_reader: r(layout, "record_reader", 40, 20, 95),
            deserialize: r(layout, "deserialize", 32, 14, 95),
            map_runner: r(layout, "map_runner", 24, 10, 95),
            collector: r(layout, "output_collector", 32, 12, 95),
            partitioner: r(layout, "partitioner", 8, 5, 80),
            serializer: r(layout, "serializer", 32, 12, 95),
            progress: r(layout, "progress_report", 40, 45, 100),
            gc_minor: r(layout, "gc_minor", 96, 130, 100),
            logging: r(layout, "logging", 64, 35, 100),
            heartbeat: r(layout, "rpc_heartbeat", 64, 60, 100),
            sort: r(layout, "spill_sort", 24, 30, 70),
            combine_runner: r(layout, "combine_runner", 24, 9, 80),
            spill_writer: r(layout, "spill_writer", 40, 14, 95),
            shuffle_fetch: r(layout, "shuffle_fetch", 48, 25, 95),
            merge: r(layout, "merge_manager", 48, 25, 90),
            grouping: r(layout, "grouping_iterator", 16, 8, 80),
            reduce_runner: r(layout, "reduce_runner", 24, 8, 80),
            output_writer: r(layout, "output_writer", 40, 16, 95),
        }
    }

    /// Region usable as a driver's root frame.
    pub fn root_region(&self) -> bdb_trace::RegionId {
        self.map_runner.region
    }

    /// Fraction of a Routine call that is framework-path boilerplate; used
    /// by tests to sanity-check the stack's depth.
    pub fn per_record_units(&self) -> u32 {
        self.input_format.units
            + self.record_reader.units
            + self.deserialize.units
            + self.map_runner.units
            + self.collector.units
            + self.partitioner.units
            + self.serializer.units
    }
}

/// Output of a MapReduce job.
#[derive(Debug)]
pub struct JobOutput {
    /// Final output records (concatenated across reduce partitions, in
    /// partition order; each partition is key-sorted).
    pub records: Vec<Record>,
    /// Resource accounting.
    pub stats: RunStats,
}

/// The MapReduce engine bound to a registered stack.
#[derive(Debug)]
pub struct MapReduce<'s> {
    stack: &'s HadoopStack,
    config: MapReduceConfig,
}

impl<'s> MapReduce<'s> {
    /// Creates an engine.
    ///
    /// # Panics
    ///
    /// Panics if `reduces == 0` or `split_records == 0`.
    pub fn new(stack: &'s HadoopStack, config: MapReduceConfig) -> Self {
        assert!(config.reduces > 0, "need at least one reduce partition");
        assert!(config.split_records > 0, "split must hold records");
        Self { stack, config }
    }

    /// Runs a map-only job (no sort, shuffle, or reduce) — what Hive plans
    /// for pure SELECT/filter/projection queries. The mapper's emissions
    /// become the job output directly.
    pub fn run_map_only(
        &self,
        ctx: &mut ExecCtx<'_>,
        input: &[Record],
        mapper: &mut dyn Mapper,
    ) -> JobOutput {
        let s = self.stack;
        let scratch = ctx.scratch_alloc(64 * 1024, 64);
        let input_bytes = crate::record::total_bytes(input);
        let input_region = ctx.heap_alloc(input_bytes.clamp(4096, 16 << 20), 64);
        let mut input_buf = RecordBuffer::new(input_region);
        let input_addrs: Vec<u64> = input
            .iter()
            .map(|r| input_buf.push(r.byte_size()))
            .collect();
        let mut stats = RunStats {
            input_bytes,
            ..Default::default()
        };
        ctx.frame(s.job_setup.region, |ctx| {
            ctx.boilerplate(&s.mix, u64::from(s.job_setup.units), &scratch);
        });
        let map_start_ops = ctx.ops_retired();
        let mut output = Vec::new();
        let mut output_bytes = 0u64;
        let mut emitter = Emitter::new();
        for (task_id, split) in input.chunks(self.config.split_records).enumerate() {
            let split_addrs = &input_addrs[task_id * self.config.split_records..][..split.len()];
            s.task_setup.run(ctx, &s.mix, &scratch);
            for (i, (record, &addr)) in split.iter().zip(split_addrs).enumerate() {
                self.map_one(ctx, &scratch, record, addr, mapper, &mut emitter);
                for out in emitter.take() {
                    let len = out.byte_size();
                    output_bytes += len;
                    s.output_writer.enter(ctx, &s.mix, &scratch, |ctx| {
                        trace_copy(ctx, addr, scratch.base(), len.min(scratch.len()));
                    });
                    output.push(out);
                }
                if (i + 1) % self.config.service_interval == 0 {
                    s.progress.run(ctx, &s.mix, &scratch);
                    if (i + 1) % (self.config.service_interval * 4) == 0 {
                        s.gc_minor.run(ctx, &s.mix, &scratch);
                    }
                }
            }
        }
        stats.output_bytes = output_bytes;
        stats.phases.push(Phase {
            name: "map_only".into(),
            instructions: ctx.ops_retired() - map_start_ops,
            disk_read_bytes: input_bytes,
            disk_write_bytes: output_bytes,
            net_bytes: 0,
            io_parallelism: 4.0,
        });
        JobOutput {
            records: output,
            stats,
        }
    }

    /// Runs a full job.
    ///
    /// `combiner` is only consulted when the config enables it.
    pub fn run(
        &self,
        ctx: &mut ExecCtx<'_>,
        input: &[Record],
        mapper: &mut dyn Mapper,
        mut combiner: Option<&mut dyn Reducer>,
        reducer: &mut dyn Reducer,
    ) -> JobOutput {
        let s = self.stack;
        let scratch = ctx.scratch_alloc(64 * 1024, 64);
        let input_bytes = crate::record::total_bytes(input);
        // Simulated placement of input, map-output, and reduce-side buffers.
        let input_region = ctx.heap_alloc(input_bytes.clamp(4096, 16 << 20), 64);
        let mut input_buf = RecordBuffer::new(input_region);
        let input_addrs: Vec<u64> = input
            .iter()
            .map(|r| input_buf.push(r.byte_size()))
            .collect();
        let spill_region = ctx.heap_alloc(1 << 20, 64);
        let reduce_region = ctx.heap_alloc(2 << 20, 64);

        let mut stats = RunStats {
            input_bytes,
            ..Default::default()
        };

        ctx.frame(s.job_setup.region, |ctx| {
            ctx.boilerplate(&s.mix, u64::from(s.job_setup.units), &scratch);
        });

        // ---- map phase -------------------------------------------------
        let map_start_ops = ctx.ops_retired();
        let mut partitions: Vec<Vec<(Record, u64)>> = vec![Vec::new(); self.config.reduces];
        let mut intermediate_bytes = 0u64;
        for (task_id, split) in input.chunks(self.config.split_records).enumerate() {
            let split_addrs = &input_addrs[task_id * self.config.split_records..][..split.len()];
            s.task_setup.run(ctx, &s.mix, &scratch);
            let mut spill_buf = RecordBuffer::new(spill_region);
            let mut collected: Vec<Record> = Vec::new();
            let mut collected_addrs: Vec<u64> = Vec::new();
            let mut emitter = Emitter::new();
            for (i, (record, &addr)) in split.iter().zip(split_addrs).enumerate() {
                self.map_one(ctx, &scratch, record, addr, mapper, &mut emitter);
                for out in emitter.take() {
                    let len = out.byte_size();
                    s.partitioner.enter(ctx, &s.mix, &scratch, |ctx| {
                        trace_scan(ctx, addr, out.key.len() as u64);
                        ctx.int_other(3);
                    });
                    let dst = spill_buf.push(len.max(1));
                    s.serializer.enter(ctx, &s.mix, &scratch, |ctx| {
                        trace_copy(ctx, addr, dst, len);
                    });
                    collected.push(out);
                    collected_addrs.push(dst);
                }
                if (i + 1) % self.config.service_interval == 0 {
                    s.progress.run(ctx, &s.mix, &scratch);
                    if (i + 1) % (self.config.service_interval * 4) == 0 {
                        s.gc_minor.enter(ctx, &s.mix, &scratch, |ctx| {
                            trace_scan(ctx, spill_region.base(), 2048);
                        });
                        s.logging.run(ctx, &s.mix, &scratch);
                    }
                    if (i + 1) % (self.config.service_interval * 8) == 0 {
                        s.heartbeat.run(ctx, &s.mix, &scratch);
                    }
                }
                if collected.len() >= self.config.spill_records {
                    intermediate_bytes += self.spill(
                        ctx,
                        &scratch,
                        &mut collected,
                        &mut collected_addrs,
                        &mut combiner,
                        &mut partitions,
                    );
                    spill_buf.clear();
                }
            }
            if !collected.is_empty() {
                intermediate_bytes += self.spill(
                    ctx,
                    &scratch,
                    &mut collected,
                    &mut collected_addrs,
                    &mut combiner,
                    &mut partitions,
                );
            }
        }
        stats.intermediate_bytes = intermediate_bytes;
        stats.phases.push(Phase {
            name: "map".into(),
            instructions: ctx.ops_retired() - map_start_ops,
            disk_read_bytes: input_bytes,
            disk_write_bytes: intermediate_bytes,
            net_bytes: 0,
            io_parallelism: 4.0,
        });

        // ---- shuffle ---------------------------------------------------
        let shuffle_start_ops = ctx.ops_retired();
        let remote_fraction =
            (self.config.reduces.saturating_sub(1)) as f64 / self.config.reduces as f64;
        let net_bytes = (intermediate_bytes as f64 * remote_fraction) as u64;
        let mut reduce_inputs: Vec<(Vec<Record>, Vec<u64>)> = Vec::new();
        for part in partitions {
            let mut fetch_buf = RecordBuffer::new(reduce_region);
            let mut records = Vec::with_capacity(part.len());
            let mut addrs = Vec::with_capacity(part.len());
            s.shuffle_fetch.enter(ctx, &s.mix, &scratch, |ctx| {
                for (rec, src) in part {
                    let len = rec.byte_size();
                    let dst = fetch_buf.push(len.max(1));
                    trace_copy(ctx, src, dst, len);
                    records.push(rec);
                    addrs.push(dst);
                }
            });
            reduce_inputs.push((records, addrs));
        }
        stats.phases.push(Phase {
            name: "shuffle".into(),
            instructions: ctx.ops_retired() - shuffle_start_ops,
            disk_read_bytes: intermediate_bytes,
            disk_write_bytes: 0,
            net_bytes,
            io_parallelism: 8.0,
        });

        // ---- reduce phase ----------------------------------------------
        let reduce_start_ops = ctx.ops_retired();
        let mut output = Vec::new();
        let mut output_bytes = 0u64;
        let mut emitter = Emitter::new();
        for (mut records, mut addrs) in reduce_inputs {
            s.merge.enter(ctx, &s.mix, &scratch, |ctx| {
                ctx.frame(s.sort.region, |ctx| {
                    traced_sort_by_key(ctx, &mut records, &mut addrs);
                });
            });
            for (lo, hi) in group_runs(&records) {
                s.grouping.run(ctx, &s.mix, &scratch);
                let key = records[lo].key.clone();
                s.reduce_runner.enter(ctx, &s.mix, &scratch, |ctx| {
                    reducer.reduce(ctx, &key, &records[lo..hi], addrs[lo], &mut emitter);
                });
                for out in emitter.take() {
                    let len = out.byte_size();
                    output_bytes += len;
                    s.output_writer.enter(ctx, &s.mix, &scratch, |ctx| {
                        trace_copy(ctx, addrs[lo], reduce_region.base(), len);
                    });
                    output.push(out);
                }
            }
        }
        stats.output_bytes = output_bytes;
        stats.phases.push(Phase {
            name: "reduce".into(),
            instructions: ctx.ops_retired() - reduce_start_ops,
            disk_read_bytes: 0,
            disk_write_bytes: output_bytes,
            net_bytes: 0,
            io_parallelism: 2.0,
        });

        JobOutput {
            records: output,
            stats,
        }
    }

    fn map_one(
        &self,
        ctx: &mut ExecCtx<'_>,
        scratch: &MemRegion,
        record: &Record,
        addr: u64,
        mapper: &mut dyn Mapper,
        emitter: &mut Emitter,
    ) {
        let s = self.stack;
        // Two JVM runtime services per record (rotating through the farm).
        let salt = (ctx.ops_retired() / 97) as usize;
        s.jvm[salt % s.jvm.len()].run(ctx, &s.mix, scratch);
        s.jvm[(salt + 3) % s.jvm.len()].run(ctx, &s.mix, scratch);
        s.input_format.run(ctx, &s.mix, scratch);
        s.record_reader.enter(ctx, &s.mix, scratch, |ctx| {
            trace_stream(ctx, addr, record.byte_size(), 16);
        });
        s.deserialize.enter(ctx, &s.mix, scratch, |ctx| {
            trace_copy(
                ctx,
                addr,
                scratch.base(),
                record.byte_size().min(scratch.len()),
            );
        });
        s.map_runner.enter(ctx, &s.mix, scratch, |ctx| {
            mapper.map(ctx, record, addr, emitter);
        });
        if !emitter.is_empty() {
            s.collector.run(ctx, &s.mix, scratch);
        }
    }

    /// Sorts, optionally combines, and spills the collected map output.
    /// Returns the bytes spilled.
    fn spill(
        &self,
        ctx: &mut ExecCtx<'_>,
        scratch: &MemRegion,
        collected: &mut Vec<Record>,
        collected_addrs: &mut Vec<u64>,
        combiner: &mut Option<&mut dyn Reducer>,
        partitions: &mut [Vec<(Record, u64)>],
    ) -> u64 {
        let s = self.stack;
        ctx.frame(s.sort.region, |ctx| {
            traced_sort_by_key(ctx, collected, collected_addrs);
        });
        let mut to_spill: Vec<(Record, u64)> = Vec::new();
        if let Some(combiner) = combiner.as_mut() {
            let mut emitter = Emitter::new();
            for (lo, hi) in group_runs(collected) {
                let key = collected[lo].key.clone();
                s.combine_runner.enter(ctx, &s.mix, scratch, |ctx| {
                    combiner.reduce(
                        ctx,
                        &key,
                        &collected[lo..hi],
                        collected_addrs[lo],
                        &mut emitter,
                    );
                });
                for rec in emitter.take() {
                    to_spill.push((rec, collected_addrs[lo]));
                }
            }
        } else {
            to_spill = collected.drain(..).zip(collected_addrs.drain(..)).collect();
        }
        collected.clear();
        collected_addrs.clear();
        let mut bytes = 0u64;
        for (rec, addr) in to_spill {
            let len = rec.byte_size();
            bytes += len;
            s.spill_writer.enter(ctx, &s.mix, scratch, |ctx| {
                trace_copy(ctx, addr, scratch.base(), len.min(scratch.len()));
            });
            let p = partition_of(&rec.key, partitions.len());
            partitions[p].push((rec, addr));
        }
        bytes
    }
}

/// The engine's hash partitioner (deterministic FNV-1a over the key).
pub fn partition_of(key: &[u8], partitions: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    (h % partitions as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdb_trace::MixSink;

    /// WordCount-style mapper/reducer used to exercise the engine.
    struct SplitMapper;
    impl Mapper for SplitMapper {
        fn map(&mut self, ctx: &mut ExecCtx<'_>, record: &Record, addr: u64, out: &mut Emitter) {
            // Split the value on spaces; real work, traced coarsely.
            trace_scan(ctx, addr, record.byte_size());
            for word in record.value.split(|&b| b == b' ') {
                if !word.is_empty() {
                    out.emit(Record::new(word.to_vec(), 1u64.to_be_bytes().to_vec()));
                }
            }
        }
    }

    struct SumReducer;
    impl Reducer for SumReducer {
        fn reduce(
            &mut self,
            ctx: &mut ExecCtx<'_>,
            key: &[u8],
            values: &[Record],
            addr: u64,
            out: &mut Emitter,
        ) {
            let mut sum = 0u64;
            for v in values {
                ctx.read(addr, 8);
                ctx.int_other(1);
                sum += u64::from_be_bytes(v.value[..8].try_into().expect("8-byte counts"));
            }
            out.emit(Record::new(key.to_vec(), sum.to_be_bytes().to_vec()));
        }
    }

    fn sample_input() -> Vec<Record> {
        vec![
            Record::new(b"1".to_vec(), b"the quick brown fox".to_vec()),
            Record::new(b"2".to_vec(), b"the lazy dog".to_vec()),
            Record::new(b"3".to_vec(), b"the quick dog".to_vec()),
        ]
    }

    fn run_job(use_combiner: bool) -> (JobOutput, bdb_trace::InstructionMix) {
        let mut layout = CodeLayout::new();
        let stack = HadoopStack::register(&mut layout);
        let mut sink = MixSink::new();
        let mut ctx = ExecCtx::new(&layout, &mut sink);
        let engine = MapReduce::new(
            &stack,
            MapReduceConfig {
                reduces: 2,
                use_combiner,
                ..Default::default()
            },
        );
        let mut mapper = SplitMapper;
        let mut reducer = SumReducer;
        let mut combiner = SumReducer;
        let out = engine.run(
            &mut ctx,
            &sample_input(),
            &mut mapper,
            if use_combiner {
                Some(&mut combiner)
            } else {
                None
            },
            &mut reducer,
        );
        (out, sink.mix())
    }

    fn counts(out: &JobOutput) -> std::collections::HashMap<Vec<u8>, u64> {
        out.records
            .iter()
            .map(|r| {
                (
                    r.key.clone(),
                    u64::from_be_bytes(r.value[..8].try_into().expect("8 bytes")),
                )
            })
            .collect()
    }

    #[test]
    fn wordcount_produces_correct_counts() {
        let (out, _) = run_job(false);
        let c = counts(&out);
        assert_eq!(c[&b"the".to_vec()], 3);
        assert_eq!(c[&b"quick".to_vec()], 2);
        assert_eq!(c[&b"dog".to_vec()], 2);
        assert_eq!(c[&b"fox".to_vec()], 1);
        assert_eq!(c.len(), 6);
    }

    #[test]
    fn combiner_does_not_change_results() {
        let (plain, _) = run_job(false);
        let (combined, _) = run_job(true);
        assert_eq!(counts(&plain), counts(&combined));
    }

    #[test]
    fn combiner_reduces_intermediate_bytes() {
        let (plain, _) = run_job(false);
        let (combined, _) = run_job(true);
        assert!(combined.stats.intermediate_bytes <= plain.stats.intermediate_bytes);
    }

    #[test]
    fn stats_have_three_phases_and_real_bytes() {
        let (out, _) = run_job(false);
        assert_eq!(out.stats.phases.len(), 3);
        assert!(out.stats.input_bytes > 0);
        assert!(out.stats.intermediate_bytes > 0);
        assert!(out.stats.output_bytes > 0);
        assert!(out.stats.phases.iter().all(|p| p.instructions > 0));
    }

    #[test]
    fn framework_dominates_instruction_stream() {
        // The deep-stack property: most dynamic instructions come from the
        // framework, not the tiny user functions.
        let (_, mix) = run_job(false);
        // 3 records of ~15 bytes each: a thin stack would emit a few
        // hundred ops; the deep stack emits thousands.
        assert!(
            mix.total() > 4_000,
            "deep stack should emit plenty of ops: {}",
            mix.total()
        );
        assert!(mix.branches > 0 && mix.loads > 0 && mix.stores > 0);
    }

    #[test]
    fn output_is_sorted_within_partitions() {
        let (out, _) = run_job(false);
        // Each partition's records are key-sorted; verify global grouping.
        let mut seen = std::collections::HashSet::new();
        for r in &out.records {
            assert!(
                seen.insert(r.key.clone()),
                "duplicate key in output: {:?}",
                r.key
            );
        }
    }

    #[test]
    fn partition_of_is_stable_and_in_range() {
        for key in [b"a".as_slice(), b"hello", b"", b"zzz"] {
            let p = partition_of(key, 7);
            assert!(p < 7);
            assert_eq!(p, partition_of(key, 7));
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let mut layout = CodeLayout::new();
        let stack = HadoopStack::register(&mut layout);
        let mut sink = MixSink::new();
        let mut ctx = ExecCtx::new(&layout, &mut sink);
        let engine = MapReduce::new(&stack, MapReduceConfig::default());
        let out = engine.run(&mut ctx, &[], &mut SplitMapper, None, &mut SumReducer);
        assert!(out.records.is_empty());
        assert_eq!(out.stats.output_bytes, 0);
    }
}
