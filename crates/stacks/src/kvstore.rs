//! The HBase-like key-value service.
//!
//! The service-class workloads (cloud OLTP) are the paper's worst
//! front-end citizens: H-Read tops Figure 4 at 51 L1I MPKI because user
//! requests are stochastic — every request takes a different path through a
//! large service code base (RPC decode, routing, versioning, codecs,
//! region-server handlers…). We model that with a farm of handler routines:
//! each request is indirectly dispatched through a request-dependent
//! subset of them, then performs a real LSM lookup (memstore B-tree probe,
//! store-file binary search, block read).

use crate::record::{trace_copy, trace_key_compare, trace_scan, trace_stream, Record};
use crate::runtime::{Routine, RunStats};
use crate::sort::traced_sort_by_key;
use bdb_node::Phase;
use bdb_trace::{CodeLayout, ExecCtx, MemRegion, OpMix};
use std::collections::BTreeMap;

/// Number of distinct handler routines in the service farm.
pub const HANDLER_FARM: usize = 48;

/// The registered routine set of the HBase-like service (~1.6 MiB).
#[derive(Debug, Clone)]
pub struct HbaseStack {
    mix: OpMix,
    rpc_listener: Routine,
    handlers: Vec<Routine>,
    memstore: Routine,
    block_index: Routine,
    block_read: Routine,
    wal_append: Routine,
    flush: Routine,
    response_writer: Routine,
}

impl HbaseStack {
    /// Registers all service routines in `layout`.
    pub fn register(layout: &mut CodeLayout) -> Self {
        let r = |layout: &mut CodeLayout, name: String, kib: u64, units: u32, spread: u64| {
            Routine::register(layout, name, kib * 1024, units, spread)
        };
        Self {
            mix: OpMix::framework(),
            rpc_listener: r(layout, "hbase::rpc_listener".into(), 48, 22, 70),
            handlers: (0..HANDLER_FARM)
                .map(|i| r(layout, format!("hbase::handler_{i:02}"), 32, 44, 100))
                .collect(),
            memstore: r(layout, "hbase::memstore".into(), 32, 10, 40),
            block_index: r(layout, "hbase::block_index".into(), 24, 8, 45),
            block_read: r(layout, "hbase::block_read".into(), 32, 10, 45),
            wal_append: r(layout, "hbase::wal_append".into(), 32, 12, 50),
            flush: r(layout, "hbase::memstore_flush".into(), 48, 60, 70),
            response_writer: r(layout, "hbase::response_writer".into(), 32, 14, 60),
        }
    }

    /// Region for the service driver loop.
    pub fn root_region(&self) -> bdb_trace::RegionId {
        self.rpc_listener.region
    }
}

/// A client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Point read.
    Get(Vec<u8>),
    /// Write.
    Put(Record),
    /// Range scan returning up to `limit` records from `start`.
    Scan {
        /// First key of the range.
        start: Vec<u8>,
        /// Maximum records returned.
        limit: usize,
    },
}

/// The LSM store plus service front-end.
#[derive(Debug)]
pub struct KvService<'s> {
    stack: &'s HbaseStack,
    scratch: MemRegion,
    data_region: MemRegion,
    memstore: BTreeMap<Vec<u8>, Vec<u8>>,
    memstore_limit: usize,
    /// Sorted immutable runs (newest first).
    sstables: Vec<Vec<Record>>,
    stats: RunStats,
    /// Physical store-file bytes read (block-granular), distinct from the
    /// logical record volume in `stats.input_bytes`.
    block_io_bytes: u64,
    responses: u64,
    request_seq: u64,
}

impl<'s> KvService<'s> {
    /// Creates a service with an empty store.
    pub fn new(stack: &'s HbaseStack, ctx: &mut ExecCtx<'_>) -> Self {
        let scratch = ctx.scratch_alloc(32 * 1024, 64);
        let data_region = ctx.heap_alloc(8 << 20, 64);
        Self {
            stack,
            scratch,
            data_region,
            memstore: BTreeMap::new(),
            memstore_limit: 512,
            sstables: Vec::new(),
            stats: RunStats::default(),
            block_io_bytes: 0,
            responses: 0,
            request_seq: 0,
        }
    }

    /// Bulk-loads sorted base data as one store file (no WAL, no tracing —
    /// the table existed before the measured window).
    pub fn bulk_load(&mut self, mut records: Vec<Record>) {
        records.sort_by(|a, b| a.key.cmp(&b.key));
        records.dedup_by(|a, b| a.key == b.key);
        self.sstables.push(records);
    }

    /// Total records resident across memstore and store files.
    pub fn resident_records(&self) -> usize {
        self.memstore.len() + self.sstables.iter().map(Vec::len).sum::<usize>()
    }

    fn addr_for(&self, salt: u64) -> u64 {
        self.data_region.base() + (salt * 64) % self.data_region.len()
    }

    /// Serves one request, returning the response payload bytes (empty for
    /// misses and puts).
    pub fn serve(&mut self, ctx: &mut ExecCtx<'_>, request: &Request) -> Vec<Record> {
        self.request_seq += 1;
        let seq = self.request_seq;
        let stack = self.stack;
        stack.rpc_listener.run(ctx, &stack.mix, &self.scratch);
        // Request-dependent path through the handler farm: three indirect
        // hops whose identity depends on the request bytes.
        let h = request_hash(request) as usize;
        for hop in 0..5usize {
            let handler = stack.handlers[(h + hop * 13) % stack.handlers.len()];
            ctx.dispatch(handler.region, |ctx| {
                ctx.frame_spread(handler.region, handler.spread, |ctx| {
                    ctx.boilerplate(&stack.mix, u64::from(handler.units), &self.scratch);
                });
            });
        }
        let out = match request {
            Request::Get(key) => {
                let rec = self.lookup(ctx, key, seq);
                rec.into_iter().collect()
            }
            Request::Put(record) => {
                self.put(ctx, record.clone());
                Vec::new()
            }
            Request::Scan { start, limit } => self.scan(ctx, start, *limit),
        };
        let bytes: u64 = out.iter().map(Record::byte_size).sum();
        stack
            .response_writer
            .enter(ctx, &stack.mix, &self.scratch, |ctx| {
                trace_copy(
                    ctx,
                    self.data_region.base(),
                    self.scratch.base(),
                    bytes.clamp(8, 4096),
                );
            });
        self.responses += 1;
        self.stats.output_bytes += bytes;
        out
    }

    fn lookup(&mut self, ctx: &mut ExecCtx<'_>, key: &[u8], seq: u64) -> Option<Record> {
        let stack = self.stack;
        // Memstore probe: a traced descent proportional to log2(len).
        let depth = (self.memstore.len().max(2) as f64).log2().ceil() as u64;
        let key_addr = self.addr_for(seq);
        stack.memstore.enter(ctx, &stack.mix, &self.scratch, |ctx| {
            for level in 0..depth {
                let probe = Record::new(vec![level as u8], vec![]);
                let _ = trace_key_compare(
                    ctx,
                    key,
                    key_addr,
                    &probe.key,
                    self.data_region.base() + level * 64,
                );
            }
        });
        if let Some(v) = self.memstore.get(key) {
            return Some(Record::new(key.to_vec(), v.clone()));
        }
        // Store files, newest first: index probe + binary search + block read.
        for (t, table) in self.sstables.iter().enumerate() {
            stack.block_index.run(ctx, &stack.mix, &self.scratch);
            let mut lo = 0usize;
            let mut hi = table.len();
            let mut found = None;
            while lo < hi {
                let mid = (lo + hi) / 2;
                let mid_addr = self.data_region.base()
                    + ((t as u64 * 131 + mid as u64) * 64) % self.data_region.len();
                let ord = ctx.frame(stack.block_index.region, |ctx| {
                    trace_key_compare(ctx, key, key_addr, &table[mid].key, mid_addr)
                });
                match ord {
                    std::cmp::Ordering::Equal => {
                        found = Some(mid);
                        break;
                    }
                    std::cmp::Ordering::Less => hi = mid,
                    std::cmp::Ordering::Greater => lo = mid + 1,
                }
            }
            if let Some(i) = found {
                let rec = table[i].clone();
                // HFile reads are block-granular: a point get pulls a full
                // 8 KiB block from the store file (charged as I/O), but the
                // CPU only walks the block header and the target cell.
                stack
                    .block_read
                    .enter(ctx, &stack.mix, &self.scratch, |ctx| {
                        let base =
                            self.data_region.base() + (i as u64 * 64) % self.data_region.len();
                        trace_stream(ctx, base, 1024, 64);
                        trace_stream(ctx, base + 1024, rec.byte_size().max(64), 16);
                    });
                self.stats.input_bytes += rec.byte_size();
                self.block_io_bytes += 8 * 1024;
                return Some(rec);
            }
        }
        None
    }

    fn put(&mut self, ctx: &mut ExecCtx<'_>, record: Record) {
        let stack = self.stack;
        let len = record.byte_size().max(1);
        stack
            .wal_append
            .enter(ctx, &stack.mix, &self.scratch, |ctx| {
                trace_copy(
                    ctx,
                    self.scratch.base(),
                    self.data_region.base(),
                    len.min(4096),
                );
            });
        self.stats.input_bytes += len;
        self.memstore.insert(record.key, record.value);
        if self.memstore.len() >= self.memstore_limit {
            self.flush(ctx);
        }
    }

    /// Flushes the memstore into a new store file (traced sort + write).
    fn flush(&mut self, ctx: &mut ExecCtx<'_>) {
        let stack = self.stack;
        let mut records: Vec<Record> = std::mem::take(&mut self.memstore)
            .into_iter()
            .map(|(k, v)| Record::new(k, v))
            .collect();
        let mut addrs: Vec<u64> = (0..records.len())
            .map(|i| self.addr_for(i as u64))
            .collect();
        let bytes = crate::record::total_bytes(&records);
        stack.flush.enter(ctx, &stack.mix, &self.scratch, |ctx| {
            traced_sort_by_key(ctx, &mut records, &mut addrs);
        });
        self.stats.intermediate_bytes += bytes;
        self.sstables.insert(0, records);
    }

    fn scan(&mut self, ctx: &mut ExecCtx<'_>, start: &[u8], limit: usize) -> Vec<Record> {
        let stack = self.stack;
        let mut merged: Vec<Record> = self
            .memstore
            .range(start.to_vec()..)
            .take(limit)
            .map(|(k, v)| Record::new(k.clone(), v.clone()))
            .collect();
        for table in &self.sstables {
            let from = table.partition_point(|r| r.key.as_slice() < start);
            merged.extend(table[from..].iter().take(limit).cloned());
        }
        merged.sort_by(|a, b| a.key.cmp(&b.key));
        merged.dedup_by(|a, b| a.key == b.key);
        merged.truncate(limit);
        self.block_io_bytes += 16 * 1024; // scans stream blocks
        let bytes = crate::record::total_bytes(&merged).max(64);
        stack
            .block_read
            .enter(ctx, &stack.mix, &self.scratch, |ctx| {
                trace_scan(ctx, self.data_region.base(), bytes.min(16 * 1024));
            });
        self.stats.input_bytes += bytes;
        merged
    }

    /// Closes a measurement window: appends a service phase covering the
    /// ops retired since `ops0` and the I/O served in the window.
    pub fn close_window(&mut self, ctx: &ExecCtx<'_>, ops0: u64) {
        self.stats.phases.push(Phase {
            name: "serve".into(),
            instructions: ctx.ops_retired() - ops0,
            disk_read_bytes: self.block_io_bytes.max(self.stats.input_bytes),
            disk_write_bytes: self.stats.intermediate_bytes,
            net_bytes: self.stats.output_bytes,
            io_parallelism: 16.0,
        });
    }

    /// Accumulated accounting so far.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Finishes the run.
    pub fn finish(self) -> RunStats {
        self.stats
    }
}

fn request_hash(request: &Request) -> u64 {
    let bytes: &[u8] = match request {
        Request::Get(k) => k,
        Request::Put(r) => &r.key,
        Request::Scan { start, .. } => start,
    };
    let mut h: u64 = 0x517c_c1b7_2722_0a95;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x5bd1_e995);
        h ^= h >> 24;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdb_trace::MixSink;

    fn with_service<R>(f: impl FnOnce(&mut KvService<'_>, &mut ExecCtx<'_>) -> R) -> R {
        let mut layout = CodeLayout::new();
        let stack = HbaseStack::register(&mut layout);
        let mut sink = MixSink::new();
        let mut ctx = ExecCtx::new(&layout, &mut sink);
        let root = stack.root_region();
        ctx.frame(root, |ctx| {
            let mut svc = KvService::new(&stack, ctx);
            f(&mut svc, ctx)
        })
    }

    fn rec(k: &str, v: &str) -> Record {
        Record::new(k.as_bytes().to_vec(), v.as_bytes().to_vec())
    }

    #[test]
    fn get_after_put_round_trips() {
        with_service(|svc, ctx| {
            svc.serve(ctx, &Request::Put(rec("alpha", "1")));
            let got = svc.serve(ctx, &Request::Get(b"alpha".to_vec()));
            assert_eq!(got, vec![rec("alpha", "1")]);
        });
    }

    #[test]
    fn get_from_bulk_loaded_sstable() {
        with_service(|svc, ctx| {
            svc.bulk_load((0..100).map(|i| rec(&format!("key{i:03}"), "v")).collect());
            let got = svc.serve(ctx, &Request::Get(b"key042".to_vec()));
            assert_eq!(got.len(), 1);
            assert_eq!(got[0].key, b"key042".to_vec());
            let miss = svc.serve(ctx, &Request::Get(b"nokey".to_vec()));
            assert!(miss.is_empty());
        });
    }

    #[test]
    fn memstore_shadows_sstable() {
        with_service(|svc, ctx| {
            svc.bulk_load(vec![rec("k", "old")]);
            svc.serve(ctx, &Request::Put(rec("k", "new")));
            let got = svc.serve(ctx, &Request::Get(b"k".to_vec()));
            assert_eq!(got[0].value, b"new".to_vec());
        });
    }

    #[test]
    fn flush_happens_at_limit_and_data_survives() {
        with_service(|svc, ctx| {
            svc.memstore_limit = 16;
            for i in 0..40 {
                svc.serve(ctx, &Request::Put(rec(&format!("k{i:02}"), "v")));
            }
            assert!(
                !svc.sstables.is_empty(),
                "flush should have produced store files"
            );
            for i in 0..40 {
                let got = svc.serve(ctx, &Request::Get(format!("k{i:02}").into_bytes()));
                assert_eq!(got.len(), 1, "key k{i:02} lost after flush");
            }
        });
    }

    #[test]
    fn scan_returns_sorted_range() {
        with_service(|svc, ctx| {
            svc.bulk_load((0..50).map(|i| rec(&format!("s{i:02}"), "v")).collect());
            let got = svc.serve(
                ctx,
                &Request::Scan {
                    start: b"s10".to_vec(),
                    limit: 5,
                },
            );
            let keys: Vec<Vec<u8>> = got.into_iter().map(|r| r.key).collect();
            assert_eq!(
                keys,
                vec![
                    b"s10".to_vec(),
                    b"s11".to_vec(),
                    b"s12".to_vec(),
                    b"s13".to_vec(),
                    b"s14".to_vec()
                ]
            );
        });
    }

    #[test]
    fn requests_touch_diverse_handlers() {
        use bdb_trace::{MicroOp, TraceSink};
        #[derive(Default)]
        struct LineSet(std::collections::HashSet<u64>);
        impl TraceSink for LineSet {
            fn exec(&mut self, pc: u64, _op: MicroOp) {
                self.0.insert(pc >> 6);
            }
        }
        let mut layout = CodeLayout::new();
        let stack = HbaseStack::register(&mut layout);
        let mut sink = LineSet::default();
        let mut ctx = ExecCtx::new(&layout, &mut sink);
        let root = stack.root_region();
        ctx.frame(root, |ctx| {
            let mut svc = KvService::new(&stack, ctx);
            svc.bulk_load((0..200).map(|i| rec(&format!("u{i:04}"), "v")).collect());
            for i in 0..200 {
                svc.serve(
                    ctx,
                    &Request::Get(format!("u{:04}", (i * 37) % 200).into_bytes()),
                );
            }
        });
        drop(ctx);
        // 200 stochastic requests should touch hundreds of distinct lines.
        assert!(sink.0.len() > 400, "touched lines {}", sink.0.len());
    }

    #[test]
    fn stats_count_served_bytes() {
        let stats = with_service(|svc, ctx| {
            svc.bulk_load(
                (0..20)
                    .map(|i| rec(&format!("b{i:02}"), "value-bytes"))
                    .collect(),
            );
            let ops0 = ctx.ops_retired();
            for i in 0..20 {
                svc.serve(ctx, &Request::Get(format!("b{i:02}").into_bytes()));
            }
            svc.close_window(ctx, ops0);
            svc.stats().clone()
        });
        assert!(stats.input_bytes > 0);
        assert!(stats.output_bytes > 0);
        assert_eq!(stats.phases.len(), 1);
        assert!(stats.phases[0].instructions > 0);
    }
}
