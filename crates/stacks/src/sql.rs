//! The relational engine behind the interactive-analytics workloads.
//!
//! One logical [`Plan`] (scan / filter / project / sort / aggregate / join /
//! set-difference / limit) executes on three backends, mirroring the
//! paper's workload matrix:
//!
//! * **Hive mode** — every plan node compiles to a MapReduce job on the
//!   Hadoop-like engine (rows serialized to byte records between jobs),
//! * **Shark mode** — plan nodes compile to dataflow stages on the
//!   Spark-like engine,
//! * **Impala mode** — plan nodes run as native operators over an
//!   [`ImpalaStack`] with small, hot code regions (the C++-engine analog).
//!
//! The three backends return identical result tables (tested), so the
//! micro-architectural differences between H-/S-/I- query workloads come
//! purely from the stacks — the paper's central point.

use crate::dataflow::{Dataflow, DataflowConfig, SparkStack};
use crate::mapreduce::{Emitter, HadoopStack, MapReduce, MapReduceConfig, Mapper, Reducer};
use crate::record::{trace_scan, Record};
use crate::runtime::{Routine, RunStats};
use crate::sort::group_runs;
use bdb_datagen::{Field, Row, Table};
use bdb_node::Phase;
use bdb_trace::{CodeLayout, ExecCtx, MemRegion, OpMix};
use std::collections::HashMap;

/// Predicate over one column.
#[derive(Debug, Clone, PartialEq)]
pub enum Pred {
    /// `col == v` for integer columns.
    I64Eq(usize, i64),
    /// `lo <= col < hi` for integer columns.
    I64Between(usize, i64, i64),
    /// `col == s` for string columns.
    StrEq(usize, String),
    /// `col > v` for float columns.
    F64Gt(usize, f64),
}

impl Pred {
    /// Evaluates the predicate on `row`, narrating the field load and
    /// comparison at `addr`.
    pub fn eval(&self, ctx: &mut ExecCtx<'_>, row: &Row, addr: u64) -> bool {
        let result = match self {
            Pred::I64Eq(c, v) => {
                ctx.read(addr + *c as u64 * 16, 8);
                ctx.int_other(1);
                row[*c].as_i64() == Some(*v)
            }
            Pred::I64Between(c, lo, hi) => {
                ctx.read(addr + *c as u64 * 16, 8);
                ctx.int_other(2);
                row[*c]
                    .as_i64()
                    .map(|x| x >= *lo && x < *hi)
                    .unwrap_or(false)
            }
            Pred::StrEq(c, s) => {
                let col_addr = addr + *c as u64 * 16;
                trace_scan(ctx, col_addr, s.len().max(1) as u64);
                row[*c].as_str() == Some(s.as_str())
            }
            Pred::F64Gt(c, v) => {
                ctx.read_fp(addr + *c as u64 * 16, 8);
                ctx.fp_ops(1);
                row[*c].as_f64().map(|x| x > *v).unwrap_or(false)
            }
        };
        ctx.cond_branch(result);
        result
    }
}

/// Aggregate function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Agg {
    /// `COUNT(*)`.
    CountStar,
    /// `SUM(col)` over a float column.
    SumF64(usize),
}

/// A logical query plan.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// Scan of input table `table` (index into the executor's table list).
    Scan {
        /// Table index.
        table: usize,
    },
    /// Filter rows by a predicate.
    Filter {
        /// Input plan.
        input: Box<Plan>,
        /// Predicate.
        pred: Pred,
    },
    /// Keep only the given columns.
    Project {
        /// Input plan.
        input: Box<Plan>,
        /// Columns to keep.
        cols: Vec<usize>,
    },
    /// Sort by one column.
    Sort {
        /// Input plan.
        input: Box<Plan>,
        /// Sort column.
        col: usize,
        /// Descending order.
        desc: bool,
    },
    /// First `n` rows.
    Limit {
        /// Input plan.
        input: Box<Plan>,
        /// Row budget.
        n: usize,
    },
    /// Group-by + aggregate. Output rows are `group_cols ++ [agg]`.
    Aggregate {
        /// Input plan.
        input: Box<Plan>,
        /// Grouping columns.
        group: Vec<usize>,
        /// Aggregate function.
        agg: Agg,
    },
    /// Inner equi-join; output rows are `left_row ++ right_row`.
    Join {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
        /// Join column on the left.
        lcol: usize,
        /// Join column on the right.
        rcol: usize,
    },
    /// Set difference `left \ right` over whole rows.
    Difference {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
    },
}

impl Plan {
    /// Scan of table `i`.
    pub fn scan(i: usize) -> Plan {
        Plan::Scan { table: i }
    }

    /// Adds a filter.
    pub fn filter(self, pred: Pred) -> Plan {
        Plan::Filter {
            input: Box::new(self),
            pred,
        }
    }

    /// Adds a projection.
    pub fn project(self, cols: Vec<usize>) -> Plan {
        Plan::Project {
            input: Box::new(self),
            cols,
        }
    }

    /// Adds a sort.
    pub fn sort(self, col: usize, desc: bool) -> Plan {
        Plan::Sort {
            input: Box::new(self),
            col,
            desc,
        }
    }

    /// Adds a limit.
    pub fn limit(self, n: usize) -> Plan {
        Plan::Limit {
            input: Box::new(self),
            n,
        }
    }

    /// Adds a group-by aggregate.
    pub fn aggregate(self, group: Vec<usize>, agg: Agg) -> Plan {
        Plan::Aggregate {
            input: Box::new(self),
            group,
            agg,
        }
    }

    /// Joins with another plan.
    pub fn join(self, right: Plan, lcol: usize, rcol: usize) -> Plan {
        Plan::Join {
            left: Box::new(self),
            right: Box::new(right),
            lcol,
            rcol,
        }
    }

    /// Set difference with another plan.
    pub fn difference(self, right: Plan) -> Plan {
        Plan::Difference {
            left: Box::new(self),
            right: Box::new(right),
        }
    }
}

// ---------------------------------------------------------------------------
// Row <-> record encoding (used by the Hive and Shark backends)
// ---------------------------------------------------------------------------

/// Encodes a row to bytes (tag byte + fixed/length-prefixed payload per
/// field). Integer fields use big-endian so byte order matches value order.
pub fn encode_row(row: &Row) -> Vec<u8> {
    let mut out = Vec::with_capacity(row.len() * 9);
    for f in row {
        match f {
            Field::I64(v) => {
                out.push(0);
                // Offset so negative values order correctly as bytes.
                out.extend_from_slice(&(*v as u64 ^ (1 << 63)).to_be_bytes());
            }
            Field::F64(v) => {
                out.push(1);
                out.extend_from_slice(&v.to_be_bytes());
            }
            Field::Str(s) => {
                out.push(2);
                out.extend_from_slice(&(s.len() as u32).to_be_bytes());
                out.extend_from_slice(s.as_bytes());
            }
        }
    }
    out
}

/// Decodes a row from [`encode_row`] bytes.
///
/// # Panics
///
/// Panics on malformed input.
pub fn decode_row(mut bytes: &[u8]) -> Row {
    let mut row = Vec::new();
    while !bytes.is_empty() {
        match bytes[0] {
            0 => {
                // bdb-lint: allow(panic-hygiene): documented panic on malformed input.
                let v = u64::from_be_bytes(bytes[1..9].try_into().expect("i64 field"));
                row.push(Field::I64((v ^ (1 << 63)) as i64));
                bytes = &bytes[9..];
            }
            1 => {
                // bdb-lint: allow(panic-hygiene): documented panic on malformed input.
                let v = f64::from_be_bytes(bytes[1..9].try_into().expect("f64 field"));
                row.push(Field::F64(v));
                bytes = &bytes[9..];
            }
            2 => {
                // bdb-lint: allow(panic-hygiene): documented panic on malformed input.
                let len = u32::from_be_bytes(bytes[1..5].try_into().expect("str len")) as usize;
                // bdb-lint: allow(panic-hygiene): documented panic on malformed input.
                let s = std::str::from_utf8(&bytes[5..5 + len]).expect("utf8 field");
                row.push(Field::Str(s.to_owned()));
                bytes = &bytes[5 + len..];
            }
            // bdb-lint: allow(panic-hygiene): documented panic on malformed input.
            t => panic!("unknown field tag {t}"),
        }
    }
    row
}

/// Order-preserving key bytes for the given columns of a row.
pub fn key_of(row: &Row, cols: &[usize]) -> Vec<u8> {
    let projected: Row = cols.iter().map(|&c| row[c].clone()).collect();
    encode_row(&projected)
}

// ---------------------------------------------------------------------------
// Impala backend: native operators over a thin stack
// ---------------------------------------------------------------------------

/// The registered routine set of the Impala-like native engine (~300 KiB;
/// hot, tight operator loops).
#[derive(Debug, Clone)]
pub struct ImpalaStack {
    mix: OpMix,
    scanner: Routine,
    exprs: Routine,
    hash_join: Routine,
    agg: Routine,
    sorter: Routine,
    exchange: Routine,
}

impl ImpalaStack {
    /// Registers all engine routines in `layout`.
    pub fn register(layout: &mut CodeLayout) -> Self {
        let r = |layout: &mut CodeLayout, name: &str, kib: u64, units: u32, spread: u64| {
            Routine::register(layout, format!("impala::{name}"), kib * 1024, units, spread)
        };
        Self {
            mix: OpMix::integer_compute(),
            scanner: r(layout, "parquet_scanner", 64, 6, 15),
            exprs: r(layout, "expr_eval", 32, 3, 10),
            hash_join: r(layout, "hash_join", 48, 8, 15),
            agg: r(layout, "hash_agg", 48, 7, 15),
            sorter: r(layout, "sorter", 40, 10, 15),
            exchange: r(layout, "exchange", 32, 12, 20),
        }
    }

    /// Region for the query driver.
    pub fn root_region(&self) -> bdb_trace::RegionId {
        self.exchange.region
    }
}

/// Executes `plan` natively (Impala mode). Returns the result rows and the
/// run's accounting.
pub fn execute_impala(
    ctx: &mut ExecCtx<'_>,
    stack: &ImpalaStack,
    tables: &[&Table],
    plan: &Plan,
) -> (Vec<Row>, RunStats) {
    let scratch = ctx.scratch_alloc(32 * 1024, 64);
    let mut exec = ImpalaExec {
        stack,
        scratch,
        stats: RunStats::default(),
        region: None,
        ctx_tables: tables,
    };
    let ops0 = ctx.ops_retired();
    let rows = ctx.frame(stack.root_region(), |ctx| exec.run(ctx, plan));
    let out_bytes = rows_bytes(&rows);
    exec.stats.output_bytes = out_bytes;
    exec.stats.phases.push(Phase {
        name: "query".into(),
        instructions: ctx.ops_retired() - ops0,
        disk_read_bytes: exec.stats.input_bytes,
        disk_write_bytes: out_bytes,
        net_bytes: exec.stats.intermediate_bytes,
        io_parallelism: 6.0,
    });
    (rows, exec.stats)
}

fn rows_bytes(rows: &[Row]) -> u64 {
    rows.iter()
        .map(|r| r.iter().map(Field::byte_size).sum::<usize>() as u64)
        .sum()
}

struct ImpalaExec<'a> {
    stack: &'a ImpalaStack,
    scratch: MemRegion,
    stats: RunStats,
    region: Option<MemRegion>,
    ctx_tables: &'a [&'a Table],
}

impl ImpalaExec<'_> {
    fn data_region(&mut self, ctx: &mut ExecCtx<'_>) -> MemRegion {
        *self
            .region
            .get_or_insert_with(|| ctx.heap_alloc(8 << 20, 64))
    }

    fn run(&mut self, ctx: &mut ExecCtx<'_>, plan: &Plan) -> Vec<Row> {
        let s = self.stack;
        match plan {
            Plan::Scan { table } => {
                let t = self.ctx_tables[*table];
                let region = self.data_region(ctx);
                let arity = t.schema().arity().max(1) as u64;
                let mut out = Vec::with_capacity(t.len());
                // Columnar batch scan: per batch, decode overhead; per row,
                // one load per column plus tuple materialization.
                for (b, batch) in t.rows().chunks(64).enumerate() {
                    s.scanner.enter(ctx, &s.mix, &self.scratch, |ctx| {
                        ctx.boilerplate(&s.mix, 24, &self.scratch);
                        let top = ctx.loop_start();
                        for (j, row) in batch.iter().enumerate() {
                            let i = b * 64 + j;
                            let base = region.base() + (i as u64 * arity * 16) % region.len();
                            // Page decompression + dictionary decode: real
                            // columnar scanners spend ~1-2 instructions per
                            // byte before any predicate runs.
                            for col in 0..arity {
                                ctx.read(base + col * 16, 8);
                                ctx.int_other(4);
                                ctx.read(base + col * 16 + 8, 8);
                                ctx.int_other(4);
                            }
                            ctx.int_other(arity as u32 * 2);
                            ctx.store(base + 8, 8);
                            out.push(row.clone());
                            ctx.loop_back(top, j + 1 < batch.len());
                        }
                    });
                }
                // Columnar storage reads only the referenced columns;
                // charge half the row bytes as the pruning model.
                self.stats.input_bytes += t.byte_size() as u64 / 2;
                out
            }
            Plan::Filter { input, pred } => {
                let rows = self.run(ctx, input);
                let region = self.data_region(ctx);
                let mut out = Vec::new();
                s.exprs.enter(ctx, &s.mix, &self.scratch, |ctx| {
                    let top = ctx.loop_start();
                    for (i, row) in rows.iter().enumerate() {
                        let addr = region.base() + (i as u64 * 128) % region.len();
                        if pred.eval(ctx, row, addr) {
                            out.push(row.clone());
                        }
                        ctx.loop_back(top, i + 1 < rows.len());
                    }
                });
                out
            }
            Plan::Project { input, cols } => {
                let rows = self.run(ctx, input);
                let region = self.data_region(ctx);
                s.exprs.enter(ctx, &s.mix, &self.scratch, |ctx| {
                    let top = ctx.loop_start();
                    for i in 0..rows.len().max(1) {
                        ctx.read(region.base() + (i as u64 * 64) % region.len(), 8);
                        ctx.store(region.base() + (i as u64 * 64 + 32) % region.len(), 8);
                        ctx.loop_back(top, i + 1 < rows.len().max(1));
                    }
                });
                rows.into_iter()
                    .map(|r| cols.iter().map(|&c| r[c].clone()).collect())
                    .collect()
            }
            Plan::Sort { input, col, desc } => {
                let mut rows = self.run(ctx, input);
                let region = self.data_region(ctx);
                let n = rows.len().max(2) as u64;
                s.sorter.enter(ctx, &s.mix, &self.scratch, |ctx| {
                    // n log n traced comparisons, each with tuple move.
                    let comparisons = n * n.ilog2() as u64;
                    let top = ctx.loop_start();
                    for c in 0..comparisons {
                        ctx.read(region.base() + (c * 64) % region.len(), 8);
                        ctx.read(region.base() + (c * 64 + 8) % region.len(), 8);
                        ctx.int_other(10);
                        ctx.cond_branch(c % 3 != 0);
                        // Move the winning tuple (three words).
                        for w in 0..3u64 {
                            ctx.read(region.base() + (c * 80 + w * 8) % region.len(), 8);
                            ctx.store(region.base() + (c * 80 + w * 8 + 40) % region.len(), 8);
                        }
                        ctx.int_other(6);
                        ctx.loop_back(top, c + 1 < comparisons);
                    }
                });
                rows.sort_by(|a, b| {
                    let ord = cmp_field(&a[*col], &b[*col]);
                    if *desc {
                        ord.reverse()
                    } else {
                        ord
                    }
                });
                rows
            }
            Plan::Limit { input, n } => {
                let mut rows = self.run(ctx, input);
                rows.truncate(*n);
                rows
            }
            Plan::Aggregate { input, group, agg } => {
                let rows = self.run(ctx, input);
                let region = self.data_region(ctx);
                let mut out_rows = Vec::new();
                s.agg.enter(ctx, &s.mix, &self.scratch, |ctx| {
                    // bdb-lint: allow(nondeterminism-reachability): drained below via sorted key list
                    let mut groups: HashMap<Vec<u8>, (Row, f64, u64)> = HashMap::new();
                    let top = ctx.loop_start();
                    for (i, row) in rows.iter().enumerate() {
                        let addr = region.base() + (i as u64 * 96) % region.len();
                        ctx.read(addr, 8);
                        ctx.int_other(3);
                        let key = key_of(row, group);
                        let entry = groups.entry(key).or_insert_with(|| {
                            (group.iter().map(|&c| row[c].clone()).collect(), 0.0, 0)
                        });
                        match agg {
                            Agg::CountStar => entry.2 += 1,
                            Agg::SumF64(c) => {
                                ctx.read_fp(addr + 8, 8);
                                ctx.fp_ops(1);
                                entry.1 += row[*c].as_f64().unwrap_or(0.0);
                            }
                        }
                        ctx.loop_back(top, i + 1 < rows.len());
                    }
                    let mut keys: Vec<Vec<u8>> = groups.keys().cloned().collect();
                    keys.sort();
                    for k in keys {
                        // bdb-lint: allow(panic-hygiene): k was drawn from groups.keys().
                        let (mut row, sum, count) = groups.remove(&k).expect("key present");
                        match agg {
                            Agg::CountStar => row.push(Field::I64(count as i64)),
                            Agg::SumF64(_) => row.push(Field::F64(sum)),
                        }
                        out_rows.push(row);
                    }
                });
                out_rows
            }
            Plan::Join {
                left,
                right,
                lcol,
                rcol,
            } => {
                let lrows = self.run(ctx, left);
                let rrows = self.run(ctx, right);
                let region = self.data_region(ctx);
                let mut out = Vec::new();
                s.hash_join.enter(ctx, &s.mix, &self.scratch, |ctx| {
                    // bdb-lint: allow(nondeterminism-reachability): keyed probe only; output order follows the probe side
                    let mut table: HashMap<Vec<u8>, Vec<&Row>> = HashMap::new();
                    let build = ctx.loop_start();
                    for (i, row) in lrows.iter().enumerate() {
                        ctx.read(region.base() + (i as u64 * 48) % region.len(), 8);
                        ctx.int_other(2);
                        table.entry(key_of(row, &[*lcol])).or_default().push(row);
                        ctx.loop_back(build, i + 1 < lrows.len());
                    }
                    let probe_loop = ctx.loop_start();
                    for (i, row) in rrows.iter().enumerate() {
                        ctx.read(region.base() + (i as u64 * 48 + 16) % region.len(), 8);
                        ctx.int_other(2);
                        let probe = key_of(row, &[*rcol]);
                        let hit = table.contains_key(&probe);
                        ctx.cond_branch(hit);
                        if let Some(matches) = table.get(&probe) {
                            for m in matches {
                                let mut joined: Row = (*m).clone();
                                joined.extend(row.iter().cloned());
                                out.push(joined);
                            }
                        }
                        ctx.loop_back(probe_loop, i + 1 < rrows.len());
                    }
                });
                self.stats.intermediate_bytes += rows_bytes(&out);
                out
            }
            Plan::Difference { left, right } => {
                let lrows = self.run(ctx, left);
                let rrows = self.run(ctx, right);
                let region = self.data_region(ctx);
                let mut out = Vec::new();
                s.hash_join.enter(ctx, &s.mix, &self.scratch, |ctx| {
                    // bdb-lint: allow(nondeterminism-reachability): membership checks only, never iterated
                    let mut seen: HashMap<Vec<u8>, ()> = HashMap::new();
                    let build = ctx.loop_start();
                    for (i, row) in rrows.iter().enumerate() {
                        ctx.read(region.base() + (i as u64 * 48) % region.len(), 8);
                        seen.insert(encode_row(row), ());
                        ctx.loop_back(build, i + 1 < rrows.len());
                    }
                    let probe = ctx.loop_start();
                    for (i, row) in lrows.iter().enumerate() {
                        ctx.read(region.base() + (i as u64 * 48 + 24) % region.len(), 8);
                        // Set semantics: emit each surviving row once.
                        let keep = seen.insert(encode_row(row), ()).is_none();
                        ctx.cond_branch(keep);
                        if keep {
                            out.push(row.clone());
                        }
                        ctx.loop_back(probe, i + 1 < lrows.len());
                    }
                });
                out
            }
        }
    }
}

fn cmp_field(a: &Field, b: &Field) -> std::cmp::Ordering {
    match (a, b) {
        (Field::I64(x), Field::I64(y)) => x.cmp(y),
        (Field::F64(x), Field::F64(y)) => x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal),
        (Field::Str(x), Field::Str(y)) => x.cmp(y),
        _ => std::cmp::Ordering::Equal,
    }
}

// ---------------------------------------------------------------------------
// Hive backend: plan nodes compile to MapReduce jobs
// ---------------------------------------------------------------------------

/// Executes `plan` by compiling each node to a MapReduce job on the
/// Hadoop-like engine (Hive mode).
pub fn execute_hive(
    ctx: &mut ExecCtx<'_>,
    stack: &HadoopStack,
    tables: &[&Table],
    plan: &Plan,
) -> (Vec<Row>, RunStats) {
    let engine = MapReduce::new(
        stack,
        MapReduceConfig {
            reduces: 4,
            ..Default::default()
        },
    );
    let mut stats = RunStats::default();
    let root = stack.root_region();
    let rows = ctx.frame(root, |ctx| {
        let scan_engine = MapReduce::new(
            stack,
            MapReduceConfig {
                reduces: 1,
                ..Default::default()
            },
        );
        let mut scan_stage = |ctx: &mut ExecCtx<'_>, stats: &mut RunStats, records: &[Record]| {
            struct IdentityMapper;
            impl Mapper for IdentityMapper {
                fn map(
                    &mut self,
                    ctx: &mut ExecCtx<'_>,
                    record: &Record,
                    addr: u64,
                    out: &mut Emitter,
                ) {
                    trace_scan(ctx, addr, record.byte_size().clamp(1, 256));
                    out.emit(record.clone());
                }
            }
            let out = scan_engine.run_map_only(ctx, records, &mut IdentityMapper);
            stats.merge(out.stats);
            out.records
        };
        run_staged(
            ctx,
            &mut stats,
            tables,
            plan,
            &mut scan_stage,
            &mut |ctx, stats, records, key_cols| {
                // One MR job: map re-keys records, reduce passes groups through.
                // An empty `key_cols` means the records arrive pre-keyed.
                struct KeyMapper {
                    key_cols: Vec<usize>,
                }
                impl Mapper for KeyMapper {
                    fn map(
                        &mut self,
                        ctx: &mut ExecCtx<'_>,
                        record: &Record,
                        addr: u64,
                        out: &mut Emitter,
                    ) {
                        trace_scan(ctx, addr, record.key.len().max(1) as u64);
                        if self.key_cols.is_empty() {
                            out.emit(record.clone());
                            return;
                        }
                        let row = decode_row(&record.value);
                        out.emit(Record::new(
                            key_of(&row, &self.key_cols),
                            record.value.clone(),
                        ));
                    }
                }
                struct PassReducer;
                impl Reducer for PassReducer {
                    fn reduce(
                        &mut self,
                        ctx: &mut ExecCtx<'_>,
                        key: &[u8],
                        values: &[Record],
                        addr: u64,
                        out: &mut Emitter,
                    ) {
                        ctx.read(addr, 8);
                        for v in values {
                            out.emit(Record::new(key.to_vec(), v.value.clone()));
                        }
                    }
                }
                let mut mapper = KeyMapper {
                    key_cols: key_cols.to_vec(),
                };
                let mut reducer = PassReducer;
                let out = engine.run(ctx, records, &mut mapper, None, &mut reducer);
                stats.merge(out.stats);
                out.records
            },
        )
    });
    finalize_staged(&mut stats, tables, plan, &rows);
    (rows, stats)
}

/// Executes `plan` by compiling each node to dataflow stages on the
/// Spark-like engine (Shark mode).
pub fn execute_shark(
    ctx: &mut ExecCtx<'_>,
    stack: &SparkStack,
    tables: &[&Table],
    plan: &Plan,
) -> (Vec<Row>, RunStats) {
    let root = stack.root_region();
    let (rows, df_stats) = ctx.frame(root, |ctx| {
        let df = std::cell::RefCell::new(Dataflow::new(stack, DataflowConfig::default(), ctx));
        let mut stats = RunStats::default();
        let rows = run_staged(
            ctx,
            &mut stats,
            tables,
            plan,
            &mut |ctx, stats, records| {
                let mut df = df.borrow_mut();
                let ds = df.read_input(ctx, records);
                let scanned = df.narrow(ctx, "scan", &ds, &mut |ctx, rec, addr, out| {
                    trace_scan(ctx, addr, rec.byte_size().clamp(1, 256));
                    out.emit(rec.clone());
                });
                let _ = stats;
                scanned
                    .parts
                    .iter()
                    .flat_map(|p| p.records.iter().cloned())
                    .collect()
            },
            &mut |ctx, stats, records, key_cols| {
                let mut df = df.borrow_mut();
                let key_cols = key_cols.to_vec();
                let ds = df.parallelize(ctx, records);
                let rekeyed = df.narrow(ctx, "rekey", &ds, &mut |ctx, rec, addr, out| {
                    trace_scan(ctx, addr, rec.key.len().max(1) as u64);
                    if key_cols.is_empty() {
                        out.emit(rec.clone());
                        return;
                    }
                    let row = decode_row(&rec.value);
                    out.emit(Record::new(key_of(&row, &key_cols), rec.value.clone()));
                });
                let grouped = df.group_by_key(ctx, &rekeyed);
                stats.merge(RunStats {
                    intermediate_bytes: grouped.byte_size(),
                    phases: Vec::new(),
                    ..Default::default()
                });
                grouped
                    .parts
                    .iter()
                    .flat_map(|p| p.records.iter().cloned())
                    .collect()
            },
        );
        stats.merge(df.into_inner().finish());
        (rows, stats)
    });
    let mut stats = df_stats;
    finalize_staged(&mut stats, tables, plan, &rows);
    (rows, stats)
}

fn finalize_staged(stats: &mut RunStats, tables: &[&Table], plan: &Plan, rows: &[Row]) {
    stats.input_bytes = plan_input_bytes(tables, plan);
    stats.output_bytes = rows_bytes(rows);
}

fn plan_input_bytes(tables: &[&Table], plan: &Plan) -> u64 {
    match plan {
        Plan::Scan { table } => tables[*table].byte_size() as u64,
        Plan::Filter { input, .. }
        | Plan::Project { input, .. }
        | Plan::Sort { input, .. }
        | Plan::Limit { input, .. }
        | Plan::Aggregate { input, .. } => plan_input_bytes(tables, input),
        Plan::Join { left, right, .. } | Plan::Difference { left, right } => {
            plan_input_bytes(tables, left) + plan_input_bytes(tables, right)
        }
    }
}

/// Shared staged interpreter for the Hive and Shark backends: each
/// group/sort boundary invokes `shuffle_stage`, which runs the records
/// through the backend's engine keyed by the given columns and returns them
/// grouped/sorted by that key. Narrow work (filter/project) happens between
/// stages in driver code decoding the encoded rows.
/// Stage callback: run records through the backend engine (scan pass).
type ScanStage<'a> = dyn FnMut(&mut ExecCtx<'_>, &mut RunStats, &[Record]) -> Vec<Record> + 'a;
/// Stage callback: group/sort records by the given key columns.
type ShuffleStage<'a> =
    dyn FnMut(&mut ExecCtx<'_>, &mut RunStats, &[Record], &[usize]) -> Vec<Record> + 'a;

fn run_staged(
    ctx: &mut ExecCtx<'_>,
    stats: &mut RunStats,
    tables: &[&Table],
    plan: &Plan,
    scan_stage: &mut ScanStage<'_>,
    shuffle_stage: &mut ShuffleStage<'_>,
) -> Vec<Row> {
    match plan {
        Plan::Scan { table } => {
            // The table scan itself runs on the engine (Hive: a map-only
            // job; Shark: a narrow stage) so every query pays the stack's
            // per-record framework cost.
            let records: Vec<Record> = tables[*table]
                .rows()
                .iter()
                .map(|r| Record::new(Vec::new(), encode_row(r)))
                .collect();
            let scanned = scan_stage(ctx, stats, &records);
            scanned.iter().map(|r| decode_row(&r.value)).collect()
        }
        Plan::Filter { input, pred } => {
            let rows = run_staged(ctx, stats, tables, input, scan_stage, shuffle_stage);
            let mut out = Vec::new();
            let top = ctx.loop_start();
            for (i, row) in rows.iter().enumerate() {
                if pred.eval(ctx, row, 0x2000_0000 + (i as u64 * 128) % (4 << 20)) {
                    out.push(row.clone());
                }
                ctx.loop_back(top, i + 1 < rows.len());
            }
            out
        }
        Plan::Project { input, cols } => {
            run_staged(ctx, stats, tables, input, scan_stage, shuffle_stage)
                .into_iter()
                .map(|r| cols.iter().map(|&c| r[c].clone()).collect())
                .collect()
        }
        Plan::Limit { input, n } => {
            let mut rows = run_staged(ctx, stats, tables, input, scan_stage, shuffle_stage);
            rows.truncate(*n);
            rows
        }
        Plan::Sort { input, col, desc } => {
            let rows = run_staged(ctx, stats, tables, input, scan_stage, shuffle_stage);
            let records: Vec<Record> = rows
                .iter()
                .map(|r| Record::new(Vec::new(), encode_row(r)))
                .collect();
            let sorted = shuffle_stage(ctx, stats, &records, &[*col]);
            let mut out: Vec<Row> = sorted.iter().map(|r| decode_row(&r.value)).collect();
            // The engines key-sort ascending; honour desc and make the
            // global order exact (hash-partitioned engines group per key).
            out.sort_by(|a, b| {
                let ord = cmp_field(&a[*col], &b[*col]);
                if *desc {
                    ord.reverse()
                } else {
                    ord
                }
            });
            out
        }
        Plan::Aggregate { input, group, agg } => {
            let rows = run_staged(ctx, stats, tables, input, scan_stage, shuffle_stage);
            let records: Vec<Record> = rows
                .iter()
                .map(|r| Record::new(Vec::new(), encode_row(r)))
                .collect();
            let grouped = shuffle_stage(ctx, stats, &records, group);
            // Records come back grouped by key; fold each run.
            let mut out = Vec::new();
            let recs: Vec<Record> = grouped;
            let mut sorted = recs;
            sorted.sort_by(|a, b| a.key.cmp(&b.key));
            for (lo, hi) in group_runs(&sorted) {
                let rows_in_group: Vec<Row> = sorted[lo..hi]
                    .iter()
                    .map(|r| decode_row(&r.value))
                    .collect();
                let mut row: Row = group.iter().map(|&c| rows_in_group[0][c].clone()).collect();
                match agg {
                    Agg::CountStar => row.push(Field::I64(rows_in_group.len() as i64)),
                    Agg::SumF64(c) => {
                        ctx.fp_ops(rows_in_group.len() as u32);
                        row.push(Field::F64(
                            rows_in_group
                                .iter()
                                .map(|r| r[*c].as_f64().unwrap_or(0.0))
                                .sum(),
                        ));
                    }
                }
                out.push(row);
            }
            out
        }
        Plan::Join {
            left,
            right,
            lcol,
            rcol,
        } => {
            let lrows = run_staged(ctx, stats, tables, left, scan_stage, shuffle_stage);
            let rrows = run_staged(ctx, stats, tables, right, scan_stage, shuffle_stage);
            // Tag records by side, shuffle both on the join key, then join
            // each group run.
            let mut tagged: Vec<Record> = Vec::with_capacity(lrows.len() + rrows.len());
            for r in &lrows {
                let mut v = vec![b'L'];
                v.extend(encode_row(r));
                tagged.push(Record::new(key_of(r, &[*lcol]), v));
            }
            for r in &rrows {
                let mut v = vec![b'R'];
                v.extend(encode_row(r));
                tagged.push(Record::new(key_of(r, &[*rcol]), v));
            }
            // Pre-key the records; key columns already encoded into key.
            let shuffled = shuffle_stage(ctx, stats, &tagged, &[]);
            let mut sorted = shuffled;
            sorted.sort_by(|a, b| a.key.cmp(&b.key).then_with(|| a.value.cmp(&b.value)));
            let mut out = Vec::new();
            for (lo, hi) in group_runs(&sorted) {
                let (lefts, rights): (Vec<_>, Vec<_>) =
                    sorted[lo..hi].iter().partition(|r| r.value[0] == b'L');
                for l in &lefts {
                    for r in &rights {
                        let mut joined = decode_row(&l.value[1..]);
                        joined.extend(decode_row(&r.value[1..]));
                        out.push(joined);
                    }
                }
            }
            out
        }
        Plan::Difference { left, right } => {
            let lrows = run_staged(ctx, stats, tables, left, scan_stage, shuffle_stage);
            let rrows = run_staged(ctx, stats, tables, right, scan_stage, shuffle_stage);
            let mut tagged: Vec<Record> = Vec::with_capacity(lrows.len() + rrows.len());
            for r in &lrows {
                tagged.push(Record::new(encode_row(r), vec![b'L']));
            }
            for r in &rrows {
                tagged.push(Record::new(encode_row(r), vec![b'R']));
            }
            let shuffled = shuffle_stage(ctx, stats, &tagged, &[]);
            let mut sorted = shuffled;
            sorted.sort_by(|a, b| a.key.cmp(&b.key));
            let mut out = Vec::new();
            for (lo, hi) in group_runs(&sorted) {
                let any_right = sorted[lo..hi].iter().any(|r| r.value == [b'R']);
                if !any_right {
                    // Distinct semantics: one output row per distinct value.
                    out.push(decode_row(&sorted[lo].key));
                }
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdb_datagen::{FieldKind, Schema};
    use bdb_trace::MixSink;

    fn test_table() -> Table {
        let schema = Schema::new([
            ("id", FieldKind::I64),
            ("grp", FieldKind::I64),
            ("price", FieldKind::F64),
            ("cat", FieldKind::Str),
        ]);
        let rows = (0..40)
            .map(|i| {
                vec![
                    Field::I64(i),
                    Field::I64(i % 4),
                    Field::F64(i as f64 * 1.5),
                    Field::Str(if i % 2 == 0 {
                        "even".into()
                    } else {
                        "odd".into()
                    }),
                ]
            })
            .collect();
        Table::from_rows(schema, rows)
    }

    fn dim_table() -> Table {
        let schema = Schema::new([("grp", FieldKind::I64), ("label", FieldKind::Str)]);
        let rows = (0..4)
            .map(|g| vec![Field::I64(g), Field::Str(format!("g{g}"))])
            .collect();
        Table::from_rows(schema, rows)
    }

    fn run_all_backends(plan: &Plan, tables: Vec<&Table>) -> Vec<Vec<Row>> {
        let impala = {
            let mut layout = CodeLayout::new();
            let stack = ImpalaStack::register(&mut layout);
            let mut sink = MixSink::new();
            let mut ctx = ExecCtx::new(&layout, &mut sink);
            execute_impala(&mut ctx, &stack, &tables, plan).0
        };
        let hive = {
            let mut layout = CodeLayout::new();
            let stack = HadoopStack::register(&mut layout);
            let mut sink = MixSink::new();
            let mut ctx = ExecCtx::new(&layout, &mut sink);
            execute_hive(&mut ctx, &stack, &tables, plan).0
        };
        let shark = {
            let mut layout = CodeLayout::new();
            let stack = SparkStack::register(&mut layout);
            let mut sink = MixSink::new();
            let mut ctx = ExecCtx::new(&layout, &mut sink);
            execute_shark(&mut ctx, &stack, &tables, plan).0
        };
        vec![impala, hive, shark]
    }

    fn normalized(mut rows: Vec<Row>) -> Vec<String> {
        let mut strings: Vec<String> = rows
            .drain(..)
            .map(|r| {
                r.iter()
                    .map(|f| format!("{f}"))
                    .collect::<Vec<_>>()
                    .join("|")
            })
            .collect();
        strings.sort();
        strings
    }

    #[test]
    fn filter_project_agrees_across_backends() {
        let t = test_table();
        let plan = Plan::scan(0)
            .filter(Pred::I64Between(0, 10, 20))
            .project(vec![0, 2]);
        let results = run_all_backends(&plan, vec![&t]);
        assert_eq!(results[0].len(), 10);
        assert_eq!(
            normalized(results[0].clone()),
            normalized(results[1].clone())
        );
        assert_eq!(
            normalized(results[0].clone()),
            normalized(results[2].clone())
        );
    }

    #[test]
    fn aggregate_agrees_across_backends() {
        let t = test_table();
        let plan = Plan::scan(0).aggregate(vec![1], Agg::SumF64(2));
        let results = run_all_backends(&plan, vec![&t]);
        for r in &results {
            assert_eq!(r.len(), 4, "four groups");
        }
        assert_eq!(
            normalized(results[0].clone()),
            normalized(results[1].clone())
        );
        assert_eq!(
            normalized(results[0].clone()),
            normalized(results[2].clone())
        );
    }

    #[test]
    fn join_agrees_across_backends() {
        let fact = test_table();
        let dim = dim_table();
        let plan = Plan::scan(0)
            .filter(Pred::I64Between(0, 0, 8))
            .join(Plan::scan(1), 1, 0);
        let results = run_all_backends(&plan, vec![&fact, &dim]);
        assert_eq!(
            results[0].len(),
            8,
            "every filtered row matches one dim row"
        );
        assert_eq!(
            normalized(results[0].clone()),
            normalized(results[1].clone())
        );
        assert_eq!(
            normalized(results[0].clone()),
            normalized(results[2].clone())
        );
    }

    #[test]
    fn difference_returns_left_only_rows() {
        let t = test_table();
        let left = Plan::scan(0).project(vec![1]); // grp values 0..4 repeated
        let right = Plan::scan(1)
            .project(vec![0])
            .filter(Pred::I64Between(0, 0, 2));
        let dim = dim_table();
        let plan = left.difference(right);
        let results = run_all_backends(&plan, vec![&t, &dim]);
        // grp values {0,1,2,3} minus {0,1} = {2,3}.
        for r in &results {
            assert_eq!(normalized(r.clone()), vec!["2".to_owned(), "3".to_owned()]);
        }
    }

    #[test]
    fn sort_orders_rows() {
        let t = test_table();
        let plan = Plan::scan(0).sort(2, true).limit(3);
        let results = run_all_backends(&plan, vec![&t]);
        for rows in &results {
            assert_eq!(rows.len(), 3);
            let prices: Vec<f64> = rows.iter().map(|r| r[2].as_f64().unwrap()).collect();
            assert!(
                prices[0] >= prices[1] && prices[1] >= prices[2],
                "{prices:?}"
            );
            assert_eq!(prices[0], 39.0 * 1.5);
        }
    }

    #[test]
    fn row_encoding_round_trips() {
        let row: Row = vec![Field::I64(-5), Field::F64(2.25), Field::Str("hello".into())];
        assert_eq!(decode_row(&encode_row(&row)), row);
        let empty: Row = vec![];
        assert_eq!(decode_row(&encode_row(&empty)), empty);
    }

    #[test]
    fn encoded_i64_keys_preserve_order() {
        let a = encode_row(&vec![Field::I64(-10)]);
        let b = encode_row(&vec![Field::I64(3)]);
        let c = encode_row(&vec![Field::I64(1000)]);
        assert!(a < b && b < c);
    }

    #[test]
    fn pred_eval_matches_semantics() {
        let mut layout = CodeLayout::new();
        let main = layout.region("main", 4096);
        let mut sink = MixSink::new();
        let mut ctx = ExecCtx::new(&layout, &mut sink);
        ctx.frame(main, |ctx| {
            let row: Row = vec![Field::I64(7), Field::F64(1.5), Field::Str("x".into())];
            assert!(Pred::I64Eq(0, 7).eval(ctx, &row, 0x1000));
            assert!(!Pred::I64Eq(0, 8).eval(ctx, &row, 0x1000));
            assert!(Pred::I64Between(0, 5, 10).eval(ctx, &row, 0x1000));
            assert!(!Pred::I64Between(0, 8, 10).eval(ctx, &row, 0x1000));
            assert!(Pred::F64Gt(1, 1.0).eval(ctx, &row, 0x1000));
            assert!(Pred::StrEq(2, "x".into()).eval(ctx, &row, 0x1000));
            assert!(!Pred::StrEq(2, "y".into()).eval(ctx, &row, 0x1000));
        });
    }

    #[test]
    fn impala_stats_account_io() {
        let t = test_table();
        let mut layout = CodeLayout::new();
        let stack = ImpalaStack::register(&mut layout);
        let mut sink = MixSink::new();
        let mut ctx = ExecCtx::new(&layout, &mut sink);
        let root = stack.root_region();
        let (_, stats) = ctx.frame(root, |ctx| {
            execute_impala(
                ctx,
                &stack,
                &[&t],
                &Plan::scan(0).filter(Pred::StrEq(3, "even".into())),
            )
        });
        assert_eq!(stats.input_bytes, t.byte_size() as u64 / 2);
        assert!(stats.output_bytes > 0);
        assert_eq!(stats.phases.len(), 1);
    }
}
