//! Traced sorting — the spill sort of the MapReduce engine, the external
//! sorter of the dataflow engine, and the OrderBy operators all funnel
//! through this merge sort, whose key comparisons and element moves are
//! narrated through the trace.

use crate::record::{trace_key_compare, Record};
use bdb_trace::ExecCtx;
use std::cmp::Ordering;

/// Sorts `records` by key with a bottom-up merge sort, narrating every key
/// comparison (loads from both key addresses) through `ctx`.
///
/// `addrs[i]` must be the simulated address of `records[i]`'s bytes; the
/// address array is permuted alongside the records so callers can keep
/// using it afterwards.
///
/// The sort is stable.
///
/// # Panics
///
/// Panics if `records` and `addrs` have different lengths.
pub fn traced_sort_by_key(ctx: &mut ExecCtx<'_>, records: &mut Vec<Record>, addrs: &mut Vec<u64>) {
    assert_eq!(
        records.len(),
        addrs.len(),
        "records and addresses must be parallel"
    );
    let n = records.len();
    if n < 2 {
        return;
    }
    let mut idx: Vec<usize> = (0..n).collect();
    let mut tmp: Vec<usize> = vec![0; n];
    let mut width = 1;
    while width < n {
        let mut lo = 0;
        while lo < n {
            let mid = (lo + width).min(n);
            let hi = (lo + 2 * width).min(n);
            merge(ctx, records, addrs, &idx, &mut tmp, lo, mid, hi);
            lo = hi;
        }
        std::mem::swap(&mut idx, &mut tmp);
        width *= 2;
    }
    apply_permutation(records, addrs, &idx);
}

#[allow(clippy::too_many_arguments)] // the merge window is clearest spelled out
fn merge(
    ctx: &mut ExecCtx<'_>,
    records: &[Record],
    addrs: &[u64],
    idx: &[usize],
    out: &mut [usize],
    lo: usize,
    mid: usize,
    hi: usize,
) {
    let (mut i, mut j) = (lo, mid);
    let step = ctx.loop_start();
    let mut remaining = hi - lo;
    for slot in out.iter_mut().take(hi).skip(lo) {
        let take_left = if i >= mid {
            false
        } else if j >= hi {
            true
        } else {
            let (a, b) = (idx[i], idx[j]);
            let ord = trace_key_compare(ctx, &records[a].key, addrs[a], &records[b].key, addrs[b]);
            ord != Ordering::Greater // stable: prefer left on ties
        };
        let winner = if take_left { idx[i] } else { idx[j] };
        // A real merge *moves* the winning record: copy its bytes to the
        // output run (this is most of a sort's work on fat records).
        let len = records[winner].byte_size().max(8);
        crate::record::trace_copy(
            ctx,
            addrs[winner],
            addrs[winner] ^ 0x10_0000,
            len.clamp(32, 256),
        );
        if take_left {
            *slot = idx[i];
            i += 1;
        } else {
            *slot = idx[j];
            j += 1;
        }
        remaining -= 1;
        ctx.loop_back(step, remaining > 0);
    }
}

fn apply_permutation(records: &mut Vec<Record>, addrs: &mut Vec<u64>, idx: &[usize]) {
    let mut new_records = Vec::with_capacity(records.len());
    let mut new_addrs = Vec::with_capacity(addrs.len());
    for &i in idx {
        new_records.push(std::mem::take(&mut records[i]));
        new_addrs.push(addrs[i]);
    }
    *records = new_records;
    *addrs = new_addrs;
}

/// Groups a key-sorted record slice into `(key, values)` runs, yielding the
/// index range of each run. The input must already be sorted by key.
pub fn group_runs(records: &[Record]) -> Vec<(usize, usize)> {
    let mut runs = Vec::new();
    let mut start = 0;
    for i in 1..=records.len() {
        if i == records.len() || records[i].key != records[start].key {
            runs.push((start, i));
            start = i;
        }
    }
    runs
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdb_trace::{CodeLayout, MixSink};

    fn sort_with_trace(mut records: Vec<Record>) -> (Vec<Record>, bdb_trace::InstructionMix) {
        let mut layout = CodeLayout::new();
        let main = layout.region("sort", 1 << 16);
        let mut sink = MixSink::new();
        let mut ctx = ExecCtx::new(&layout, &mut sink);
        let region = ctx.heap_alloc(1 << 16, 8);
        let mut addrs: Vec<u64> = (0..records.len())
            .map(|i| region.addr((i as u64 * 64) % region.len()))
            .collect();
        ctx.frame(main, |ctx| {
            traced_sort_by_key(ctx, &mut records, &mut addrs)
        });
        (records, sink.mix())
    }

    #[test]
    fn sorts_correctly() {
        let recs: Vec<Record> = [5u8, 3, 9, 1, 7, 3, 0, 8]
            .iter()
            .map(|&k| Record::new(vec![k], vec![k, k]))
            .collect();
        let (sorted, mix) = sort_with_trace(recs.clone());
        let mut expected = recs;
        expected.sort_by(|a, b| a.key.cmp(&b.key));
        assert_eq!(sorted, expected);
        assert!(mix.loads > 0, "comparisons must be traced");
        assert!(mix.branches > 0);
    }

    #[test]
    fn sort_is_stable() {
        let recs = vec![
            Record::new(b"k".to_vec(), b"first".to_vec()),
            Record::new(b"a".to_vec(), b"x".to_vec()),
            Record::new(b"k".to_vec(), b"second".to_vec()),
        ];
        let (sorted, _) = sort_with_trace(recs);
        assert_eq!(sorted[1].value, b"first");
        assert_eq!(sorted[2].value, b"second");
    }

    #[test]
    fn comparison_count_is_n_log_n_ish() {
        let recs: Vec<Record> = (0..256u32)
            .rev()
            .map(|k| Record::new(k.to_be_bytes().to_vec(), Vec::new()))
            .collect();
        let (_, mix) = sort_with_trace(recs);
        // 256 elements -> at most 256*8 = 2048 comparisons; each comparison
        // costs >= 2 loads, plus permutation overhead. Sanity-check bounds.
        assert!(mix.loads >= 2 * 255);
        assert!(mix.loads <= 3 * 2048 * 4);
    }

    #[test]
    fn empty_and_singleton_are_noops() {
        let (s, mix) = sort_with_trace(Vec::new());
        assert!(s.is_empty());
        let (s1, _) = sort_with_trace(vec![Record::new(b"a".to_vec(), Vec::new())]);
        assert_eq!(s1.len(), 1);
        assert_eq!(mix.loads, 0);
    }

    #[test]
    fn group_runs_partitions_sorted_input() {
        let recs = vec![
            Record::new(b"a".to_vec(), Vec::new()),
            Record::new(b"a".to_vec(), Vec::new()),
            Record::new(b"b".to_vec(), Vec::new()),
            Record::new(b"c".to_vec(), Vec::new()),
            Record::new(b"c".to_vec(), Vec::new()),
            Record::new(b"c".to_vec(), Vec::new()),
        ];
        assert_eq!(group_runs(&recs), vec![(0, 2), (2, 3), (3, 6)]);
        assert!(group_runs(&[]).is_empty());
    }
}
