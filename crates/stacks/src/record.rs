//! The byte-record model shared by all stacks, plus traced data-movement
//! helpers.
//!
//! Every engine moves `(key, value)` byte records: MapReduce map outputs,
//! dataflow shuffle rows, MPI messages, Hive-encoded SQL rows, KV cells.
//! The helpers here narrate the copies and comparisons those moves really
//! perform, so that data-movement instructions (the 92 % of observation O1)
//! come from genuine record traffic.

use bdb_trace::{ExecCtx, MemRegion};

/// A key-value byte record.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Record {
    /// Record key (sort/partition/group field).
    pub key: Vec<u8>,
    /// Record payload.
    pub value: Vec<u8>,
}

impl Record {
    /// Creates a record from key and value bytes.
    pub fn new(key: impl Into<Vec<u8>>, value: impl Into<Vec<u8>>) -> Self {
        Self {
            key: key.into(),
            value: value.into(),
        }
    }

    /// Encoded size in bytes.
    pub fn byte_size(&self) -> u64 {
        (self.key.len() + self.value.len()) as u64
    }
}

/// Total encoded size of a slice of records.
pub fn total_bytes(records: &[Record]) -> u64 {
    records.iter().map(Record::byte_size).sum()
}

/// Narrates a byte copy of `len` bytes from `src` to `dst`: one load, one
/// store, and address arithmetic per 8-byte word (like a `memcpy` loop).
///
/// The copy is capped at one op-pair per word but never fewer than one, so
/// empty-ish records still cost a touch.
pub fn trace_copy(ctx: &mut ExecCtx<'_>, src: u64, dst: u64, len: u64) {
    let words = len.div_ceil(8).max(1);
    let top = ctx.loop_start();
    for w in 0..words {
        ctx.read(src + w * 8, 8);
        ctx.store(dst + w * 8, 8);
        ctx.loop_back(top, w + 1 < words);
    }
}

/// Narrates reading `len` bytes sequentially from `src` (deserialization,
/// checksum scans): one load plus one integer op per word.
pub fn trace_scan(ctx: &mut ExecCtx<'_>, src: u64, len: u64) {
    let words = len.div_ceil(8).max(1);
    let top = ctx.loop_start();
    for w in 0..words {
        ctx.read(src + w * 8, 8);
        ctx.int_addr(1);
        ctx.loop_back(top, w + 1 < words);
    }
}

/// Narrates a streaming read of `len` bytes from `src` at `stride`-byte
/// granularity (block reads, checksum passes over large values).
///
/// # Panics
///
/// Panics if `stride == 0`.
pub fn trace_stream(ctx: &mut ExecCtx<'_>, src: u64, len: u64, stride: u64) {
    assert!(stride > 0, "stride must be positive");
    let steps = len.div_ceil(stride).max(1);
    let top = ctx.loop_start();
    for s in 0..steps {
        ctx.read(src + s * stride, 8);
        ctx.loop_back(top, s + 1 < steps);
    }
}

/// Narrates a lexicographic key comparison: loads from both keys, byte
/// tests, and the final conditional. Returns the real comparison result.
pub fn trace_key_compare(
    ctx: &mut ExecCtx<'_>,
    a: &[u8],
    a_addr: u64,
    b: &[u8],
    b_addr: u64,
) -> std::cmp::Ordering {
    let common = a.len().min(b.len());
    // Compare word-at-a-time like real memcmp; stop at the first difference.
    let mut diff_at = common;
    for i in 0..common {
        if a[i] != b[i] {
            diff_at = i;
            break;
        }
    }
    // Comparator prologue: length checks, bounds, dispatch.
    ctx.int_other(4);
    let words_touched = (diff_at / 8 + 1) as u64;
    let top = ctx.loop_start();
    for w in 0..words_touched {
        ctx.read(a_addr + w * 8, 8);
        ctx.read(b_addr + w * 8, 8);
        ctx.int_other(1);
        ctx.loop_back(top, w + 1 < words_touched);
    }
    let ord = a.cmp(b);
    ctx.cond_branch(ord == std::cmp::Ordering::Less);
    ord
}

/// A region of simulated memory holding serialized records back-to-back,
/// with per-record offsets — the shape of a map-output buffer or a shuffle
/// block. Offsets wrap when the backing region fills, modelling a reused
/// ring buffer.
#[derive(Debug, Clone)]
pub struct RecordBuffer {
    region: MemRegion,
    cursor: u64,
    offsets: Vec<u64>,
}

impl RecordBuffer {
    /// Creates a buffer over `region`.
    pub fn new(region: MemRegion) -> Self {
        Self {
            region,
            cursor: 0,
            offsets: Vec::new(),
        }
    }

    /// Backing region.
    pub fn region(&self) -> &MemRegion {
        &self.region
    }

    /// Address where the next `len`-byte record will land; records wrap
    /// around the region like a reused buffer.
    pub fn push(&mut self, len: u64) -> u64 {
        if self.cursor + len > self.region.len() {
            self.cursor = 0;
        }
        let addr = self.region.base() + self.cursor;
        self.offsets.push(self.cursor);
        self.cursor += len.min(self.region.len());
        addr
    }

    /// Address of record `i` (by insertion order).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn addr_of(&self, i: usize) -> u64 {
        self.region.base() + self.offsets[i]
    }

    /// Number of records pushed.
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// Returns `true` if no records were pushed.
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// Clears the offsets and rewinds (buffer reuse between waves).
    pub fn clear(&mut self) {
        self.cursor = 0;
        self.offsets.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdb_trace::{CodeLayout, MixSink};

    fn with_ctx<R>(f: impl FnOnce(&mut ExecCtx<'_>) -> R) -> (R, bdb_trace::InstructionMix) {
        let mut layout = CodeLayout::new();
        let main = layout.region("main", 1 << 16);
        let mut sink = MixSink::new();
        let mut ctx = ExecCtx::new(&layout, &mut sink);
        let out = ctx.frame(main, |ctx| f(ctx));
        (out, sink.mix())
    }

    #[test]
    fn record_size() {
        let r = Record::new(b"ab".to_vec(), b"cdef".to_vec());
        assert_eq!(r.byte_size(), 6);
        assert_eq!(total_bytes(&[r.clone(), r]), 12);
    }

    #[test]
    fn trace_copy_emits_load_store_pairs() {
        let ((), mix) = with_ctx(|ctx| {
            let src = ctx.heap_alloc(64, 8);
            let dst = ctx.heap_alloc(64, 8);
            trace_copy(ctx, src.base(), dst.base(), 64);
        });
        assert_eq!(mix.loads, 8);
        assert_eq!(mix.stores, 8);
    }

    #[test]
    fn trace_key_compare_returns_real_ordering() {
        let (ords, mix) = with_ctx(|ctx| {
            let a = ctx.heap_alloc(16, 8);
            let b = ctx.heap_alloc(16, 8);
            let o1 = trace_key_compare(ctx, b"apple", a.base(), b"banana", b.base());
            let o2 = trace_key_compare(ctx, b"pear", a.base(), b"pear", b.base());
            (o1, o2)
        });
        assert_eq!(ords.0, std::cmp::Ordering::Less);
        assert_eq!(ords.1, std::cmp::Ordering::Equal);
        assert!(mix.loads >= 4);
    }

    #[test]
    fn compare_cost_grows_with_shared_prefix() {
        let ((), short) = with_ctx(|ctx| {
            let a = ctx.heap_alloc(32, 8);
            let b = ctx.heap_alloc(32, 8);
            trace_key_compare(
                ctx,
                b"a_______________",
                a.base(),
                b"b_______________",
                b.base(),
            );
        });
        let ((), long) = with_ctx(|ctx| {
            let a = ctx.heap_alloc(32, 8);
            let b = ctx.heap_alloc(32, 8);
            trace_key_compare(
                ctx,
                b"_______________a",
                a.base(),
                b"_______________b",
                b.base(),
            );
        });
        assert!(long.loads > short.loads);
    }

    #[test]
    fn record_buffer_wraps() {
        let ((first, second, count), _) = with_ctx(|ctx| {
            let region = ctx.heap_alloc(100, 8);
            let mut buf = RecordBuffer::new(region);
            let a = buf.push(60);
            let b = buf.push(60); // would overflow -> wraps to base
            (a, b, buf.len())
        });
        assert_eq!(first, second, "second record should wrap to the base");
        assert_eq!(count, 2);
    }

    #[test]
    fn record_buffer_addresses_are_stable() {
        let ((a0, a1), _) = with_ctx(|ctx| {
            let region = ctx.heap_alloc(1024, 8);
            let mut buf = RecordBuffer::new(region);
            buf.push(100);
            buf.push(50);
            (buf.addr_of(0), buf.addr_of(1))
        });
        assert_eq!(a1, a0 + 100);
    }
}
