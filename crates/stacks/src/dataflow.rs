//! The Spark-like dataflow engine.
//!
//! Models the RDD execution style: datasets are partitioned collections of
//! byte records; *narrow* transformations (map/filter/flatMap) run as
//! pipelined iterator chains — each record passes through a chain of
//! virtually-dispatched iterator frames, the signature front-end behaviour
//! of Spark — while *wide* transformations (reduceByKey, sortByKey, join)
//! cut stage boundaries with real hash or range shuffles. Datasets can be
//! cached, which is what makes the iterative workloads (K-means, PageRank)
//! CPU-bound after their first pass, exactly as the paper's Table 2
//! classifies them.

use crate::mapreduce::Emitter;
use crate::record::{trace_copy, trace_scan, Record, RecordBuffer};
use crate::runtime::{Routine, RunStats};
use crate::sort::traced_sort_by_key;
use bdb_node::Phase;
use bdb_trace::{CodeLayout, ExecCtx, MemRegion, OpMix};
use std::collections::HashMap;

/// One partition of a [`Dataset`]: records plus their simulated addresses.
#[derive(Debug, Clone, Default)]
pub struct Part {
    /// Records in this partition.
    pub records: Vec<Record>,
    /// Simulated address of each record's bytes.
    pub addrs: Vec<u64>,
}

impl Part {
    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` when the partition is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// A partitioned dataset (the RDD analog).
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    /// Partitions.
    pub parts: Vec<Part>,
    /// Whether the dataset is pinned in the block manager (cached).
    pub cached: bool,
}

impl Dataset {
    /// Total records across partitions.
    pub fn len(&self) -> usize {
        self.parts.iter().map(Part::len).sum()
    }

    /// Returns `true` when no partition holds records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total record bytes.
    pub fn byte_size(&self) -> u64 {
        self.parts
            .iter()
            .map(|p| crate::record::total_bytes(&p.records))
            .sum()
    }

    /// Iterator over all records (partition order).
    pub fn iter(&self) -> impl Iterator<Item = &Record> {
        self.parts.iter().flat_map(|p| p.records.iter())
    }
}

/// The registered routine set of the Spark-like stack (~1 MiB of framework
/// text, dominated by iterator glue, serialization, and shuffle machinery).
#[derive(Debug, Clone)]
pub struct SparkStack {
    mix: OpMix,
    dag_scheduler: Routine,
    task_runner: Routine,
    iter_next: Routine,
    closure_glue: Routine,
    kryo: Routine,
    block_manager: Routine,
    memory_manager: Routine,
    shuffle_writer: Routine,
    shuffle_reader: Routine,
    ext_sorter: Routine,
    hash_agg: Routine,
    cache_manager: Routine,
    gc: Routine,
    netty: Routine,
    metrics: Routine,
    logging: Routine,
}

impl SparkStack {
    /// Registers all framework routines in `layout`.
    pub fn register(layout: &mut CodeLayout) -> Self {
        let r = |layout: &mut CodeLayout, name: &str, kib: u64, units: u32, spread: u64| {
            Routine::register(layout, format!("spark::{name}"), kib * 1024, units, spread)
        };
        Self {
            mix: OpMix::framework(),
            dag_scheduler: r(layout, "dag_scheduler", 96, 1600, 90),
            task_runner: r(layout, "task_runner", 48, 350, 80),
            iter_next: r(layout, "iterator_next", 24, 5, 95),
            closure_glue: r(layout, "closure_glue", 28, 6, 95),
            kryo: r(layout, "kryo_serializer", 48, 8, 80),
            block_manager: r(layout, "block_manager", 64, 10, 80),
            memory_manager: r(layout, "memory_manager", 40, 6, 60),
            shuffle_writer: r(layout, "shuffle_writer", 56, 14, 55),
            shuffle_reader: r(layout, "shuffle_reader", 56, 16, 55),
            ext_sorter: r(layout, "external_sorter", 48, 22, 45),
            hash_agg: r(layout, "hash_aggregator", 40, 9, 45),
            cache_manager: r(layout, "cache_manager", 32, 7, 55),
            gc: r(layout, "gc_young", 96, 160, 90),
            netty: r(layout, "netty_rpc", 64, 70, 80),
            metrics: r(layout, "metrics_system", 32, 40, 75),
            logging: r(layout, "logging", 40, 30, 75),
        }
    }

    /// Region used as the executor's root frame (exposed for drivers).
    pub fn root_region(&self) -> bdb_trace::RegionId {
        self.task_runner.region
    }
}

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataflowConfig {
    /// Partition count for every dataset.
    pub partitions: usize,
    /// Records between framework service ticks.
    pub service_interval: usize,
    /// Virtual-dispatch hops per record per narrow stage (iterator chain
    /// depth) — Spark's signature front-end load.
    pub iterator_chain: usize,
}

impl Default for DataflowConfig {
    fn default() -> Self {
        Self {
            partitions: 4,
            service_interval: 64,
            iterator_chain: 3,
        }
    }
}

/// The dataflow engine: holds the block-manager memory and the run's
/// resource accounting.
#[derive(Debug)]
pub struct Dataflow<'s> {
    stack: &'s SparkStack,
    config: DataflowConfig,
    scratch: MemRegion,
    blocks: RecordBuffer,
    stats: RunStats,
    records_since_service: usize,
}

impl<'s> Dataflow<'s> {
    /// Creates an engine, allocating block-manager memory from `ctx` and
    /// narrating the driver's DAG-scheduler startup.
    ///
    /// # Panics
    ///
    /// Panics if `partitions == 0`.
    pub fn new(stack: &'s SparkStack, config: DataflowConfig, ctx: &mut ExecCtx<'_>) -> Self {
        assert!(config.partitions > 0, "need at least one partition");
        let scratch = ctx.scratch_alloc(64 * 1024, 64);
        let blocks = RecordBuffer::new(ctx.heap_alloc(8 << 20, 64));
        ctx.frame(stack.dag_scheduler.region, |ctx| {
            ctx.boilerplate(&stack.mix, u64::from(stack.dag_scheduler.units), &scratch);
        });
        Self {
            stack,
            config,
            scratch,
            blocks,
            stats: RunStats::default(),
            records_since_service: 0,
        }
    }

    /// Finishes the run, returning the accumulated accounting.
    pub fn finish(self) -> RunStats {
        self.stats
    }

    /// Accumulated accounting so far.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    fn service_tick(&mut self, ctx: &mut ExecCtx<'_>) {
        self.records_since_service += 1;
        if self
            .records_since_service
            .is_multiple_of(self.config.service_interval)
        {
            self.stack.metrics.run(ctx, &self.stack.mix, &self.scratch);
            if self
                .records_since_service
                .is_multiple_of(self.config.service_interval * 4)
            {
                self.stack
                    .gc
                    .enter(ctx, &self.stack.mix, &self.scratch, |ctx| {
                        trace_scan(ctx, self.blocks.region().base(), 2048);
                    });
                self.stack.logging.run(ctx, &self.stack.mix, &self.scratch);
            }
        }
    }

    /// Loads input records as a dataset, charging a disk-read phase (the
    /// `textFile`/HDFS-read analog).
    pub fn read_input(&mut self, ctx: &mut ExecCtx<'_>, records: &[Record]) -> Dataset {
        let bytes = crate::record::total_bytes(records);
        let ops0 = ctx.ops_retired();
        let ds = self.materialize(ctx, records.iter().cloned());
        self.stats.input_bytes += bytes;
        self.stats.phases.push(Phase {
            name: "input".into(),
            instructions: ctx.ops_retired() - ops0,
            disk_read_bytes: bytes,
            disk_write_bytes: 0,
            net_bytes: 0,
            io_parallelism: 6.0,
        });
        ds
    }

    /// Distributes records into partitions through the block manager
    /// without I/O accounting (for driver-local data).
    pub fn parallelize(&mut self, ctx: &mut ExecCtx<'_>, records: &[Record]) -> Dataset {
        self.materialize(ctx, records.iter().cloned())
    }

    fn materialize(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        records: impl Iterator<Item = Record>,
    ) -> Dataset {
        let mut parts: Vec<Part> = (0..self.config.partitions)
            .map(|_| Part::default())
            .collect();
        for (i, rec) in records.enumerate() {
            let p = i % self.config.partitions;
            let addr = self.put_block(ctx, &rec);
            parts[p].records.push(rec);
            parts[p].addrs.push(addr);
        }
        Dataset {
            parts,
            cached: false,
        }
    }

    /// Writes a record into block-manager memory, narrating the copy.
    fn put_block(&mut self, ctx: &mut ExecCtx<'_>, rec: &Record) -> u64 {
        let len = rec.byte_size().max(1);
        let addr = self.blocks.push(len);
        self.stack
            .block_manager
            .enter(ctx, &self.stack.mix, &self.scratch, |ctx| {
                trace_copy(ctx, self.scratch.base(), addr, len);
            });
        addr
    }

    /// Marks a dataset cached: downstream passes re-read it from memory
    /// with no disk phase, the RDD `cache()` analog.
    pub fn cache(&mut self, ctx: &mut ExecCtx<'_>, ds: &mut Dataset) {
        self.stack
            .cache_manager
            .run(ctx, &self.stack.mix, &self.scratch);
        ds.cached = true;
    }

    /// A narrow, pipelined transformation: `f` is invoked once per record
    /// (with the record's simulated address) and may emit any number of
    /// output records. Covers map, filter, and flatMap.
    pub fn narrow(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        name: &str,
        ds: &Dataset,
        f: &mut dyn FnMut(&mut ExecCtx<'_>, &Record, u64, &mut Emitter),
    ) -> Dataset {
        let _ = name;
        let mut out_parts = Vec::with_capacity(ds.parts.len());
        let mut emitter = Emitter::new();
        for part in &ds.parts {
            self.stack
                .task_runner
                .run(ctx, &self.stack.mix, &self.scratch);
            let mut out = Part::default();
            let record_loop = ctx.loop_start();
            let mut remaining = part.records.len();
            for (rec, &addr) in part.records.iter().zip(&part.addrs) {
                // The iterator chain: each hop is an indirect call into a
                // distinct framework frame.
                for hop in 0..self.config.iterator_chain {
                    let routine = match hop % 3 {
                        0 => self.stack.iter_next,
                        1 => self.stack.closure_glue,
                        _ => self.stack.memory_manager,
                    };
                    ctx.dispatch(routine.region, |ctx| {
                        ctx.boilerplate(&self.stack.mix, u64::from(routine.units), &self.scratch);
                    });
                }
                ctx.dispatch(self.stack.closure_glue.region, |ctx| {
                    f(ctx, rec, addr, &mut emitter);
                });
                for new_rec in emitter.take() {
                    let new_addr = self.put_block(ctx, &new_rec);
                    out.records.push(new_rec);
                    out.addrs.push(new_addr);
                }
                self.service_tick(ctx);
                remaining -= 1;
                ctx.loop_back(record_loop, remaining > 0);
            }
            out_parts.push(out);
        }
        Dataset {
            parts: out_parts,
            cached: false,
        }
    }

    /// Wide transformation: groups records by key hash across partitions,
    /// merging values with `merge` on both the map side (combining) and the
    /// reduce side — the `reduceByKey` analog. Charges a shuffle phase.
    pub fn reduce_by_key(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        ds: &Dataset,
        merge: &mut dyn FnMut(&mut ExecCtx<'_>, &Record, &Record) -> Record,
    ) -> Dataset {
        let ops0 = ctx.ops_retired();
        // Map-side combine per partition.
        let mut combined: Vec<Vec<Record>> = Vec::with_capacity(ds.parts.len());
        for part in &ds.parts {
            // bdb-lint: allow(nondeterminism-reachability): drained via into_values + explicit key sort below
            let mut table: HashMap<Vec<u8>, Record> = HashMap::new();
            for (rec, &addr) in part.records.iter().zip(&part.addrs) {
                self.stack
                    .hash_agg
                    .enter(ctx, &self.stack.mix, &self.scratch, |ctx| {
                        trace_scan(ctx, addr, rec.key.len() as u64);
                        ctx.int_other(4);
                    });
                match table.remove(&rec.key) {
                    Some(prev) => {
                        let merged = merge(ctx, &prev, rec);
                        table.insert(rec.key.clone(), merged);
                    }
                    None => {
                        table.insert(rec.key.clone(), rec.clone());
                    }
                }
                self.service_tick(ctx);
            }
            let mut v: Vec<Record> = table.into_values().collect();
            v.sort_by(|a, b| a.key.cmp(&b.key)); // deterministic order
            combined.push(v);
        }
        let shuffled = self.shuffle(ctx, combined, ops0, "reduce_by_key");
        // Reduce-side final merge.
        let mut parts = Vec::with_capacity(shuffled.len());
        for bucket in shuffled {
            // bdb-lint: allow(nondeterminism-reachability): drained via into_values + explicit key sort below
            let mut table: HashMap<Vec<u8>, Record> = HashMap::new();
            for rec in bucket {
                self.stack.hash_agg.run(ctx, &self.stack.mix, &self.scratch);
                match table.remove(&rec.key) {
                    Some(prev) => {
                        let merged = merge(ctx, &prev, &rec);
                        table.insert(rec.key.clone(), merged);
                    }
                    None => {
                        table.insert(rec.key.clone(), rec);
                    }
                }
            }
            let mut recs: Vec<Record> = table.into_values().collect();
            recs.sort_by(|a, b| a.key.cmp(&b.key));
            let mut part = Part::default();
            for rec in recs {
                let addr = self.put_block(ctx, &rec);
                part.records.push(rec);
                part.addrs.push(addr);
            }
            parts.push(part);
        }
        Dataset {
            parts,
            cached: false,
        }
    }

    /// Wide transformation: brings records with equal keys together and
    /// key-sorts each partition (the `groupByKey` analog; groups are the
    /// equal-key runs of the sorted partitions).
    pub fn group_by_key(&mut self, ctx: &mut ExecCtx<'_>, ds: &Dataset) -> Dataset {
        let ops0 = ctx.ops_retired();
        let per_part: Vec<Vec<Record>> = ds.parts.iter().map(|p| p.records.clone()).collect();
        let shuffled = self.shuffle(ctx, per_part, ops0, "group_by_key");
        let parts = shuffled
            .into_iter()
            .map(|b| self.sorted_part(ctx, b))
            .collect();
        Dataset {
            parts,
            cached: false,
        }
    }

    /// Wide transformation: global sort by key via range partitioning and
    /// per-partition traced sort (the `sortByKey` analog).
    pub fn sort_by_key(&mut self, ctx: &mut ExecCtx<'_>, ds: &Dataset) -> Dataset {
        let ops0 = ctx.ops_retired();
        // Range partition on the first two key bytes.
        let n = self.config.partitions;
        let mut buckets: Vec<Vec<Record>> = vec![Vec::new(); n];
        for part in &ds.parts {
            for rec in &part.records {
                let rank = u64::from(rec.key.first().copied().unwrap_or(0)) * 256
                    + u64::from(rec.key.get(1).copied().unwrap_or(0));
                let b = (rank as usize * n) / 65536;
                buckets[b.min(n - 1)].push(rec.clone());
            }
        }
        let shuffled = self.shuffle_ranged(ctx, buckets, ops0, "sort_by_key");
        let parts = shuffled
            .into_iter()
            .map(|b| self.sorted_part(ctx, b))
            .collect();
        Dataset {
            parts,
            cached: false,
        }
    }

    fn sorted_part(&mut self, ctx: &mut ExecCtx<'_>, bucket: Vec<Record>) -> Part {
        let mut records = bucket;
        let mut addrs: Vec<u64> = records
            .iter()
            .map(|r| self.blocks.push(r.byte_size().max(1)))
            .collect();
        ctx.frame(self.stack.ext_sorter.region, |ctx| {
            ctx.boilerplate(
                &self.stack.mix,
                u64::from(self.stack.ext_sorter.units),
                &self.scratch,
            );
            traced_sort_by_key(ctx, &mut records, &mut addrs);
        });
        Part { records, addrs }
    }

    /// Hash-join two datasets on exact key (inner join). Joined values are
    /// concatenated `left ++ right`.
    pub fn join(&mut self, ctx: &mut ExecCtx<'_>, left: &Dataset, right: &Dataset) -> Dataset {
        let ops0 = ctx.ops_retired();
        let l = self.shuffle(
            ctx,
            left.parts.iter().map(|p| p.records.clone()).collect(),
            ops0,
            "join_left",
        );
        let ops1 = ctx.ops_retired();
        let r = self.shuffle(
            ctx,
            right.parts.iter().map(|p| p.records.clone()).collect(),
            ops1,
            "join_right",
        );
        let mut parts = Vec::with_capacity(l.len());
        for (lb, rb) in l.into_iter().zip(r) {
            // bdb-lint: allow(nondeterminism-reachability): keyed probe only; output order follows the right side
            let mut table: HashMap<Vec<u8>, Vec<Record>> = HashMap::new();
            for rec in lb {
                self.stack.hash_agg.run(ctx, &self.stack.mix, &self.scratch);
                table.entry(rec.key.clone()).or_default().push(rec);
            }
            let mut part = Part::default();
            for rec in rb {
                self.stack.hash_agg.run(ctx, &self.stack.mix, &self.scratch);
                if let Some(matches) = table.get(&rec.key) {
                    for m in matches {
                        let mut value = m.value.clone();
                        value.extend_from_slice(&rec.value);
                        let joined = Record::new(rec.key.clone(), value);
                        let addr = self.put_block(ctx, &joined);
                        part.records.push(joined);
                        part.addrs.push(addr);
                    }
                }
            }
            parts.push(part);
        }
        Dataset {
            parts,
            cached: false,
        }
    }

    /// Hash-partitioned shuffle (wide dependency).
    fn shuffle(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        inputs: Vec<Vec<Record>>,
        ops0: u64,
        name: &str,
    ) -> Vec<Vec<Record>> {
        let n = self.config.partitions;
        let mut buckets: Vec<Vec<Record>> = vec![Vec::new(); n];
        for records in inputs {
            for rec in records {
                let p = crate::mapreduce::partition_of(&rec.key, n);
                self.shuffle_write_one(ctx, &rec);
                buckets[p].push(rec);
            }
        }
        self.shuffle_read_side(ctx, &buckets, ops0, name);
        buckets
    }

    /// Pre-bucketed shuffle (range partitioning).
    fn shuffle_ranged(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        buckets: Vec<Vec<Record>>,
        ops0: u64,
        name: &str,
    ) -> Vec<Vec<Record>> {
        for bucket in &buckets {
            for rec in bucket {
                self.shuffle_write_one(ctx, rec);
            }
        }
        self.shuffle_read_side(ctx, &buckets, ops0, name);
        buckets
    }

    fn shuffle_write_one(&mut self, ctx: &mut ExecCtx<'_>, rec: &Record) {
        let len = rec.byte_size();
        let src = self.blocks.push(len.max(1));
        self.stack
            .shuffle_writer
            .enter(ctx, &self.stack.mix, &self.scratch, |ctx| {
                trace_copy(ctx, src, self.scratch.base(), len.min(self.scratch.len()));
            });
        self.stack.kryo.run(ctx, &self.stack.mix, &self.scratch);
    }

    fn shuffle_read_side(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        buckets: &[Vec<Record>],
        ops0: u64,
        name: &str,
    ) {
        let n = self.config.partitions;
        let bytes: u64 = buckets.iter().map(|b| crate::record::total_bytes(b)).sum();
        self.stack.netty.run(ctx, &self.stack.mix, &self.scratch);
        for bucket in buckets {
            self.stack
                .shuffle_reader
                .enter(ctx, &self.stack.mix, &self.scratch, |ctx| {
                    for rec in bucket.iter().take(64) {
                        trace_scan(ctx, self.scratch.base(), rec.byte_size().clamp(1, 512));
                    }
                });
        }
        let remote = (n.saturating_sub(1)) as f64 / n as f64;
        self.stats.intermediate_bytes += bytes;
        self.stats.phases.push(Phase {
            name: format!("shuffle:{name}"),
            instructions: ctx.ops_retired() - ops0,
            disk_read_bytes: 0,
            // Shuffle files are written through the page cache; roughly
            // half is flushed to disk within the job's lifetime.
            disk_write_bytes: bytes / 2,
            net_bytes: (bytes as f64 * remote) as u64,
            io_parallelism: 8.0,
        });
    }

    /// Writes a dataset out, charging the output phase, and returns the
    /// records (partition order).
    pub fn save(&mut self, ctx: &mut ExecCtx<'_>, ds: &Dataset) -> Vec<Record> {
        let ops0 = ctx.ops_retired();
        let mut out = Vec::with_capacity(ds.len());
        let mut bytes = 0u64;
        for part in &ds.parts {
            for (rec, &addr) in part.records.iter().zip(&part.addrs) {
                let len = rec.byte_size();
                bytes += len;
                self.stack
                    .block_manager
                    .enter(ctx, &self.stack.mix, &self.scratch, |ctx| {
                        trace_copy(ctx, addr, self.scratch.base(), len.min(self.scratch.len()));
                    });
                out.push(rec.clone());
            }
        }
        self.stats.output_bytes += bytes;
        self.stats.phases.push(Phase {
            name: "save".into(),
            instructions: ctx.ops_retired() - ops0,
            disk_read_bytes: 0,
            disk_write_bytes: bytes,
            net_bytes: 0,
            io_parallelism: 4.0,
        });
        out
    }

    /// Adds a compute-only phase covering ops retired since `ops0` (used by
    /// iterative drivers between materialization points).
    pub fn note_compute_phase(&mut self, ctx: &ExecCtx<'_>, name: &str, ops0: u64) {
        self.stats
            .phases
            .push(Phase::compute(name, ctx.ops_retired() - ops0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sort::group_runs;
    use bdb_trace::MixSink;

    fn with_engine<R>(
        f: impl FnOnce(&mut Dataflow<'_>, &mut ExecCtx<'_>) -> R,
    ) -> (R, bdb_trace::InstructionMix) {
        let mut layout = CodeLayout::new();
        let stack = SparkStack::register(&mut layout);
        let mut sink = MixSink::new();
        let mut ctx = ExecCtx::new(&layout, &mut sink);
        let root = stack.root_region();
        let out = ctx.frame(root, |ctx| {
            let mut df = Dataflow::new(&stack, DataflowConfig::default(), ctx);
            f(&mut df, ctx)
        });
        (out, sink.mix())
    }

    fn words(s: &str) -> Vec<Record> {
        s.split_whitespace()
            .map(|w| Record::new(w.as_bytes().to_vec(), vec![1]))
            .collect()
    }

    #[test]
    fn narrow_maps_records() {
        let (out, mix) = with_engine(|df, ctx| {
            let ds = df.parallelize(ctx, &words("a b c d e f"));
            let upper = df.narrow(ctx, "upper", &ds, &mut |ctx, rec, addr, out| {
                trace_scan(ctx, addr, rec.byte_size());
                out.emit(Record::new(rec.key.to_ascii_uppercase(), rec.value.clone()));
            });
            df.save(ctx, &upper)
        });
        let keys: Vec<Vec<u8>> = out.into_iter().map(|r| r.key).collect();
        assert!(keys.contains(&b"A".to_vec()));
        assert_eq!(keys.len(), 6);
        assert!(mix.branches > 0);
    }

    #[test]
    fn narrow_filter_drops_records() {
        let (out, _) = with_engine(|df, ctx| {
            let ds = df.parallelize(ctx, &words("keep drop keep drop drop"));
            let kept = df.narrow(ctx, "filter", &ds, &mut |ctx, rec, _, out| {
                let keep = rec.key == b"keep";
                ctx.cond_branch(keep);
                if keep {
                    out.emit(rec.clone());
                }
            });
            kept.len()
        });
        assert_eq!(out, 2);
    }

    #[test]
    fn reduce_by_key_counts_words() {
        let (out, _) = with_engine(|df, ctx| {
            let ds = df.parallelize(ctx, &words("x y x z x y"));
            let counted = df.reduce_by_key(ctx, &ds, &mut |ctx, a, b| {
                ctx.int_other(1);
                Record::new(a.key.clone(), vec![a.value[0] + b.value[0]])
            });
            df.save(ctx, &counted)
        });
        let mut m = std::collections::HashMap::new();
        for r in out {
            m.insert(r.key, r.value[0]);
        }
        assert_eq!(m[&b"x".to_vec()], 3);
        assert_eq!(m[&b"y".to_vec()], 2);
        assert_eq!(m[&b"z".to_vec()], 1);
    }

    #[test]
    fn sort_by_key_orders_globally() {
        let (got, _) = with_engine(|df, ctx| {
            let recs: Vec<Record> = [9u8, 3, 200, 7, 120, 45, 1]
                .iter()
                .map(|&k| Record::new(vec![k], vec![]))
                .collect();
            let ds = df.parallelize(ctx, &recs);
            let sorted = df.sort_by_key(ctx, &ds);
            sorted
                .parts
                .iter()
                .flat_map(|p| p.records.iter().map(|r| r.key[0]))
                .collect::<Vec<u8>>()
        });
        let mut expected = got.clone();
        expected.sort_unstable();
        assert_eq!(
            got, expected,
            "range partition + local sort must globally sort"
        );
    }

    #[test]
    fn join_matches_keys() {
        let (out, _) = with_engine(|df, ctx| {
            let left = df.parallelize(
                ctx,
                &[
                    Record::new(b"k1".to_vec(), b"L1".to_vec()),
                    Record::new(b"k2".to_vec(), b"L2".to_vec()),
                ],
            );
            let right = df.parallelize(
                ctx,
                &[
                    Record::new(b"k2".to_vec(), b"R2".to_vec()),
                    Record::new(b"k3".to_vec(), b"R3".to_vec()),
                ],
            );
            let joined = df.join(ctx, &left, &right);
            df.save(ctx, &joined)
        });
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].key, b"k2".to_vec());
        assert_eq!(out[0].value, b"L2R2".to_vec());
    }

    #[test]
    fn group_by_key_collects_equal_keys() {
        let (groups, _) = with_engine(|df, ctx| {
            let ds = df.parallelize(ctx, &words("m n m o m n"));
            let grouped = df.group_by_key(ctx, &ds);
            grouped
                .parts
                .iter()
                .flat_map(|p| {
                    group_runs(&p.records)
                        .into_iter()
                        .map(|(lo, hi)| (p.records[lo].key.clone(), hi - lo))
                        .collect::<Vec<_>>()
                })
                .collect::<Vec<_>>()
        });
        let mut flat = groups;
        flat.sort();
        assert_eq!(
            flat,
            vec![(b"m".to_vec(), 3), (b"n".to_vec(), 2), (b"o".to_vec(), 1)]
        );
    }

    #[test]
    fn stats_track_shuffle_and_output() {
        let (stats, _) = with_engine(|df, ctx| {
            let ds = df.read_input(ctx, &words("p q p"));
            let counted = df.reduce_by_key(ctx, &ds, &mut |_, a, b| {
                Record::new(a.key.clone(), vec![a.value[0] + b.value[0]])
            });
            df.save(ctx, &counted);
            df.stats().clone()
        });
        assert!(stats.input_bytes > 0);
        assert!(stats.intermediate_bytes > 0);
        assert!(stats.output_bytes > 0);
        assert!(stats.phases.iter().any(|p| p.name.starts_with("shuffle")));
        assert!(stats.phases.iter().any(|p| p.net_bytes > 0));
    }

    #[test]
    fn cache_marks_dataset() {
        let ((), _) = with_engine(|df, ctx| {
            let mut ds = df.parallelize(ctx, &words("a b"));
            assert!(!ds.cached);
            df.cache(ctx, &mut ds);
            assert!(ds.cached);
        });
    }

    #[test]
    fn iterator_chain_emits_indirect_branches() {
        use bdb_trace::{BranchKind, MicroOp, TraceSink};
        #[derive(Default)]
        struct IndirectCount(u64);
        impl TraceSink for IndirectCount {
            fn exec(&mut self, _pc: u64, op: MicroOp) {
                if let MicroOp::Branch {
                    kind: BranchKind::Indirect,
                    ..
                } = op
                {
                    self.0 += 1;
                }
            }
        }
        let mut layout = CodeLayout::new();
        let stack = SparkStack::register(&mut layout);
        let mut sink = IndirectCount::default();
        let mut ctx = ExecCtx::new(&layout, &mut sink);
        let root = stack.root_region();
        ctx.frame(root, |ctx| {
            let mut df = Dataflow::new(&stack, DataflowConfig::default(), ctx);
            let ds = df.parallelize(ctx, &words("a b c d"));
            let _ = df.narrow(ctx, "id", &ds, &mut |_, rec, _, out| out.emit(rec.clone()));
        });
        drop(ctx);
        // 4 records x (3 chain hops + 1 closure dispatch) minimum.
        assert!(sink.0 >= 16, "indirect branches {}", sink.0);
    }

    #[test]
    fn dataset_helpers() {
        let (ds, _) = with_engine(|df, ctx| df.parallelize(ctx, &words("one two three")));
        assert_eq!(ds.len(), 3);
        assert!(!ds.is_empty());
        assert!(ds.byte_size() > 0);
        assert_eq!(ds.iter().count(), 3);
    }
}
