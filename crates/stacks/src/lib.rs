//! Miniature big-data software stacks — the heart of the reproduction's
//! substitution for real Hadoop/Spark/MPI/Hive/Shark/Impala/HBase
//! deployments.
//!
//! The paper's central finding (observation O4) is that *the software stack
//! dominates micro-architectural behaviour*: the same WordCount shows L1I
//! MPKI of 2 on MPI, 7 on Hadoop, and 17 on Spark, because deep managed
//! stacks execute orders of magnitude more framework code per record. To
//! reproduce that honestly, this crate implements working miniatures of
//! each stack — engines that really split inputs, really serialize records,
//! really sort spills, really shuffle partitions — all narrated through
//! [`bdb_trace::ExecCtx`] so that every framework code path occupies its own
//! [code region](bdb_trace::CodeRegion) and contributes its real dynamic
//! instruction footprint.
//!
//! * [`mapreduce`] — Hadoop-like engine: splits, record readers,
//!   map/combine/spill-sort/shuffle/merge/reduce, plus managed-runtime
//!   services (GC scans, progress reports) — a *deep, wide* code base.
//! * [`dataflow`] — Spark-like engine: typed-as-bytes datasets, pipelined
//!   narrow stages with virtual-dispatch iterator chains, wide shuffles and
//!   in-memory caching — *deep and dispatch-heavy*.
//! * [`mpi`] — thin message-passing runtime with supersteps and collectives
//!   — *shallow*, the control in the paper's stack study.
//! * [`sql`] — relational plans (scan/filter/project/sort/aggregate/join/
//!   difference) executed in Hive mode (compiled to MapReduce jobs), Shark
//!   mode (compiled to dataflow stages), or Impala mode (native operators).
//! * [`kvstore`] — HBase-like LSM key-value service with stochastic request
//!   routing across many handler paths (the service-class workloads).
//! * [`record`], [`runtime`] — shared record model and resource accounting.

pub mod dataflow;
pub mod kvstore;
pub mod mapreduce;
pub mod mpi;
pub mod record;
pub mod runtime;
pub mod sort;
pub mod sql;

pub use record::Record;
pub use runtime::{DataBehavior, Relation, RunStats, StackKind};
