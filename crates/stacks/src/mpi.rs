//! The thin MPI-like message-passing runtime.
//!
//! The control arm of the paper's software-stack study (§5.5): the same
//! algorithms that run on the deep Hadoop/Spark stacks also run SPMD-style
//! on this runtime, whose entire framework text is ~100 KiB with narrow,
//! hot code paths. That is what produces the paper's order-of-magnitude
//! L1I MPKI gap (M-WordCount 2 vs H-WordCount 7 vs S-WordCount 17) and the
//! higher MPI IPC.
//!
//! Execution is bulk-synchronous: ranks run supersteps locally and
//! exchange messages at barriers, which keeps the simulation single-
//! threaded and deterministic while exercising real communication volume.

use crate::record::{trace_copy, Record};
use crate::runtime::{Routine, RunStats};
use bdb_node::Phase;
use bdb_trace::{CodeLayout, ExecCtx, MemRegion, OpMix};

/// The registered routine set of the MPI-like runtime (~100 KiB total; zero
/// spread — the hot paths are the whole story).
#[derive(Debug, Clone)]
pub struct MpiStack {
    mix: OpMix,
    init: Routine,
    send: Routine,
    recv: Routine,
    collective: Routine,
    barrier: Routine,
    /// Region for user rank code that has no kernel-specific region.
    user: Routine,
}

impl MpiStack {
    /// Registers all runtime routines in `layout`.
    pub fn register(layout: &mut CodeLayout) -> Self {
        let r = |layout: &mut CodeLayout, name: &str, kib: u64, units: u32| {
            Routine::register(layout, format!("mpi::{name}"), kib * 1024, units, 45)
        };
        Self {
            mix: OpMix::integer_compute(),
            init: r(layout, "init", 24, 300),
            send: r(layout, "isend", 16, 14),
            recv: r(layout, "irecv", 16, 14),
            collective: r(layout, "collective", 20, 20),
            barrier: r(layout, "barrier", 8, 10),
            user: r(layout, "rank_main", 24, 10),
        }
    }

    /// Region for rank-local driver code.
    pub fn root_region(&self) -> bdb_trace::RegionId {
        self.user.region
    }
}

/// A message in flight between ranks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Sending rank.
    pub from: usize,
    /// Destination rank.
    pub to: usize,
    /// Payload record.
    pub payload: Record,
}

/// Outbox handed to each rank during a superstep.
#[derive(Debug, Default)]
pub struct Outbox {
    messages: Vec<Message>,
}

impl Outbox {
    /// Sends `payload` to `to`.
    pub fn send(&mut self, from: usize, to: usize, payload: Record) {
        self.messages.push(Message { from, to, payload });
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// Returns `true` when no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }
}

/// The bulk-synchronous world: per-rank state of type `S`.
#[derive(Debug)]
pub struct MpiWorld<'s, S> {
    stack: &'s MpiStack,
    scratch: MemRegion,
    msg_region: MemRegion,
    /// Per-rank state.
    pub states: Vec<S>,
    inboxes: Vec<Vec<Record>>,
    stats: RunStats,
}

impl<'s, S> MpiWorld<'s, S> {
    /// Creates a world with one state per rank, narrating `MPI_Init`.
    ///
    /// # Panics
    ///
    /// Panics if `states` is empty.
    pub fn new(stack: &'s MpiStack, ctx: &mut ExecCtx<'_>, states: Vec<S>) -> Self {
        assert!(!states.is_empty(), "world needs at least one rank");
        let scratch = ctx.scratch_alloc(16 * 1024, 64);
        let msg_region = ctx.heap_alloc(4 << 20, 64);
        stack.init.run(ctx, &stack.mix, &scratch);
        let ranks = states.len();
        Self {
            stack,
            scratch,
            msg_region,
            states,
            inboxes: (0..ranks).map(|_| Vec::new()).collect(),
            stats: RunStats::default(),
        }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.states.len()
    }

    /// Records an input volume (ranks read their partitions from disk).
    pub fn charge_input(&mut self, ctx: &ExecCtx<'_>, bytes: u64, ops0: u64) {
        self.stats.input_bytes += bytes;
        self.stats.phases.push(Phase {
            name: "read".into(),
            instructions: ctx.ops_retired() - ops0,
            disk_read_bytes: bytes,
            disk_write_bytes: 0,
            net_bytes: 0,
            io_parallelism: 4.0,
        });
    }

    /// Records an output volume.
    pub fn charge_output(&mut self, ctx: &ExecCtx<'_>, bytes: u64, ops0: u64) {
        self.stats.output_bytes += bytes;
        self.stats.phases.push(Phase {
            name: "write".into(),
            instructions: ctx.ops_retired() - ops0,
            disk_read_bytes: 0,
            disk_write_bytes: bytes,
            net_bytes: 0,
            io_parallelism: 2.0,
        });
    }

    /// Runs one superstep: `step` executes for every rank (receiving the
    /// rank's inbox from the previous step), then queued messages are
    /// delivered with traced copies and network accounting.
    pub fn superstep(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        name: &str,
        mut step: impl FnMut(&mut ExecCtx<'_>, usize, &mut S, &[Record], &mut Outbox),
    ) {
        let ops0 = ctx.ops_retired();
        let mut outbox = Outbox::default();
        let ranks = self.states.len();
        let stack = self.stack;
        let scratch = self.scratch;
        for rank in 0..ranks {
            let inbox = std::mem::take(&mut self.inboxes[rank]);
            let state = &mut self.states[rank];
            stack.user.enter(ctx, &stack.mix, &scratch, |ctx| {
                step(ctx, rank, state, &inbox, &mut outbox);
            });
        }
        self.stack.barrier.run(ctx, &self.stack.mix, &self.scratch);
        // Deliver.
        let mut net_bytes = 0u64;
        let mut cursor = 0u64;
        for msg in outbox.messages {
            let len = msg.payload.byte_size().max(1);
            if msg.from != msg.to {
                net_bytes += len;
            }
            let dst = self.msg_region.base() + (cursor % self.msg_region.len().max(1));
            cursor += len;
            self.stack.send.run(ctx, &self.stack.mix, &self.scratch);
            self.stack
                .recv
                .enter(ctx, &self.stack.mix, &self.scratch, |ctx| {
                    trace_copy(ctx, self.scratch.base(), dst, len.min(self.scratch.len()));
                });
            self.inboxes[msg.to].push(msg.payload);
        }
        self.stats.intermediate_bytes += net_bytes;
        self.stats.phases.push(Phase {
            name: format!("superstep:{name}"),
            instructions: ctx.ops_retired() - ops0,
            disk_read_bytes: 0,
            disk_write_bytes: 0,
            net_bytes,
            io_parallelism: 2.0,
        });
    }

    /// All-reduce of per-rank f64 vectors with `op`, narrated through the
    /// collective routine. Every rank ends with the combined vector.
    pub fn allreduce_f64(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        vectors: Vec<Vec<f64>>,
        op: impl Fn(f64, f64) -> f64,
    ) -> Vec<f64> {
        assert_eq!(vectors.len(), self.ranks(), "one vector per rank");
        let width = vectors.first().map(Vec::len).unwrap_or(0);
        let mut acc = vec![0.0f64; width];
        self.stack
            .collective
            .enter(ctx, &self.stack.mix, &self.scratch, |ctx| {
                let mut first = true;
                for v in &vectors {
                    assert_eq!(v.len(), width, "ragged allreduce");
                    let top = ctx.loop_start();
                    for (i, &x) in v.iter().enumerate() {
                        ctx.read_fp(
                            self.msg_region.base() + (i as u64 * 8) % self.msg_region.len(),
                            8,
                        );
                        ctx.fp_ops(1);
                        acc[i] = if first { x } else { op(acc[i], x) };
                        ctx.loop_back(top, i + 1 < width);
                    }
                    first = false;
                }
            });
        let bytes = (width * 8 * self.ranks()) as u64;
        self.stats.phases.push(Phase {
            name: "allreduce".into(),
            instructions: 0,
            disk_read_bytes: 0,
            disk_write_bytes: 0,
            net_bytes: bytes,
            io_parallelism: 1.0,
        });
        acc
    }

    /// Accumulated accounting so far.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Finishes the run.
    pub fn finish(self) -> RunStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdb_trace::MixSink;

    fn with_world<R>(
        ranks: usize,
        f: impl FnOnce(&mut MpiWorld<'_, Vec<u64>>, &mut ExecCtx<'_>) -> R,
    ) -> (R, bdb_trace::InstructionMix) {
        let mut layout = CodeLayout::new();
        let stack = MpiStack::register(&mut layout);
        let mut sink = MixSink::new();
        let mut ctx = ExecCtx::new(&layout, &mut sink);
        let root = stack.root_region();
        let out = ctx.frame(root, |ctx| {
            let mut world = MpiWorld::new(&stack, ctx, vec![Vec::new(); ranks]);
            f(&mut world, ctx)
        });
        (out, sink.mix())
    }

    #[test]
    fn messages_are_delivered_next_superstep() {
        let (received, _) = with_world(3, |world, ctx| {
            world.superstep(ctx, "send", |_, rank, _, inbox, out| {
                assert!(inbox.is_empty(), "first superstep has empty inboxes");
                out.send(rank, (rank + 1) % 3, Record::new(vec![rank as u8], vec![]));
            });
            let mut got = vec![None; 3];
            world.superstep(ctx, "recv", |_, rank, _, inbox, _| {
                got[rank] = inbox.first().map(|r| r.key[0]);
            });
            got
        });
        assert_eq!(received, vec![Some(2), Some(0), Some(1)]);
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        let (sum, mix) = with_world(4, |world, ctx| {
            let vectors = vec![vec![1.0, 2.0]; 4];
            world.allreduce_f64(ctx, vectors, |a, b| a + b)
        });
        assert_eq!(sum, vec![4.0, 8.0]);
        assert!(mix.fp >= 8, "collective must do FP work: {}", mix.fp);
    }

    #[test]
    fn network_bytes_counted_for_remote_messages_only() {
        let (stats, _) = with_world(2, |world, ctx| {
            world.superstep(ctx, "mixed", |_, rank, _, _, out| {
                out.send(rank, rank, Record::new(vec![0; 10], vec![])); // local
                out.send(rank, 1 - rank, Record::new(vec![0; 10], vec![])); // remote
            });
            world.stats().clone()
        });
        let step = stats
            .phases
            .iter()
            .find(|p| p.name.starts_with("superstep"))
            .unwrap();
        assert_eq!(step.net_bytes, 20);
    }

    #[test]
    fn thin_stack_emits_far_fewer_ops_than_deep_stacks() {
        // Rough depth check: one superstep over 3 ranks with no work should
        // cost well under the MapReduce job_setup alone.
        let ((), mix) = with_world(3, |world, ctx| {
            world.superstep(ctx, "noop", |_, _, _, _, _| {});
        });
        assert!(mix.total() < 1500, "thin stack too chatty: {}", mix.total());
    }

    #[test]
    fn input_output_accounting() {
        let (stats, _) = with_world(2, |world, ctx| {
            let ops = ctx.ops_retired();
            world.charge_input(ctx, 1000, ops);
            world.charge_output(ctx, 300, ops);
            world.stats().clone()
        });
        assert_eq!(stats.input_bytes, 1000);
        assert_eq!(stats.output_bytes, 300);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn empty_world_panics() {
        let mut layout = CodeLayout::new();
        let stack = MpiStack::register(&mut layout);
        let mut sink = MixSink::new();
        let mut ctx = ExecCtx::new(&layout, &mut sink);
        let _world: MpiWorld<'_, ()> = MpiWorld::new(&stack, &mut ctx, Vec::new());
    }
}
