//! Shared resource accounting and data-behaviour classification.
//!
//! Every stack engine returns a [`RunStats`]: the real byte volumes it
//! read, shuffled, and wrote, plus the [`bdb_node::Phase`]s to replay on
//! the system-level node model. The paper's Table 2 columns "Data
//! Processing Behaviors" (§3.2.2) are computed from these volumes with the
//! paper's own thresholds.

use bdb_trace::{ExecCtx, MemRegion, OpMix, RegionId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One framework routine: a [code region](bdb_trace::CodeRegion) plus how a
/// typical invocation walks it.
///
/// `units` is the boilerplate micro-op count charged per invocation and
/// `spread` is how many bytes of the region invocations wander over (via
/// [`ExecCtx::frame_spread`]): deep managed stacks use large regions with
/// wide spread, thin runtimes use small regions with zero spread. These two
/// knobs are what make the paper's stack-dependent L1I behaviour (O3/O4)
/// emerge from the trace rather than being asserted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Routine {
    /// The routine's code region.
    pub region: RegionId,
    /// Boilerplate micro-ops charged per invocation.
    pub units: u32,
    /// Bytes of the region that invocation entry points wander over.
    pub spread: u64,
}

impl Routine {
    /// Registers a routine of `size` code bytes in `layout`.
    ///
    /// `spread_pct` (0–100) controls which fraction of the region the
    /// per-invocation entry offset ranges over.
    pub fn register(
        layout: &mut bdb_trace::CodeLayout,
        name: impl Into<String>,
        size: u64,
        units: u32,
        spread_pct: u64,
    ) -> Self {
        let region = layout.region(name, size);
        Self {
            region,
            units,
            spread: size * spread_pct.min(100) / 100,
        }
    }

    /// Invokes the routine: frame + boilerplate, then `f` inside the frame.
    pub fn enter<R>(
        &self,
        ctx: &mut ExecCtx<'_>,
        mix: &OpMix,
        scratch: &MemRegion,
        f: impl FnOnce(&mut ExecCtx<'_>) -> R,
    ) -> R {
        ctx.frame_spread(self.region, self.spread, |ctx| {
            ctx.boilerplate(mix, u64::from(self.units), scratch);
            f(ctx)
        })
    }

    /// Invokes the routine for its boilerplate only.
    pub fn run(&self, ctx: &mut ExecCtx<'_>, mix: &OpMix, scratch: &MemRegion) {
        self.enter(ctx, mix, scratch, |_| ());
    }
}

/// Which software stack executed a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum StackKind {
    /// The Hadoop-like MapReduce engine.
    Hadoop,
    /// The Spark-like dataflow engine.
    Spark,
    /// The thin MPI-like runtime.
    Mpi,
    /// The Hive mode of the SQL engine (SQL compiled onto MapReduce).
    Hive,
    /// The Shark mode of the SQL engine (SQL compiled onto dataflow).
    Shark,
    /// The Impala mode of the SQL engine (native operators).
    Impala,
    /// The HBase-like key-value service.
    Hbase,
    /// A native benchmark binary (comparison suites).
    Native,
}

impl fmt::Display for StackKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StackKind::Hadoop => "Hadoop",
            StackKind::Spark => "Spark",
            StackKind::Mpi => "MPI",
            StackKind::Hive => "Hive",
            StackKind::Shark => "Shark",
            StackKind::Impala => "Impala",
            StackKind::Hbase => "HBase",
            StackKind::Native => "native",
        };
        f.write_str(s)
    }
}

/// The paper's §3.2.2 size-relation classes between two data volumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Relation {
    /// Ratio in `[0.9, 1.1)`: the volumes are considered equal.
    Equal,
    /// Ratio in `[0.01, 0.9)`: output smaller than input.
    Less,
    /// Ratio below `0.01`: output much smaller than input.
    MuchLess,
    /// Ratio `>= 1.1`: output larger than input.
    Greater,
}

impl Relation {
    /// Classifies `numerator / denominator` with the paper's thresholds.
    ///
    /// A zero denominator classifies as [`Relation::Greater`] when the
    /// numerator is non-zero and [`Relation::Equal`] otherwise.
    pub fn classify(numerator: u64, denominator: u64) -> Self {
        if denominator == 0 {
            return if numerator == 0 {
                Relation::Equal
            } else {
                Relation::Greater
            };
        }
        let ratio = numerator as f64 / denominator as f64;
        if ratio >= 1.1 {
            Relation::Greater
        } else if ratio >= 0.9 {
            Relation::Equal
        } else if ratio >= 0.01 {
            Relation::Less
        } else {
            Relation::MuchLess
        }
    }

    /// The paper's notation for this relation against "Input".
    pub fn notation(&self, subject: &str) -> String {
        match self {
            Relation::Equal => format!("{subject}=Input"),
            Relation::Less => format!("{subject}<Input"),
            Relation::MuchLess => format!("{subject}<<Input"),
            Relation::Greater => format!("{subject}>Input"),
        }
    }
}

/// Table 2's "Data Processing Behaviors" cell for one workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataBehavior {
    /// Output volume relative to input.
    pub output: Relation,
    /// Intermediate (shuffle/spill) volume relative to input; `None` when
    /// the workload produces no intermediate data.
    pub intermediate: Option<Relation>,
}

impl fmt::Display for DataBehavior {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.output.notation("Output"))?;
        match self.intermediate {
            Some(rel) => write!(f, " and {}", rel.notation("Intermediate")),
            None => write!(f, " and no Intermediate"),
        }
    }
}

/// Resource accounting for one stack run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Bytes of input consumed.
    pub input_bytes: u64,
    /// Bytes of intermediate data materialized (spills, shuffles).
    pub intermediate_bytes: u64,
    /// Bytes of output produced.
    pub output_bytes: u64,
    /// Resource phases for the node model.
    pub phases: Vec<bdb_node::Phase>,
}

impl RunStats {
    /// Classifies the run's data behaviour with the paper's §3.2.2 rules.
    ///
    /// Intermediate volume below one-per-mille of input counts as "no
    /// intermediate" (the paper lists e.g. H-Read as having none even
    /// though the stack touches small internal buffers).
    pub fn data_behavior(&self) -> DataBehavior {
        let intermediate = if self.intermediate_bytes * 1000 < self.input_bytes {
            None
        } else {
            Some(Relation::classify(
                self.intermediate_bytes,
                self.input_bytes,
            ))
        };
        DataBehavior {
            output: Relation::classify(self.output_bytes, self.input_bytes),
            intermediate,
        }
    }

    /// Merges another run's accounting into this one (multi-job pipelines).
    pub fn merge(&mut self, other: RunStats) {
        // Input/output of a pipeline are the first input and last output;
        // callers overwrite those. Here we accumulate everything.
        self.input_bytes += other.input_bytes;
        self.intermediate_bytes += other.intermediate_bytes;
        self.output_bytes += other.output_bytes;
        self.phases.extend(other.phases);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relation_thresholds_match_paper() {
        assert_eq!(Relation::classify(95, 100), Relation::Equal);
        assert_eq!(Relation::classify(109, 100), Relation::Equal);
        assert_eq!(Relation::classify(110, 100), Relation::Greater);
        assert_eq!(Relation::classify(89, 100), Relation::Less);
        assert_eq!(Relation::classify(1, 100), Relation::Less);
        assert_eq!(Relation::classify(0, 100), Relation::MuchLess);
        assert_eq!(Relation::classify(9, 1000), Relation::MuchLess);
    }

    #[test]
    fn zero_denominator() {
        assert_eq!(Relation::classify(0, 0), Relation::Equal);
        assert_eq!(Relation::classify(5, 0), Relation::Greater);
    }

    #[test]
    fn data_behavior_formats_like_table2() {
        let stats = RunStats {
            input_bytes: 1000,
            intermediate_bytes: 500,
            output_bytes: 5,
            phases: Vec::new(),
        };
        assert_eq!(
            stats.data_behavior().to_string(),
            "Output<<Input and Intermediate<Input"
        );
        let no_inter = RunStats {
            input_bytes: 1000,
            intermediate_bytes: 0,
            output_bytes: 1000,
            phases: Vec::new(),
        };
        assert_eq!(
            no_inter.data_behavior().to_string(),
            "Output=Input and no Intermediate"
        );
    }

    #[test]
    fn merge_accumulates_phases() {
        let mut a = RunStats {
            input_bytes: 10,
            ..Default::default()
        };
        let b = RunStats {
            input_bytes: 5,
            phases: vec![bdb_node::Phase::compute("x", 1)],
            ..Default::default()
        };
        a.merge(b);
        assert_eq!(a.input_bytes, 15);
        assert_eq!(a.phases.len(), 1);
    }

    #[test]
    fn stack_kind_display() {
        assert_eq!(StackKind::Hadoop.to_string(), "Hadoop");
        assert_eq!(StackKind::Mpi.to_string(), "MPI");
    }
}
