//! Workload descriptors and the scale knob.

use bdb_datagen::DataSetId;
use bdb_stacks::{RunStats, StackKind};
use bdb_trace::TraceSink;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// The paper's three application categories (§3.2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Category {
    /// Offline data analysis (MapReduce/Spark/MPI batch jobs).
    DataAnalysis,
    /// Cloud OLTP services.
    Service,
    /// Interactive analytics (SQL engines).
    InteractiveAnalysis,
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Category::DataAnalysis => "data analysis",
            Category::Service => "service",
            Category::InteractiveAnalysis => "interactive analysis",
        };
        f.write_str(s)
    }
}

/// The algorithm or operator a workload runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum KernelKind {
    WordCount,
    Sort,
    Grep,
    KMeans,
    PageRank,
    NaiveBayes,
    InvertedIndex,
    ConnectedComponents,
    Select,
    Project,
    OrderBy,
    Aggregation,
    Join,
    Difference,
    TpcDsQ3,
    TpcDsQ6,
    TpcDsQ8,
    TpcDsQ10,
    TpcDsQ13,
    KvRead,
    KvWrite,
    KvScan,
    SuiteKernel,
}

impl KernelKind {
    /// Prose description in the style of the paper's Table 2.
    pub fn description(&self) -> &'static str {
        match self {
            KernelKind::WordCount => {
                "counts the number of each word in the input; a fundamental operation for big data statistics analytics"
            }
            KernelKind::Sort => {
                "sorts key-value records; a fundamental operation from relational algebra used in various scenes"
            }
            KernelKind::Grep => {
                "searches plain text for lines that match a pattern; another fundamental, widely used operation"
            }
            KernelKind::KMeans => {
                "a popular clustering algorithm partitioning n observations into k clusters"
            }
            KernelKind::PageRank => {
                "a graph computing algorithm scoring web pages by the number and quality of links"
            }
            KernelKind::NaiveBayes => {
                "a simple but widely used probabilistic classifier in statistical calculation"
            }
            KernelKind::InvertedIndex => "builds word -> document posting lists for search",
            KernelKind::ConnectedComponents => {
                "labels the connected components of a social graph by iterative label propagation"
            }
            KernelKind::Select => {
                "select query to filter data; filter is one of the five basic operators from relational algebra"
            }
            KernelKind::Project => {
                "project, one of the five basic operators from relational algebra"
            }
            KernelKind::OrderBy => {
                "sorting, a fundamental operation from relational algebra, extensively used"
            }
            KernelKind::Aggregation => "group-by aggregation over a fact table",
            KernelKind::Join => "equi-join between a fact table and a dimension",
            KernelKind::Difference => {
                "set difference, one of the five basic operators from relational algebra"
            }
            KernelKind::TpcDsQ3 => "query 3 of TPC-DS, complex relational algebra",
            KernelKind::TpcDsQ6 => "a TPC-DS-style customer-rollup query",
            KernelKind::TpcDsQ8 => "query 8 of TPC-DS, complex relational algebra",
            KernelKind::TpcDsQ10 => "query 10 of TPC-DS, complex relational algebra",
            KernelKind::TpcDsQ13 => "a TPC-DS-style quantity/date rollup query",
            KernelKind::KvRead => {
                "basic read operation of a popular non-relational distributed database"
            }
            KernelKind::KvWrite => {
                "basic write operation of a popular non-relational distributed database"
            }
            KernelKind::KvScan => {
                "range scan operation of a popular non-relational distributed database"
            }
            KernelKind::SuiteKernel => "comparison-suite kernel",
        }
    }
}

/// Identity and taxonomy of one workload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Short id in the paper's style, e.g. `"H-WordCount"`.
    pub id: String,
    /// Software stack.
    pub stack: StackKind,
    /// Application category.
    pub category: Category,
    /// Source data set.
    pub dataset: DataSetId,
    /// Algorithm/operator.
    pub kernel: KernelKind,
}

/// Global scale knob: multiplies every workload's base data size.
///
/// `tiny` keeps unit tests fast; `small` is the default for examples and
/// integration tests; `paper` is what the benchmark binaries use.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Scale {
    factor: f64,
}

impl Scale {
    /// Unit-test scale (~50–100 k traced ops per workload).
    pub fn tiny() -> Self {
        Self { factor: 0.02 }
    }

    /// Example/integration scale.
    pub fn small() -> Self {
        Self { factor: 0.25 }
    }

    /// Benchmark scale (the default for table/figure regeneration).
    pub fn paper() -> Self {
        Self { factor: 1.0 }
    }

    /// Custom scale factor.
    ///
    /// # Panics
    ///
    /// Panics unless `factor` is finite and positive.
    pub fn custom(factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scale factor must be positive"
        );
        Self { factor }
    }

    /// Scales a base count, with a floor of 4.
    pub fn n(&self, base: usize) -> usize {
        ((base as f64 * self.factor) as usize).max(4)
    }

    /// The raw factor.
    pub fn factor(&self) -> f64 {
        self.factor
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale::small()
    }
}

/// Runner signature: execute onto a sink at a scale, return accounting.
pub type Runner = Arc<dyn Fn(&mut dyn TraceSink, Scale) -> RunStats + Send + Sync>;

/// A described, runnable workload.
#[derive(Clone)]
pub struct WorkloadDef {
    /// Identity and taxonomy.
    pub spec: WorkloadSpec,
    runner: Runner,
}

impl fmt::Debug for WorkloadDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkloadDef")
            .field("spec", &self.spec)
            .finish()
    }
}

impl WorkloadDef {
    /// Creates a workload from its spec and runner.
    pub fn new(spec: WorkloadSpec, runner: Runner) -> Self {
        Self { spec, runner }
    }

    /// Runs the workload, streaming its trace into `sink`.
    pub fn run(&self, sink: &mut dyn TraceSink, scale: Scale) -> RunStats {
        (self.runner)(sink, scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_floors_at_four() {
        assert_eq!(Scale::tiny().n(10), 4);
        assert_eq!(Scale::paper().n(10), 10);
        assert_eq!(Scale::custom(2.0).n(10), 20);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_panics() {
        let _ = Scale::custom(0.0);
    }

    #[test]
    fn category_display() {
        assert_eq!(Category::Service.to_string(), "service");
        assert_eq!(
            Category::InteractiveAnalysis.to_string(),
            "interactive analysis"
        );
    }

    #[test]
    fn workload_def_runs_its_runner() {
        use bdb_trace::MixSink;
        let spec = WorkloadSpec {
            id: "T-Test".into(),
            stack: StackKind::Native,
            category: Category::DataAnalysis,
            dataset: DataSetId::Wikipedia,
            kernel: KernelKind::SuiteKernel,
        };
        let def = WorkloadDef::new(
            spec,
            Arc::new(|_sink, scale| RunStats {
                input_bytes: scale.n(100) as u64,
                ..Default::default()
            }),
        );
        let mut sink = MixSink::new();
        assert_eq!(def.run(&mut sink, Scale::paper()).input_bytes, 100);
    }
}
