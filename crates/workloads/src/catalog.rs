//! The assembled workload catalog.
//!
//! [`full_catalog`] enumerates the 77 BigDataBench-like workloads
//! (mirroring BigDataBench 3.0's operator × implementation × data-set
//! matrix), [`representatives`] returns the paper's 17 Table 2 workloads,
//! [`mpi_workloads`] the six MPI control implementations of §5.5, and
//! [`suite_workloads`] the comparison-suite kernels.

use crate::offline;
use crate::queries::{run_query, QueryData};
use crate::service::{hbase_service, RequestMix};
use crate::spec::{Category, KernelKind, Runner, WorkloadDef, WorkloadSpec};
use crate::suites::{self, Suite};
use bdb_datagen::DataSetId;
use bdb_stacks::StackKind;
use std::sync::Arc;

const ITERATIONS: usize = 8;

fn def(
    id: impl Into<String>,
    stack: StackKind,
    category: Category,
    dataset: DataSetId,
    kernel: KernelKind,
    runner: Runner,
) -> WorkloadDef {
    WorkloadDef::new(
        WorkloadSpec {
            id: id.into(),
            stack,
            category,
            dataset,
            kernel,
        },
        runner,
    )
}

fn offline_def(stack: StackKind, kernel: KernelKind, dataset: DataSetId) -> WorkloadDef {
    use DataSetId as D;
    use KernelKind as K;
    use StackKind as S;
    let prefix = match stack {
        S::Hadoop => "H",
        S::Spark => "S",
        S::Mpi => "M",
        // bdb-lint: allow(panic-reachability): exhaustive over the static catalog table; catalog-spec pins every entry
        _ => unreachable!("offline workloads run on Hadoop/Spark/MPI"),
    };
    let kernel_name = match kernel {
        K::WordCount => "WordCount",
        K::Sort => "Sort",
        K::Grep => "Grep",
        K::KMeans => "Kmeans",
        K::PageRank => "PageRank",
        K::NaiveBayes => "NaiveBayes",
        K::InvertedIndex => "Index",
        K::ConnectedComponents => "CC",
        // bdb-lint: allow(panic-reachability): exhaustive over the static catalog table; catalog-spec pins every entry
        other => unreachable!("{other:?} is not an offline kernel"),
    };
    let suffix =
        if dataset == D::AmazonReviews && matches!(kernel, K::WordCount | K::Sort | K::Grep) {
            "-Amazon"
        } else {
            ""
        };
    let id = format!("{prefix}-{kernel_name}{suffix}");
    let runner: Runner = match (stack, kernel) {
        (S::Hadoop, K::WordCount) => {
            Arc::new(move |s, sc| offline::hadoop_wordcount(s, sc, dataset))
        }
        (S::Hadoop, K::Sort) => Arc::new(move |s, sc| offline::hadoop_sort(s, sc, dataset)),
        (S::Hadoop, K::Grep) => Arc::new(move |s, sc| offline::hadoop_grep(s, sc, dataset)),
        (S::Hadoop, K::KMeans) => Arc::new(|s, sc| offline::hadoop_kmeans(s, sc, ITERATIONS)),
        (S::Hadoop, K::PageRank) => {
            Arc::new(move |s, sc| offline::hadoop_pagerank(s, sc, dataset, ITERATIONS))
        }
        (S::Hadoop, K::NaiveBayes) => Arc::new(|s, sc| offline::hadoop_bayes(s, sc)),
        (S::Hadoop, K::InvertedIndex) => {
            Arc::new(move |s, sc| offline::hadoop_index(s, sc, dataset))
        }
        (S::Hadoop, K::ConnectedComponents) => {
            Arc::new(|s, sc| offline::hadoop_cc(s, sc, ITERATIONS))
        }
        (S::Spark, K::WordCount) => Arc::new(move |s, sc| offline::spark_wordcount(s, sc, dataset)),
        (S::Spark, K::Sort) => Arc::new(move |s, sc| offline::spark_sort(s, sc, dataset)),
        (S::Spark, K::Grep) => Arc::new(move |s, sc| offline::spark_grep(s, sc, dataset)),
        (S::Spark, K::KMeans) => Arc::new(|s, sc| offline::spark_kmeans(s, sc, ITERATIONS)),
        (S::Spark, K::PageRank) => {
            Arc::new(move |s, sc| offline::spark_pagerank(s, sc, dataset, ITERATIONS))
        }
        (S::Spark, K::NaiveBayes) => Arc::new(|s, sc| offline::spark_bayes(s, sc)),
        (S::Spark, K::InvertedIndex) => Arc::new(move |s, sc| offline::spark_index(s, sc, dataset)),
        (S::Spark, K::ConnectedComponents) => {
            Arc::new(|s, sc| offline::spark_cc(s, sc, ITERATIONS))
        }
        (S::Mpi, K::WordCount) => Arc::new(move |s, sc| offline::mpi_wordcount(s, sc, dataset)),
        (S::Mpi, K::Sort) => Arc::new(move |s, sc| offline::mpi_sort(s, sc, dataset)),
        (S::Mpi, K::Grep) => Arc::new(move |s, sc| offline::mpi_grep(s, sc, dataset)),
        (S::Mpi, K::KMeans) => Arc::new(|s, sc| offline::mpi_kmeans(s, sc, ITERATIONS)),
        (S::Mpi, K::PageRank) => {
            Arc::new(move |s, sc| offline::mpi_pagerank(s, sc, dataset, ITERATIONS))
        }
        (S::Mpi, K::NaiveBayes) => Arc::new(|s, sc| offline::mpi_bayes(s, sc)),
        // bdb-lint: allow(panic-reachability): exhaustive over the static catalog table; catalog-spec pins every entry
        (stack, kernel) => unreachable!("no offline runner for {kernel:?} on {stack}"),
    };
    def(id, stack, Category::DataAnalysis, dataset, kernel, runner)
}

fn query_def(engine: StackKind, kernel: KernelKind, data: QueryData) -> WorkloadDef {
    use KernelKind as K;
    let prefix = match engine {
        StackKind::Hive => "H",
        StackKind::Shark => "S",
        StackKind::Impala => "I",
        // bdb-lint: allow(panic-reachability): exhaustive over the static catalog table; catalog-spec pins every entry
        other => unreachable!("{other} is not a SQL engine"),
    };
    let op_name = match kernel {
        K::Select => "SelectQuery",
        K::Project => "Project",
        K::OrderBy => "OrderBy",
        K::Aggregation => "Aggregation",
        K::Join => "JoinQuery",
        K::Difference => "Difference",
        K::TpcDsQ3 => "TPC-DS-query3",
        K::TpcDsQ6 => "TPC-DS-query6",
        K::TpcDsQ8 => "TPC-DS-query8",
        K::TpcDsQ10 => "TPC-DS-query10",
        K::TpcDsQ13 => "TPC-DS-query13",
        // bdb-lint: allow(panic-reachability): exhaustive over the static catalog table; catalog-spec pins every entry
        other => unreachable!("{other:?} is not a query kernel"),
    };
    let (suffix, dataset) = match data {
        QueryData::Ecommerce => ("", DataSetId::EcommerceTransactions),
        QueryData::TpcdsWeb => {
            if matches!(
                kernel,
                K::TpcDsQ3 | K::TpcDsQ6 | K::TpcDsQ8 | K::TpcDsQ10 | K::TpcDsQ13
            ) {
                ("", DataSetId::TpcdsWeb)
            } else {
                ("-Web", DataSetId::TpcdsWeb)
            }
        }
    };
    let id = format!("{prefix}-{op_name}{suffix}");
    let runner: Runner = Arc::new(move |s, sc| run_query(s, sc, engine, kernel, data));
    def(
        id,
        engine,
        Category::InteractiveAnalysis,
        dataset,
        kernel,
        runner,
    )
}

fn service_def(name: &str, kernel: KernelKind, mix: RequestMix) -> WorkloadDef {
    def(
        name,
        StackKind::Hbase,
        Category::Service,
        DataSetId::ProfSearchResumes,
        kernel,
        Arc::new(move |s, sc| hbase_service(s, sc, mix)),
    )
}

/// The full 77-workload catalog (BigDataBench 3.0 analog, excluding the
/// six MPI control implementations, which the paper also keeps separate).
pub fn full_catalog() -> Vec<WorkloadDef> {
    use DataSetId as D;
    use KernelKind as K;
    use StackKind as S;
    let mut all = Vec::with_capacity(77);
    // Offline analytics: 8 kernels x {Hadoop, Spark}.
    for stack in [S::Hadoop, S::Spark] {
        for (kernel, dataset) in [
            (K::WordCount, D::Wikipedia),
            (K::Sort, D::Wikipedia),
            (K::Grep, D::Wikipedia),
            (K::KMeans, D::FacebookSocial),
            (K::PageRank, D::GoogleWebGraph),
            (K::NaiveBayes, D::AmazonReviews),
            (K::InvertedIndex, D::Wikipedia),
            (K::ConnectedComponents, D::FacebookSocial),
        ] {
            all.push(offline_def(stack, kernel, dataset));
        }
        // Second-data-set variants (Amazon reviews) for the text kernels.
        for kernel in [K::WordCount, K::Sort, K::Grep] {
            all.push(offline_def(stack, kernel, D::AmazonReviews));
        }
    }
    // Interactive analytics: 6 operators x 3 engines x 2 data sets.
    for engine in [S::Hive, S::Shark, S::Impala] {
        for kernel in [
            K::Select,
            K::Project,
            K::OrderBy,
            K::Aggregation,
            K::Join,
            K::Difference,
        ] {
            all.push(query_def(engine, kernel, QueryData::Ecommerce));
            all.push(query_def(engine, kernel, QueryData::TpcdsWeb));
        }
        for q in [K::TpcDsQ3, K::TpcDsQ6, K::TpcDsQ8, K::TpcDsQ10, K::TpcDsQ13] {
            all.push(query_def(engine, q, QueryData::TpcdsWeb));
        }
    }
    // Cloud OLTP services.
    all.push(service_def("H-Read", K::KvRead, RequestMix::read_only()));
    all.push(service_def("H-Write", K::KvWrite, RequestMix::write_only()));
    all.push(service_def("H-Scan", K::KvScan, RequestMix::scan_only()));
    all.push(service_def(
        "H-ReadWrite",
        K::KvRead,
        RequestMix {
            reads: 50,
            writes: 50,
            scans: 0,
        },
    ));
    all
}

/// The paper's 17 representative workloads (Table 2), in the paper's order.
pub fn representatives() -> Vec<WorkloadDef> {
    let catalog = full_catalog();
    const IDS: [&str; 17] = [
        "H-Read",
        "H-Difference",
        "I-SelectQuery",
        "H-TPC-DS-query3",
        "S-WordCount",
        "I-OrderBy",
        "H-Grep",
        "S-TPC-DS-query10",
        "S-Project",
        "S-OrderBy",
        "S-Kmeans",
        "S-TPC-DS-query8",
        "S-PageRank",
        "S-Grep",
        "H-WordCount",
        "H-NaiveBayes",
        "S-Sort",
    ];
    IDS.iter()
        .map(|id| {
            catalog
                .iter()
                .find(|w| w.spec.id == *id)
                // IDS is a static list pinned to the catalog; a miss
                // here is a paper-invariant violation, so abort.
                // bdb-lint: allow(panic-hygiene): static id list.
                .unwrap_or_else(|| panic!("representative {id} missing from catalog"))
                .clone()
        })
        .collect()
}

/// The number of catalog workloads each Table 2 representative stands for
/// (the parenthesized counts in the paper's Table 2). Summing to 77.
pub fn representative_weights() -> [(&'static str, usize); 17] {
    [
        ("H-Read", 10),
        ("H-Difference", 9),
        ("I-SelectQuery", 9),
        ("H-TPC-DS-query3", 9),
        ("S-WordCount", 8),
        ("I-OrderBy", 7),
        ("H-Grep", 7),
        ("S-TPC-DS-query10", 4),
        ("S-Project", 4),
        ("S-OrderBy", 3),
        ("S-Kmeans", 1),
        ("S-TPC-DS-query8", 1),
        ("S-PageRank", 1),
        ("S-Grep", 1),
        ("H-WordCount", 1),
        ("H-NaiveBayes", 1),
        ("S-Sort", 1),
    ]
}

/// The six MPI control implementations added in §4.1/§5.5.
pub fn mpi_workloads() -> Vec<WorkloadDef> {
    use DataSetId as D;
    use KernelKind as K;
    [
        (K::NaiveBayes, D::AmazonReviews),
        (K::KMeans, D::FacebookSocial),
        (K::PageRank, D::GoogleWebGraph),
        (K::Grep, D::Wikipedia),
        (K::WordCount, D::Wikipedia),
        (K::Sort, D::Wikipedia),
    ]
    .into_iter()
    .map(|(kernel, dataset)| offline_def(StackKind::Mpi, kernel, dataset))
    .collect()
}

/// Comparison-suite kernels as workload defs (ids like `"SPECINT:mcf-like"`).
pub fn suite_workloads(suite: Suite) -> Vec<WorkloadDef> {
    suites::kernel_names(suite)
        .iter()
        .enumerate()
        .map(|(i, name)| {
            def(
                format!("{suite}:{name}"),
                StackKind::Native,
                Category::DataAnalysis,
                DataSetId::Wikipedia,
                KernelKind::SuiteKernel,
                Arc::new(move |s, sc| suites::run_suite_kernel(s, sc, suite, i)),
            )
        })
        .collect()
}

/// A named slice of the workload universe — the unit the execution engine
/// and the benchmark binaries iterate over.
///
/// Using `CatalogSet` instead of calling the individual constructors keeps
/// set membership and ordering in one place, so a parallel `profile_all`
/// over a set is guaranteed to enumerate exactly what the serial figures
/// enumerated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CatalogSet {
    /// All 77 BigDataBench-like workloads ([`full_catalog`]).
    Full,
    /// The paper's 17 Table 2 representatives ([`representatives`]).
    Representatives,
    /// The six MPI control implementations ([`mpi_workloads`]).
    Mpi,
    /// One comparison suite's kernels ([`suite_workloads`]).
    Suite(Suite),
}

impl CatalogSet {
    /// Materializes the set's workloads in its canonical order.
    pub fn workloads(self) -> Vec<WorkloadDef> {
        match self {
            CatalogSet::Full => full_catalog(),
            CatalogSet::Representatives => representatives(),
            CatalogSet::Mpi => mpi_workloads(),
            CatalogSet::Suite(suite) => suite_workloads(suite),
        }
    }

    /// Number of workloads without materializing them.
    pub fn len(self) -> usize {
        match self {
            CatalogSet::Full => 77,
            CatalogSet::Representatives => 17,
            CatalogSet::Mpi => 6,
            CatalogSet::Suite(suite) => suites::kernel_names(suite).len(),
        }
    }

    /// Whether the set is empty (never, for the shipped sets).
    pub fn is_empty(self) -> bool {
        self.len() == 0
    }

    /// Every shipped set: full, representatives, MPI, then the six
    /// comparison suites in the paper's order.
    pub fn all() -> Vec<CatalogSet> {
        let mut sets = vec![
            CatalogSet::Full,
            CatalogSet::Representatives,
            CatalogSet::Mpi,
        ];
        sets.extend(ALL_SUITES.map(CatalogSet::Suite));
        sets
    }
}

impl std::fmt::Display for CatalogSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogSet::Full => f.write_str("full-catalog"),
            CatalogSet::Representatives => f.write_str("representatives"),
            CatalogSet::Mpi => f.write_str("mpi"),
            CatalogSet::Suite(suite) => write!(f, "suite:{suite}"),
        }
    }
}

/// All comparison suites in the paper's presentation order.
pub const ALL_SUITES: [Suite; 6] = [
    Suite::SpecInt,
    Suite::SpecFp,
    Suite::Parsec,
    Suite::Hpcc,
    Suite::CloudSuite,
    Suite::TpcC,
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn catalog_has_exactly_77_workloads() {
        assert_eq!(full_catalog().len(), 77);
    }

    #[test]
    fn catalog_ids_are_unique() {
        let ids: Vec<String> = full_catalog().into_iter().map(|w| w.spec.id).collect();
        let set: HashSet<_> = ids.iter().collect();
        assert_eq!(set.len(), ids.len(), "duplicate ids in {ids:?}");
    }

    #[test]
    fn representatives_match_table2() {
        let reps = representatives();
        assert_eq!(reps.len(), 17);
        assert_eq!(reps[0].spec.id, "H-Read");
        assert_eq!(reps[16].spec.id, "S-Sort");
        // Category split per Table 2: 1 service, 8 data analysis, 8 interactive.
        let services = reps
            .iter()
            .filter(|w| w.spec.category == Category::Service)
            .count();
        let analysis = reps
            .iter()
            .filter(|w| w.spec.category == Category::DataAnalysis)
            .count();
        let interactive = reps
            .iter()
            .filter(|w| w.spec.category == Category::InteractiveAnalysis)
            .count();
        assert_eq!((services, analysis, interactive), (1, 8, 8));
    }

    #[test]
    fn representative_weights_sum_to_77() {
        let total: usize = representative_weights().iter().map(|(_, n)| n).sum();
        assert_eq!(total, 77);
        let reps: HashSet<String> = representatives().into_iter().map(|w| w.spec.id).collect();
        for (id, _) in representative_weights() {
            assert!(reps.contains(id), "{id} missing");
        }
    }

    #[test]
    fn mpi_set_matches_paper() {
        let mpi = mpi_workloads();
        assert_eq!(mpi.len(), 6);
        let ids: Vec<&str> = mpi.iter().map(|w| w.spec.id.as_str()).collect();
        assert_eq!(
            ids,
            [
                "M-NaiveBayes",
                "M-Kmeans",
                "M-PageRank",
                "M-Grep",
                "M-WordCount",
                "M-Sort"
            ]
        );
    }

    #[test]
    fn catalog_sets_agree_with_constructors() {
        for set in CatalogSet::all() {
            let workloads = set.workloads();
            assert_eq!(workloads.len(), set.len(), "{set}");
            assert!(!set.is_empty(), "{set}");
        }
        let ids: Vec<String> = CatalogSet::Representatives
            .workloads()
            .into_iter()
            .map(|w| w.spec.id)
            .collect();
        let expected: Vec<String> = representatives().into_iter().map(|w| w.spec.id).collect();
        assert_eq!(ids, expected, "CatalogSet must preserve canonical order");
    }

    #[test]
    fn suite_workloads_enumerate_kernels() {
        assert_eq!(suite_workloads(Suite::Hpcc).len(), 7);
        assert_eq!(suite_workloads(Suite::Parsec).len(), 8);
        assert_eq!(suite_workloads(Suite::TpcC).len(), 1);
        let total: usize = ALL_SUITES.iter().map(|&s| suite_workloads(s).len()).sum();
        assert_eq!(total, 9 + 8 + 8 + 7 + 6 + 1);
    }
}
