//! Cloud-OLTP service workloads on the HBase-like store: the paper's
//! H-Read (the Table 2 representative with the worst L1I MPKI), plus write
//! and scan variants.

use crate::data;
use crate::spec::Scale;
use bdb_datagen::zipf::Zipf;
use bdb_stacks::kvstore::{HbaseStack, KvService, Request};
use bdb_stacks::record::Record;
use bdb_stacks::RunStats;
use bdb_trace::{CodeLayout, ExecCtx, TraceSink};
use rand::{Rng, SeedableRng};

/// Request mix of a service run, in percent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestMix {
    /// Point reads.
    pub reads: u8,
    /// Writes.
    pub writes: u8,
    /// Range scans.
    pub scans: u8,
}

impl RequestMix {
    /// 100 % reads (H-Read).
    pub fn read_only() -> Self {
        Self {
            reads: 100,
            writes: 0,
            scans: 0,
        }
    }

    /// 100 % writes (H-Write).
    pub fn write_only() -> Self {
        Self {
            reads: 0,
            writes: 100,
            scans: 0,
        }
    }

    /// 100 % scans (H-Scan).
    pub fn scan_only() -> Self {
        Self {
            reads: 0,
            writes: 0,
            scans: 100,
        }
    }
}

/// Runs a service workload: loads the résumé table, then serves a
/// Zipf-keyed request stream of the given mix.
pub fn hbase_service(sink: &mut dyn TraceSink, scale: Scale, mix: RequestMix) -> RunStats {
    let rows = data::resume_records(scale);
    let n_requests = scale.n(6_000);
    let mut layout = CodeLayout::new();
    let stack = HbaseStack::register(&mut layout);
    let mut ctx = ExecCtx::new(&layout, sink);
    let root = stack.root_region();
    let stats = ctx.frame(root, |ctx| {
        let mut svc = KvService::new(&stack, ctx);
        svc.bulk_load(rows.clone());
        let keyspace = rows.len().max(1);
        let zipf = Zipf::new(keyspace, 0.9);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x5CA1_AB1E);
        let ops0 = ctx.ops_retired();
        let total = u32::from(mix.reads) + u32::from(mix.writes) + u32::from(mix.scans);
        for i in 0..n_requests {
            let key = rows[zipf.sample(&mut rng)].key.clone();
            let roll = (rng.gen::<f64>() * f64::from(total.max(1))) as u32;
            let request = if roll < u32::from(mix.reads) {
                Request::Get(key)
            } else if roll < u32::from(mix.reads) + u32::from(mix.writes) {
                Request::Put(Record::new(key, vec![b'u'; 224]))
            } else {
                Request::Scan {
                    start: key,
                    limit: 32,
                }
            };
            let _ = svc.serve(ctx, &request);
            let _ = i;
        }
        svc.close_window(ctx, ops0);
        svc.stats().clone()
    });
    ctx.finish();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdb_trace::MixSink;

    #[test]
    fn read_service_serves_real_values() {
        let mut sink = MixSink::new();
        let stats = hbase_service(&mut sink, Scale::tiny(), RequestMix::read_only());
        assert!(
            stats.input_bytes > 0,
            "reads should hit the store: {stats:?}"
        );
        assert!(stats.output_bytes > 0, "responses should carry data");
        // Read service: output tracks what is read (paper: Output = Input).
        let ratio = stats.output_bytes as f64 / stats.input_bytes as f64;
        assert!((0.5..=2.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn write_service_accumulates_wal_bytes() {
        let mut sink = MixSink::new();
        let stats = hbase_service(&mut sink, Scale::tiny(), RequestMix::write_only());
        assert!(
            stats.input_bytes > 0,
            "writes are charged as ingest: {stats:?}"
        );
    }

    #[test]
    fn scan_service_reads_ranges() {
        let mut sink = MixSink::new();
        let stats = hbase_service(&mut sink, Scale::tiny(), RequestMix::scan_only());
        assert!(stats.input_bytes > stats.output_bytes / 4);
        assert!(stats.phases.len() == 1);
    }

    #[test]
    fn service_is_deterministic() {
        let run = || {
            let mut sink = MixSink::new();
            let stats = hbase_service(&mut sink, Scale::tiny(), RequestMix::read_only());
            (stats.input_bytes, stats.output_bytes, sink.mix().total())
        };
        assert_eq!(run(), run());
    }
}
