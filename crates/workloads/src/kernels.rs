//! Traced kernel primitives shared by the workload implementations.
//!
//! These are the *user-code* halves of the workloads — the actual word
//! splitting, hashing, pattern matching, and distance arithmetic — narrated
//! at micro-op granularity. Each workload registers a small, hot code
//! region for its kernel (user functions are tiny compared to framework
//! code, which is the paper's point).

use bdb_trace::{CodeLayout, ExecCtx, RegionId};

/// A registered user-kernel code region (small and hot: 8 KiB).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Kernel {
    /// The kernel's code region.
    pub region: RegionId,
}

impl Kernel {
    /// Registers a kernel region.
    pub fn register(layout: &mut CodeLayout, name: &str) -> Self {
        Self {
            region: layout.region(format!("kernel::{name}"), 8 * 1024),
        }
    }
}

/// Walks the words of `text` (space-separated), narrating the byte scan,
/// and invokes `f` with each word and its simulated address.
pub fn for_each_word(
    ctx: &mut ExecCtx<'_>,
    text: &[u8],
    addr: u64,
    mut f: impl FnMut(&mut ExecCtx<'_>, &[u8], u64),
) {
    // Word-at-a-time scan, like a real SWAR/SSE tokenizer: one load and
    // one separator test per 8-byte chunk, then per-token boundary work.
    let mut start = 0usize;
    let chunks = text.len().div_ceil(8).max(1);
    let top = ctx.loop_start();
    for chunk in 0..chunks {
        let lo = chunk * 8;
        let hi = (lo + 8).min(text.len());
        ctx.read(addr + lo as u64, 8);
        ctx.int_addr(1);
        ctx.int_other(1);
        let has_sep = text[lo..hi].contains(&b' ') || hi == text.len();
        ctx.cond_branch(has_sep);
        if has_sep {
            for i in lo..hi {
                let boundary = text[i] == b' ';
                if boundary || (i + 1 == text.len()) {
                    let end = if boundary { i } else { i + 1 };
                    if end > start {
                        ctx.int_other(1);
                        f(ctx, &text[start..end], addr + start as u64);
                    }
                    start = i + 1;
                }
            }
        }
        ctx.loop_back(top, chunk + 1 < chunks);
    }
}

/// FNV-1a over `bytes`, narrating the loads and arithmetic. Returns the
/// real hash.
pub fn hash_bytes(ctx: &mut ExecCtx<'_>, bytes: &[u8], addr: u64) -> u64 {
    let words = (bytes.len() as u64).div_ceil(8).max(1);
    let top = ctx.loop_start();
    for w in 0..words {
        ctx.read(addr + w * 8, 8);
        ctx.int_addr(1);
        ctx.int_other(1);
        ctx.loop_back(top, w + 1 < words);
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Squared Euclidean distance with traced FP loads and arithmetic.
pub fn distance_sq(ctx: &mut ExecCtx<'_>, a: &[f64], a_addr: u64, b: &[f64], b_addr: u64) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0;
    let top = ctx.loop_start();
    for i in 0..a.len() {
        ctx.read_fp(a_addr + i as u64 * 8, 8);
        ctx.read_fp(b_addr + i as u64 * 8, 8);
        ctx.fp_ops(3); // sub, mul, add
        let d = a[i] - b[i];
        acc += d * d;
        ctx.loop_back(top, i + 1 < a.len());
    }
    acc
}

/// Counts occurrences of `pattern` in `text` (naive search with first-byte
/// filter), narrating the scan. Returns the real count.
pub fn search_pattern(ctx: &mut ExecCtx<'_>, text: &[u8], addr: u64, pattern: &[u8]) -> usize {
    if pattern.is_empty() || text.len() < pattern.len() {
        return 0;
    }
    // A real regex engine runs a DFA over every character: load the input
    // (amortized one load per 8 bytes), look up the transition table, and
    // advance the state. This per-character cost is why grep is
    // CPU-intensive in the paper's Table 2.
    let mut count = 0usize;
    let mut state = 0usize; // chars of the pattern matched so far
    let top = ctx.loop_start();
    for (i, &b) in text.iter().enumerate() {
        if i % 8 == 0 {
            ctx.read(addr + i as u64, 8); // input chunk
        }
        ctx.read(
            addr + 0x8000 + (state as u64 * 256 + u64::from(b)) % 0x4000,
            4,
        ); // DFA row
        ctx.int_addr(1); // transition-table indexing
        ctx.int_other(1); // state advance
                          // Real DFA transition on the literal pattern.
        state = if b == pattern[state] {
            state + 1
        } else if b == pattern[0] {
            1
        } else {
            0
        };
        let matched = state == pattern.len();
        if i % 8 == 7 || matched {
            ctx.cond_branch(matched);
        }
        if matched {
            count += 1;
            state = 0;
        }
        ctx.loop_back(top, i + 1 < text.len());
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdb_trace::{CodeLayout, InstructionMix, MixSink};

    fn with_kernel<R>(f: impl FnOnce(&mut ExecCtx<'_>, u64) -> R) -> (R, InstructionMix) {
        let mut layout = CodeLayout::new();
        let k = Kernel::register(&mut layout, "test");
        let mut sink = MixSink::new();
        let mut ctx = ExecCtx::new(&layout, &mut sink);
        let buf = ctx.heap_alloc(1 << 16, 8);
        let base = buf.base();
        let out = ctx.frame(k.region, |ctx| f(ctx, base));
        (out, sink.mix())
    }

    #[test]
    fn for_each_word_splits_correctly() {
        let (words, mix) = with_kernel(|ctx, addr| {
            let mut out = Vec::new();
            for_each_word(ctx, b"the quick  brown fox", addr, |_, w, _| {
                out.push(String::from_utf8_lossy(w).into_owned());
            });
            out
        });
        assert_eq!(words, vec!["the", "quick", "brown", "fox"]);
        assert!(mix.loads > 0 && mix.branches > 0);
    }

    #[test]
    fn for_each_word_handles_edges() {
        let (words, _) = with_kernel(|ctx, addr| {
            let mut out = Vec::new();
            for_each_word(ctx, b"", addr, |_, w, _| out.push(w.to_vec()));
            for_each_word(ctx, b"  ", addr, |_, w, _| out.push(w.to_vec()));
            for_each_word(ctx, b"one", addr, |_, w, _| out.push(w.to_vec()));
            out
        });
        assert_eq!(words, vec![b"one".to_vec()]);
    }

    #[test]
    fn hash_is_fnv1a() {
        let ((h1, h2), _) = with_kernel(|ctx, addr| {
            (
                hash_bytes(ctx, b"hello", addr),
                hash_bytes(ctx, b"hello", addr),
            )
        });
        assert_eq!(h1, h2);
        let ((h3,), _) = with_kernel(|ctx, addr| (hash_bytes(ctx, b"world", addr),));
        assert_ne!(h1, h3);
    }

    #[test]
    fn distance_is_correct_and_traced() {
        let (d, mix) =
            with_kernel(|ctx, addr| distance_sq(ctx, &[0.0, 3.0], addr, &[4.0, 0.0], addr + 64));
        assert_eq!(d, 25.0);
        assert_eq!(mix.fp, 6);
        assert_eq!(mix.fp_addr, 4);
    }

    #[test]
    fn search_counts_matches() {
        let (n, _) = with_kernel(|ctx, addr| search_pattern(ctx, b"abcabcababc", addr, b"abc"));
        assert_eq!(n, 3);
        let (zero, _) = with_kernel(|ctx, addr| search_pattern(ctx, b"xyz", addr, b"abc"));
        assert_eq!(zero, 0);
        let (empty, _) = with_kernel(|ctx, addr| search_pattern(ctx, b"ab", addr, b"abc"));
        assert_eq!(empty, 0);
    }
}
