//! The workload catalog — this reproduction's BigDataBench.
//!
//! Everything the paper runs is here:
//!
//! * [`offline`] — the offline-analytics kernels (WordCount, Sort, Grep,
//!   K-means, PageRank, Naive Bayes, Inverted Index, Connected Components)
//!   implemented on the Hadoop-like, Spark-like, and MPI stacks,
//! * [`queries`] — the interactive-analytics workloads: relational
//!   operators and TPC-DS-like queries on the Hive/Shark/Impala backends,
//! * [`service`] — the cloud-OLTP workloads on the HBase-like service,
//! * [`suites`] — the comparison points: SPECINT-, SPECFP-, PARSEC-,
//!   HPCC-, CloudSuite-, and TPC-C-class kernels,
//! * [`catalog`] — the assembled 77-workload catalog, the paper's 17
//!   representatives (Table 2), and the 6 MPI control workloads.
//!
//! Every workload is a [`WorkloadDef`]: a described, deterministic runner
//! that executes the real algorithm through its software stack onto any
//! [`bdb_trace::TraceSink`] and returns the run's [`RunStats`].
//!
//! # Examples
//!
//! ```
//! use bdb_workloads::{catalog, Scale};
//! use bdb_trace::MixSink;
//!
//! let reps = catalog::representatives();
//! assert_eq!(reps.len(), 17);
//! let h_wordcount = reps.iter().find(|w| w.spec.id == "H-WordCount").unwrap();
//! let mut sink = MixSink::new();
//! let stats = h_wordcount.run(&mut sink, Scale::tiny());
//! assert!(stats.input_bytes > 0);
//! ```

pub mod catalog;
pub mod data;
pub mod kernels;
pub mod offline;
pub mod queries;
pub mod service;
pub mod spec;
pub mod suites;

pub use bdb_stacks::RunStats;
pub use catalog::CatalogSet;
pub use spec::{Category, KernelKind, Scale, WorkloadDef, WorkloadSpec};
pub use suites::Suite;
