//! Offline-analytics workloads: WordCount, Sort, Grep, K-means, PageRank,
//! Naive Bayes, Inverted Index, and Connected Components on the
//! Hadoop-like, Spark-like, and MPI stacks.
//!
//! Each function executes the *real* algorithm (counts are correct, sorts
//! are ordered, PageRank converges) through the corresponding stack onto
//! the given sink and returns the run's resource accounting.

use crate::data;
use crate::kernels::{distance_sq, for_each_word, hash_bytes, search_pattern, Kernel};
use crate::spec::Scale;
use bdb_datagen::DataSetId;
use bdb_stacks::dataflow::{Dataflow, DataflowConfig, SparkStack};
use bdb_stacks::mapreduce::{Emitter, HadoopStack, MapReduce, MapReduceConfig, Mapper, Reducer};
use bdb_stacks::mpi::{MpiStack, MpiWorld};
use bdb_stacks::record::Record;
use bdb_stacks::sort::traced_sort_by_key;
use bdb_stacks::RunStats;
use bdb_trace::{CodeLayout, ExecCtx, TraceSink};

const MPI_RANKS: usize = 4;

fn mr_config(use_combiner: bool) -> MapReduceConfig {
    MapReduceConfig {
        reduces: 4,
        use_combiner,
        ..Default::default()
    }
}

// ---------------------------------------------------------------------------
// Shared mapper/reducer building blocks
// ---------------------------------------------------------------------------

/// Sums big-endian u64 counts per key.
struct SumReducer {
    kernel: Kernel,
}

impl Reducer for SumReducer {
    fn reduce(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        key: &[u8],
        values: &[Record],
        addr: u64,
        out: &mut Emitter,
    ) {
        let sum = ctx.frame(self.kernel.region, |ctx| {
            let mut sum = 0u64;
            let top = ctx.loop_start();
            for (i, v) in values.iter().enumerate() {
                ctx.read(addr + i as u64 * 8, 8);
                ctx.int_other(1);
                sum += u64::from_be_bytes(v.value[..8].try_into().unwrap_or([0; 8]));
                ctx.loop_back(top, i + 1 < values.len());
            }
            sum
        });
        out.emit(Record::new(key.to_vec(), sum.to_be_bytes().to_vec()));
    }
}

/// Emits every grouped value unchanged (identity reduce).
struct IdentityReducer;

impl Reducer for IdentityReducer {
    fn reduce(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        key: &[u8],
        values: &[Record],
        addr: u64,
        out: &mut Emitter,
    ) {
        ctx.read(addr, 8);
        for v in values {
            out.emit(Record::new(key.to_vec(), v.value.clone()));
        }
    }
}

fn f64s_to_bytes(v: &[f64]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

fn bytes_to_f64s(b: &[u8]) -> Vec<f64> {
    b.chunks_exact(8).map(le_f64).collect()
}

// Record keys and values in this module are fixed-width by construction
// (the emitters in the same workload write them), so a short slice is an
// internal bug worth an immediate abort, not a recoverable error.

/// Decodes the leading 4 bytes of a record key/value as big-endian `u32`.
fn be_u32(b: &[u8]) -> u32 {
    // bdb-lint: allow(panic-hygiene): fixed-width record by construction.
    u32::from_be_bytes(b[..4].try_into().expect("4-byte field"))
}

/// Decodes the leading 4 bytes of a record value as little-endian `u32`.
fn le_u32(b: &[u8]) -> u32 {
    // bdb-lint: allow(panic-hygiene): fixed-width record by construction.
    u32::from_le_bytes(b[..4].try_into().expect("4-byte field"))
}

/// Decodes the leading 8 bytes of a record value as little-endian `f64`.
fn le_f64(b: &[u8]) -> f64 {
    // bdb-lint: allow(panic-hygiene): fixed-width record by construction.
    f64::from_le_bytes(b[..8].try_into().expect("8-byte field"))
}

// ---------------------------------------------------------------------------
// Hadoop (MapReduce) workloads
// ---------------------------------------------------------------------------

/// Hadoop WordCount over a text data set.
pub fn hadoop_wordcount(sink: &mut dyn TraceSink, scale: Scale, dataset: DataSetId) -> RunStats {
    let input = data::text_records(dataset, scale);
    let mut layout = CodeLayout::new();
    let stack = HadoopStack::register(&mut layout);
    let map_k = Kernel::register(&mut layout, "wc_map");
    let red_k = Kernel::register(&mut layout, "wc_reduce");
    let mut ctx = ExecCtx::new(&layout, sink);
    let engine = MapReduce::new(&stack, mr_config(true));

    struct WcMapper {
        kernel: Kernel,
    }
    impl Mapper for WcMapper {
        fn map(&mut self, ctx: &mut ExecCtx<'_>, record: &Record, addr: u64, out: &mut Emitter) {
            ctx.frame(self.kernel.region, |ctx| {
                for_each_word(ctx, &record.value, addr, |ctx, word, waddr| {
                    let _ = hash_bytes(ctx, word, waddr);
                    out.emit(Record::new(word.to_vec(), 1u64.to_be_bytes().to_vec()));
                });
            });
        }
    }
    let mut mapper = WcMapper { kernel: map_k };
    let mut combiner = SumReducer { kernel: red_k };
    let mut reducer = SumReducer { kernel: red_k };
    let out = engine.run(
        &mut ctx,
        &input,
        &mut mapper,
        Some(&mut combiner),
        &mut reducer,
    );
    ctx.finish();
    out.stats
}

/// Hadoop Sort of fixed-size key-value records.
pub fn hadoop_sort(sink: &mut dyn TraceSink, scale: Scale, dataset: DataSetId) -> RunStats {
    let input = data::kv_records(dataset, scale);
    let mut layout = CodeLayout::new();
    let stack = HadoopStack::register(&mut layout);
    let map_k = Kernel::register(&mut layout, "sort_map");
    let mut ctx = ExecCtx::new(&layout, sink);
    let engine = MapReduce::new(&stack, mr_config(false));

    struct IdMapper {
        kernel: Kernel,
    }
    impl Mapper for IdMapper {
        fn map(&mut self, ctx: &mut ExecCtx<'_>, record: &Record, addr: u64, out: &mut Emitter) {
            ctx.frame(self.kernel.region, |ctx| {
                ctx.read(addr, 8);
                ctx.int_other(1);
                out.emit(record.clone());
            });
        }
    }
    let mut mapper = IdMapper { kernel: map_k };
    let mut reducer = IdentityReducer;
    let out = engine.run(&mut ctx, &input, &mut mapper, None, &mut reducer);
    ctx.finish();
    out.stats
}

/// Hadoop Grep: emit documents containing a rare pattern.
pub fn hadoop_grep(sink: &mut dyn TraceSink, scale: Scale, dataset: DataSetId) -> RunStats {
    let input = data::text_records(dataset, scale);
    let pattern = data::grep_pattern(dataset);
    let mut layout = CodeLayout::new();
    let stack = HadoopStack::register(&mut layout);
    let map_k = Kernel::register(&mut layout, "grep_map");
    let mut ctx = ExecCtx::new(&layout, sink);
    let engine = MapReduce::new(&stack, mr_config(false));

    struct GrepMapper {
        kernel: Kernel,
        pattern: Vec<u8>,
    }
    impl Mapper for GrepMapper {
        fn map(&mut self, ctx: &mut ExecCtx<'_>, record: &Record, addr: u64, out: &mut Emitter) {
            let hits = ctx.frame(self.kernel.region, |ctx| {
                search_pattern(ctx, &record.value, addr, &self.pattern)
            });
            if hits > 0 {
                out.emit(Record::new(
                    record.key.clone(),
                    (hits as u64).to_be_bytes().to_vec(),
                ));
            }
        }
    }
    let mut mapper = GrepMapper {
        kernel: map_k,
        pattern,
    };
    let mut reducer = IdentityReducer;
    let out = engine.run(&mut ctx, &input, &mut mapper, None, &mut reducer);
    ctx.finish();
    out.stats
}

/// Hadoop Naive Bayes training: class-conditional word counts.
pub fn hadoop_bayes(sink: &mut dyn TraceSink, scale: Scale) -> RunStats {
    let (docs, labels, _) = data::labelled_docs(scale);
    let input: Vec<Record> = docs
        .iter()
        .zip(&labels)
        .map(|(doc, &label)| {
            let bytes: Vec<u8> = doc.iter().flat_map(|w| w.to_le_bytes()).collect();
            Record::new(vec![label as u8], bytes)
        })
        .collect();
    let mut layout = CodeLayout::new();
    let stack = HadoopStack::register(&mut layout);
    let map_k = Kernel::register(&mut layout, "bayes_map");
    let red_k = Kernel::register(&mut layout, "bayes_reduce");
    let mut ctx = ExecCtx::new(&layout, sink);
    let engine = MapReduce::new(&stack, mr_config(true));

    struct BayesMapper {
        kernel: Kernel,
    }
    impl Mapper for BayesMapper {
        fn map(&mut self, ctx: &mut ExecCtx<'_>, record: &Record, addr: u64, out: &mut Emitter) {
            let class = record.key[0];
            ctx.frame(self.kernel.region, |ctx| {
                let top = ctx.loop_start();
                let n = record.value.len() / 4;
                for (i, chunk) in record.value.chunks_exact(4).enumerate() {
                    ctx.read(addr + i as u64 * 4, 4);
                    ctx.int_other(2);
                    let word = le_u32(chunk);
                    let mut key = vec![class];
                    key.extend_from_slice(&word.to_be_bytes());
                    out.emit(Record::new(key, 1u64.to_be_bytes().to_vec()));
                    ctx.loop_back(top, i + 1 < n);
                }
            });
        }
    }
    let mut mapper = BayesMapper { kernel: map_k };
    let mut combiner = SumReducer { kernel: red_k };
    let mut reducer = SumReducer { kernel: red_k };
    let out = engine.run(
        &mut ctx,
        &input,
        &mut mapper,
        Some(&mut combiner),
        &mut reducer,
    );
    ctx.finish();
    out.stats
}

/// Hadoop Inverted Index: word → posting list of document ids.
pub fn hadoop_index(sink: &mut dyn TraceSink, scale: Scale, dataset: DataSetId) -> RunStats {
    let input = data::text_records(dataset, scale);
    let mut layout = CodeLayout::new();
    let stack = HadoopStack::register(&mut layout);
    let map_k = Kernel::register(&mut layout, "index_map");
    let red_k = Kernel::register(&mut layout, "index_reduce");
    let mut ctx = ExecCtx::new(&layout, sink);
    let engine = MapReduce::new(&stack, mr_config(false));

    struct IndexMapper {
        kernel: Kernel,
    }
    impl Mapper for IndexMapper {
        fn map(&mut self, ctx: &mut ExecCtx<'_>, record: &Record, addr: u64, out: &mut Emitter) {
            ctx.frame(self.kernel.region, |ctx| {
                for_each_word(ctx, &record.value, addr, |ctx, word, waddr| {
                    let _ = hash_bytes(ctx, word, waddr);
                    out.emit(Record::new(word.to_vec(), record.key.clone()));
                });
            });
        }
    }
    struct ConcatReducer {
        kernel: Kernel,
    }
    impl Reducer for ConcatReducer {
        fn reduce(
            &mut self,
            ctx: &mut ExecCtx<'_>,
            key: &[u8],
            values: &[Record],
            addr: u64,
            out: &mut Emitter,
        ) {
            let posting = ctx.frame(self.kernel.region, |ctx| {
                let mut posting = Vec::new();
                let top = ctx.loop_start();
                for (i, v) in values.iter().enumerate() {
                    ctx.read(addr + i as u64 * 8, 8);
                    ctx.store(addr + i as u64 * 8 + 8, 8);
                    posting.extend_from_slice(&v.value);
                    posting.push(b';');
                    ctx.loop_back(top, i + 1 < values.len());
                }
                posting
            });
            out.emit(Record::new(key.to_vec(), posting));
        }
    }
    let mut mapper = IndexMapper { kernel: map_k };
    let mut reducer = ConcatReducer { kernel: red_k };
    let out = engine.run(&mut ctx, &input, &mut mapper, None, &mut reducer);
    ctx.finish();
    out.stats
}

/// Hadoop K-means: `iterations` Lloyd steps, one MapReduce job each.
pub fn hadoop_kmeans(sink: &mut dyn TraceSink, scale: Scale, iterations: usize) -> RunStats {
    let (points, dim) = data::points(scale);
    let k = 8usize;
    let input: Vec<Record> = points
        .iter()
        .enumerate()
        .map(|(i, p)| Record::new((i as u32).to_be_bytes().to_vec(), f64s_to_bytes(p)))
        .collect();
    let mut layout = CodeLayout::new();
    let stack = HadoopStack::register(&mut layout);
    let map_k = Kernel::register(&mut layout, "kmeans_assign");
    let red_k = Kernel::register(&mut layout, "kmeans_update");
    let mut ctx = ExecCtx::new(&layout, sink);
    let engine = MapReduce::new(&stack, mr_config(false));

    struct AssignMapper {
        kernel: Kernel,
        centers: Vec<Vec<f64>>,
    }
    impl Mapper for AssignMapper {
        fn map(&mut self, ctx: &mut ExecCtx<'_>, record: &Record, addr: u64, out: &mut Emitter) {
            let point = bytes_to_f64s(&record.value);
            let best = ctx.frame(self.kernel.region, |ctx| {
                let mut best = (0usize, f64::MAX);
                let top = ctx.loop_start();
                for (c, center) in self.centers.iter().enumerate() {
                    let d = distance_sq(ctx, &point, addr, center, addr + 4096);
                    let better = d < best.1;
                    ctx.cond_branch(better);
                    if better {
                        best = (c, d);
                    }
                    ctx.loop_back(top, c + 1 < self.centers.len());
                }
                best.0
            });
            out.emit(Record::new(vec![best as u8], record.value.clone()));
        }
    }
    struct MeanReducer {
        kernel: Kernel,
        dim: usize,
    }
    impl Reducer for MeanReducer {
        fn reduce(
            &mut self,
            ctx: &mut ExecCtx<'_>,
            key: &[u8],
            values: &[Record],
            addr: u64,
            out: &mut Emitter,
        ) {
            let mean = ctx.frame(self.kernel.region, |ctx| {
                let mut acc = vec![0.0f64; self.dim];
                let top = ctx.loop_start();
                for (i, v) in values.iter().enumerate() {
                    let p = bytes_to_f64s(&v.value);
                    for (d, x) in p.iter().enumerate().take(self.dim) {
                        ctx.read_fp(addr + (i * self.dim + d) as u64 * 8, 8);
                        ctx.fp_ops(1);
                        acc[d] += x;
                    }
                    ctx.loop_back(top, i + 1 < values.len());
                }
                let n = values.len().max(1) as f64;
                ctx.fp_ops(self.dim as u32);
                acc.iter_mut().for_each(|x| *x /= n);
                acc
            });
            out.emit(Record::new(key.to_vec(), f64s_to_bytes(&mean)));
        }
    }

    let mut centers: Vec<Vec<f64>> = points.iter().take(k).cloned().collect();
    let mut stats = RunStats::default();
    for _ in 0..iterations.max(1) {
        let mut mapper = AssignMapper {
            kernel: map_k,
            centers: centers.clone(),
        };
        let mut reducer = MeanReducer { kernel: red_k, dim };
        let out = engine.run(&mut ctx, &input, &mut mapper, None, &mut reducer);
        for rec in &out.records {
            let c = rec.key[0] as usize;
            if c < centers.len() {
                centers[c] = bytes_to_f64s(&rec.value);
            }
        }
        stats.merge(out.stats);
    }
    ctx.finish();
    stats
}

/// Hadoop PageRank: `iterations` power-method steps, one job each.
pub fn hadoop_pagerank(
    sink: &mut dyn TraceSink,
    scale: Scale,
    dataset: DataSetId,
    iterations: usize,
) -> RunStats {
    let graph = data::graph(dataset, scale);
    let n = graph.vertex_count();
    let input: Vec<Record> = (0..n as u32)
        .map(|v| {
            let dsts: Vec<u8> = graph
                .neighbors(v)
                .iter()
                .flat_map(|d| d.to_be_bytes())
                .collect();
            Record::new(v.to_be_bytes().to_vec(), dsts)
        })
        .collect();
    let mut layout = CodeLayout::new();
    let stack = HadoopStack::register(&mut layout);
    let map_k = Kernel::register(&mut layout, "pr_contrib");
    let red_k = Kernel::register(&mut layout, "pr_apply");
    let mut ctx = ExecCtx::new(&layout, sink);
    let engine = MapReduce::new(&stack, mr_config(false));

    struct ContribMapper {
        kernel: Kernel,
        ranks: Vec<f64>,
    }
    impl Mapper for ContribMapper {
        fn map(&mut self, ctx: &mut ExecCtx<'_>, record: &Record, addr: u64, out: &mut Emitter) {
            let src = be_u32(&record.key) as usize;
            let degree = record.value.len() / 4;
            if degree == 0 {
                return;
            }
            let contrib = self.ranks[src] / degree as f64;
            ctx.frame(self.kernel.region, |ctx| {
                ctx.fp_ops(1);
                let top = ctx.loop_start();
                for (i, chunk) in record.value.chunks_exact(4).enumerate() {
                    ctx.read(addr + i as u64 * 4, 4);
                    ctx.fp_ops(1);
                    out.emit(Record::new(chunk.to_vec(), contrib.to_le_bytes().to_vec()));
                    ctx.loop_back(top, i + 1 < degree);
                }
            });
        }
    }
    struct RankReducer {
        kernel: Kernel,
    }
    impl Reducer for RankReducer {
        fn reduce(
            &mut self,
            ctx: &mut ExecCtx<'_>,
            key: &[u8],
            values: &[Record],
            addr: u64,
            out: &mut Emitter,
        ) {
            let rank = ctx.frame(self.kernel.region, |ctx| {
                let mut acc = 0.0f64;
                let top = ctx.loop_start();
                for (i, v) in values.iter().enumerate() {
                    ctx.read_fp(addr + i as u64 * 8, 8);
                    ctx.fp_ops(1);
                    acc += le_f64(&v.value);
                    ctx.loop_back(top, i + 1 < values.len());
                }
                ctx.fp_ops(2);
                0.15 + 0.85 * acc
            });
            out.emit(Record::new(key.to_vec(), rank.to_le_bytes().to_vec()));
        }
    }

    let mut ranks = vec![1.0f64; n];
    let mut stats = RunStats::default();
    for _ in 0..iterations.max(1) {
        let mut mapper = ContribMapper {
            kernel: map_k,
            ranks: ranks.clone(),
        };
        let mut reducer = RankReducer { kernel: red_k };
        let out = engine.run(&mut ctx, &input, &mut mapper, None, &mut reducer);
        for rec in &out.records {
            let v = be_u32(&rec.key) as usize;
            ranks[v] = le_f64(&rec.value);
        }
        stats.merge(out.stats);
    }
    ctx.finish();
    stats
}

/// Hadoop Connected Components via iterative label propagation.
pub fn hadoop_cc(sink: &mut dyn TraceSink, scale: Scale, iterations: usize) -> RunStats {
    let graph = data::graph(DataSetId::FacebookSocial, scale);
    let n = graph.vertex_count();
    let input: Vec<Record> = (0..n as u32)
        .map(|v| {
            let dsts: Vec<u8> = graph
                .neighbors(v)
                .iter()
                .flat_map(|d| d.to_be_bytes())
                .collect();
            Record::new(v.to_be_bytes().to_vec(), dsts)
        })
        .collect();
    let mut layout = CodeLayout::new();
    let stack = HadoopStack::register(&mut layout);
    let map_k = Kernel::register(&mut layout, "cc_propagate");
    let red_k = Kernel::register(&mut layout, "cc_min");
    let mut ctx = ExecCtx::new(&layout, sink);
    let engine = MapReduce::new(&stack, mr_config(false));

    struct PropagateMapper {
        kernel: Kernel,
        labels: Vec<u32>,
    }
    impl Mapper for PropagateMapper {
        fn map(&mut self, ctx: &mut ExecCtx<'_>, record: &Record, addr: u64, out: &mut Emitter) {
            let src = be_u32(&record.key) as usize;
            let label = self.labels[src];
            ctx.frame(self.kernel.region, |ctx| {
                // Keep own label in play, and push it to every neighbour.
                out.emit(Record::new(
                    record.key.clone(),
                    label.to_be_bytes().to_vec(),
                ));
                let top = ctx.loop_start();
                let degree = (record.value.len() / 4).max(1);
                for (i, chunk) in record.value.chunks_exact(4).enumerate() {
                    ctx.read(addr + i as u64 * 4, 4);
                    ctx.int_other(1);
                    out.emit(Record::new(chunk.to_vec(), label.to_be_bytes().to_vec()));
                    ctx.loop_back(top, i + 1 < degree);
                }
            });
        }
    }
    struct MinReducer {
        kernel: Kernel,
    }
    impl Reducer for MinReducer {
        fn reduce(
            &mut self,
            ctx: &mut ExecCtx<'_>,
            key: &[u8],
            values: &[Record],
            addr: u64,
            out: &mut Emitter,
        ) {
            let min = ctx.frame(self.kernel.region, |ctx| {
                let mut min = u32::MAX;
                let top = ctx.loop_start();
                for (i, v) in values.iter().enumerate() {
                    ctx.read(addr + i as u64 * 4, 4);
                    let x = be_u32(&v.value);
                    let smaller = x < min;
                    ctx.cond_branch(smaller);
                    if smaller {
                        min = x;
                    }
                    ctx.loop_back(top, i + 1 < values.len());
                }
                min
            });
            out.emit(Record::new(key.to_vec(), min.to_be_bytes().to_vec()));
        }
    }

    let mut labels: Vec<u32> = (0..n as u32).collect();
    let mut stats = RunStats::default();
    for _ in 0..iterations.max(1) {
        let mut mapper = PropagateMapper {
            kernel: map_k,
            labels: labels.clone(),
        };
        let mut reducer = MinReducer { kernel: red_k };
        let out = engine.run(&mut ctx, &input, &mut mapper, None, &mut reducer);
        for rec in &out.records {
            let v = be_u32(&rec.key) as usize;
            labels[v] = be_u32(&rec.value);
        }
        stats.merge(out.stats);
    }
    ctx.finish();
    stats
}

// ---------------------------------------------------------------------------
// Spark (dataflow) workloads
// ---------------------------------------------------------------------------

fn spark_env<R>(
    sink: &mut dyn TraceSink,
    kernel_names: &[&str],
    f: impl FnOnce(&mut Dataflow<'_>, &mut ExecCtx<'_>, &[Kernel]) -> R,
) -> R {
    let mut layout = CodeLayout::new();
    let stack = SparkStack::register(&mut layout);
    let kernels: Vec<Kernel> = kernel_names
        .iter()
        .map(|n| Kernel::register(&mut layout, n))
        .collect();
    let mut ctx = ExecCtx::new(&layout, sink);
    let root = stack.root_region();
    let out = ctx.frame(root, |ctx| {
        let mut df = Dataflow::new(&stack, DataflowConfig::default(), ctx);
        f(&mut df, ctx, &kernels)
    });
    ctx.finish();
    out
}

fn sum_merge(ctx: &mut ExecCtx<'_>, a: &Record, b: &Record) -> Record {
    ctx.int_other(2);
    let x = u64::from_be_bytes(a.value[..8].try_into().unwrap_or([0; 8]));
    let y = u64::from_be_bytes(b.value[..8].try_into().unwrap_or([0; 8]));
    Record::new(a.key.clone(), (x + y).to_be_bytes().to_vec())
}

/// Spark WordCount.
pub fn spark_wordcount(sink: &mut dyn TraceSink, scale: Scale, dataset: DataSetId) -> RunStats {
    let input = data::text_records(dataset, scale);
    spark_env(sink, &["wc_split"], |df, ctx, kernels| {
        let split = kernels[0];
        let ds = df.read_input(ctx, &input);
        let pairs = df.narrow(ctx, "split", &ds, &mut |ctx, rec, addr, out| {
            ctx.frame(split.region, |ctx| {
                for_each_word(ctx, &rec.value, addr, |ctx, word, waddr| {
                    let _ = hash_bytes(ctx, word, waddr);
                    out.emit(Record::new(word.to_vec(), 1u64.to_be_bytes().to_vec()));
                });
            });
        });
        let counts = df.reduce_by_key(ctx, &pairs, &mut sum_merge);
        df.save(ctx, &counts);
        df.stats().clone()
    })
}

/// Spark Sort.
pub fn spark_sort(sink: &mut dyn TraceSink, scale: Scale, dataset: DataSetId) -> RunStats {
    let input = data::kv_records(dataset, scale);
    spark_env(sink, &[], |df, ctx, _| {
        let ds = df.read_input(ctx, &input);
        let sorted = df.sort_by_key(ctx, &ds);
        df.save(ctx, &sorted);
        df.stats().clone()
    })
}

/// Spark Grep.
pub fn spark_grep(sink: &mut dyn TraceSink, scale: Scale, dataset: DataSetId) -> RunStats {
    let input = data::text_records(dataset, scale);
    let pattern = data::grep_pattern(dataset);
    spark_env(sink, &["grep_match"], |df, ctx, kernels| {
        let k = kernels[0];
        let ds = df.read_input(ctx, &input);
        let matched = df.narrow(ctx, "grep", &ds, &mut |ctx, rec, addr, out| {
            let hits = ctx.frame(k.region, |ctx| {
                search_pattern(ctx, &rec.value, addr, &pattern)
            });
            if hits > 0 {
                out.emit(rec.clone());
            }
        });
        df.save(ctx, &matched);
        df.stats().clone()
    })
}

/// Spark Naive Bayes training.
pub fn spark_bayes(sink: &mut dyn TraceSink, scale: Scale) -> RunStats {
    let (docs, labels, _) = data::labelled_docs(scale);
    let input: Vec<Record> = docs
        .iter()
        .zip(&labels)
        .map(|(doc, &label)| {
            let bytes: Vec<u8> = doc.iter().flat_map(|w| w.to_le_bytes()).collect();
            Record::new(vec![label as u8], bytes)
        })
        .collect();
    spark_env(sink, &["bayes_emit"], |df, ctx, kernels| {
        let k = kernels[0];
        let ds = df.read_input(ctx, &input);
        let pairs = df.narrow(ctx, "emit", &ds, &mut |ctx, rec, addr, out| {
            let class = rec.key[0];
            ctx.frame(k.region, |ctx| {
                let top = ctx.loop_start();
                let n = (rec.value.len() / 4).max(1);
                for (i, chunk) in rec.value.chunks_exact(4).enumerate() {
                    ctx.read(addr + i as u64 * 4, 4);
                    ctx.int_other(2);
                    let mut key = vec![class];
                    key.extend_from_slice(chunk);
                    out.emit(Record::new(key, 1u64.to_be_bytes().to_vec()));
                    ctx.loop_back(top, i + 1 < n);
                }
            });
        });
        let counts = df.reduce_by_key(ctx, &pairs, &mut sum_merge);
        df.save(ctx, &counts);
        df.stats().clone()
    })
}

/// Spark Inverted Index.
pub fn spark_index(sink: &mut dyn TraceSink, scale: Scale, dataset: DataSetId) -> RunStats {
    let input = data::text_records(dataset, scale);
    spark_env(sink, &["index_split"], |df, ctx, kernels| {
        let k = kernels[0];
        let ds = df.read_input(ctx, &input);
        let pairs = df.narrow(ctx, "split", &ds, &mut |ctx, rec, addr, out| {
            ctx.frame(k.region, |ctx| {
                for_each_word(ctx, &rec.value, addr, |ctx, word, waddr| {
                    let _ = hash_bytes(ctx, word, waddr);
                    out.emit(Record::new(word.to_vec(), rec.key.clone()));
                });
            });
        });
        let grouped = df.group_by_key(ctx, &pairs);
        df.save(ctx, &grouped);
        df.stats().clone()
    })
}

/// Spark K-means over a cached point dataset.
pub fn spark_kmeans(sink: &mut dyn TraceSink, scale: Scale, iterations: usize) -> RunStats {
    let (points, dim) = data::points(scale);
    let k = 8usize;
    let input: Vec<Record> = points
        .iter()
        .enumerate()
        .map(|(i, p)| Record::new((i as u32).to_be_bytes().to_vec(), f64s_to_bytes(p)))
        .collect();
    spark_env(sink, &["kmeans_assign"], |df, ctx, kernels| {
        let assign_k = kernels[0];
        let mut ds = df.read_input(ctx, &input);
        df.cache(ctx, &mut ds);
        let mut centers: Vec<Vec<f64>> = points.iter().take(k).cloned().collect();
        for iter in 0..iterations.max(1) {
            let ops0 = ctx.ops_retired();
            let centers_snapshot = centers.clone();
            let assigned = df.narrow(ctx, "assign", &ds, &mut |ctx, rec, addr, out| {
                let point = bytes_to_f64s(&rec.value);
                let best = ctx.frame(assign_k.region, |ctx| {
                    let mut best = (0usize, f64::MAX);
                    let top = ctx.loop_start();
                    for (c, center) in centers_snapshot.iter().enumerate() {
                        let d = distance_sq(ctx, &point, addr, center, addr + 4096);
                        let better = d < best.1;
                        ctx.cond_branch(better);
                        if better {
                            best = (c, d);
                        }
                        ctx.loop_back(top, c + 1 < centers_snapshot.len());
                    }
                    best.0
                });
                // value = point ++ count(1.0) so sums fold in one pass.
                let mut v = rec.value.clone();
                v.extend_from_slice(&1.0f64.to_le_bytes());
                out.emit(Record::new(vec![best as u8], v));
            });
            let sums = df.reduce_by_key(ctx, &assigned, &mut |ctx, a, b| {
                ctx.fp_ops(dim as u32 + 1);
                let xa = bytes_to_f64s(&a.value);
                let xb = bytes_to_f64s(&b.value);
                let sum: Vec<f64> = xa.iter().zip(&xb).map(|(p, q)| p + q).collect();
                Record::new(a.key.clone(), f64s_to_bytes(&sum))
            });
            for part in &sums.parts {
                for rec in &part.records {
                    let c = rec.key[0] as usize;
                    let v = bytes_to_f64s(&rec.value);
                    let count = v[dim].max(1.0);
                    if c < centers.len() {
                        centers[c] = v[..dim].iter().map(|x| x / count).collect();
                    }
                }
            }
            df.note_compute_phase(ctx, &format!("kmeans_iter{iter}"), ops0);
        }
        // Final model is tiny.
        let model: Vec<Record> = centers
            .iter()
            .enumerate()
            .map(|(c, v)| Record::new(vec![c as u8], f64s_to_bytes(v)))
            .collect();
        let out_ds = df.parallelize(ctx, &model);
        df.save(ctx, &out_ds);
        df.stats().clone()
    })
}

/// Spark PageRank over a cached adjacency dataset.
pub fn spark_pagerank(
    sink: &mut dyn TraceSink,
    scale: Scale,
    dataset: DataSetId,
    iterations: usize,
) -> RunStats {
    let graph = data::graph(dataset, scale);
    let n = graph.vertex_count();
    let input: Vec<Record> = (0..n as u32)
        .map(|v| {
            let dsts: Vec<u8> = graph
                .neighbors(v)
                .iter()
                .flat_map(|d| d.to_be_bytes())
                .collect();
            Record::new(v.to_be_bytes().to_vec(), dsts)
        })
        .collect();
    spark_env(sink, &["pr_contrib"], |df, ctx, kernels| {
        let k = kernels[0];
        let mut links = df.read_input(ctx, &input);
        df.cache(ctx, &mut links);
        let mut ranks = vec![1.0f64; n];
        for iter in 0..iterations.max(1) {
            let ops0 = ctx.ops_retired();
            let ranks_snapshot = ranks.clone();
            let contribs = df.narrow(ctx, "contrib", &links, &mut |ctx, rec, addr, out| {
                let src = be_u32(&rec.key) as usize;
                let degree = rec.value.len() / 4;
                if degree == 0 {
                    return;
                }
                let contrib = ranks_snapshot[src] / degree as f64;
                ctx.frame(k.region, |ctx| {
                    ctx.fp_ops(1);
                    let top = ctx.loop_start();
                    for (i, chunk) in rec.value.chunks_exact(4).enumerate() {
                        ctx.read(addr + i as u64 * 4, 4);
                        ctx.fp_ops(1);
                        out.emit(Record::new(chunk.to_vec(), contrib.to_le_bytes().to_vec()));
                        ctx.loop_back(top, i + 1 < degree);
                    }
                });
            });
            let sums = df.reduce_by_key(ctx, &contribs, &mut |ctx, a, b| {
                ctx.fp_ops(1);
                let x = le_f64(&a.value);
                let y = le_f64(&b.value);
                Record::new(a.key.clone(), (x + y).to_le_bytes().to_vec())
            });
            for part in &sums.parts {
                for rec in &part.records {
                    let v = be_u32(&rec.key) as usize;
                    let sum = le_f64(&rec.value);
                    ranks[v] = 0.15 + 0.85 * sum;
                }
            }
            df.note_compute_phase(ctx, &format!("pr_iter{iter}"), ops0);
        }
        let out: Vec<Record> = ranks
            .iter()
            .enumerate()
            .map(|(v, r)| Record::new((v as u32).to_be_bytes().to_vec(), r.to_le_bytes().to_vec()))
            .collect();
        let out_ds = df.parallelize(ctx, &out);
        df.save(ctx, &out_ds);
        df.stats().clone()
    })
}

/// Spark Connected Components via label propagation.
pub fn spark_cc(sink: &mut dyn TraceSink, scale: Scale, iterations: usize) -> RunStats {
    let graph = data::graph(DataSetId::FacebookSocial, scale);
    let n = graph.vertex_count();
    let input: Vec<Record> = (0..n as u32)
        .map(|v| {
            let dsts: Vec<u8> = graph
                .neighbors(v)
                .iter()
                .flat_map(|d| d.to_be_bytes())
                .collect();
            Record::new(v.to_be_bytes().to_vec(), dsts)
        })
        .collect();
    spark_env(sink, &["cc_propagate"], |df, ctx, kernels| {
        let k = kernels[0];
        let mut links = df.read_input(ctx, &input);
        df.cache(ctx, &mut links);
        let mut labels: Vec<u32> = (0..n as u32).collect();
        for iter in 0..iterations.max(1) {
            let ops0 = ctx.ops_retired();
            let snapshot = labels.clone();
            let msgs = df.narrow(ctx, "propagate", &links, &mut |ctx, rec, addr, out| {
                let src = be_u32(&rec.key) as usize;
                let label = snapshot[src];
                ctx.frame(k.region, |ctx| {
                    out.emit(Record::new(rec.key.clone(), label.to_be_bytes().to_vec()));
                    let top = ctx.loop_start();
                    let degree = (rec.value.len() / 4).max(1);
                    for (i, chunk) in rec.value.chunks_exact(4).enumerate() {
                        ctx.read(addr + i as u64 * 4, 4);
                        out.emit(Record::new(chunk.to_vec(), label.to_be_bytes().to_vec()));
                        ctx.loop_back(top, i + 1 < degree);
                    }
                });
            });
            let mins = df.reduce_by_key(ctx, &msgs, &mut |ctx, a, b| {
                ctx.int_other(1);
                let x = be_u32(&a.value);
                let y = be_u32(&b.value);
                Record::new(a.key.clone(), x.min(y).to_be_bytes().to_vec())
            });
            for part in &mins.parts {
                for rec in &part.records {
                    let v = be_u32(&rec.key) as usize;
                    labels[v] = be_u32(&rec.value);
                }
            }
            df.note_compute_phase(ctx, &format!("cc_iter{iter}"), ops0);
        }
        let out: Vec<Record> = labels
            .iter()
            .enumerate()
            .map(|(v, l)| Record::new((v as u32).to_be_bytes().to_vec(), l.to_be_bytes().to_vec()))
            .collect();
        let out_ds = df.parallelize(ctx, &out);
        df.save(ctx, &out_ds);
        df.stats().clone()
    })
}

// ---------------------------------------------------------------------------
// MPI workloads (the paper's six control implementations)
// ---------------------------------------------------------------------------

fn mpi_env<R>(
    sink: &mut dyn TraceSink,
    kernel_names: &[&str],
    f: impl FnOnce(&MpiStack, &mut ExecCtx<'_>, &[Kernel]) -> R,
) -> R {
    let mut layout = CodeLayout::new();
    let stack = MpiStack::register(&mut layout);
    let kernels: Vec<Kernel> = kernel_names
        .iter()
        .map(|n| Kernel::register(&mut layout, n))
        .collect();
    let mut ctx = ExecCtx::new(&layout, sink);
    let root = stack.root_region();
    let out = ctx.frame(root, |ctx| f(&stack, ctx, &kernels));
    ctx.finish();
    out
}

fn chunk_for_rank<T: Clone>(items: &[T], rank: usize, ranks: usize) -> Vec<T> {
    items.iter().skip(rank).step_by(ranks).cloned().collect()
}

/// MPI WordCount.
pub fn mpi_wordcount(sink: &mut dyn TraceSink, scale: Scale, dataset: DataSetId) -> RunStats {
    let input = data::text_records(dataset, scale);
    let input_bytes = bdb_stacks::record::total_bytes(&input);
    mpi_env(sink, &["wc_count"], |stack, ctx, kernels| {
        let k = kernels[0];
        let docs: Vec<Vec<Record>> = (0..MPI_RANKS)
            .map(|r| chunk_for_rank(&input, r, MPI_RANKS))
            .collect();
        let mut world = MpiWorld::new(stack, ctx, docs);
        let ops0 = ctx.ops_retired();
        let region = ctx.heap_alloc(1 << 20, 64);
        world.charge_input(ctx, input_bytes, ops0);
        // Superstep 1: count locally, route (word,count) to the owner rank.
        world.superstep(ctx, "local_count", |ctx, rank, docs, _inbox, out| {
            // BTreeMap so the (word,count) routing loop below sends in
            // sorted order — with a hash map the per-rank inbox order
            // would vary run to run.
            let mut counts: std::collections::BTreeMap<Vec<u8>, u64> = Default::default();
            ctx.frame(k.region, |ctx| {
                for (d, doc) in docs.iter().enumerate() {
                    let addr = region.base() + (d as u64 * 1024) % region.len();
                    for_each_word(ctx, &doc.value, addr, |ctx, word, waddr| {
                        let _ = hash_bytes(ctx, word, waddr);
                        *counts.entry(word.to_vec()).or_insert(0) += 1;
                    });
                }
            });
            for (word, count) in counts {
                let owner = (hash_bytes_untraced(&word) % MPI_RANKS as u64) as usize;
                out.send(rank, owner, Record::new(word, count.to_be_bytes().to_vec()));
            }
        });
        // Superstep 2: owners merge.
        let mut output_bytes = 0u64;
        world.superstep(ctx, "merge", |ctx, _rank, _docs, inbox, _out| {
            let mut merged: std::collections::BTreeMap<Vec<u8>, u64> = Default::default();
            ctx.frame(k.region, |ctx| {
                let top = ctx.loop_start();
                for (i, rec) in inbox.iter().enumerate() {
                    ctx.read(region.base() + (i as u64 * 16) % region.len(), 8);
                    ctx.int_other(1);
                    *merged.entry(rec.key.clone()).or_insert(0) +=
                        u64::from_be_bytes(rec.value[..8].try_into().unwrap_or([0; 8]));
                    ctx.loop_back(top, i + 1 < inbox.len().max(1));
                }
            });
            output_bytes += merged.keys().map(|k| k.len() as u64 + 8).sum::<u64>();
        });
        let ops1 = ctx.ops_retired();
        world.charge_output(ctx, output_bytes, ops1);
        world.finish()
    })
}

fn hash_bytes_untraced(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// MPI Sort (range-partitioned sample sort).
pub fn mpi_sort(sink: &mut dyn TraceSink, scale: Scale, dataset: DataSetId) -> RunStats {
    let input = data::kv_records(dataset, scale);
    let input_bytes = bdb_stacks::record::total_bytes(&input);
    mpi_env(sink, &["sort_local"], |stack, ctx, kernels| {
        let k = kernels[0];
        let slices: Vec<Vec<Record>> = (0..MPI_RANKS)
            .map(|r| chunk_for_rank(&input, r, MPI_RANKS))
            .collect();
        let mut world = MpiWorld::new(stack, ctx, slices);
        let ops0 = ctx.ops_retired();
        world.charge_input(ctx, input_bytes, ops0);
        let region = ctx.heap_alloc(1 << 20, 64);
        // Superstep 1: range partition by the key's first byte.
        world.superstep(ctx, "partition", |ctx, rank, recs, _inbox, out| {
            ctx.frame(k.region, |ctx| {
                let top = ctx.loop_start();
                let n = recs.len().max(1);
                for (i, rec) in recs.drain(..).enumerate() {
                    ctx.read(region.base() + (i as u64 * 64) % region.len(), 8);
                    ctx.int_other(2);
                    let owner = (rec.key[0] as usize * MPI_RANKS) / 256;
                    out.send(rank, owner.min(MPI_RANKS - 1), rec);
                    ctx.loop_back(top, i + 1 < n);
                }
            });
        });
        // Superstep 2: sort locally (a real traced sort).
        let mut output_bytes = 0u64;
        world.superstep(ctx, "local_sort", |ctx, _rank, _state, inbox, _out| {
            let mut records: Vec<Record> = inbox.to_vec();
            let mut addrs: Vec<u64> = (0..records.len())
                .map(|i| region.base() + (i as u64 * 64) % region.len())
                .collect();
            ctx.frame(k.region, |ctx| {
                traced_sort_by_key(ctx, &mut records, &mut addrs)
            });
            output_bytes += bdb_stacks::record::total_bytes(&records);
        });
        let ops1 = ctx.ops_retired();
        world.charge_output(ctx, output_bytes, ops1);
        world.finish()
    })
}

/// MPI Grep.
pub fn mpi_grep(sink: &mut dyn TraceSink, scale: Scale, dataset: DataSetId) -> RunStats {
    let input = data::text_records(dataset, scale);
    let pattern = data::grep_pattern(dataset);
    let input_bytes = bdb_stacks::record::total_bytes(&input);
    mpi_env(sink, &["grep_scan"], |stack, ctx, kernels| {
        let k = kernels[0];
        let slices: Vec<Vec<Record>> = (0..MPI_RANKS)
            .map(|r| chunk_for_rank(&input, r, MPI_RANKS))
            .collect();
        let mut world = MpiWorld::new(stack, ctx, slices);
        let ops0 = ctx.ops_retired();
        world.charge_input(ctx, input_bytes, ops0);
        let region = ctx.heap_alloc(1 << 20, 64);
        let mut matches = 0u64;
        let mut matched_bytes = 0u64;
        world.superstep(ctx, "scan", |ctx, rank, docs, _inbox, out| {
            ctx.frame(k.region, |ctx| {
                for (d, doc) in docs.iter().enumerate() {
                    let addr = region.base() + (d as u64 * 1024) % region.len();
                    let hits = search_pattern(ctx, &doc.value, addr, &pattern);
                    if hits > 0 {
                        out.send(rank, 0, Record::new(doc.key.clone(), Vec::new()));
                    }
                }
            });
        });
        world.superstep(ctx, "gather", |ctx, rank, _docs, inbox, _out| {
            if rank == 0 {
                ctx.int_other(inbox.len().max(1) as u32);
                matches += inbox.len() as u64;
                matched_bytes += inbox.iter().map(|r| r.key.len() as u64).sum::<u64>();
            }
        });
        let ops1 = ctx.ops_retired();
        world.charge_output(ctx, matched_bytes.max(matches * 8), ops1);
        world.finish()
    })
}

/// MPI K-means.
pub fn mpi_kmeans(sink: &mut dyn TraceSink, scale: Scale, iterations: usize) -> RunStats {
    let (points, dim) = data::points(scale);
    let k = 8usize;
    let input_bytes = (points.len() * dim * 8) as u64;
    mpi_env(sink, &["kmeans_local"], |stack, ctx, kernels| {
        let kern = kernels[0];
        let slices: Vec<Vec<Vec<f64>>> = (0..MPI_RANKS)
            .map(|r| chunk_for_rank(&points, r, MPI_RANKS))
            .collect();
        let mut centers: Vec<Vec<f64>> = points.iter().take(k).cloned().collect();
        let mut world = MpiWorld::new(stack, ctx, slices);
        let ops0 = ctx.ops_retired();
        world.charge_input(ctx, input_bytes, ops0);
        let region = ctx.heap_alloc(1 << 20, 64);
        for _ in 0..iterations.max(1) {
            // Local accumulation of per-cluster sums and counts.
            let width = k * (dim + 1);
            let mut local_sums: Vec<Vec<f64>> = Vec::with_capacity(MPI_RANKS);
            let centers_snapshot = centers.clone();
            world.superstep(ctx, "assign", |ctx, _rank, pts, _inbox, _out| {
                let mut acc = vec![0.0f64; width];
                ctx.frame(kern.region, |ctx| {
                    for (i, p) in pts.iter().enumerate() {
                        let addr = region.base() + (i as u64 * 64) % region.len();
                        let mut best = (0usize, f64::MAX);
                        for (c, center) in centers_snapshot.iter().enumerate() {
                            let d = distance_sq(ctx, p, addr, center, addr + 2048);
                            if d < best.1 {
                                best = (c, d);
                            }
                            ctx.cond_branch(d < best.1);
                        }
                        for (j, x) in p.iter().enumerate() {
                            ctx.fp_ops(1);
                            acc[best.0 * (dim + 1) + j] += x;
                        }
                        acc[best.0 * (dim + 1) + dim] += 1.0;
                    }
                });
                local_sums.push(acc);
            });
            while local_sums.len() < MPI_RANKS {
                local_sums.push(vec![0.0; width]);
            }
            let global = world.allreduce_f64(ctx, local_sums, |a, b| a + b);
            for c in 0..k {
                let count = global[c * (dim + 1) + dim].max(1.0);
                centers[c] = (0..dim)
                    .map(|j| global[c * (dim + 1) + j] / count)
                    .collect();
            }
        }
        let ops1 = ctx.ops_retired();
        world.charge_output(ctx, (k * dim * 8) as u64, ops1);
        world.finish()
    })
}

/// MPI PageRank.
pub fn mpi_pagerank(
    sink: &mut dyn TraceSink,
    scale: Scale,
    dataset: DataSetId,
    iterations: usize,
) -> RunStats {
    let graph = data::graph(dataset, scale);
    let n = graph.vertex_count();
    let input_bytes = (graph.edge_count() * 8) as u64;
    mpi_env(sink, &["pr_spmv"], |stack, ctx, kernels| {
        let kern = kernels[0];
        // Each rank owns vertices v where v % ranks == rank.
        let mut world = MpiWorld::new(stack, ctx, vec![(); MPI_RANKS]);
        let ops0 = ctx.ops_retired();
        world.charge_input(ctx, input_bytes, ops0);
        let region = ctx.heap_alloc(1 << 20, 64);
        let mut ranks_vec = vec![1.0f64; n];
        for _ in 0..iterations.max(1) {
            // Contributions routed to owner ranks as batched messages.
            let snapshot = ranks_vec.clone();
            let mut incoming: Vec<f64> = vec![0.0; n];
            world.superstep(ctx, "contrib", |ctx, rank, _state, _inbox, out| {
                let mut batches: Vec<Vec<u8>> = vec![Vec::new(); MPI_RANKS];
                ctx.frame(kern.region, |ctx| {
                    for v in (rank..n).step_by(MPI_RANKS) {
                        let neighbors = graph.neighbors(v as u32);
                        if neighbors.is_empty() {
                            continue;
                        }
                        ctx.read_fp(region.base() + (v as u64 * 8) % region.len(), 8);
                        ctx.fp_ops(1);
                        let contrib = snapshot[v] / neighbors.len() as f64;
                        let top = ctx.loop_start();
                        for (i, &dst) in neighbors.iter().enumerate() {
                            ctx.read(region.base() + (i as u64 * 4) % region.len(), 4);
                            ctx.fp_ops(1);
                            let owner = dst as usize % MPI_RANKS;
                            batches[owner].extend_from_slice(&dst.to_be_bytes());
                            batches[owner].extend_from_slice(&contrib.to_le_bytes());
                            ctx.loop_back(top, i + 1 < neighbors.len());
                        }
                    }
                });
                for (owner, batch) in batches.into_iter().enumerate() {
                    if !batch.is_empty() {
                        out.send(rank, owner, Record::new(Vec::new(), batch));
                    }
                }
            });
            world.superstep(ctx, "apply", |ctx, _rank, _state, inbox, _out| {
                ctx.frame(kern.region, |ctx| {
                    for msg in inbox {
                        let entries = msg.value.len() / 12;
                        let top = ctx.loop_start();
                        for (i, entry) in msg.value.chunks_exact(12).enumerate() {
                            ctx.read_fp(region.base() + (i as u64 * 12) % region.len(), 8);
                            ctx.fp_ops(1);
                            let dst = be_u32(entry) as usize;
                            let c = le_f64(&entry[4..]);
                            incoming[dst] += c;
                            ctx.loop_back(top, i + 1 < entries.max(1));
                        }
                    }
                });
            });
            for v in 0..n {
                ranks_vec[v] = 0.15 + 0.85 * incoming[v];
            }
        }
        let ops1 = ctx.ops_retired();
        world.charge_output(ctx, (n * 8) as u64, ops1);
        world.finish()
    })
}

/// MPI Naive Bayes training.
pub fn mpi_bayes(sink: &mut dyn TraceSink, scale: Scale) -> RunStats {
    let (docs, labels, vocab) = data::labelled_docs(scale);
    let classes = 5usize;
    let input_bytes: u64 = docs.iter().map(|d| d.len() as u64 * 4).sum();
    mpi_env(sink, &["bayes_count"], |stack, ctx, kernels| {
        let kern = kernels[0];
        let pairs: Vec<(Vec<u32>, usize)> = docs.into_iter().zip(labels).collect();
        let slices: Vec<Vec<(Vec<u32>, usize)>> = (0..MPI_RANKS)
            .map(|r| chunk_for_rank(&pairs, r, MPI_RANKS))
            .collect();
        let mut world = MpiWorld::new(stack, ctx, slices);
        let ops0 = ctx.ops_retired();
        world.charge_input(ctx, input_bytes, ops0);
        let region = ctx.heap_alloc(1 << 20, 64);
        // Bucketized counts keep the allreduce width manageable.
        const BUCKETS: usize = 512;
        let width = classes * BUCKETS;
        let mut local: Vec<Vec<f64>> = Vec::with_capacity(MPI_RANKS);
        world.superstep(ctx, "count", |ctx, _rank, docs, _inbox, _out| {
            let mut acc = vec![0.0f64; width];
            ctx.frame(kern.region, |ctx| {
                for (d, (doc, label)) in docs.iter().enumerate() {
                    let addr = region.base() + (d as u64 * 512) % region.len();
                    let top = ctx.loop_start();
                    for (i, &w) in doc.iter().enumerate() {
                        ctx.read(addr + i as u64 * 4, 4);
                        ctx.int_other(2);
                        let bucket = (w as usize * BUCKETS) / vocab;
                        acc[label * BUCKETS + bucket.min(BUCKETS - 1)] += 1.0;
                        ctx.loop_back(top, i + 1 < doc.len().max(1));
                    }
                }
            });
            local.push(acc);
        });
        while local.len() < MPI_RANKS {
            local.push(vec![0.0; width]);
        }
        let _model = world.allreduce_f64(ctx, local, |a, b| a + b);
        let ops1 = ctx.ops_retired();
        world.charge_output(ctx, (width * 8) as u64, ops1);
        world.finish()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdb_trace::MixSink;

    fn mix_of(
        f: impl FnOnce(&mut dyn TraceSink) -> RunStats,
    ) -> (RunStats, bdb_trace::InstructionMix) {
        let mut sink = MixSink::new();
        let stats = f(&mut sink);
        (stats, sink.mix())
    }

    #[test]
    fn hadoop_wordcount_runs_and_accounts() {
        let (stats, mix) = mix_of(|s| hadoop_wordcount(s, Scale::tiny(), DataSetId::Wikipedia));
        assert!(stats.input_bytes > 0);
        assert!(stats.intermediate_bytes > 0);
        assert!(stats.output_bytes > 0);
        assert!(mix.total() > 50_000, "ops {}", mix.total());
        // WordCount output is much smaller than input (combiner on).
        assert!(stats.output_bytes < stats.input_bytes);
    }

    #[test]
    fn spark_wordcount_matches_data_behavior() {
        let (stats, _) = mix_of(|s| spark_wordcount(s, Scale::tiny(), DataSetId::Wikipedia));
        assert!(stats.output_bytes < stats.input_bytes);
        assert!(stats.phases.iter().any(|p| p.name.starts_with("shuffle")));
    }

    #[test]
    fn mpi_wordcount_is_much_leaner_than_hadoop() {
        let (_, hadoop) = mix_of(|s| hadoop_wordcount(s, Scale::tiny(), DataSetId::Wikipedia));
        let (_, mpi) = mix_of(|s| mpi_wordcount(s, Scale::tiny(), DataSetId::Wikipedia));
        assert!(
            (mpi.total() as f64) < 0.6 * hadoop.total() as f64,
            "mpi {} hadoop {}",
            mpi.total(),
            hadoop.total()
        );
    }

    #[test]
    fn sort_output_equals_input() {
        let (stats, _) = mix_of(|s| hadoop_sort(s, Scale::tiny(), DataSetId::Wikipedia));
        let behavior = stats.data_behavior();
        assert_eq!(behavior.output, bdb_stacks::Relation::Equal, "{stats:?}");
    }

    #[test]
    fn grep_output_much_less_than_input() {
        let (stats, _) = mix_of(|s| hadoop_grep(s, Scale::small(), DataSetId::Wikipedia));
        assert!(
            (stats.output_bytes as f64) < 0.2 * stats.input_bytes as f64,
            "out {} in {}",
            stats.output_bytes,
            stats.input_bytes
        );
    }

    #[test]
    fn kmeans_emits_fp_work() {
        let (_, hadoop) = mix_of(|s| hadoop_kmeans(s, Scale::tiny(), 1));
        assert!(hadoop.fp > 0);
        let (_, spark) = mix_of(|s| spark_kmeans(s, Scale::tiny(), 1));
        assert!(spark.fp > 0);
        let (_, mpi) = mix_of(|s| mpi_kmeans(s, Scale::tiny(), 1));
        assert!(mpi.fp > 0);
    }

    #[test]
    fn pagerank_runs_on_all_stacks() {
        for f in [
            |s: &mut dyn TraceSink| hadoop_pagerank(s, Scale::tiny(), DataSetId::GoogleWebGraph, 1),
            |s: &mut dyn TraceSink| spark_pagerank(s, Scale::tiny(), DataSetId::GoogleWebGraph, 1),
            |s: &mut dyn TraceSink| mpi_pagerank(s, Scale::tiny(), DataSetId::GoogleWebGraph, 1),
        ] {
            let (stats, mix) = mix_of(f);
            assert!(stats.input_bytes > 0);
            assert!(mix.fp > 0, "pagerank does FP work");
        }
    }

    #[test]
    fn bayes_and_index_and_cc_run() {
        let (s1, _) = mix_of(|s| hadoop_bayes(s, Scale::tiny()));
        assert!(s1.output_bytes > 0);
        let (s2, _) = mix_of(|s| spark_bayes(s, Scale::tiny()));
        assert!(s2.output_bytes > 0);
        let (s3, _) = mix_of(|s| mpi_bayes(s, Scale::tiny()));
        assert!(s3.output_bytes > 0);
        let (s4, _) = mix_of(|s| hadoop_index(s, Scale::tiny(), DataSetId::Wikipedia));
        assert!(s4.output_bytes > 0);
        let (s5, _) = mix_of(|s| spark_index(s, Scale::tiny(), DataSetId::Wikipedia));
        assert!(s5.output_bytes > 0);
        let (s6, _) = mix_of(|s| hadoop_cc(s, Scale::tiny(), 1));
        assert!(s6.output_bytes > 0);
        let (s7, _) = mix_of(|s| spark_cc(s, Scale::tiny(), 1));
        assert!(s7.output_bytes > 0);
    }

    #[test]
    fn sorts_run_on_all_stacks() {
        let (h, _) = mix_of(|s| hadoop_sort(s, Scale::tiny(), DataSetId::Wikipedia));
        let (sp, _) = mix_of(|s| spark_sort(s, Scale::tiny(), DataSetId::Wikipedia));
        let (m, _) = mix_of(|s| mpi_sort(s, Scale::tiny(), DataSetId::Wikipedia));
        for stats in [h, sp, m] {
            assert!(stats.input_bytes > 0);
            assert!(
                stats.intermediate_bytes > 0,
                "sort shuffles data: {stats:?}"
            );
        }
    }

    #[test]
    fn grep_runs_on_all_stacks() {
        let (h, _) = mix_of(|s| hadoop_grep(s, Scale::tiny(), DataSetId::Wikipedia));
        let (sp, _) = mix_of(|s| spark_grep(s, Scale::tiny(), DataSetId::Wikipedia));
        let (m, _) = mix_of(|s| mpi_grep(s, Scale::tiny(), DataSetId::Wikipedia));
        for stats in [h, sp, m] {
            assert!(stats.input_bytes > 0);
        }
    }
}
