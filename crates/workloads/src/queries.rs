//! Interactive-analytics workloads: relational operators and TPC-DS-like
//! queries executed in Hive, Shark, or Impala mode.
//!
//! The plan for each workload is fixed; only the execution backend varies,
//! so e.g. `H-Difference`, `S-Project`, `I-SelectQuery`, `H-TPC-DS-query3`,
//! `S-TPC-DS-query8`, and `S-TPC-DS-query10` from the paper's Table 2 are
//! all instances of this module with different `(op, engine)` pairs.

use crate::data;
use crate::spec::{KernelKind, Scale};
use bdb_datagen::Table;
use bdb_stacks::dataflow::SparkStack;
use bdb_stacks::mapreduce::HadoopStack;
use bdb_stacks::sql::{execute_hive, execute_impala, execute_shark, Agg, ImpalaStack, Plan, Pred};
use bdb_stacks::{RunStats, StackKind};
use bdb_trace::{CodeLayout, ExecCtx, TraceSink};

/// Which data set a query workload runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryData {
    /// E-commerce order + item tables.
    Ecommerce,
    /// TPC-DS-like web star schema.
    TpcdsWeb,
}

/// Builds the fixed logical plan for `(kernel, data)`.
///
/// # Panics
///
/// Panics if `kernel` is not a query kernel, or the combination is
/// unsupported (TPC-DS queries only run on the web schema).
pub fn query_plan(kernel: KernelKind, data: QueryData) -> Plan {
    use KernelKind::*;
    match (data, kernel) {
        // E-commerce tables: 0 = orders(order_id, buyer_id, date, amount),
        // 1 = items(item_id, order_id, goods_id, quantity, price, category).
        (QueryData::Ecommerce, Select) => Plan::scan(1).filter(Pred::StrEq(5, "books".into())),
        (QueryData::Ecommerce, Project) => Plan::scan(1).project(vec![1, 2, 4]),
        (QueryData::Ecommerce, OrderBy) => Plan::scan(0).sort(3, true),
        (QueryData::Ecommerce, Aggregation) => Plan::scan(1).aggregate(vec![5], Agg::SumF64(4)),
        (QueryData::Ecommerce, Join) => Plan::scan(0).join(Plan::scan(1), 0, 1),
        (QueryData::Ecommerce, Difference) => Plan::scan(0).project(vec![1]).difference(
            Plan::scan(0)
                .filter(Pred::I64Between(2, 0, 20_130_180))
                .project(vec![1]),
        ),
        // TPC-DS web tables: 0 = store_sales(date_sk, item_sk, cust_sk,
        // qty, price, ext), 1 = date_dim(sk, year, moy, dom), 2 = item(sk,
        // brand, category, manager, price), 3 = customer(sk, birth_year,
        // county, dep).
        (QueryData::TpcdsWeb, Select) => Plan::scan(0).filter(Pred::I64Between(0, 0, 60)),
        (QueryData::TpcdsWeb, Project) => Plan::scan(0).project(vec![1, 2, 5]),
        (QueryData::TpcdsWeb, OrderBy) => Plan::scan(0).sort(5, true).limit(200),
        (QueryData::TpcdsWeb, Aggregation) => Plan::scan(0).aggregate(vec![1], Agg::SumF64(5)),
        (QueryData::TpcdsWeb, Join) => Plan::scan(0).join(Plan::scan(2), 1, 0),
        (QueryData::TpcdsWeb, Difference) => Plan::scan(0).project(vec![2]).difference(
            Plan::scan(3)
                .filter(Pred::I64Between(1, 1930, 1950))
                .project(vec![0]),
        ),
        // TPC-DS queries (web schema only).
        (QueryData::TpcdsWeb, TpcDsQ3) => Plan::scan(0)
            .join(Plan::scan(1).filter(Pred::I64Eq(2, 11)), 0, 0)
            .join(Plan::scan(2), 1, 0)
            .filter(Pred::I64Between(13, 0, 30))
            .aggregate(vec![7, 11], Agg::SumF64(5))
            .sort(2, true)
            .limit(10),
        (QueryData::TpcdsWeb, TpcDsQ6) => Plan::scan(0)
            .join(Plan::scan(3), 2, 0)
            .aggregate(vec![8], Agg::CountStar)
            .sort(1, true)
            .limit(20),
        (QueryData::TpcdsWeb, TpcDsQ8) => Plan::scan(0)
            .join(Plan::scan(2), 1, 0)
            .filter(Pred::StrEq(8, "Books".into()))
            .aggregate(vec![7], Agg::SumF64(5))
            .sort(1, true)
            .limit(10),
        (QueryData::TpcdsWeb, TpcDsQ10) => Plan::scan(0)
            .join(Plan::scan(3), 2, 0)
            .filter(Pred::I64Between(7, 1960, 1990))
            .aggregate(vec![9], Agg::CountStar)
            .sort(0, false),
        (QueryData::TpcdsWeb, TpcDsQ13) => Plan::scan(0)
            .filter(Pred::I64Between(3, 1, 5))
            .join(Plan::scan(1), 0, 0)
            .filter(Pred::I64Eq(7, 1998))
            .aggregate(vec![8], Agg::SumF64(4))
            .sort(0, false),
        // bdb-lint: allow(panic-hygiene): combinations are fixed by the catalog.
        (data, kernel) => panic!("unsupported query workload: {kernel:?} on {data:?}"),
    }
}

fn materialize(data: QueryData, scale: Scale) -> Vec<Table> {
    match data {
        QueryData::Ecommerce => {
            let (orders, items) = data::ecommerce(scale);
            vec![orders, items]
        }
        QueryData::TpcdsWeb => {
            let d = data::tpcds(scale);
            vec![d.store_sales, d.date_dim, d.item, d.customer]
        }
    }
}

/// Runs a query workload on the given engine.
///
/// # Panics
///
/// Panics if `engine` is not one of Hive/Shark/Impala.
pub fn run_query(
    sink: &mut dyn TraceSink,
    scale: Scale,
    engine: StackKind,
    kernel: KernelKind,
    dataset: QueryData,
) -> RunStats {
    let plan = query_plan(kernel, dataset);
    let tables = materialize(dataset, scale);
    let table_refs: Vec<&Table> = tables.iter().collect();
    let mut layout = CodeLayout::new();
    match engine {
        StackKind::Impala => {
            let stack = ImpalaStack::register(&mut layout);
            let mut ctx = ExecCtx::new(&layout, sink);
            let (_, stats) = execute_impala(&mut ctx, &stack, &table_refs, &plan);
            ctx.finish();
            stats
        }
        StackKind::Hive => {
            let stack = HadoopStack::register(&mut layout);
            let mut ctx = ExecCtx::new(&layout, sink);
            let (_, stats) = execute_hive(&mut ctx, &stack, &table_refs, &plan);
            ctx.finish();
            stats
        }
        StackKind::Shark => {
            let stack = SparkStack::register(&mut layout);
            let mut ctx = ExecCtx::new(&layout, sink);
            let (_, stats) = execute_shark(&mut ctx, &stack, &table_refs, &plan);
            ctx.finish();
            stats
        }
        // bdb-lint: allow(panic-hygiene): engines are fixed by the catalog.
        other => panic!("{other} is not a SQL engine"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdb_trace::MixSink;

    #[test]
    fn every_plan_builds() {
        use KernelKind::*;
        for k in [Select, Project, OrderBy, Aggregation, Join, Difference] {
            let _ = query_plan(k, QueryData::Ecommerce);
            let _ = query_plan(k, QueryData::TpcdsWeb);
        }
        for q in [TpcDsQ3, TpcDsQ6, TpcDsQ8, TpcDsQ10, TpcDsQ13] {
            let _ = query_plan(q, QueryData::TpcdsWeb);
        }
    }

    #[test]
    #[should_panic(expected = "unsupported query workload")]
    fn tpcds_queries_need_web_schema() {
        let _ = query_plan(KernelKind::TpcDsQ3, QueryData::Ecommerce);
    }

    #[test]
    fn impala_select_runs() {
        let mut sink = MixSink::new();
        let stats = run_query(
            &mut sink,
            Scale::tiny(),
            StackKind::Impala,
            KernelKind::Select,
            QueryData::Ecommerce,
        );
        assert!(stats.input_bytes > 0);
        assert!(stats.output_bytes > 0);
        assert!(sink.mix().total() > 1000);
    }

    #[test]
    fn hive_difference_runs() {
        let mut sink = MixSink::new();
        let stats = run_query(
            &mut sink,
            Scale::tiny(),
            StackKind::Hive,
            KernelKind::Difference,
            QueryData::Ecommerce,
        );
        assert!(stats.input_bytes > 0);
        // Set difference shrinks the data drastically.
        assert!(stats.output_bytes < stats.input_bytes);
    }

    #[test]
    fn shark_q10_runs() {
        let mut sink = MixSink::new();
        let stats = run_query(
            &mut sink,
            Scale::tiny(),
            StackKind::Shark,
            KernelKind::TpcDsQ10,
            QueryData::TpcdsWeb,
        );
        assert!(stats.input_bytes > 0);
        assert!(stats.output_bytes > 0);
        assert!(stats.output_bytes < stats.input_bytes / 10, "{stats:?}");
    }

    #[test]
    fn q3_returns_few_rows_on_all_engines() {
        for engine in [StackKind::Impala, StackKind::Hive, StackKind::Shark] {
            let mut sink = MixSink::new();
            let stats = run_query(
                &mut sink,
                Scale::tiny(),
                engine,
                KernelKind::TpcDsQ3,
                QueryData::TpcdsWeb,
            );
            assert!(stats.output_bytes < 1000, "{engine}: {stats:?}");
        }
    }

    #[test]
    #[should_panic(expected = "not a SQL engine")]
    fn non_sql_engine_panics() {
        let mut sink = MixSink::new();
        let _ = run_query(
            &mut sink,
            Scale::tiny(),
            StackKind::Mpi,
            KernelKind::Select,
            QueryData::Ecommerce,
        );
    }
}
