//! Dataset materialization: turns the `bdb-datagen` generators into the
//! byte records / tables / graphs each workload consumes, at a given
//! [`Scale`].
//!
//! Seeds are fixed per data set so every workload run over the same scale
//! sees byte-identical input.

use crate::spec::Scale;
use bdb_datagen::graph::{Graph, GraphGen, GraphGenConfig};
use bdb_datagen::table;
use bdb_datagen::text::{TextGen, TextGenConfig};
use bdb_datagen::tpcds::{self, TpcdsConfig, TpcdsData};
use bdb_datagen::{DataSetId, Table};
use bdb_stacks::Record;

const SEED_TEXT: u64 = 0xB16_DA7A;
const SEED_GRAPH: u64 = 0x6EAF_0001;
const SEED_TABLE: u64 = 0x7AB1_E000;
const SEED_TPCDS: u64 = 0x7BCD_5EED;

/// Text documents as `(doc-id, space-joined words)` byte records — the
/// Wikipedia / Amazon input of WordCount, Sort, Grep, and Index.
pub fn text_records(dataset: DataSetId, scale: Scale) -> Vec<Record> {
    let (docs, vocab, seed) = match dataset {
        DataSetId::AmazonReviews => (900, 6_000, SEED_TEXT ^ 1),
        _ => (1_000, 8_192, SEED_TEXT),
    };
    let config = TextGenConfig {
        vocab_size: vocab,
        ..Default::default()
    };
    let corpus = TextGen::new(config, seed).generate(scale.n(docs));
    corpus
        .docs
        .iter()
        .enumerate()
        .map(|(i, doc)| {
            let mut text = String::new();
            for (j, &w) in doc.iter().enumerate() {
                if j > 0 {
                    text.push(' ');
                }
                text.push_str(corpus.word(w));
            }
            Record::new(format!("doc{i:08}").into_bytes(), text.into_bytes())
        })
        .collect()
}

/// The search pattern Grep workloads look for: a rare vocabulary word
/// (Zipf rank ~2500), so only a small fraction of documents match and the
/// paper's `Output<<Input` behaviour holds.
pub fn grep_pattern(dataset: DataSetId) -> Vec<u8> {
    let (vocab, seed) = match dataset {
        DataSetId::AmazonReviews => (6_000, SEED_TEXT ^ 1),
        _ => (8_192, SEED_TEXT),
    };
    let config = TextGenConfig {
        vocab_size: vocab,
        ..Default::default()
    };
    let corpus = TextGen::new(config, seed).generate(1);
    corpus.word(2_500.min(vocab as u32 - 1)).as_bytes().to_vec()
}

/// Fixed-size key-value records with pseudo-random keys — the Sort input.
pub fn kv_records(dataset: DataSetId, scale: Scale) -> Vec<Record> {
    let n = scale.n(6_000);
    let salt = match dataset {
        DataSetId::AmazonReviews => 7u64,
        _ => 3u64,
    };
    (0..n as u64)
        .map(|i| {
            // splitmix-style key scramble for a uniform sort key space.
            let mut x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt;
            x ^= x >> 30;
            x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x ^= x >> 27;
            Record::new(x.to_be_bytes().to_vec(), vec![0xAB; 56])
        })
        .collect()
}

/// The web/social graph for PageRank and Connected Components.
pub fn graph(dataset: DataSetId, scale: Scale) -> Graph {
    let (n, seed) = match dataset {
        DataSetId::FacebookSocial => (scale.n(4_039), SEED_GRAPH ^ 2),
        _ => (scale.n(8_000), SEED_GRAPH),
    };
    GraphGen::new(GraphGenConfig::default(), seed).generate(n.max(8))
}

/// Numeric feature vectors for K-means (Facebook-profile-like points).
pub fn points(scale: Scale) -> (Vec<Vec<f64>>, usize) {
    let (pts, _) = table::sample_points(scale.n(4_000), 8, 8, SEED_TABLE ^ 5);
    (pts, 8)
}

/// Labelled documents for Naive Bayes (Amazon-review classification).
pub fn labelled_docs(scale: Scale) -> (Vec<Vec<u32>>, Vec<usize>, usize) {
    let vocab = 4_096;
    let (docs, labels) = table::labelled_documents(scale.n(2_500), vocab, 5, SEED_TABLE ^ 9);
    (docs, labels, vocab)
}

/// The e-commerce order and item tables.
pub fn ecommerce(scale: Scale) -> (Table, Table) {
    let orders = table::ecommerce_orders(scale.n(4_000), SEED_TABLE);
    let items = table::ecommerce_items(&orders, 2, SEED_TABLE ^ 1);
    (orders, items)
}

/// The ProfSearch résumé table (the KV service's backing rows).
pub fn resumes(scale: Scale) -> Table {
    table::profsearch_resumes(scale.n(5_000), SEED_TABLE ^ 2)
}

/// The TPC-DS-like star schema.
pub fn tpcds(scale: Scale) -> TpcdsData {
    tpcds::generate(
        TpcdsConfig {
            sales_rows: scale.n(16_000),
            items: scale.n(800).max(32),
            customers: scale.n(1_500).max(32),
            days: 365,
        },
        SEED_TPCDS,
    )
}

/// Résumé rows as KV records keyed by person id (HBase table rows). Values
/// are padded toward the paper's 1128-byte ProfSearch records at full
/// scale.
pub fn resume_records(scale: Scale) -> Vec<Record> {
    resumes(scale)
        .rows()
        .iter()
        .map(|row| {
            // bdb-lint: allow(panic-hygiene): column 0 is I64 by schema.
            let id = row[0].as_i64().expect("person_id");
            let mut value = Vec::with_capacity(256);
            for f in &row[1..] {
                value.extend_from_slice(format!("{f}|").as_bytes());
            }
            value.resize(value.len().max(224), b'.');
            Record::new(format!("person{id:010}").into_bytes(), value)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_records_are_deterministic() {
        let a = text_records(DataSetId::Wikipedia, Scale::tiny());
        let b = text_records(DataSetId::Wikipedia, Scale::tiny());
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a[0].value.len() > 10);
    }

    #[test]
    fn datasets_differ_by_id() {
        let wiki = text_records(DataSetId::Wikipedia, Scale::tiny());
        let amazon = text_records(DataSetId::AmazonReviews, Scale::tiny());
        assert_ne!(wiki, amazon);
    }

    #[test]
    fn kv_records_have_uniform_shape() {
        let recs = kv_records(DataSetId::Wikipedia, Scale::tiny());
        assert!(recs.iter().all(|r| r.key.len() == 8 && r.value.len() == 56));
        // Keys should be roughly unique.
        let distinct: std::collections::HashSet<_> = recs.iter().map(|r| &r.key).collect();
        assert_eq!(distinct.len(), recs.len());
    }

    #[test]
    fn scale_changes_volume() {
        let small = text_records(DataSetId::Wikipedia, Scale::tiny());
        let big = text_records(DataSetId::Wikipedia, Scale::small());
        assert!(big.len() > small.len());
    }

    #[test]
    fn graph_scales() {
        let g = graph(DataSetId::GoogleWebGraph, Scale::tiny());
        assert!(g.vertex_count() >= 8);
        assert!(g.edge_count() > 0);
    }

    #[test]
    fn resume_records_are_padded() {
        let recs = resume_records(Scale::tiny());
        assert!(recs.iter().all(|r| r.value.len() >= 224));
    }
}
