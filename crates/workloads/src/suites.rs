//! Comparison-suite kernels: the paper benchmarks the 17 big-data
//! representatives against SPECINT, SPECFP, PARSEC, HPCC, CloudSuite, and
//! TPC-C. Each suite here is a set of miniature kernels reproducing its
//! class signature:
//!
//! * **SPECFP / HPCC** — floating-point-dominated numeric loops with small,
//!   hot code (low branch ratio, low L1I MPKI, high FP share),
//! * **SPECINT** — integer/branch-heavy kernels including a pointer-chaser
//!   with a large data working set (low IPC, high L2/L3 MPKI),
//! * **PARSEC** — data-parallel kernels with ~128 KiB instruction footprint
//!   (the paper's Figure 6 comparison curve),
//! * **CloudSuite** — service-style programs over wide handler farms (the
//!   highest L1I MPKI in Figure 4),
//! * **TPC-C** — branchy OLTP transactions (the paper cites a 30 % branch
//!   ratio).

use crate::spec::Scale;
use bdb_node::Phase;
use bdb_stacks::runtime::Routine;
use bdb_stacks::RunStats;
use bdb_trace::{CodeLayout, ExecCtx, OpMix, TraceSink};

/// The comparison suites of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Suite {
    /// SPEC CPU2006 integer benchmarks.
    SpecInt,
    /// SPEC CPU2006 floating-point benchmarks.
    SpecFp,
    /// PARSEC 3.0 multithreaded benchmarks.
    Parsec,
    /// HPCC 1.4 HPC benchmarks.
    Hpcc,
    /// CloudSuite 1.0 scale-out services.
    CloudSuite,
    /// TPC-C OLTP.
    TpcC,
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Suite::SpecInt => "SPECINT",
            Suite::SpecFp => "SPECFP",
            Suite::Parsec => "PARSEC",
            Suite::Hpcc => "HPCC",
            Suite::CloudSuite => "CloudSuite",
            Suite::TpcC => "TPC-C",
        };
        f.write_str(s)
    }
}

/// Names the kernels of a suite (used by the catalog and reports).
pub fn kernel_names(suite: Suite) -> &'static [&'static str] {
    match suite {
        Suite::SpecInt => &[
            "mcf-like",
            "bzip2-like",
            "gcc-like",
            "gobmk-like",
            "hmmer-like",
            "astar-like",
            "perlbench-like",
            "libquantum-like",
            "xalancbmk-like",
        ],
        Suite::SpecFp => &[
            "bwaves-like",
            "lbm-like",
            "namd-like",
            "milc-like",
            "sphinx-like",
            "gemsfdtd-like",
            "cactusadm-like",
            "povray-like",
        ],
        Suite::Parsec => &[
            "blackscholes-like",
            "bodytrack-like",
            "canneal-like",
            "dedup-like",
            "fluidanimate-like",
            "streamcluster-like",
            "swaptions-like",
            "x264-like",
        ],
        Suite::Hpcc => &[
            "hpl-like",
            "dgemm-like",
            "stream-like",
            "ptrans-like",
            "randomaccess-like",
            "fft-like",
            "beff-like",
        ],
        Suite::CloudSuite => &[
            "data-serving",
            "data-analytics",
            "data-caching",
            "graph-analytics",
            "media-streaming",
            "web-search",
        ],
        Suite::TpcC => &["tpcc"],
    }
}

/// Runs kernel `index` of `suite`.
///
/// # Panics
///
/// Panics if `index` is out of range for the suite.
pub fn run_suite_kernel(
    sink: &mut dyn TraceSink,
    scale: Scale,
    suite: Suite,
    index: usize,
) -> RunStats {
    let names = kernel_names(suite);
    assert!(
        index < names.len(),
        "{suite} has only {} kernels",
        names.len()
    );
    match suite {
        Suite::SpecInt => match index {
            0 => pointer_chase(sink, scale, 6 << 20),
            1 => byte_compress(sink, scale),
            2 => branchy_bigcode(sink, scale, 40, 0.15),
            3 => board_eval(sink, scale),
            4 => integer_dp(sink, scale),
            5 => grid_search(sink, scale),
            6 => bytecode_interpreter(sink, scale),
            7 => streaming_int(sink, scale),
            _ => tree_walk(sink, scale),
        },
        Suite::SpecFp => match index {
            0 => stencil3d(sink, scale, 8 << 20),
            1 => stencil3d(sink, scale, 16 << 20),
            2 => nbody(sink, scale),
            3 => lattice(sink, scale),
            4 => spectral(sink, scale),
            5 => fdtd(sink, scale),
            6 => heavy_point_fp(sink, scale),
            _ => branchy_fp(sink, scale),
        },
        Suite::Parsec => match index {
            0 => parsec_fp(sink, scale, "blackscholes", 8, 64 << 10),
            1 => parsec_fp(sink, scale, "bodytrack", 12, 256 << 10),
            2 => parsec_int(sink, scale, "canneal", 10, 16 << 20),
            3 => parsec_int(sink, scale, "dedup", 12, 2 << 20),
            4 => parsec_fp(sink, scale, "fluidanimate", 10, 4 << 20),
            5 => parsec_fp(sink, scale, "streamcluster", 8, 1 << 20),
            6 => parsec_fp(sink, scale, "swaptions", 6, 128 << 10),
            _ => parsec_int(sink, scale, "x264", 16, 8 << 20),
        },
        Suite::Hpcc => match index {
            0 => dgemm(sink, scale, "hpl"),
            1 => dgemm(sink, scale, "dgemm"),
            2 => stream_triad(sink, scale),
            3 => transpose(sink, scale),
            4 => random_access(sink, scale),
            5 => fft_like(sink, scale),
            _ => message_bandwidth(sink, scale),
        },
        Suite::CloudSuite => cloud_service(sink, scale, names[index], 40 + index * 8),
        Suite::TpcC => tpcc(sink, scale),
    }
}

fn compute_stats(ctx: &ExecCtx<'_>, working_set: u64) -> RunStats {
    RunStats {
        input_bytes: working_set,
        intermediate_bytes: 0,
        output_bytes: working_set / 16,
        phases: vec![Phase::compute("kernel", ctx.ops_retired())],
    }
}

// ---------------------------------------------------------------------------
// Numeric kernels (SPECFP / HPCC)
// ---------------------------------------------------------------------------

fn stencil3d(sink: &mut dyn TraceSink, scale: Scale, bytes: u64) -> RunStats {
    let mut layout = CodeLayout::new();
    let main = layout.region("specfp::stencil", 48 * 1024);
    let mut ctx = ExecCtx::new(&layout, sink);
    let grid = ctx.heap_alloc(bytes, 64);
    let n = (bytes / 8).min(scale.n(120_000) as u64);
    ctx.frame(main, |ctx| {
        for _pass in 0..2 {
            let top = ctx.loop_start();
            for i in 1..n.saturating_sub(1) {
                ctx.read_fp(grid.addr((i - 1) * 8), 8);
                ctx.read_fp(grid.addr(i * 8), 8);
                ctx.read_fp(grid.addr((i + 1) * 8), 8);
                ctx.fp_ops(4);
                ctx.write_fp(grid.addr(i * 8), 8);
                ctx.loop_back(top, i + 2 < n);
            }
        }
    });
    let stats = compute_stats(&ctx, bytes);
    ctx.finish();
    stats
}

fn nbody(sink: &mut dyn TraceSink, scale: Scale) -> RunStats {
    let mut layout = CodeLayout::new();
    let main = layout.region("specfp::nbody", 64 * 1024);
    let mut ctx = ExecCtx::new(&layout, sink);
    let n = scale.n(700) as u64;
    let bodies = ctx.heap_alloc(n * 48, 64);
    ctx.frame(main, |ctx| {
        let outer = ctx.loop_start();
        for i in 0..n {
            let inner = ctx.loop_start();
            for j in 0..n.min(64) {
                ctx.read_fp(bodies.addr(i * 48 % bodies.len()), 8);
                ctx.read_fp(bodies.addr(j * 48 % bodies.len()), 8);
                ctx.fp_ops(9);
                ctx.loop_back(inner, j + 1 < n.min(64));
            }
            ctx.write_fp(bodies.addr(i * 48 % bodies.len()), 8);
            ctx.loop_back(outer, i + 1 < n);
        }
    });
    let stats = compute_stats(&ctx, n * 48);
    ctx.finish();
    stats
}

fn lattice(sink: &mut dyn TraceSink, scale: Scale) -> RunStats {
    // Lattice QCD style: per site, gather the 4-neighbourhood through an
    // index table (indirect, prefetch-hostile) and do heavy SU(3)-ish math.
    let mut layout = CodeLayout::new();
    let main = layout.region("specfp::milc", 64 * 1024);
    let mut ctx = ExecCtx::new(&layout, sink);
    let field = ctx.heap_alloc(12 << 20, 64);
    let sites = scale.n(60_000) as u64;
    ctx.frame(main, |ctx| {
        let mut x = 0x0005_117Eu64;
        let top = ctx.loop_start();
        for i in 0..sites {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            for _dir in 0..4u32 {
                let off = ((x >> 8) % (field.len() / 64)) * 64;
                ctx.read_fp(field.addr(off), 8);
                ctx.fp_ops(8);
            }
            ctx.write_fp(field.addr((i * 64) % field.len()), 8);
            ctx.loop_back(top, i + 1 < sites);
        }
    });
    let stats = compute_stats(&ctx, field.len());
    ctx.finish();
    stats
}

fn spectral(sink: &mut dyn TraceSink, scale: Scale) -> RunStats {
    fft_like(sink, scale)
}

fn dgemm(sink: &mut dyn TraceSink, scale: Scale, name: &str) -> RunStats {
    let mut layout = CodeLayout::new();
    let main = layout.region(format!("hpcc::{name}"), 32 * 1024);
    let mut ctx = ExecCtx::new(&layout, sink);
    let n = (scale.n(128) as u64).max(24); // n^3 flops
    let a = ctx.heap_alloc(n * n * 8, 64);
    let b = ctx.heap_alloc(n * n * 8, 64);
    let c = ctx.heap_alloc(n * n * 8, 64);
    ctx.frame(main, |ctx| {
        for i in 0..n {
            for j in 0..n {
                let top = ctx.loop_start();
                for k in 0..n {
                    ctx.read_fp(a.addr((i * n + k) * 8), 8);
                    ctx.read_fp(b.addr((k * n + j) * 8), 8);
                    ctx.fp_ops(2); // fused multiply-add as mul+add
                    ctx.loop_back(top, k + 1 < n);
                }
                ctx.write_fp(c.addr((i * n + j) * 8), 8);
            }
        }
    });
    let stats = compute_stats(&ctx, 3 * n * n * 8);
    ctx.finish();
    stats
}

fn stream_triad(sink: &mut dyn TraceSink, scale: Scale) -> RunStats {
    let mut layout = CodeLayout::new();
    let main = layout.region("hpcc::stream", 16 * 1024);
    let mut ctx = ExecCtx::new(&layout, sink);
    let n = scale.n(400_000) as u64;
    let a = ctx.heap_alloc(n * 8, 64);
    let b = ctx.heap_alloc(n * 8, 64);
    let c = ctx.heap_alloc(n * 8, 64);
    ctx.frame(main, |ctx| {
        let top = ctx.loop_start();
        for i in 0..n {
            ctx.read_fp(b.addr(i * 8), 8);
            ctx.read_fp(c.addr(i * 8), 8);
            ctx.fp_ops(2);
            ctx.write_fp(a.addr(i * 8), 8);
            ctx.loop_back(top, i + 1 < n);
        }
    });
    let stats = compute_stats(&ctx, 3 * n * 8);
    ctx.finish();
    stats
}

fn transpose(sink: &mut dyn TraceSink, scale: Scale) -> RunStats {
    let mut layout = CodeLayout::new();
    let main = layout.region("hpcc::ptrans", 16 * 1024);
    let mut ctx = ExecCtx::new(&layout, sink);
    let n = (scale.n(512) as u64).max(64);
    let src = ctx.heap_alloc(n * n * 8, 64);
    let dst = ctx.heap_alloc(n * n * 8, 64);
    ctx.frame(main, |ctx| {
        // Blocked 8x8 tiles: both source and destination are walked in
        // near-sequential bursts, as tuned PTRANS implementations do.
        let b = 8u64;
        for ib in (0..n).step_by(8) {
            for jb in (0..n).step_by(8) {
                let top = ctx.loop_start();
                for t in 0..b * b {
                    let (i, j) = (ib + t / b, jb + t % b);
                    ctx.read_fp(src.addr((i * n + j) * 8 % src.len()), 8);
                    // The tile is transposed in registers and flushed as a
                    // sequential burst (write-combining).
                    ctx.write_fp(dst.addr(((jb * n + ib) * 8 + t * 8) % dst.len()), 8);
                    ctx.fp_ops(1);
                    ctx.loop_back(top, t + 1 < b * b);
                }
            }
        }
    });
    let stats = compute_stats(&ctx, 2 * n * n * 8);
    ctx.finish();
    stats
}

fn random_access(sink: &mut dyn TraceSink, scale: Scale) -> RunStats {
    let mut layout = CodeLayout::new();
    let main = layout.region("hpcc::gups", 16 * 1024);
    let mut ctx = ExecCtx::new(&layout, sink);
    let table = ctx.heap_alloc(8 << 20, 64);
    let updates = scale.n(120_000) as u64;
    ctx.frame(main, |ctx| {
        let mut x: u64 = 0x1234_5678_9ABC_DEF0;
        let top = ctx.loop_start();
        for i in 0..updates {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let off = (x % (table.len() / 8)) * 8;
            ctx.int_other(8); // RNG chain + index arithmetic
            ctx.read(table.addr(off), 8);
            ctx.store(table.addr(off), 8);
            ctx.loop_back(top, i + 1 < updates);
        }
    });
    let stats = compute_stats(&ctx, table.len());
    ctx.finish();
    stats
}

fn fft_like(sink: &mut dyn TraceSink, scale: Scale) -> RunStats {
    let mut layout = CodeLayout::new();
    let main = layout.region("hpcc::fft", 48 * 1024);
    let mut ctx = ExecCtx::new(&layout, sink);
    let log_n = 14 + (scale.factor().log2().round() as i32).clamp(-6, 2);
    let n = 1u64 << log_n.max(8);
    let data = ctx.heap_alloc(n * 16, 64);
    ctx.frame(main, |ctx| {
        let mut stride = 1u64;
        while stride < n {
            let top = ctx.loop_start();
            let pairs = n / 2;
            for i in 0..pairs {
                let a = (i % (n / (2 * stride))) * 2 * stride + (i % stride);
                let b = a + stride;
                // Cache-blocked passes: indices fold into a 64 KiB tile,
                // as tuned FFTs arrange their butterflies.
                let tile = 64 * 1024 / 16;
                ctx.read_fp(data.addr(((a % tile) * 16) % data.len()), 8);
                ctx.read_fp(data.addr(((b % tile) * 16) % data.len()), 8);
                ctx.fp_ops(10); // complex butterfly
                ctx.write_fp(data.addr(((a % tile) * 16) % data.len()), 8);
                ctx.write_fp(data.addr(((b % tile) * 16) % data.len()), 8);
                ctx.loop_back(top, i + 1 < pairs);
            }
            stride *= 2;
        }
    });
    let stats = compute_stats(&ctx, n * 16);
    ctx.finish();
    stats
}

fn message_bandwidth(sink: &mut dyn TraceSink, scale: Scale) -> RunStats {
    let mut layout = CodeLayout::new();
    let main = layout.region("hpcc::beff", 24 * 1024);
    let mut ctx = ExecCtx::new(&layout, sink);
    let buf = ctx.heap_alloc(4 << 20, 64);
    let msgs = scale.n(2_000) as u64;
    ctx.frame(main, |ctx| {
        let top = ctx.loop_start();
        for m in 0..msgs {
            let base = (m * 4096) % buf.len();
            for w in 0..64u64 {
                ctx.read(buf.addr((base + w * 8) % buf.len()), 8);
                ctx.store(buf.addr((base + w * 8 + 2048) % buf.len()), 8);
            }
            ctx.loop_back(top, m + 1 < msgs);
        }
    });
    let stats = compute_stats(&ctx, buf.len());
    ctx.finish();
    stats
}

// ---------------------------------------------------------------------------
// Integer kernels (SPECINT)
// ---------------------------------------------------------------------------

fn pointer_chase(sink: &mut dyn TraceSink, scale: Scale, bytes: u64) -> RunStats {
    let mut layout = CodeLayout::new();
    let main = layout.region("specint::mcf", 32 * 1024);
    let mut ctx = ExecCtx::new(&layout, sink);
    let table = ctx.heap_alloc(bytes, 64);
    let slots = table.len() / 8;
    let hops = scale.n(250_000) as u64;
    ctx.frame(main, |ctx| {
        // Pseudo-random pointer walk with realistic locality: most hops
        // stay in a 256 KiB neighbourhood, the tail jumps anywhere.
        let mut pos: u64 = 1;
        let mut x: u64 = 0xDEAD_BEEF;
        let top = ctx.loop_start();
        for i in 0..hops {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let window = 256 * 1024 / 8;
            pos = if !x.is_multiple_of(5) {
                (pos & !(window - 1)) + (x % window)
            } else {
                x % slots
            };
            ctx.int_other(4);
            ctx.read(table.addr(pos * 8), 8);
            ctx.cond_branch(pos.is_multiple_of(3));
            ctx.loop_back(top, i + 1 < hops);
        }
    });
    let stats = compute_stats(&ctx, bytes);
    ctx.finish();
    stats
}

fn byte_compress(sink: &mut dyn TraceSink, scale: Scale) -> RunStats {
    let mut layout = CodeLayout::new();
    let main = layout.region("specint::bzip2", 64 * 1024);
    let mut ctx = ExecCtx::new(&layout, sink);
    let buf = ctx.heap_alloc(4 << 20, 64);
    let hist = ctx.heap_alloc(256 * 8, 64);
    let n = scale.n(300_000) as u64;
    ctx.frame(main, |ctx| {
        let mut x = 0x9E37u64;
        let top = ctx.loop_start();
        for i in 0..n {
            ctx.read(buf.addr((i * 8) % buf.len()), 8);
            x = x.wrapping_mul(25_214_903_917).wrapping_add(11);
            let byte = (x >> 16) & 0xFF;
            ctx.int_other(3);
            ctx.read(hist.addr(byte * 8), 8);
            ctx.store(hist.addr(byte * 8), 8);
            ctx.cond_branch(byte < 200);
            ctx.loop_back(top, i + 1 < n);
        }
    });
    let stats = compute_stats(&ctx, buf.len());
    ctx.finish();
    stats
}

fn branchy_bigcode(sink: &mut dyn TraceSink, scale: Scale, regions: usize, _x: f64) -> RunStats {
    // gcc-like: a few hundred KiB of code, data-dependent routine choice.
    let mut layout = CodeLayout::new();
    let routines: Vec<Routine> = (0..regions)
        .map(|i| {
            Routine::register(
                &mut layout,
                format!("specint::gcc_{i:02}"),
                8 * 1024,
                40,
                60,
            )
        })
        .collect();
    let mut ctx = ExecCtx::new(&layout, sink);
    let scratch = ctx.scratch_alloc(32 * 1024, 64);
    let mix = OpMix::integer_compute();
    let passes = scale.n(2_000) as u64;
    let root = routines[0].region;
    ctx.frame(root, |ctx| {
        let mut x = 7u64;
        for p in 0..passes {
            x = x
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1442695040888963407);
            // Hot head, long tail: most calls go to a few routines.
            let r = if !x.is_multiple_of(4) {
                (x >> 8) as usize % 6
            } else {
                (x >> 8) as usize % routines.len()
            };
            routines[r].run(ctx, &mix, &scratch);
            let _ = p;
        }
    });
    let stats = compute_stats(&ctx, 1 << 20);
    ctx.finish();
    stats
}

fn board_eval(sink: &mut dyn TraceSink, scale: Scale) -> RunStats {
    let mut layout = CodeLayout::new();
    let main = layout.region("specint::gobmk", 96 * 1024);
    let mut ctx = ExecCtx::new(&layout, sink);
    let board = ctx.heap_alloc(64 * 1024, 64);
    let n = scale.n(120_000) as u64;
    ctx.frame(main, |ctx| {
        let mut x = 3u64;
        let top = ctx.loop_start();
        for i in 0..n {
            x ^= x << 13;
            x ^= x >> 7;
            ctx.read(board.addr((x % (board.len() / 8)) * 8), 8);
            ctx.int_other(2);
            // Data-dependent branches: one biased, one coin-flip.
            ctx.cond_branch(x & 7 < 6);
            ctx.cond_branch(x & 1 == 0);
            ctx.loop_back(top, i + 1 < n);
        }
    });
    let stats = compute_stats(&ctx, board.len());
    ctx.finish();
    stats
}

fn integer_dp(sink: &mut dyn TraceSink, scale: Scale) -> RunStats {
    let mut layout = CodeLayout::new();
    let main = layout.region("specint::hmmer", 48 * 1024);
    let mut ctx = ExecCtx::new(&layout, sink);
    let rows = scale.n(600) as u64;
    let cols = 256u64;
    let dp = ctx.heap_alloc(2 * cols * 8, 64);
    ctx.frame(main, |ctx| {
        for r in 0..rows {
            let top = ctx.loop_start();
            for c in 1..cols {
                ctx.read(dp.addr(((r % 2) * cols + c - 1) * 8), 8);
                ctx.read(dp.addr((((r + 1) % 2) * cols + c) * 8), 8);
                ctx.int_other(4);
                ctx.cond_branch(c % 5 != 0);
                ctx.store(dp.addr(((r % 2) * cols + c) * 8), 8);
                ctx.loop_back(top, c + 1 < cols);
            }
        }
    });
    let stats = compute_stats(&ctx, 2 * cols * 8);
    ctx.finish();
    stats
}

fn grid_search(sink: &mut dyn TraceSink, scale: Scale) -> RunStats {
    let mut layout = CodeLayout::new();
    let main = layout.region("specint::astar", 64 * 1024);
    let mut ctx = ExecCtx::new(&layout, sink);
    let grid = ctx.heap_alloc(3 << 20, 64);
    let steps = scale.n(150_000) as u64;
    ctx.frame(main, |ctx| {
        let mut pos = 0u64;
        let top = ctx.loop_start();
        for i in 0..steps {
            ctx.read(grid.addr((pos * 8) % grid.len()), 8);
            ctx.int_other(3);
            let dir = (pos ^ i) % 4;
            ctx.cond_branch(dir < 2);
            pos = pos.wrapping_add(
                [1, 1024, u64::MAX, 1u64.wrapping_neg().wrapping_mul(1024)][dir as usize],
            ) % (grid.len() / 8);
            ctx.loop_back(top, i + 1 < steps);
        }
    });
    let stats = compute_stats(&ctx, grid.len());
    ctx.finish();
    stats
}

/// perlbench-like: a bytecode interpreter — indirect dispatch per opcode
/// through a handler table, the classic BTB/indirect-predictor stressor.
fn bytecode_interpreter(sink: &mut dyn TraceSink, scale: Scale) -> RunStats {
    let mut layout = CodeLayout::new();
    let dispatch = layout.region("specint::perl_dispatch", 16 * 1024);
    let handlers: Vec<Routine> = (0..24)
        .map(|i| {
            Routine::register(
                &mut layout,
                format!("specint::perl_op_{i:02}"),
                8 * 1024,
                10,
                40,
            )
        })
        .collect();
    let mut ctx = ExecCtx::new(&layout, sink);
    let bytecode = ctx.heap_alloc(256 * 1024, 64);
    let scratch = ctx.scratch_alloc(16 * 1024, 64);
    let mix = OpMix::integer_compute();
    let ops = scale.n(60_000) as u64;
    ctx.frame(dispatch, |ctx| {
        let mut x = 0x09E1_5EEDu64;
        let top = ctx.loop_start();
        for i in 0..ops {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            ctx.read(bytecode.addr((i * 4) % bytecode.len()), 4); // fetch opcode
            ctx.int_other(2);
            let op = (x as usize) % handlers.len();
            let routine = handlers[op];
            ctx.dispatch(routine.region, |ctx| {
                ctx.boilerplate(&mix, u64::from(routine.units), &scratch);
            });
            ctx.loop_back(top, i + 1 < ops);
        }
    });
    let stats = compute_stats(&ctx, bytecode.len());
    ctx.finish();
    stats
}

/// libquantum-like: long sequential integer sweeps over a big state vector
/// (prefetch-friendly, branch-light).
fn streaming_int(sink: &mut dyn TraceSink, scale: Scale) -> RunStats {
    let mut layout = CodeLayout::new();
    let main = layout.region("specint::libquantum", 24 * 1024);
    let mut ctx = ExecCtx::new(&layout, sink);
    let state = ctx.heap_alloc(32 << 20, 64);
    let n = scale.n(500_000) as u64;
    ctx.frame(main, |ctx| {
        let top = ctx.loop_start();
        for i in 0..n {
            let off = (i * 8) % state.len();
            ctx.read(state.addr(off), 8);
            ctx.int_other(3); // toggle the qubit bits
            ctx.store(state.addr(off), 8);
            ctx.loop_back(top, i + 1 < n);
        }
    });
    let stats = compute_stats(&ctx, state.len());
    ctx.finish();
    stats
}

/// xalancbmk-like: pointer-heavy DOM-tree walk with virtual dispatch.
fn tree_walk(sink: &mut dyn TraceSink, scale: Scale) -> RunStats {
    let mut layout = CodeLayout::new();
    let main = layout.region("specint::xalanc", 48 * 1024);
    let visitors: Vec<Routine> = (0..6)
        .map(|i| {
            Routine::register(
                &mut layout,
                format!("specint::xalanc_visit_{i}"),
                12 * 1024,
                8,
                50,
            )
        })
        .collect();
    let mut ctx = ExecCtx::new(&layout, sink);
    let nodes = ctx.heap_alloc(8 << 20, 64);
    let scratch = ctx.scratch_alloc(16 * 1024, 64);
    let mix = OpMix::integer_compute();
    let visits = scale.n(80_000) as u64;
    ctx.frame(main, |ctx| {
        let mut pos = 1u64;
        let top = ctx.loop_start();
        for i in 0..visits {
            // Pointer-chase to the next node (parent/child/sibling links).
            pos = pos.wrapping_mul(2_862_933_555_777_941_757).wrapping_add(3) % (nodes.len() / 64);
            ctx.read(nodes.addr(pos * 64), 8);
            ctx.int_other(2);
            let kind = (pos as usize) % visitors.len();
            let routine = visitors[kind];
            ctx.dispatch(routine.region, |ctx| {
                ctx.boilerplate(&mix, u64::from(routine.units), &scratch);
            });
            ctx.loop_back(top, i + 1 < visits);
        }
    });
    let stats = compute_stats(&ctx, nodes.len());
    ctx.finish();
    stats
}

/// GemsFDTD-like: three coupled field arrays updated per cell (memory-bound
/// FP streaming).
fn fdtd(sink: &mut dyn TraceSink, scale: Scale) -> RunStats {
    let mut layout = CodeLayout::new();
    let main = layout.region("specfp::gemsfdtd", 40 * 1024);
    let mut ctx = ExecCtx::new(&layout, sink);
    let e = ctx.heap_alloc(8 << 20, 64);
    let h = ctx.heap_alloc(8 << 20, 64);
    let coeff = ctx.heap_alloc(8 << 20, 64);
    let n = scale.n(250_000) as u64;
    ctx.frame(main, |ctx| {
        let top = ctx.loop_start();
        for i in 0..n {
            let off = (i * 8) % e.len();
            ctx.read_fp(e.addr(off), 8);
            ctx.read_fp(h.addr(off), 8);
            ctx.read_fp(coeff.addr(off), 8);
            ctx.fp_ops(6);
            ctx.write_fp(e.addr(off), 8);
            ctx.loop_back(top, i + 1 < n);
        }
    });
    let stats = compute_stats(&ctx, 3 * e.len());
    ctx.finish();
    stats
}

/// cactusADM-like: very heavy FP work per grid point (compute-bound).
fn heavy_point_fp(sink: &mut dyn TraceSink, scale: Scale) -> RunStats {
    let mut layout = CodeLayout::new();
    let main = layout.region("specfp::cactus", 64 * 1024);
    let mut ctx = ExecCtx::new(&layout, sink);
    let grid = ctx.heap_alloc(2 << 20, 64);
    let n = scale.n(40_000) as u64;
    ctx.frame(main, |ctx| {
        let top = ctx.loop_start();
        for i in 0..n {
            let off = (i * 64) % grid.len();
            ctx.read_fp(grid.addr(off), 8);
            ctx.read_fp(grid.addr((off + 8) % grid.len()), 8);
            ctx.fp_ops(40); // the BSSN update's long arithmetic chain
            ctx.write_fp(grid.addr(off), 8);
            ctx.loop_back(top, i + 1 < n);
        }
    });
    let stats = compute_stats(&ctx, grid.len());
    ctx.finish();
    stats
}

/// povray-like: FP compute with data-dependent branching (ray hits).
fn branchy_fp(sink: &mut dyn TraceSink, scale: Scale) -> RunStats {
    let mut layout = CodeLayout::new();
    let main = layout.region("specfp::povray", 96 * 1024);
    let mut ctx = ExecCtx::new(&layout, sink);
    let scene = ctx.heap_alloc(4 << 20, 64);
    let rays = scale.n(120_000) as u64;
    ctx.frame(main, |ctx| {
        let mut x = 0x0000_0090_D1CE_u64;
        let top = ctx.loop_start();
        for i in 0..rays {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            ctx.read_fp(scene.addr((x % (scene.len() / 64)) * 64), 8);
            ctx.fp_ops(8);
            let hit = x & 3 == 0; // ~25% of rays hit, data-dependent
            ctx.cond_branch(hit);
            if hit {
                ctx.fp_ops(12); // shading
                ctx.write_fp(scene.addr((x >> 8) % (scene.len() - 8)), 8);
            }
            ctx.loop_back(top, i + 1 < rays);
        }
    });
    let stats = compute_stats(&ctx, scene.len());
    ctx.finish();
    stats
}

// ---------------------------------------------------------------------------
// PARSEC-class kernels
// ---------------------------------------------------------------------------

fn parsec_fp(
    sink: &mut dyn TraceSink,
    scale: Scale,
    name: &str,
    flops_per_elem: u32,
    working_set: u64,
) -> RunStats {
    let mut layout = CodeLayout::new();
    let main = layout.region(format!("parsec::{name}"), 16 * 1024);
    // Phase routines: setup, physics, collision, output — together they
    // give PARSEC its ~128 KiB instruction footprint (paper Figure 6).
    let phases: Vec<Routine> = (0..4)
        .map(|i| {
            Routine::register(
                &mut layout,
                format!("parsec::{name}_phase{i}"),
                24 * 1024,
                16,
                100,
            )
        })
        .collect();
    let mut ctx = ExecCtx::new(&layout, sink);
    let data = ctx.heap_alloc(working_set, 64);
    let scratch = ctx.scratch_alloc(8 * 1024, 64);
    let mix = OpMix::numeric();
    let elems = scale.n(120_000) as u64;
    ctx.frame(main, |ctx| {
        for (c, chunk) in (0..elems).step_by(64).enumerate() {
            phases[c % phases.len()].run(ctx, &mix, &scratch);
            let top = ctx.loop_start();
            let n = 64.min(elems - chunk);
            for i in 0..n {
                let off = ((chunk + i) * 32) % data.len();
                ctx.read_fp(data.addr(off), 8);
                ctx.fp_ops(flops_per_elem);
                ctx.write_fp(data.addr(off), 8);
                ctx.loop_back(top, i + 1 < n);
            }
        }
    });
    let stats = compute_stats(&ctx, working_set);
    ctx.finish();
    stats
}

fn parsec_int(
    sink: &mut dyn TraceSink,
    scale: Scale,
    name: &str,
    int_per_elem: u32,
    working_set: u64,
) -> RunStats {
    let mut layout = CodeLayout::new();
    let main = layout.region(format!("parsec::{name}"), 16 * 1024);
    let phases: Vec<Routine> = (0..4)
        .map(|i| {
            Routine::register(
                &mut layout,
                format!("parsec::{name}_phase{i}"),
                24 * 1024,
                16,
                100,
            )
        })
        .collect();
    let mut ctx = ExecCtx::new(&layout, sink);
    let data = ctx.heap_alloc(working_set, 64);
    let scratch = ctx.scratch_alloc(8 * 1024, 64);
    let mix = OpMix::integer_compute();
    let elems = scale.n(120_000) as u64;
    ctx.frame(main, |ctx| {
        let mut x = 0xBEEFu64;
        for (c, chunk) in (0..elems).step_by(64).enumerate() {
            phases[c % phases.len()].run(ctx, &mix, &scratch);
            let top = ctx.loop_start();
            let n = 64.min(elems - chunk);
            for i in 0..n {
                x ^= x << 13;
                x ^= x >> 7;
                let off = if name == "canneal" {
                    // canneal does random swaps over a large working set.
                    (x % (data.len() / 8)) * 8
                } else {
                    ((chunk + i) * 16) % data.len()
                };
                ctx.read(data.addr(off), 8);
                ctx.int_other(int_per_elem);
                ctx.cond_branch(x & 3 != 0);
                ctx.store(data.addr(off), 8);
                ctx.loop_back(top, i + 1 < n);
            }
        }
    });
    let stats = compute_stats(&ctx, working_set);
    ctx.finish();
    stats
}

// ---------------------------------------------------------------------------
// CloudSuite-class services and TPC-C
// ---------------------------------------------------------------------------

fn cloud_service(sink: &mut dyn TraceSink, scale: Scale, name: &str, farm: usize) -> RunStats {
    let farm = farm.min(28);
    let mut layout = CodeLayout::new();
    let handlers: Vec<Routine> = (0..farm)
        .map(|i| {
            Routine::register(
                &mut layout,
                format!("cloudsuite::{name}_{i:02}"),
                24 * 1024,
                26,
                80,
            )
        })
        .collect();
    let listener = Routine::register(
        &mut layout,
        format!("cloudsuite::{name}_listener"),
        48 * 1024,
        22,
        70,
    );
    let parser = Routine::register(
        &mut layout,
        format!("cloudsuite::{name}_parser"),
        16 * 1024,
        0,
        20,
    );
    let mut ctx = ExecCtx::new(&layout, sink);
    let data = ctx.heap_alloc(16 << 20, 64);
    let scratch = ctx.scratch_alloc(32 * 1024, 64);
    let mix = OpMix::framework();
    let requests = scale.n(8_000) as u64;
    let mut served_bytes = 0u64;
    ctx.frame(listener.region, |ctx| {
        let mut x = 0xC10D_5EED_u64;
        for r in 0..requests {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            listener.run(ctx, &mix, &scratch);
            // Each request walks 3 stochastic handler stages...
            for hop in 0..3 {
                let h = ((x >> (8 * hop)) as usize) % handlers.len();
                let routine = handlers[h];
                ctx.dispatch(routine.region, |ctx| {
                    ctx.frame_spread(routine.region, routine.spread, |ctx| {
                        ctx.boilerplate(&mix, u64::from(routine.units), &scratch);
                    });
                });
            }
            // ...then parses its payload in a hot loop and touches a random
            // object in the big heap.
            ctx.frame(parser.region, |ctx| {
                let off = (x % (data.len() / 64)) * 64;
                let top = ctx.loop_start();
                for w in 0..48u64 {
                    ctx.read(data.addr((off + w * 8) % data.len()), 8);
                    ctx.int_other(2);
                    ctx.loop_back(top, w + 1 < 48);
                }
            });
            served_bytes += 384;
            let _ = r;
        }
    });
    let stats = RunStats {
        input_bytes: served_bytes,
        intermediate_bytes: 0,
        output_bytes: served_bytes,
        phases: vec![Phase {
            name: "serve".into(),
            instructions: ctx.ops_retired(),
            disk_read_bytes: served_bytes * 4,
            disk_write_bytes: 0,
            net_bytes: served_bytes,
            io_parallelism: 16.0,
        }],
    };
    ctx.finish();
    stats
}

fn tpcc(sink: &mut dyn TraceSink, scale: Scale) -> RunStats {
    let mut layout = CodeLayout::new();
    let handlers: Vec<Routine> = (0..16)
        .map(|i| Routine::register(&mut layout, format!("tpcc::txn_{i:02}"), 20 * 1024, 30, 75))
        .collect();
    let btree = Routine::register(&mut layout, "tpcc::btree", 32 * 1024, 0, 40);
    let mut ctx = ExecCtx::new(&layout, sink);
    let tables = ctx.heap_alloc(8 << 20, 64);
    let scratch = ctx.scratch_alloc(32 * 1024, 64);
    // TPC-C's 30% branch ratio: a branch-heavy mix.
    let mix = OpMix::new(22, 8, 14, 18, 0, 34);
    let txns = scale.n(10_000) as u64;
    let mut rows_touched = 0u64;
    ctx.frame(handlers[0].region, |ctx| {
        let mut x = 0x7BCC_5EEDu64;
        for t in 0..txns {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let h = (x as usize) % handlers.len();
            let routine = handlers[h];
            ctx.dispatch(routine.region, |ctx| {
                ctx.frame_spread(routine.region, routine.spread, |ctx| {
                    ctx.boilerplate(&mix, u64::from(routine.units), &scratch);
                });
            });
            // B-tree descent: ~4 levels of key compares + row update.
            // 80% of transactions hit the hot 1 MiB of the table space.
            let space = if !x.is_multiple_of(5) {
                1 << 20
            } else {
                tables.len()
            };
            ctx.frame(btree.region, |ctx| {
                for level in 0..4u64 {
                    let off = ((x >> (level * 8)) % (space / 64)) * 64;
                    ctx.read(tables.addr(off), 8);
                    ctx.int_other(2);
                    ctx.cond_branch((x >> level) & 1 == 0);
                }
                let off = (x % (space / 64)) * 64;
                ctx.store(tables.addr(off), 8);
            });
            rows_touched += 5;
            let _ = t;
        }
    });
    let stats = RunStats {
        input_bytes: rows_touched * 128,
        intermediate_bytes: 0,
        output_bytes: rows_touched * 64,
        phases: vec![Phase {
            name: "transactions".into(),
            instructions: ctx.ops_retired(),
            disk_read_bytes: rows_touched * 128,
            disk_write_bytes: rows_touched * 64,
            net_bytes: rows_touched * 32,
            io_parallelism: 12.0,
        }],
    };
    ctx.finish();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdb_trace::MixSink;

    fn mix_for(suite: Suite, index: usize) -> bdb_trace::InstructionMix {
        let mut sink = MixSink::new();
        let _ = run_suite_kernel(&mut sink, Scale::tiny(), suite, index);
        sink.mix()
    }

    #[test]
    fn every_kernel_runs() {
        for suite in [
            Suite::SpecInt,
            Suite::SpecFp,
            Suite::Parsec,
            Suite::Hpcc,
            Suite::CloudSuite,
            Suite::TpcC,
        ] {
            for i in 0..kernel_names(suite).len() {
                let mix = mix_for(suite, i);
                assert!(
                    mix.total() > 1_000,
                    "{suite} kernel {i} too small: {}",
                    mix.total()
                );
            }
        }
    }

    #[test]
    fn specfp_is_fp_dominated() {
        let mix = mix_for(Suite::SpecFp, 0);
        assert!(mix.fp_ratio() > 0.25, "fp ratio {}", mix.fp_ratio());
        assert!(
            mix.branch_ratio() < 0.12,
            "branch ratio {}",
            mix.branch_ratio()
        );
    }

    #[test]
    fn hpcc_dgemm_is_fp_dominated() {
        let mix = mix_for(Suite::Hpcc, 1);
        assert!(mix.fp_ratio() > 0.2, "fp ratio {}", mix.fp_ratio());
    }

    #[test]
    fn specint_has_no_fp_and_more_branches() {
        let mix = mix_for(Suite::SpecInt, 1);
        assert_eq!(mix.fp, 0);
        assert!(
            mix.branch_ratio() > 0.10,
            "branch ratio {}",
            mix.branch_ratio()
        );
    }

    #[test]
    fn tpcc_is_branchy() {
        let mix = mix_for(Suite::TpcC, 0);
        assert!(
            mix.branch_ratio() > 0.2,
            "branch ratio {}",
            mix.branch_ratio()
        );
    }

    #[test]
    fn interpreter_is_indirect_heavy() {
        use bdb_trace::{BranchKind, MicroOp, TraceSink};
        #[derive(Default)]
        struct IndirectCount {
            indirect: u64,
            total: u64,
        }
        impl TraceSink for IndirectCount {
            fn exec(&mut self, _pc: u64, op: MicroOp) {
                self.total += 1;
                if let MicroOp::Branch {
                    kind: BranchKind::Indirect,
                    ..
                } = op
                {
                    self.indirect += 1;
                }
            }
        }
        let mut sink = IndirectCount::default();
        let _ = run_suite_kernel(&mut sink, Scale::tiny(), Suite::SpecInt, 6);
        assert!(
            sink.indirect as f64 / sink.total as f64 > 0.02,
            "interpreter should dispatch indirectly: {}/{}",
            sink.indirect,
            sink.total
        );
    }

    #[test]
    fn streaming_kernel_is_branch_light() {
        let mix = mix_for(Suite::SpecInt, 7);
        assert!(
            mix.branch_ratio() < 0.22,
            "branch ratio {}",
            mix.branch_ratio()
        );
        assert!(mix.load_ratio() > 0.10);
    }

    #[test]
    fn cactus_like_kernel_is_fp_bound() {
        let mix = mix_for(Suite::SpecFp, 6);
        assert!(mix.fp_ratio() > 0.5, "fp ratio {}", mix.fp_ratio());
    }

    #[test]
    #[should_panic(expected = "kernels")]
    fn out_of_range_kernel_panics() {
        let mut sink = MixSink::new();
        let _ = run_suite_kernel(&mut sink, Scale::tiny(), Suite::TpcC, 5);
    }
}
