//! Micro-op trace model — the contract between workloads and the
//! micro-architecture simulator.
//!
//! The paper measures real binaries with hardware performance counters; this
//! reproduction instead executes **real algorithms instrumented at the
//! micro-op level**. Every workload (and every miniature software stack it
//! runs on) performs its actual computation in Rust while simultaneously
//! narrating that computation as a stream of [`MicroOp`]s — loads, stores,
//! integer/floating-point operations, and branches — each attributed to a
//! program counter inside a named [`region::CodeRegion`].
//!
//! The stream is consumed online by any [`TraceSink`]; the cycle-level
//! consumer lives in `bdb-sim`, while this crate ships lightweight sinks for
//! instruction-mix statistics and testing.
//!
//! # Architecture
//!
//! * [`op`] — the micro-op vocabulary ([`MicroOp`], [`IntPurpose`],
//!   [`BranchKind`]).
//! * [`region`] — code-address-space management: each framework routine or
//!   kernel loop owns a [`region::CodeRegion`]; instruction footprint emerges
//!   from how much of each region executions actually touch.
//! * [`mem`] — the simulated data address space ([`mem::SimAlloc`],
//!   [`mem::MemRegion`]); workloads allocate their arrays/hash tables here so
//!   data-cache behaviour emerges from real access patterns.
//! * [`ctx`] — [`ExecCtx`], the instrumented execution context with frame
//!   (call/return) tracking, loop helpers, and boilerplate emitters.
//! * [`mix`] — retired-instruction mix accounting (paper Figures 1 and 2).
//! * [`sink`] — the [`TraceSink`] trait and utility sinks.
//! * [`buffer`] — [`TraceBuffer`], the record-once/replay-many trace store
//!   behind the fused capacity sweep in `bdb-sim`.
//!
//! # Examples
//!
//! ```
//! use bdb_trace::{CodeLayout, ExecCtx, MixSink};
//!
//! let mut layout = CodeLayout::new();
//! let kernel = layout.region("kernel", 4096);
//! let mut sink = MixSink::default();
//! let mut ctx = ExecCtx::new(&layout, &mut sink);
//! let buf = ctx.heap_alloc(1024, 8);
//! ctx.frame(kernel, |ctx| {
//!     for i in 0..128u64 {
//!         ctx.read(buf.addr(i * 8), 8);
//!         ctx.int_other(1);
//!         ctx.cond_branch(i % 2 == 0);
//!     }
//! });
//! let mix = sink.mix();
//! assert_eq!(mix.loads, 128);
//! assert!(mix.branches >= 128);
//! ```

pub mod buffer;
pub mod ctx;
pub mod mem;
pub mod mix;
pub mod op;
pub mod region;
pub mod reuse;
pub mod sink;

pub use buffer::{TraceBuffer, TraceBufferPool};
pub use ctx::{ExecCtx, OpMix};
pub use mem::{MemRegion, SimAlloc};
pub use mix::InstructionMix;
pub use op::{BranchKind, IntPurpose, MicroOp};
pub use region::{CodeLayout, CodeRegion, RegionId};
pub use reuse::{ReuseHistogram, ReuseProfiler, ReuseSink};
pub use sink::{CountingSink, FanoutSink, MixSink, NullSink, TeeSink, TraceEvent, TraceSink};
