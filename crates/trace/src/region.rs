//! Code-address-space management.
//!
//! Every routine a workload or software stack executes owns a
//! [`CodeRegion`]: a contiguous span of instruction addresses. Executing
//! through the instrumented context advances a cursor inside the current
//! region, so the *instruction footprint* — how many distinct instruction
//! bytes a workload touches, the quantity behind the paper's Figures 6 and
//! 9 — emerges from which routines run and how far execution walks into
//! each of them. Deep stacks (Hadoop-like) register megabytes of routine
//! code; thin stacks (MPI-like) register little, which is precisely the
//! mechanism behind the paper's observation O4.

use serde::{Deserialize, Serialize};

/// Base virtual address of the code segment.
pub const CODE_BASE: u64 = 0x0040_0000;

/// Alignment of every region (one 4 KiB page).
pub const REGION_ALIGN: u64 = 4096;

/// Identifier of a registered [`CodeRegion`] within a [`CodeLayout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RegionId(pub(crate) u32);

impl RegionId {
    /// Raw index of this region in its layout.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A contiguous span of instruction addresses owned by one routine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CodeRegion {
    /// Human-readable routine name, e.g. `"mapreduce::spill_sort"`.
    pub name: String,
    /// First instruction address.
    pub base: u64,
    /// Size in bytes.
    pub size: u64,
}

impl CodeRegion {
    /// Address one past the last instruction byte.
    pub fn end(&self) -> u64 {
        self.base + self.size
    }
}

/// The code layout of one simulated process: an append-only registry of
/// [`CodeRegion`]s packed into the code segment.
///
/// # Examples
///
/// ```
/// use bdb_trace::CodeLayout;
///
/// let mut layout = CodeLayout::new();
/// let a = layout.region("stack::reader", 16 * 1024);
/// let b = layout.region("stack::writer", 8 * 1024);
/// assert_ne!(a, b);
/// assert!(layout.get(b).base >= layout.get(a).end());
/// assert_eq!(layout.total_code_bytes(), 24 * 1024);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CodeLayout {
    regions: Vec<CodeRegion>,
    next_base: u64,
}

impl CodeLayout {
    /// Creates an empty layout.
    pub fn new() -> Self {
        Self {
            regions: Vec::new(),
            next_base: CODE_BASE,
        }
    }

    /// Registers a routine occupying `size` bytes of code and returns its id.
    ///
    /// Regions are page-aligned so that distinct routines never share cache
    /// lines or TLB pages, as separate functions in a real binary rarely do.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    pub fn region(&mut self, name: impl Into<String>, size: u64) -> RegionId {
        assert!(size > 0, "code region must be non-empty");
        // bdb-lint: allow(panic-hygiene): >4G regions is synthetic-trace abuse.
        let id = RegionId(u32::try_from(self.regions.len()).expect("too many regions"));
        let base = self.next_base;
        let padded = size.div_ceil(REGION_ALIGN) * REGION_ALIGN;
        self.next_base += padded;
        self.regions.push(CodeRegion {
            name: name.into(),
            base,
            size,
        });
        id
    }

    /// Looks up a region.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this layout.
    pub fn get(&self, id: RegionId) -> &CodeRegion {
        &self.regions[id.index()]
    }

    /// Number of registered regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Returns `true` if no regions are registered.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// Sum of all region sizes (static code bytes).
    pub fn total_code_bytes(&self) -> u64 {
        self.regions.iter().map(|r| r.size).sum()
    }

    /// Iterator over all regions in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &CodeRegion> {
        self.regions.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap() {
        let mut l = CodeLayout::new();
        let ids: Vec<_> = (0..20)
            .map(|i| l.region(format!("r{i}"), 1000 + i * 37))
            .collect();
        for w in ids.windows(2) {
            let a = l.get(w[0]);
            let b = l.get(w[1]);
            assert!(a.end() <= b.base);
        }
    }

    #[test]
    fn regions_are_page_aligned() {
        let mut l = CodeLayout::new();
        let a = l.region("a", 5);
        let b = l.region("b", 5000);
        assert_eq!(l.get(a).base % REGION_ALIGN, 0);
        assert_eq!(l.get(b).base % REGION_ALIGN, 0);
    }

    #[test]
    fn lookup_returns_registered_metadata() {
        let mut l = CodeLayout::new();
        let id = l.region("kernel::inner", 4096);
        let r = l.get(id);
        assert_eq!(r.name, "kernel::inner");
        assert_eq!(r.size, 4096);
        assert_eq!(r.base, CODE_BASE);
        assert_eq!(l.len(), 1);
        assert!(!l.is_empty());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_size_region_panics() {
        let mut l = CodeLayout::new();
        let _ = l.region("bad", 0);
    }
}
