//! Trace-once/replay-many: a flat, chunked SoA buffer of dynamic micro-ops.
//!
//! Re-running a workload generator once per consumer (the capacity sweep
//! re-executed it once per L1 size) pays the full generation cost — hash
//! tables, sort networks, graph walks — for every observation. A
//! [`TraceBuffer`] records the `(pc, op)` stream once, column-wise
//! (pc/arg/kind/aux), in fixed-capacity chunks, and replays it to any
//! number of sinks through [`TraceSink::exec_batch`]: one virtual call per
//! chunk instead of one per op, with the per-op decode loop fully
//! monomorphic. Chunks are recycled by [`TraceBuffer::clear`] and
//! [`TraceBufferPool`], so parallel sweep workers reuse allocations.
//!
//! The in-memory encoding is an internal detail; round-tripping is
//! exhaustively tested (`MicroOp` has ~11 shapes) and replay equivalence
//! with direct streaming is proptested in `tests/buffer_props.rs`. For
//! persistence, [`TraceBuffer::spill`] serializes the chunks as
//! concatenated BDBC `TraceChunk` records (`bdb-codec`'s checksummed
//! columnar container) and [`TraceBuffer::load`] restores them — replay
//! after a spill/load round trip is byte-identical to replaying the
//! original buffer.

use crate::op::{BranchKind, IntPurpose, MicroOp};
use crate::sink::{TraceEvent, TraceSink};
use bdb_codec::{columnar, CodecError};
use std::sync::{Mutex, PoisonError};

/// Events per chunk: 64 Ki ops ≈ 1.1 MiB of columns — large enough that
/// per-chunk dispatch cost vanishes, small enough to stay cache-friendly
/// and make pooling worthwhile.
const DEFAULT_CHUNK_EVENTS: usize = 1 << 16;

// Column encoding: one kind byte per op, with `arg` carrying the address
// (loads/stores) or branch target and `aux` the access size.
const K_INT_INT_ADDR: u8 = 0;
const K_INT_FP_ADDR: u8 = 1;
const K_INT_OTHER: u8 = 2;
const K_FP: u8 = 3;
const K_LOAD: u8 = 4;
const K_STORE: u8 = 5;
/// Branches occupy `6 + branch_kind * 2 + taken` (10 codes).
const K_BRANCH_BASE: u8 = 6;

fn encode(op: MicroOp) -> (u8, u64, u8) {
    match op {
        MicroOp::Int {
            purpose: IntPurpose::IntAddr,
        } => (K_INT_INT_ADDR, 0, 0),
        MicroOp::Int {
            purpose: IntPurpose::FpAddr,
        } => (K_INT_FP_ADDR, 0, 0),
        MicroOp::Int {
            purpose: IntPurpose::Other,
        } => (K_INT_OTHER, 0, 0),
        MicroOp::Fp => (K_FP, 0, 0),
        MicroOp::Load { addr, size } => (K_LOAD, addr, size),
        MicroOp::Store { addr, size } => (K_STORE, addr, size),
        MicroOp::Branch {
            taken,
            target,
            kind,
        } => {
            let kind_code = match kind {
                BranchKind::Conditional => 0u8,
                BranchKind::Direct => 1,
                BranchKind::Indirect => 2,
                BranchKind::Call => 3,
                BranchKind::Return => 4,
            };
            (K_BRANCH_BASE + kind_code * 2 + u8::from(taken), target, 0)
        }
    }
}

fn decode(kind: u8, arg: u64, aux: u8) -> MicroOp {
    match kind {
        K_INT_INT_ADDR => MicroOp::Int {
            purpose: IntPurpose::IntAddr,
        },
        K_INT_FP_ADDR => MicroOp::Int {
            purpose: IntPurpose::FpAddr,
        },
        K_INT_OTHER => MicroOp::Int {
            purpose: IntPurpose::Other,
        },
        K_FP => MicroOp::Fp,
        K_LOAD => MicroOp::Load {
            addr: arg,
            size: aux,
        },
        K_STORE => MicroOp::Store {
            addr: arg,
            size: aux,
        },
        _ => {
            let code = kind - K_BRANCH_BASE;
            let branch_kind = match code / 2 {
                0 => BranchKind::Conditional,
                1 => BranchKind::Direct,
                2 => BranchKind::Indirect,
                3 => BranchKind::Call,
                _ => BranchKind::Return,
            };
            MicroOp::Branch {
                taken: code % 2 == 1,
                target: arg,
                kind: branch_kind,
            }
        }
    }
}

/// One fixed-capacity SoA chunk (parallel columns, equal lengths).
#[derive(Debug, Default)]
struct Chunk {
    pc: Vec<u64>,
    arg: Vec<u64>,
    kind: Vec<u8>,
    aux: Vec<u8>,
}

impl Chunk {
    fn with_capacity(events: usize) -> Self {
        Chunk {
            pc: Vec::with_capacity(events),
            arg: Vec::with_capacity(events),
            kind: Vec::with_capacity(events),
            aux: Vec::with_capacity(events),
        }
    }

    fn len(&self) -> usize {
        self.pc.len()
    }

    fn clear(&mut self) {
        self.pc.clear();
        self.arg.clear();
        self.kind.clear();
        self.aux.clear();
    }
}

/// A recorded dynamic trace: flat, chunked, structure-of-arrays.
///
/// Record by using the buffer as a [`TraceSink`] (pass it to the workload
/// in place of a `Machine`), then call [`TraceBuffer::replay_into`] any
/// number of times. [`TraceBuffer::clear`] empties the trace but keeps
/// every chunk allocation, so a reused buffer records at full speed.
///
/// ```
/// use bdb_trace::{MicroOp, MixSink, TraceBuffer, TraceSink};
///
/// let mut buffer = TraceBuffer::new();
/// buffer.exec(0, MicroOp::Fp);
/// buffer.exec(4, MicroOp::Load { addr: 64, size: 8 });
/// let mut mix = MixSink::new();
/// buffer.replay_into(&mut mix);
/// assert_eq!(mix.mix().loads, 1);
/// assert_eq!(buffer.len(), 2);
/// ```
#[derive(Debug)]
pub struct TraceBuffer {
    chunk_events: usize,
    chunks: Vec<Chunk>,
    /// Cleared chunks kept for reuse (allocation pooling within a buffer).
    spare: Vec<Chunk>,
    len: u64,
}

impl Default for TraceBuffer {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceBuffer {
    /// Creates an empty buffer with the default chunk capacity.
    pub fn new() -> Self {
        Self::with_chunk_capacity(DEFAULT_CHUNK_EVENTS)
    }

    /// Creates an empty buffer whose chunks hold `events` ops each. Small
    /// capacities exist to put chunk boundaries under test; production
    /// callers use [`TraceBuffer::new`].
    ///
    /// # Panics
    ///
    /// Panics if `events` is zero.
    pub fn with_chunk_capacity(events: usize) -> Self {
        assert!(events > 0, "chunk capacity must be positive");
        TraceBuffer {
            chunk_events: events,
            chunks: Vec::new(),
            spare: Vec::new(),
            len: 0,
        }
    }

    /// Records `workload` into a fresh buffer and returns it.
    pub fn capture(workload: impl FnOnce(&mut dyn TraceSink)) -> Self {
        let mut buffer = Self::new();
        workload(&mut buffer);
        buffer
    }

    /// Number of recorded events.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Events per chunk.
    pub fn chunk_capacity(&self) -> usize {
        self.chunk_events
    }

    /// Empties the trace while retaining every chunk allocation.
    pub fn clear(&mut self) {
        for mut chunk in self.chunks.drain(..) {
            chunk.clear();
            self.spare.push(chunk);
        }
        self.len = 0;
    }

    fn push(&mut self, pc: u64, op: MicroOp) {
        let need_chunk = self
            .chunks
            .last()
            .is_none_or(|c| c.len() >= self.chunk_events);
        if need_chunk {
            let chunk = self
                .spare
                .pop()
                .unwrap_or_else(|| Chunk::with_capacity(self.chunk_events));
            self.chunks.push(chunk);
        }
        let (kind, arg, aux) = encode(op);
        if let Some(chunk) = self.chunks.last_mut() {
            chunk.pc.push(pc);
            chunk.arg.push(arg);
            chunk.kind.push(kind);
            chunk.aux.push(aux);
            self.len += 1;
        }
    }

    /// Replays the recorded trace into `sink`, one
    /// [`TraceSink::exec_batch`] call per chunk.
    ///
    /// [`TraceSink::finish`] is *not* called — replay composes (the same
    /// buffer feeds many sinks, or one sink sees many buffers), so the
    /// caller decides when a sink's stream ends.
    pub fn replay_into<S: TraceSink + ?Sized>(&self, sink: &mut S) {
        let mut batch: Vec<TraceEvent> = Vec::with_capacity(self.chunk_events);
        for chunk in &self.chunks {
            batch.clear();
            for i in 0..chunk.len() {
                batch.push(TraceEvent {
                    pc: chunk.pc[i],
                    op: decode(chunk.kind[i], chunk.arg[i], chunk.aux[i]),
                });
            }
            sink.exec_batch(&batch);
        }
    }

    /// Iterates the recorded events in order (test/diagnostic use; the fast
    /// path is [`TraceBuffer::replay_into`]).
    pub fn events(&self) -> impl Iterator<Item = TraceEvent> + '_ {
        self.chunks.iter().flat_map(|chunk| {
            (0..chunk.len()).map(move |i| TraceEvent {
                pc: chunk.pc[i],
                op: decode(chunk.kind[i], chunk.arg[i], chunk.aux[i]),
            })
        })
    }

    /// Serializes the recorded trace as concatenated BDBC `TraceChunk`
    /// records, one per chunk. The chunk structure is preserved exactly,
    /// so `spill(load(bytes))` reproduces `bytes` and a loaded buffer
    /// replays byte-identically to the original. The per-record CRC-64
    /// makes any storage damage a clean [`load`](Self::load) error.
    pub fn spill(&self) -> Result<Vec<u8>, CodecError> {
        let mut out = Vec::new();
        for chunk in &self.chunks {
            out.extend_from_slice(&columnar::encode_trace_chunk(
                &chunk.pc,
                &chunk.arg,
                &chunk.kind,
                &chunk.aux,
            )?);
        }
        Ok(out)
    }

    /// Restores a buffer from [`spill`](Self::spill) output. The chunk
    /// capacity is taken from the largest decoded chunk (or the default
    /// for an empty trace) so further recording appends sensibly. Any
    /// mid-record truncation, bit damage, or version mismatch is a clean
    /// error — never a panic. (Truncation at an exact record boundary is
    /// indistinguishable from a shorter trace; callers needing
    /// whole-file integrity add their own outer framing, as the run
    /// journal does.)
    pub fn load(bytes: &[u8]) -> Result<TraceBuffer, CodecError> {
        let mut chunks = Vec::new();
        let mut len = 0u64;
        let mut offset = 0usize;
        while offset < bytes.len() {
            let (kind, payload, consumed) = bdb_codec::decode_record_prefix(&bytes[offset..])?;
            if kind != bdb_codec::RecordKind::TraceChunk {
                return Err(CodecError::WrongKind {
                    expected: bdb_codec::RecordKind::TraceChunk,
                    actual: kind,
                });
            }
            let columns = columnar::TraceChunkView::parse(payload)?.to_columns();
            len += columns.len() as u64;
            chunks.push(Chunk {
                pc: columns.pc,
                arg: columns.arg,
                kind: columns.kind,
                aux: columns.aux,
            });
            offset += consumed;
        }
        let chunk_events = chunks
            .iter()
            .map(Chunk::len)
            .max()
            .unwrap_or(DEFAULT_CHUNK_EVENTS)
            .max(1);
        Ok(TraceBuffer {
            chunk_events,
            chunks,
            spare: Vec::new(),
            len,
        })
    }
}

impl TraceSink for TraceBuffer {
    fn exec(&mut self, pc: u64, op: MicroOp) {
        self.push(pc, op);
    }

    fn exec_batch(&mut self, batch: &[TraceEvent]) {
        for event in batch {
            self.push(event.pc, event.op);
        }
    }
}

/// A shared pool of [`TraceBuffer`]s so concurrent sweep workers recycle
/// chunk allocations instead of growing a fresh buffer per recording.
#[derive(Debug, Default)]
pub struct TraceBufferPool {
    buffers: Mutex<Vec<TraceBuffer>>,
}

impl TraceBufferPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a cleared buffer from the pool, or a fresh one if empty.
    pub fn checkout(&self) -> TraceBuffer {
        self.buffers
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop()
            .unwrap_or_default()
    }

    /// Returns `buffer` to the pool (cleared, allocations retained).
    pub fn checkin(&self, mut buffer: TraceBuffer) {
        buffer.clear();
        self.buffers
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(buffer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{CountingSink, MixSink};

    fn all_op_shapes() -> Vec<MicroOp> {
        let mut ops = vec![
            MicroOp::Int {
                purpose: IntPurpose::IntAddr,
            },
            MicroOp::Int {
                purpose: IntPurpose::FpAddr,
            },
            MicroOp::Int {
                purpose: IntPurpose::Other,
            },
            MicroOp::Fp,
            MicroOp::Load {
                addr: 0xDEAD_BEEF,
                size: 8,
            },
            MicroOp::Store {
                addr: u64::MAX,
                size: 1,
            },
        ];
        for kind in [
            BranchKind::Conditional,
            BranchKind::Direct,
            BranchKind::Indirect,
            BranchKind::Call,
            BranchKind::Return,
        ] {
            for taken in [false, true] {
                ops.push(MicroOp::Branch {
                    taken,
                    target: 0x4000,
                    kind,
                });
            }
        }
        ops
    }

    #[test]
    fn every_op_shape_round_trips() {
        for op in all_op_shapes() {
            let (kind, arg, aux) = encode(op);
            assert_eq!(decode(kind, arg, aux), op, "round-trip failed for {op:?}");
        }
    }

    #[test]
    fn record_then_events_preserves_order_across_chunks() {
        let ops = all_op_shapes();
        // Chunk capacity 3 forces several boundary crossings.
        let mut buffer = TraceBuffer::with_chunk_capacity(3);
        for (i, &op) in ops.iter().enumerate() {
            buffer.exec(i as u64 * 4, op);
        }
        assert_eq!(buffer.len(), ops.len() as u64);
        let replayed: Vec<TraceEvent> = buffer.events().collect();
        assert_eq!(replayed.len(), ops.len());
        for (i, (event, &op)) in replayed.iter().zip(&ops).enumerate() {
            assert_eq!(event.pc, i as u64 * 4);
            assert_eq!(event.op, op);
        }
    }

    #[test]
    fn replay_matches_direct_streaming() {
        let ops = all_op_shapes();
        let mut direct = MixSink::new();
        let mut buffer = TraceBuffer::with_chunk_capacity(4);
        for (i, &op) in ops.iter().enumerate() {
            direct.exec(i as u64 * 4, op);
            buffer.exec(i as u64 * 4, op);
        }
        let mut replayed = MixSink::new();
        buffer.replay_into(&mut replayed);
        assert_eq!(replayed.mix(), direct.mix());
    }

    #[test]
    fn chunk_boundary_cases() {
        // Empty, exactly one chunk, and chunk+1.
        for events in [0usize, 4, 5] {
            let mut buffer = TraceBuffer::with_chunk_capacity(4);
            for i in 0..events {
                buffer.exec(i as u64, MicroOp::Fp);
            }
            let mut count = CountingSink::new();
            buffer.replay_into(&mut count);
            assert_eq!(count.ops(), events as u64, "replay at {events} events");
            assert_eq!(buffer.len(), events as u64);
            assert_eq!(buffer.is_empty(), events == 0);
        }
    }

    #[test]
    fn clear_retains_capacity_and_replays_fresh_recording() {
        let mut buffer = TraceBuffer::with_chunk_capacity(2);
        for i in 0..5u64 {
            buffer.exec(i, MicroOp::Fp);
        }
        buffer.clear();
        assert!(buffer.is_empty());
        // Re-record something different; stale events must not leak.
        buffer.exec(0, MicroOp::Load { addr: 8, size: 8 });
        let mut mix = MixSink::new();
        buffer.replay_into(&mut mix);
        assert_eq!(mix.mix().loads, 1);
        assert_eq!(mix.mix().fp, 0);
        assert_eq!(buffer.len(), 1);
    }

    #[test]
    fn spill_load_round_trip_is_byte_stable_and_replay_identical() {
        let ops = all_op_shapes();
        let mut buffer = TraceBuffer::with_chunk_capacity(3);
        for (i, &op) in ops.iter().enumerate() {
            buffer.exec(i as u64 * 4, op);
        }
        let bytes = buffer.spill().unwrap();
        let loaded = TraceBuffer::load(&bytes).unwrap();
        assert_eq!(loaded.len(), buffer.len());
        // Replay equality, event for event.
        let a: Vec<TraceEvent> = buffer.events().collect();
        let b: Vec<TraceEvent> = loaded.events().collect();
        assert_eq!(a, b);
        // Chunk structure survives, so re-spilling is byte-identical.
        assert_eq!(loaded.spill().unwrap(), bytes);
        // Replay through a sink matches too.
        let (mut orig, mut resp) = (MixSink::new(), MixSink::new());
        buffer.replay_into(&mut orig);
        loaded.replay_into(&mut resp);
        assert_eq!(orig.mix(), resp.mix());
    }

    #[test]
    fn spill_of_empty_buffer_loads_empty() {
        let buffer = TraceBuffer::new();
        let bytes = buffer.spill().unwrap();
        assert!(bytes.is_empty());
        let loaded = TraceBuffer::load(&bytes).unwrap();
        assert!(loaded.is_empty());
    }

    #[test]
    fn damaged_spill_is_a_clean_error_never_a_panic() {
        let mut buffer = TraceBuffer::with_chunk_capacity(4);
        for i in 0..10u64 {
            buffer.exec(
                i * 4,
                MicroOp::Load {
                    addr: i * 64,
                    size: 8,
                },
            );
        }
        let bytes = buffer.spill().unwrap();
        // Record boundaries are the only cuts that decode (as a shorter
        // trace); truncation anywhere else fails cleanly.
        let boundaries: Vec<usize> = {
            let mut at = vec![0usize];
            let mut offset = 0;
            while offset < bytes.len() {
                let (_, _, consumed) = bdb_codec::decode_record_prefix(&bytes[offset..]).unwrap();
                offset += consumed;
                at.push(offset);
            }
            at
        };
        assert!(boundaries.len() > 2, "want several chunks under test");
        for cut in 0..bytes.len() {
            let result = TraceBuffer::load(&bytes[..cut]);
            if boundaries.contains(&cut) {
                assert!(result.is_ok(), "boundary cut {cut} is a valid prefix");
            } else {
                assert!(result.is_err(), "mid-record cut {cut} must fail");
            }
        }
        // Any single bit flip is detected.
        for bit in (0..bytes.len() * 8).step_by(7) {
            let mut bad = bytes.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            assert!(TraceBuffer::load(&bad).is_err(), "bit {bit} undetected");
        }
    }

    #[test]
    fn pool_recycles_buffers() {
        let pool = TraceBufferPool::new();
        let mut buffer = pool.checkout();
        buffer.exec(0, MicroOp::Fp);
        pool.checkin(buffer);
        let recycled = pool.checkout();
        assert!(recycled.is_empty(), "checked-in buffers come back cleared");
    }

    #[test]
    #[should_panic(expected = "chunk capacity must be positive")]
    fn zero_chunk_capacity_panics() {
        let _ = TraceBuffer::with_chunk_capacity(0);
    }
}
