//! Trace consumers.
//!
//! A [`TraceSink`] receives every dynamic micro-op together with its program
//! counter, online, as the instrumented workload executes. The
//! cycle-accurate consumer is `bdb_sim::Machine`; the sinks here are the
//! lightweight ones: [`MixSink`] for instruction-mix-only runs and
//! [`CountingSink`]/[`NullSink`] for tests and calibration.

use crate::mix::InstructionMix;
use crate::op::MicroOp;

/// One recorded `(pc, op)` pair — the unit of batched trace delivery.
///
/// A [`TraceBuffer`](crate::TraceBuffer) stores these column-wise and
/// replays them to sinks in chunks via [`TraceSink::exec_batch`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Program counter of the retired micro-op.
    pub pc: u64,
    /// The micro-op itself.
    pub op: MicroOp,
}

/// Consumes a stream of `(pc, op)` pairs.
///
/// Implementations must be deterministic: measured tables are replayed from
/// seeds, so a sink must not consult wall-clock time or ambient randomness.
pub trait TraceSink {
    /// Handles one retired micro-op at program counter `pc`.
    fn exec(&mut self, pc: u64, op: MicroOp);

    /// Handles a batch of retired micro-ops in trace order.
    ///
    /// The default implementation forwards to [`TraceSink::exec`] one op at
    /// a time, so every existing sink keeps working; hot sinks override it
    /// so replaying a recorded trace costs one virtual call per chunk
    /// instead of one per op. Overrides must observe exactly the events an
    /// `exec` loop would — the equivalence is contract-tested.
    fn exec_batch(&mut self, batch: &[TraceEvent]) {
        for event in batch {
            self.exec(event.pc, event.op);
        }
    }

    /// Called once when the traced workload finishes (optional).
    fn finish(&mut self) {}
}

/// Discards everything. Useful to run a workload purely for its effects.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn exec(&mut self, _pc: u64, _op: MicroOp) {}

    fn exec_batch(&mut self, _batch: &[TraceEvent]) {}
}

/// Counts retired ops.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingSink {
    ops: u64,
}

impl CountingSink {
    /// Creates a fresh counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Retired op count so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }
}

impl TraceSink for CountingSink {
    fn exec(&mut self, _pc: u64, _op: MicroOp) {
        self.ops += 1;
    }

    fn exec_batch(&mut self, batch: &[TraceEvent]) {
        self.ops += batch.len() as u64;
    }
}

/// Accumulates the full [`InstructionMix`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MixSink {
    mix: InstructionMix,
}

impl MixSink {
    /// Creates an empty mix accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// The accumulated mix.
    pub fn mix(&self) -> InstructionMix {
        self.mix
    }
}

impl TraceSink for MixSink {
    fn exec(&mut self, _pc: u64, op: MicroOp) {
        self.mix.record(&op);
    }

    fn exec_batch(&mut self, batch: &[TraceEvent]) {
        for event in batch {
            self.mix.record(&event.op);
        }
    }
}

/// Forwarding through a mutable reference, so sinks compose without being
/// moved: a `FanoutSink` can borrow a `Machine` that the caller still owns.
impl<S: TraceSink + ?Sized> TraceSink for &mut S {
    fn exec(&mut self, pc: u64, op: MicroOp) {
        (**self).exec(pc, op);
    }

    fn exec_batch(&mut self, batch: &[TraceEvent]) {
        (**self).exec_batch(batch);
    }

    fn finish(&mut self) {
        (**self).finish();
    }
}

/// Fans one trace out to any number of sinks, so a single instrumented run
/// can feed e.g. a `Machine`, a [`MixSink`], and a reuse profiler in one
/// pass instead of re-executing the workload per consumer.
///
/// Sinks are borrowed, not owned: the caller keeps its `Machine` and reads
/// the report afterwards. Dispatch order is the registration order, and
/// [`TraceSink::finish`] is forwarded to every sink.
///
/// ```
/// use bdb_trace::{CountingSink, FanoutSink, MicroOp, MixSink, TraceSink};
///
/// let mut count = CountingSink::new();
/// let mut mix = MixSink::new();
/// {
///     let mut fan = FanoutSink::new().with(&mut count).with(&mut mix);
///     fan.exec(0, MicroOp::Fp);
///     fan.finish();
/// }
/// assert_eq!(count.ops(), 1);
/// assert_eq!(mix.mix().fp, 1);
/// ```
#[derive(Default)]
pub struct FanoutSink<'a> {
    sinks: Vec<&'a mut dyn TraceSink>,
}

impl<'a> FanoutSink<'a> {
    /// Creates an empty fan-out (a `NullSink` until receivers are added).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a receiver (builder style).
    #[must_use]
    pub fn with(mut self, sink: &'a mut dyn TraceSink) -> Self {
        self.sinks.push(sink);
        self
    }

    /// Adds a receiver.
    pub fn push(&mut self, sink: &'a mut dyn TraceSink) {
        self.sinks.push(sink);
    }

    /// Number of registered receivers.
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// Whether no receivers are registered.
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl TraceSink for FanoutSink<'_> {
    fn exec(&mut self, pc: u64, op: MicroOp) {
        for sink in &mut self.sinks {
            sink.exec(pc, op);
        }
    }

    fn exec_batch(&mut self, batch: &[TraceEvent]) {
        for sink in &mut self.sinks {
            sink.exec_batch(batch);
        }
    }

    fn finish(&mut self) {
        for sink in &mut self.sinks {
            sink.finish();
        }
    }
}

/// Fans one trace out to two sinks (e.g. machine + mix in one pass).
///
/// For more than two receivers, or when the receivers must stay owned by
/// the caller, use [`FanoutSink`].
#[derive(Debug, Default)]
pub struct TeeSink<A, B> {
    /// First receiver.
    pub first: A,
    /// Second receiver.
    pub second: B,
}

impl<A: TraceSink, B: TraceSink> TeeSink<A, B> {
    /// Creates a tee over two sinks.
    pub fn new(first: A, second: B) -> Self {
        Self { first, second }
    }
}

impl<A: TraceSink, B: TraceSink> TraceSink for TeeSink<A, B> {
    fn exec(&mut self, pc: u64, op: MicroOp) {
        self.first.exec(pc, op);
        self.second.exec(pc, op);
    }

    fn exec_batch(&mut self, batch: &[TraceEvent]) {
        self.first.exec_batch(batch);
        self.second.exec_batch(batch);
    }

    fn finish(&mut self) {
        self.first.finish();
        self.second.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{BranchKind, IntPurpose};

    #[test]
    fn counting_sink_counts() {
        let mut s = CountingSink::new();
        s.exec(0, MicroOp::Fp);
        s.exec(
            4,
            MicroOp::Int {
                purpose: IntPurpose::Other,
            },
        );
        assert_eq!(s.ops(), 2);
    }

    #[test]
    fn mix_sink_accumulates() {
        let mut s = MixSink::new();
        s.exec(0, MicroOp::Load { addr: 1, size: 8 });
        s.exec(
            4,
            MicroOp::Branch {
                taken: false,
                target: 0,
                kind: BranchKind::Conditional,
            },
        );
        let m = s.mix();
        assert_eq!(m.loads, 1);
        assert_eq!(m.branches, 1);
    }

    #[test]
    fn tee_feeds_both() {
        let mut t = TeeSink::new(CountingSink::new(), MixSink::new());
        t.exec(0, MicroOp::Fp);
        t.finish();
        assert_eq!(t.first.ops(), 1);
        assert_eq!(t.second.mix().fp, 1);
    }

    #[test]
    fn fanout_feeds_all_in_one_pass() {
        let mut a = CountingSink::new();
        let mut b = MixSink::new();
        let mut c = CountingSink::new();
        {
            let mut fan = FanoutSink::new().with(&mut a).with(&mut b).with(&mut c);
            assert_eq!(fan.len(), 3);
            fan.exec(0, MicroOp::Fp);
            fan.exec(4, MicroOp::Load { addr: 8, size: 8 });
            fan.finish();
        }
        assert_eq!(a.ops(), 2);
        assert_eq!(b.mix().fp, 1);
        assert_eq!(b.mix().loads, 1);
        assert_eq!(c.ops(), 2);
    }

    #[test]
    fn empty_fanout_is_a_null_sink() {
        let mut fan = FanoutSink::new();
        assert!(fan.is_empty());
        fan.exec(0, MicroOp::Fp);
        fan.finish();
    }

    #[test]
    fn single_sink_fanout_matches_direct_delivery() {
        let ops = [
            MicroOp::Fp,
            MicroOp::Load { addr: 8, size: 8 },
            MicroOp::Store { addr: 16, size: 4 },
            MicroOp::Branch {
                taken: true,
                target: 0,
                kind: BranchKind::Conditional,
            },
        ];
        let mut direct = MixSink::new();
        for (pc, op) in ops.iter().enumerate() {
            direct.exec(pc as u64 * 4, *op);
        }
        direct.finish();

        let mut fanned = MixSink::new();
        {
            let mut fan = FanoutSink::new().with(&mut fanned);
            assert_eq!(fan.len(), 1);
            for (pc, op) in ops.iter().enumerate() {
                fan.exec(pc as u64 * 4, *op);
            }
            fan.finish();
        }
        assert_eq!(fanned.mix(), direct.mix());
    }

    #[test]
    fn exec_batch_matches_per_op_delivery() {
        let batch = [
            TraceEvent {
                pc: 0,
                op: MicroOp::Fp,
            },
            TraceEvent {
                pc: 4,
                op: MicroOp::Load { addr: 64, size: 8 },
            },
            TraceEvent {
                pc: 8,
                op: MicroOp::Branch {
                    taken: true,
                    target: 0,
                    kind: BranchKind::Return,
                },
            },
        ];
        let mut per_op = MixSink::new();
        for event in &batch {
            per_op.exec(event.pc, event.op);
        }
        let mut batched = MixSink::new();
        batched.exec_batch(&batch);
        assert_eq!(batched.mix(), per_op.mix());

        let mut count = CountingSink::new();
        count.exec_batch(&batch);
        assert_eq!(count.ops(), 3);

        let mut teed = TeeSink::new(CountingSink::new(), MixSink::new());
        teed.exec_batch(&batch);
        assert_eq!(teed.first.ops(), 3);
        assert_eq!(teed.second.mix(), per_op.mix());
    }

    #[test]
    fn mut_ref_forwards() {
        let mut inner = CountingSink::new();
        {
            let mut by_ref: &mut CountingSink = &mut inner;
            TraceSink::exec(&mut by_ref, 0, MicroOp::Fp);
            TraceSink::finish(&mut by_ref);
        }
        assert_eq!(inner.ops(), 1);
    }
}
