//! Simulated data address space.
//!
//! Workload data structures (sort buffers, hash tables, graph arrays,
//! shuffle partitions…) are mirrored into a simulated heap so that every
//! load/store in the trace carries a realistic virtual address. The heap is
//! a deterministic bump allocator: the same allocation sequence always
//! yields the same addresses, which keeps every measured table replayable.

use serde::{Deserialize, Serialize};

/// Base virtual address of the simulated heap.
pub const HEAP_BASE: u64 = 0x1000_0000;

/// Base virtual address of the simulated stack/scratch area.
pub const SCRATCH_BASE: u64 = 0x7000_0000;

/// A span of simulated data memory returned by [`SimAlloc`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemRegion {
    base: u64,
    len: u64,
}

impl MemRegion {
    /// First byte address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Returns `true` if the region has zero length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Address of `offset` bytes into the region.
    ///
    /// Bounds are checked in debug builds only: the hot instrumentation path
    /// must stay branch-free in release mode.
    pub fn addr(&self, offset: u64) -> u64 {
        debug_assert!(
            offset < self.len,
            "offset {offset} out of region of len {}",
            self.len
        );
        self.base + offset
    }

    /// Address of element `index` of an array of `elem_size`-byte elements.
    pub fn elem(&self, index: u64, elem_size: u64) -> u64 {
        self.addr(index * elem_size)
    }

    /// Splits off the first `n` bytes as a sub-region.
    ///
    /// # Panics
    ///
    /// Panics if `n > self.len()`.
    pub fn split_prefix(&self, n: u64) -> (MemRegion, MemRegion) {
        assert!(
            n <= self.len,
            "cannot split {n} bytes from region of len {}",
            self.len
        );
        (
            MemRegion {
                base: self.base,
                len: n,
            },
            MemRegion {
                base: self.base + n,
                len: self.len - n,
            },
        )
    }
}

/// Deterministic bump allocator over a simulated address range.
///
/// # Examples
///
/// ```
/// use bdb_trace::SimAlloc;
///
/// let mut heap = SimAlloc::heap();
/// let a = heap.alloc(100, 8);
/// let b = heap.alloc(100, 8);
/// assert!(b.base() >= a.base() + 100);
/// assert_eq!(a.base() % 8, 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimAlloc {
    cursor: u64,
    allocated: u64,
}

impl SimAlloc {
    /// Allocator over the heap range (for long-lived workload data).
    pub fn heap() -> Self {
        Self {
            cursor: HEAP_BASE,
            allocated: 0,
        }
    }

    /// Allocator over the scratch range (for per-record framework scratch).
    pub fn scratch() -> Self {
        Self {
            cursor: SCRATCH_BASE,
            allocated: 0,
        }
    }

    /// Allocator starting at an arbitrary base (for tests).
    pub fn with_base(base: u64) -> Self {
        Self {
            cursor: base,
            allocated: 0,
        }
    }

    /// Allocates `len` bytes aligned to `align`.
    ///
    /// # Panics
    ///
    /// Panics if `align` is zero or not a power of two.
    pub fn alloc(&mut self, len: u64, align: u64) -> MemRegion {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        self.cursor = (self.cursor + align - 1) & !(align - 1);
        let region = MemRegion {
            base: self.cursor,
            len,
        };
        self.cursor += len;
        self.allocated += len;
        region
    }

    /// Total bytes handed out so far (excluding alignment padding).
    pub fn allocated_bytes(&self) -> u64 {
        self.allocated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_disjoint_and_aligned() {
        let mut a = SimAlloc::heap();
        let r1 = a.alloc(33, 16);
        let r2 = a.alloc(64, 64);
        assert_eq!(r1.base() % 16, 0);
        assert_eq!(r2.base() % 64, 0);
        assert!(r2.base() >= r1.base() + r1.len());
        assert_eq!(a.allocated_bytes(), 97);
    }

    #[test]
    fn elem_addressing() {
        let mut a = SimAlloc::with_base(0x1000);
        let r = a.alloc(80, 8);
        assert_eq!(r.elem(0, 8), 0x1000);
        assert_eq!(r.elem(9, 8), 0x1000 + 72);
    }

    #[test]
    fn split_prefix() {
        let mut a = SimAlloc::with_base(0x2000);
        let r = a.alloc(100, 4);
        let (head, tail) = r.split_prefix(40);
        assert_eq!(head.len(), 40);
        assert_eq!(tail.len(), 60);
        assert_eq!(tail.base(), head.base() + 40);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_alignment_panics() {
        let mut a = SimAlloc::heap();
        let _ = a.alloc(8, 3);
    }

    #[test]
    fn heap_and_scratch_are_disjoint_ranges() {
        let h = SimAlloc::heap().alloc(1 << 20, 8);
        let s = SimAlloc::scratch().alloc(1 << 20, 8);
        assert!(h.base() + h.len() <= s.base());
    }

    #[test]
    fn determinism() {
        let run = || {
            let mut a = SimAlloc::heap();
            (0..10)
                .map(|i| a.alloc(i * 13 + 1, 8).base())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
