//! Retired-instruction mix accounting (paper Figures 1 and 2).

use crate::op::{IntPurpose, MicroOp};
use serde::{Deserialize, Serialize};

/// Counts of retired micro-ops by class, plus the integer-purpose breakdown.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstructionMix {
    /// Retired loads.
    pub loads: u64,
    /// Retired stores.
    pub stores: u64,
    /// Retired branches (all kinds).
    pub branches: u64,
    /// Retired integer ops for integer address calculation.
    pub int_addr: u64,
    /// Retired integer ops for floating-point address calculation.
    pub fp_addr: u64,
    /// Retired integer ops for other computation.
    pub int_other: u64,
    /// Retired floating-point ops.
    pub fp: u64,
    /// Total bytes moved by loads and stores.
    pub bytes_moved: u64,
}

impl InstructionMix {
    /// Records one op.
    pub fn record(&mut self, op: &MicroOp) {
        match op {
            MicroOp::Load { size, .. } => {
                self.loads += 1;
                self.bytes_moved += u64::from(*size);
            }
            MicroOp::Store { size, .. } => {
                self.stores += 1;
                self.bytes_moved += u64::from(*size);
            }
            MicroOp::Branch { .. } => self.branches += 1,
            MicroOp::Int {
                purpose: IntPurpose::IntAddr,
            } => self.int_addr += 1,
            MicroOp::Int {
                purpose: IntPurpose::FpAddr,
            } => self.fp_addr += 1,
            MicroOp::Int {
                purpose: IntPurpose::Other,
            } => self.int_other += 1,
            MicroOp::Fp => self.fp += 1,
        }
    }

    /// Total retired instructions.
    pub fn total(&self) -> u64 {
        self.loads + self.stores + self.branches + self.integer() + self.fp
    }

    /// Total integer ops across all purposes.
    pub fn integer(&self) -> u64 {
        self.int_addr + self.fp_addr + self.int_other
    }

    /// Fraction of instructions that are branches.
    pub fn branch_ratio(&self) -> f64 {
        self.ratio(self.branches)
    }

    /// Fraction of instructions that are integer ops.
    pub fn integer_ratio(&self) -> f64 {
        self.ratio(self.integer())
    }

    /// Fraction of instructions that are loads.
    pub fn load_ratio(&self) -> f64 {
        self.ratio(self.loads)
    }

    /// Fraction of instructions that are stores.
    pub fn store_ratio(&self) -> f64 {
        self.ratio(self.stores)
    }

    /// Fraction of instructions that are floating-point ops.
    pub fn fp_ratio(&self) -> f64 {
        self.ratio(self.fp)
    }

    /// The paper's "data movement" share: loads + stores + all address
    /// calculation + branches (the 92% headline of observation O1).
    pub fn data_movement_ratio(&self) -> f64 {
        self.ratio(self.loads + self.stores + self.int_addr + self.fp_addr + self.branches)
    }

    /// Figure 2 breakdown: fractions of *integer* ops that are integer
    /// address calc, FP address calc, and other, in that order.
    ///
    /// Returns `(0.0, 0.0, 0.0)` when no integer ops retired.
    pub fn integer_breakdown(&self) -> (f64, f64, f64) {
        let n = self.integer();
        if n == 0 {
            return (0.0, 0.0, 0.0);
        }
        let n = n as f64;
        (
            self.int_addr as f64 / n,
            self.fp_addr as f64 / n,
            self.int_other as f64 / n,
        )
    }

    /// Operation intensity: (integer + FP ops) per byte moved, one of the
    /// paper's 45 characterization metrics.
    pub fn operation_intensity(&self) -> f64 {
        if self.bytes_moved == 0 {
            return 0.0;
        }
        (self.integer() + self.fp) as f64 / self.bytes_moved as f64
    }

    /// Merges another mix into this one.
    pub fn merge(&mut self, other: &InstructionMix) {
        self.loads += other.loads;
        self.stores += other.stores;
        self.branches += other.branches;
        self.int_addr += other.int_addr;
        self.fp_addr += other.fp_addr;
        self.int_other += other.int_other;
        self.fp += other.fp;
        self.bytes_moved += other.bytes_moved;
    }

    fn ratio(&self, n: u64) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            n as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::BranchKind;

    fn sample_mix() -> InstructionMix {
        let mut m = InstructionMix::default();
        m.record(&MicroOp::Load { addr: 0, size: 8 });
        m.record(&MicroOp::Store { addr: 8, size: 4 });
        m.record(&MicroOp::Branch {
            taken: true,
            target: 0,
            kind: BranchKind::Conditional,
        });
        m.record(&MicroOp::Int {
            purpose: IntPurpose::IntAddr,
        });
        m.record(&MicroOp::Int {
            purpose: IntPurpose::FpAddr,
        });
        m.record(&MicroOp::Int {
            purpose: IntPurpose::Other,
        });
        m.record(&MicroOp::Fp);
        m
    }

    #[test]
    fn totals_add_up() {
        let m = sample_mix();
        assert_eq!(m.total(), 7);
        assert_eq!(m.integer(), 3);
        assert_eq!(m.bytes_moved, 12);
    }

    #[test]
    fn ratios() {
        let m = sample_mix();
        assert!((m.branch_ratio() - 1.0 / 7.0).abs() < 1e-12);
        assert!((m.integer_ratio() - 3.0 / 7.0).abs() < 1e-12);
        // loads + stores + int_addr + fp_addr + branch = 5 of 7
        assert!((m.data_movement_ratio() - 5.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn integer_breakdown_sums_to_one() {
        let m = sample_mix();
        let (a, b, c) = m.integer_breakdown();
        assert!((a + b + c - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_mix_is_all_zeros() {
        let m = InstructionMix::default();
        assert_eq!(m.total(), 0);
        assert_eq!(m.branch_ratio(), 0.0);
        assert_eq!(m.integer_breakdown(), (0.0, 0.0, 0.0));
        assert_eq!(m.operation_intensity(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = sample_mix();
        let b = sample_mix();
        a.merge(&b);
        assert_eq!(a.total(), 14);
        assert_eq!(a.bytes_moved, 24);
    }
}
