//! The instrumented execution context.
//!
//! [`ExecCtx`] is what every workload and software stack runs on: it owns
//! the current program counter (a cursor inside the current
//! [`CodeRegion`](crate::CodeRegion) frame), the simulated heap, and the
//! connection to the [`TraceSink`]. Kernels perform their real computation
//! in Rust and narrate it through the emit methods; the resulting `(pc, op)`
//! stream is what the micro-architecture simulator measures.

use crate::mem::{MemRegion, SimAlloc};
use crate::op::{BranchKind, IntPurpose, MicroOp};
use crate::region::{CodeLayout, RegionId};
use crate::sink::TraceSink;

/// Bytes of code one emitted micro-op represents.
const INSTR_BYTES: u64 = 4;

/// A saved loop-start position inside the current frame, created by
/// [`ExecCtx::loop_start`] and consumed by [`ExecCtx::loop_back`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopLabel {
    cursor: u64,
    depth: usize,
}

#[derive(Debug, Clone, Copy)]
struct Frame {
    base: u64,
    size: u64,
    cursor: u64,
}

impl Frame {
    fn pc(&self) -> u64 {
        self.base + self.cursor
    }

    fn advance(&mut self) {
        self.cursor += INSTR_BYTES;
        if self.cursor >= self.size {
            // Fell off the end of the routine: model it as an internal loop
            // back to the routine entry. Footprint stays capped at `size`.
            self.cursor = 0;
        }
    }
}

/// One class slot in a precomputed [`OpMix`] pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PatKind {
    Load,
    Store,
    IntAddr,
    FpAddr,
    IntOther,
    Fp,
    Branch,
}

/// A precomputed instruction-class pattern for framework boilerplate.
///
/// Software stacks register their routines once and describe the flavour of
/// each routine's code with an `OpMix` — e.g. a record reader is load- and
/// branch-heavy while a checksum routine is integer-heavy. Patterns are
/// interleaved (Bresenham-style) so emission round-robins realistically
/// rather than emitting class blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpMix {
    pattern: Vec<PatKind>,
}

impl OpMix {
    /// Builds a mix from per-class weights (relative, any scale).
    ///
    /// # Panics
    ///
    /// Panics if all weights are zero.
    pub fn new(
        loads: u32,
        stores: u32,
        int_addr: u32,
        int_other: u32,
        fp: u32,
        branches: u32,
    ) -> Self {
        Self::with_fp_addr(loads, stores, int_addr, 0, int_other, fp, branches)
    }

    /// Builds a mix with an explicit floating-point-address-calculation
    /// weight (the Figure 2 category).
    ///
    /// # Panics
    ///
    /// Panics if all weights are zero.
    pub fn with_fp_addr(
        loads: u32,
        stores: u32,
        int_addr: u32,
        fp_addr: u32,
        int_other: u32,
        fp: u32,
        branches: u32,
    ) -> Self {
        let weights = [
            (PatKind::Load, loads),
            (PatKind::Store, stores),
            (PatKind::IntAddr, int_addr),
            (PatKind::FpAddr, fp_addr),
            (PatKind::IntOther, int_other),
            (PatKind::Fp, fp),
            (PatKind::Branch, branches),
        ];
        let total: u32 = weights.iter().map(|&(_, w)| w).sum();
        assert!(total > 0, "op mix must have at least one non-zero weight");
        let mut acc = [0i64; 7];
        let mut pattern = Vec::with_capacity(total as usize);
        for _ in 0..total {
            let mut best = 0;
            for (i, &(_, w)) in weights.iter().enumerate() {
                acc[i] += i64::from(w);
                if acc[i] > acc[best] {
                    best = i;
                }
            }
            acc[best] -= i64::from(total);
            pattern.push(weights[best].0);
        }
        Self { pattern }
    }

    /// Typical managed-runtime bookkeeping code: pointer-chasing loads,
    /// heavy address arithmetic, conditional checks, little FP.
    pub fn framework() -> Self {
        OpMix::with_fp_addr(26, 9, 28, 7, 11, 1, 18)
    }

    /// Numeric inner-loop code: FP-heavy, few branches.
    pub fn numeric() -> Self {
        OpMix::new(24, 10, 6, 12, 40, 8)
    }

    /// Integer compute code (compression, hashing, state machines).
    pub fn integer_compute() -> Self {
        OpMix::new(22, 8, 16, 34, 0, 20)
    }

    /// Length of the interleaved pattern.
    pub fn len(&self) -> usize {
        self.pattern.len()
    }

    /// Returns `true` if the pattern is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.pattern.is_empty()
    }
}

/// The instrumented execution context.
///
/// See the [crate documentation](crate) for the overall picture.
///
/// # Examples
///
/// ```
/// use bdb_trace::{CodeLayout, CountingSink, ExecCtx};
///
/// let mut layout = CodeLayout::new();
/// let main = layout.region("main", 1024);
/// let mut sink = CountingSink::new();
/// let mut ctx = ExecCtx::new(&layout, &mut sink);
/// ctx.frame(main, |ctx| ctx.int_other(10));
/// drop(ctx);
/// assert!(sink.ops() >= 10);
/// ```
pub struct ExecCtx<'a> {
    layout: &'a CodeLayout,
    sink: &'a mut dyn TraceSink,
    frames: Vec<Frame>,
    heap: SimAlloc,
    scratch: SimAlloc,
    ops: u64,
    boiler_idx: usize,
    boiler_off: u64,
    boiler_branch: u64,
    spread_cursors: Vec<u32>,
}

impl std::fmt::Debug for ExecCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecCtx")
            .field("frames", &self.frames.len())
            .field("ops", &self.ops)
            .finish()
    }
}

impl<'a> ExecCtx<'a> {
    /// Creates a context over a code layout and a sink.
    pub fn new(layout: &'a CodeLayout, sink: &'a mut dyn TraceSink) -> Self {
        Self {
            layout,
            sink,
            frames: Vec::with_capacity(16),
            heap: SimAlloc::heap(),
            scratch: SimAlloc::scratch(),
            ops: 0,
            boiler_idx: 0,
            boiler_off: 0,
            boiler_branch: 0,
            spread_cursors: Vec::new(),
        }
    }

    /// Total micro-ops retired so far.
    pub fn ops_retired(&self) -> u64 {
        self.ops
    }

    /// Allocates long-lived workload data in the simulated heap.
    pub fn heap_alloc(&mut self, len: u64, align: u64) -> MemRegion {
        self.heap.alloc(len, align)
    }

    /// Allocates short-lived scratch (per-record framework buffers).
    pub fn scratch_alloc(&mut self, len: u64, align: u64) -> MemRegion {
        self.scratch.alloc(len, align)
    }

    /// Runs `f` inside a direct call to `region`.
    ///
    /// Emits the call branch, executes `f` with the program counter inside
    /// `region`, then emits the return branch.
    pub fn frame<R>(&mut self, region: RegionId, f: impl FnOnce(&mut Self) -> R) -> R {
        self.enter(region, BranchKind::Call);
        let out = f(self);
        self.leave();
        out
    }

    /// Like [`frame`](Self::frame), but execution enters the routine at a
    /// deterministic pseudo-random instruction offset in `[0, spread_bytes)`
    /// instead of at the entry point.
    ///
    /// Real framework routines are large and branchy: different invocations
    /// exercise different basic blocks. Starting each invocation at a varied
    /// offset makes the *union* of touched instruction bytes grow toward the
    /// region size over many invocations — which is how the deep software
    /// stacks accumulate their megabyte-scale instruction footprints (paper
    /// Figures 6 and 9) — while each single invocation stays short.
    ///
    /// `spread_bytes` is clamped to the region size; `0` behaves exactly
    /// like [`frame`](Self::frame).
    pub fn frame_spread<R>(
        &mut self,
        region: RegionId,
        spread_bytes: u64,
        f: impl FnOnce(&mut Self) -> R,
    ) -> R {
        let size = self.layout.get(region).size;
        let spread = spread_bytes.min(size);
        let offset = if spread < 128 {
            0
        } else {
            // Low-discrepancy rotation (golden-ratio stride, 64-byte
            // quantized): successive invocations walk distinct paths that
            // together cover the whole spread, after which the region is
            // warm. This is what gives routines a *finite* footprint with
            // a clean knee in the capacity-sweep curves.
            let idx = region.index();
            if self.spread_cursors.len() <= idx {
                self.spread_cursors.resize(idx + 1, 0);
            }
            let k = self.spread_cursors[idx];
            self.spread_cursors[idx] = k.wrapping_add(1);
            let lines = spread / 64;
            // 0x9E37_79B1 is prime, so k -> (k * P) % lines permutes the
            // line indices: coverage completes in exactly `lines` calls.
            ((u64::from(k).wrapping_mul(0x9E37_79B1)) % lines) * 64
        };
        self.enter_at(region, offset, BranchKind::Call);
        let out = f(self);
        self.leave();
        out
    }

    /// Runs `f` inside an *indirect* call to `region` (virtual dispatch,
    /// function pointers, switch tables). Indirect transfers are what stress
    /// the BTB and the indirect predictor, so service request routing and
    /// the dataflow engine's operator dispatch use this.
    pub fn dispatch<R>(&mut self, region: RegionId, f: impl FnOnce(&mut Self) -> R) -> R {
        self.enter(region, BranchKind::Indirect);
        let out = f(self);
        self.leave();
        out
    }

    fn enter(&mut self, region: RegionId, kind: BranchKind) {
        self.enter_at(region, 0, kind);
    }

    fn enter_at(&mut self, region: RegionId, offset: u64, kind: BranchKind) {
        let r = self.layout.get(region);
        let (base, size) = (r.base, r.size);
        let cursor = offset.min(size.saturating_sub(4));
        if let Some(top) = self.frames.last_mut() {
            let pc = top.pc();
            top.advance();
            self.ops += 1;
            self.sink.exec(
                pc,
                MicroOp::Branch {
                    taken: true,
                    target: base + cursor,
                    kind,
                },
            );
        }
        self.frames.push(Frame { base, size, cursor });
    }

    /// The active frame. Tracing micro-ops without an enclosing
    /// [`frame`](Self::frame) call is API misuse: silently dropping the
    /// op would corrupt the trace, so aborting is the right response.
    fn top(&self) -> &Frame {
        self.frames
            .last()
            // bdb-lint: allow(panic-hygiene): documented API contract.
            .expect("micro-ops require an active frame")
    }

    /// Mutable variant of [`top`](Self::top), same contract.
    fn top_mut(&mut self) -> &mut Frame {
        self.frames
            .last_mut()
            // bdb-lint: allow(panic-hygiene): documented API contract.
            .expect("micro-ops require an active frame")
    }

    fn leave(&mut self) {
        // A pop here is always paired with an enter() in frame(); a
        // mismatch means the trace itself is corrupt, so abort.
        // bdb-lint: allow(panic-hygiene): paired enter/leave contract.
        let top = self.frames.pop().expect("leave without matching enter");
        if let Some(caller) = self.frames.last() {
            let pc = top.pc();
            let target = caller.pc();
            self.ops += 1;
            self.sink.exec(
                pc,
                MicroOp::Branch {
                    taken: true,
                    target,
                    kind: BranchKind::Return,
                },
            );
        }
    }

    #[inline]
    fn emit(&mut self, op: MicroOp) {
        let top = self.top_mut();
        let pc = top.pc();
        top.advance();
        self.ops += 1;
        self.sink.exec(pc, op);
    }

    /// Emits a bare load (no implicit address arithmetic).
    pub fn load(&mut self, addr: u64, size: u8) {
        self.emit(MicroOp::Load { addr, size });
    }

    /// Emits a bare store.
    pub fn store(&mut self, addr: u64, size: u8) {
        self.emit(MicroOp::Store { addr, size });
    }

    /// Integer-data read: one integer address calculation plus the load.
    pub fn read(&mut self, addr: u64, size: u8) {
        self.emit(MicroOp::Int {
            purpose: IntPurpose::IntAddr,
        });
        self.emit(MicroOp::Load { addr, size });
    }

    /// Integer-data write: one integer address calculation plus the store.
    pub fn write(&mut self, addr: u64, size: u8) {
        self.emit(MicroOp::Int {
            purpose: IntPurpose::IntAddr,
        });
        self.emit(MicroOp::Store { addr, size });
    }

    /// Floating-point-data read: one FP address calculation plus the load.
    pub fn read_fp(&mut self, addr: u64, size: u8) {
        self.emit(MicroOp::Int {
            purpose: IntPurpose::FpAddr,
        });
        self.emit(MicroOp::Load { addr, size });
    }

    /// Floating-point-data write: one FP address calculation plus the store.
    pub fn write_fp(&mut self, addr: u64, size: u8) {
        self.emit(MicroOp::Int {
            purpose: IntPurpose::FpAddr,
        });
        self.emit(MicroOp::Store { addr, size });
    }

    /// Emits `n` integer address-calculation ops.
    pub fn int_addr(&mut self, n: u32) {
        for _ in 0..n {
            self.emit(MicroOp::Int {
                purpose: IntPurpose::IntAddr,
            });
        }
    }

    /// Emits `n` FP address-calculation ops.
    pub fn fp_addr(&mut self, n: u32) {
        for _ in 0..n {
            self.emit(MicroOp::Int {
                purpose: IntPurpose::FpAddr,
            });
        }
    }

    /// Emits `n` general integer compute ops.
    pub fn int_other(&mut self, n: u32) {
        for _ in 0..n {
            self.emit(MicroOp::Int {
                purpose: IntPurpose::Other,
            });
        }
    }

    /// Emits `n` floating-point ops.
    pub fn fp_ops(&mut self, n: u32) {
        for _ in 0..n {
            self.emit(MicroOp::Fp);
        }
    }

    /// Emits a conditional branch with the given real outcome.
    ///
    /// The taken target is a short forward skip; use
    /// [`loop_start`](Self::loop_start)/[`loop_back`](Self::loop_back) for
    /// backward loop branches.
    pub fn cond_branch(&mut self, taken: bool) {
        let pc = self.top().pc();
        self.emit(MicroOp::Branch {
            taken,
            target: pc + 4 * INSTR_BYTES,
            kind: BranchKind::Conditional,
        });
    }

    /// Marks the top of a loop in the current frame.
    ///
    /// # Panics
    ///
    /// Panics if no frame is active.
    pub fn loop_start(&mut self) -> LoopLabel {
        let top = self.top();
        LoopLabel {
            cursor: top.cursor,
            depth: self.frames.len(),
        }
    }

    /// Emits the loop's backward conditional branch. When `taken`, the
    /// program counter returns to the matching [`loop_start`](Self::loop_start),
    /// so the loop body's instruction addresses are re-executed — exactly
    /// how loops keep the L1I footprint small and train loop predictors.
    ///
    /// # Panics
    ///
    /// Panics if the label was created in a different frame depth.
    pub fn loop_back(&mut self, label: LoopLabel, taken: bool) {
        assert_eq!(
            label.depth,
            self.frames.len(),
            "loop_back must be called in the frame that created the label"
        );
        let top = self.top();
        let target = top.base + label.cursor;
        self.emit(MicroOp::Branch {
            taken,
            target,
            kind: BranchKind::Conditional,
        });
        if taken {
            self.top_mut().cursor = label.cursor;
        }
    }

    /// Emits `units` micro-ops of framework boilerplate in the current
    /// frame: instruction classes follow `mix`, memory ops walk `scratch`
    /// sequentially, and branch outcomes are mostly-taken with a
    /// deterministic 1-in-8 twist (well-predicted, like real bookkeeping
    /// code).
    ///
    /// # Panics
    ///
    /// Panics if `scratch` is empty.
    pub fn boilerplate(&mut self, mix: &OpMix, units: u64, scratch: &MemRegion) {
        assert!(!scratch.is_empty(), "boilerplate needs a scratch region");
        let n = mix.pattern.len();
        for _ in 0..units {
            let kind = mix.pattern[self.boiler_idx % n];
            self.boiler_idx = self.boiler_idx.wrapping_add(1);
            match kind {
                PatKind::Load => {
                    let off = self.boiler_off % scratch.len();
                    self.boiler_off = self.boiler_off.wrapping_add(8);
                    let addr = scratch.base() + (off & !7);
                    self.emit(MicroOp::Load { addr, size: 8 });
                }
                PatKind::Store => {
                    let off = self.boiler_off % scratch.len();
                    self.boiler_off = self.boiler_off.wrapping_add(8);
                    let addr = scratch.base() + (off & !7);
                    self.emit(MicroOp::Store { addr, size: 8 });
                }
                PatKind::IntAddr => self.emit(MicroOp::Int {
                    purpose: IntPurpose::IntAddr,
                }),
                PatKind::FpAddr => self.emit(MicroOp::Int {
                    purpose: IntPurpose::FpAddr,
                }),
                PatKind::IntOther => self.emit(MicroOp::Int {
                    purpose: IntPurpose::Other,
                }),
                PatKind::Fp => self.emit(MicroOp::Fp),
                PatKind::Branch => {
                    // Framework bookkeeping branches are overwhelmingly
                    // biased: most sites always go the same way (error
                    // checks, type guards), a small minority flips
                    // periodically (batch boundaries). Predictors learn the
                    // constant sites after one visit; what separates
                    // platforms is predictor *capacity* across megabytes of
                    // code plus the loop/periodic sites.
                    let pc = self.top().pc();
                    let site = (pc >> 2).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 56;
                    let taken = if site < 52 {
                        // ~20% of sites: periodic batch-boundary branches.
                        // Long-history/loop-counter predictors learn these;
                        // short-history ones only the shortest periods.
                        self.boiler_branch += 1;
                        let period = 4 + (site % 13);
                        !self.boiler_branch.is_multiple_of(period)
                    } else {
                        // Constant-outcome sites, 7/8 biased taken.
                        !site.is_multiple_of(8)
                    };
                    self.cond_branch(taken);
                }
            }
        }
    }

    /// Signals end-of-workload to the sink.
    pub fn finish(&mut self) {
        self.sink.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MixSink;

    fn layout() -> (CodeLayout, RegionId, RegionId) {
        let mut l = CodeLayout::new();
        let a = l.region("a", 4096);
        let b = l.region("b", 4096);
        (l, a, b)
    }

    #[test]
    fn frame_emits_call_and_return() {
        let (l, a, b) = layout();
        let mut sink = MixSink::new();
        let mut ctx = ExecCtx::new(&l, &mut sink);
        ctx.frame(a, |ctx| {
            ctx.int_other(1);
            ctx.frame(b, |ctx| ctx.int_other(1));
        });
        // Outer frame has no caller => no call/ret branch; inner has both.
        let m = sink.mix();
        assert_eq!(m.branches, 2);
        assert_eq!(m.int_other, 2);
    }

    #[test]
    fn pcs_stay_inside_region() {
        let mut l = CodeLayout::new();
        let small = l.region("small", 64);
        struct RangeCheck {
            base: u64,
            end: u64,
        }
        impl TraceSink for RangeCheck {
            fn exec(&mut self, pc: u64, _op: MicroOp) {
                assert!(
                    pc >= self.base && pc < self.end,
                    "pc {pc:#x} escaped region"
                );
            }
        }
        let region = l.get(small).clone();
        let mut sink = RangeCheck {
            base: region.base,
            end: region.end(),
        };
        let mut ctx = ExecCtx::new(&l, &mut sink);
        ctx.frame(small, |ctx| ctx.int_other(100));
    }

    #[test]
    fn loop_back_reexecutes_same_pcs() {
        let (l, a, _) = layout();
        #[derive(Default)]
        struct PcSet(std::collections::HashSet<u64>, u64);
        impl TraceSink for PcSet {
            fn exec(&mut self, pc: u64, _op: MicroOp) {
                self.0.insert(pc);
                self.1 += 1;
            }
        }
        let mut sink = PcSet::default();
        let mut ctx = ExecCtx::new(&l, &mut sink);
        ctx.frame(a, |ctx| {
            let top = ctx.loop_start();
            for i in 0..10 {
                ctx.int_other(4);
                ctx.loop_back(top, i < 9);
            }
        });
        // 10 iterations x 5 ops but distinct pcs only ~5.
        assert_eq!(sink.1, 50);
        assert!(sink.0.len() <= 6, "distinct pcs {}", sink.0.len());
    }

    #[test]
    fn read_write_emit_addr_calc() {
        let (l, a, _) = layout();
        let mut sink = MixSink::new();
        let mut ctx = ExecCtx::new(&l, &mut sink);
        let buf = ctx.heap_alloc(64, 8);
        ctx.frame(a, |ctx| {
            ctx.read(buf.addr(0), 8);
            ctx.write(buf.addr(8), 8);
            ctx.read_fp(buf.addr(16), 8);
            ctx.write_fp(buf.addr(24), 8);
        });
        let m = sink.mix();
        assert_eq!(m.loads, 2);
        assert_eq!(m.stores, 2);
        assert_eq!(m.int_addr, 2);
        assert_eq!(m.fp_addr, 2);
    }

    #[test]
    fn boilerplate_matches_mix_proportions() {
        let (l, a, _) = layout();
        let mut sink = MixSink::new();
        let mut ctx = ExecCtx::new(&l, &mut sink);
        let scratch = ctx.scratch_alloc(4096, 8);
        let mix = OpMix::new(30, 10, 20, 20, 0, 20);
        ctx.frame(a, |ctx| ctx.boilerplate(&mix, 10_000, &scratch));
        let m = sink.mix();
        let total = m.total() as f64;
        assert!((m.loads as f64 / total - 0.30).abs() < 0.02);
        assert!((m.branches as f64 / total - 0.20).abs() < 0.02);
        assert_eq!(m.fp, 0);
    }

    #[test]
    fn op_mix_pattern_interleaves() {
        let mix = OpMix::new(1, 0, 0, 1, 0, 0);
        assert_eq!(mix.len(), 2);
        assert_ne!(mix.pattern[0], mix.pattern[1]);
    }

    #[test]
    #[should_panic(expected = "non-zero weight")]
    fn empty_mix_panics() {
        let _ = OpMix::new(0, 0, 0, 0, 0, 0);
    }

    #[test]
    #[should_panic(expected = "active frame")]
    fn op_without_frame_panics() {
        let (l, _, _) = layout();
        let mut sink = MixSink::new();
        let mut ctx = ExecCtx::new(&l, &mut sink);
        ctx.int_other(1);
    }

    #[test]
    fn frame_spread_widens_touched_pcs() {
        let mut l = CodeLayout::new();
        let big = l.region("big", 64 * 1024);
        #[derive(Default)]
        struct PcSet(std::collections::HashSet<u64>);
        impl TraceSink for PcSet {
            fn exec(&mut self, pc: u64, _op: MicroOp) {
                self.0.insert(pc >> 6);
            }
        }
        let run = |spread: u64| {
            let mut sink = PcSet::default();
            let mut ctx = ExecCtx::new(&l, &mut sink);
            ctx.frame(big, |ctx| {
                for _ in 0..200 {
                    ctx.frame_spread(big, spread, |ctx| ctx.int_other(8));
                }
            });
            sink.0.len()
        };
        let narrow = run(0);
        let wide = run(64 * 1024);
        assert!(wide > 10 * narrow, "narrow {narrow} wide {wide}");
    }

    #[test]
    fn frame_spread_is_deterministic() {
        let mut l = CodeLayout::new();
        let big = l.region("big", 16 * 1024);
        #[derive(Default)]
        struct Pcs(Vec<u64>);
        impl TraceSink for Pcs {
            fn exec(&mut self, pc: u64, _op: MicroOp) {
                self.0.push(pc);
            }
        }
        let run = || {
            let mut sink = Pcs::default();
            let mut ctx = ExecCtx::new(&l, &mut sink);
            ctx.frame(big, |ctx| {
                for _ in 0..20 {
                    ctx.frame_spread(big, 16 * 1024, |ctx| ctx.int_other(4));
                }
            });
            sink.0
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn dispatch_emits_indirect_branch() {
        let (l, a, b) = layout();
        #[derive(Default)]
        struct KindCount(u64);
        impl TraceSink for KindCount {
            fn exec(&mut self, _pc: u64, op: MicroOp) {
                if let MicroOp::Branch {
                    kind: BranchKind::Indirect,
                    ..
                } = op
                {
                    self.0 += 1;
                }
            }
        }
        let mut sink = KindCount::default();
        let mut ctx = ExecCtx::new(&l, &mut sink);
        ctx.frame(a, |ctx| {
            ctx.dispatch(b, |ctx| ctx.int_other(1));
        });
        assert_eq!(sink.0, 1);
    }
}
