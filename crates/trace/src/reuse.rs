//! Reuse-distance (LRU stack distance) profiling.
//!
//! The paper's future-work section commits to "system-independent
//! characterization work on representative big data workloads" in the
//! style of Hoste & Eeckhout. Reuse distances are the core of that
//! methodology: the LRU stack distance distribution of a trace predicts
//! its miss ratio on *any* LRU cache of *any* capacity, independent of a
//! particular machine. This module implements Olken's exact algorithm
//! (hash map of last-access times + a Fenwick tree counting distinct lines
//! in a time window).
//!
//! # Examples
//!
//! ```
//! use bdb_trace::reuse::ReuseProfiler;
//!
//! let mut p = ReuseProfiler::new(64);
//! p.touch(0x0000); // cold
//! p.touch(0x1000); // cold
//! p.touch(0x0000); // reuse distance 1 (one distinct line in between)
//! let h = p.histogram();
//! assert_eq!(h.cold, 2);
//! assert_eq!(h.bucket_for_distance(1), 1);
//! ```

// The last-access map is keyed-lookup only (get/insert/remove by line
// address, never iterated), so hash order cannot affect the histogram.
// bdb-lint: allow(determinism): keyed-lookup-only map, never iterated.
use std::collections::HashMap;

/// Power-of-two bucketed reuse-distance histogram.
///
/// Bucket `i` counts reuses with stack distance in `[2^i, 2^(i+1))`
/// (bucket 0 holds distances 0 and 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReuseHistogram {
    /// Count of first-touch (cold) accesses.
    pub cold: u64,
    /// Reuses beyond the profiler's tracking window.
    pub beyond_window: u64,
    /// Log2-bucketed reuse counts.
    pub buckets: Vec<u64>,
    /// Line granularity in bytes.
    pub line_bytes: u64,
}

impl ReuseHistogram {
    /// Total accesses recorded.
    pub fn total(&self) -> u64 {
        self.cold + self.beyond_window + self.buckets.iter().sum::<u64>()
    }

    /// Count recorded in the bucket covering `distance`.
    pub fn bucket_for_distance(&self, distance: u64) -> u64 {
        let i = (64 - distance.max(1).leading_zeros() as usize).saturating_sub(1);
        self.buckets.get(i).copied().unwrap_or(0)
    }

    /// Predicted miss ratio of a fully-associative LRU cache holding
    /// `lines` lines: every reuse at stack distance > `lines` misses, plus
    /// all cold and beyond-window accesses.
    ///
    /// Returns 0 for an empty histogram.
    pub fn predicted_miss_ratio(&self, lines: u64) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let mut misses = self.cold + self.beyond_window;
        for (i, &count) in self.buckets.iter().enumerate() {
            // Bucket i covers distances [2^i, 2^(i+1)); classify by the
            // bucket's upper edge so a bucket only counts as hitting once
            // the capacity covers all distances it may contain.
            let bucket_max = 1u64 << (i + 1);
            if bucket_max > lines {
                misses += count;
            }
        }
        misses as f64 / total as f64
    }

    /// The smallest capacity (in lines, power of two) at which the
    /// predicted miss ratio falls within `epsilon` of the cold-miss floor —
    /// a machine-independent footprint estimate.
    pub fn footprint_lines(&self, epsilon: f64) -> u64 {
        let floor = if self.total() == 0 {
            0.0
        } else {
            (self.cold + self.beyond_window) as f64 / self.total() as f64
        };
        for i in 0..self.buckets.len() {
            let lines = 1u64 << i;
            if self.predicted_miss_ratio(lines) - floor <= epsilon {
                return lines;
            }
        }
        1u64 << self.buckets.len()
    }
}

/// Fenwick tree over access timestamps (ring buffer of `window` slots).
#[derive(Debug, Clone)]
struct Fenwick {
    tree: Vec<u32>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Self {
            tree: vec![0; n + 1],
        }
    }

    fn add(&mut self, mut i: usize, delta: i32) {
        i += 1;
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i64 + i64::from(delta)) as u32;
            i += i & i.wrapping_neg();
        }
    }

    fn prefix(&self, mut i: usize) -> u64 {
        let mut sum = 0u64;
        i = i.min(self.tree.len() - 1);
        while i > 0 {
            sum += u64::from(self.tree[i]);
            i -= i & i.wrapping_neg();
        }
        sum
    }
}

/// Exact LRU stack-distance profiler (Olken's algorithm) with a bounded
/// time window.
#[derive(Debug, Clone)]
pub struct ReuseProfiler {
    line_shift: u32,
    window: usize,
    time: u64,
    // bdb-lint: allow(determinism): keyed-lookup-only map, never iterated.
    last_access: HashMap<u64, u64>,
    fenwick: Fenwick,
    cold: u64,
    beyond: u64,
    buckets: Vec<u64>,
    /// Bucket boundary table, built once at construction: maps a reuse
    /// distance's bit width (`64 - leading_zeros`) to its clamped bucket
    /// index, hoisting the shift/clamp arithmetic out of the per-access
    /// path of [`ReuseProfiler::touch`].
    bucket_of: [u8; 65],
}

impl ReuseProfiler {
    /// Creates a profiler at `line_bytes` granularity.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a power of two.
    pub fn new(line_bytes: u64) -> Self {
        Self::with_window(line_bytes, 1 << 21)
    }

    /// Creates a profiler with an explicit tracking window (accesses);
    /// reuses farther apart than the window count as `beyond_window`.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a power of two or `window == 0`.
    pub fn with_window(line_bytes: u64, window: usize) -> Self {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(window > 0, "window must be positive");
        let buckets = vec![0; 40];
        let last = buckets.len() - 1;
        let mut bucket_of = [0u8; 65];
        for (width, slot) in bucket_of.iter_mut().enumerate() {
            *slot = width.saturating_sub(1).min(last) as u8;
        }
        Self {
            line_shift: line_bytes.trailing_zeros(),
            window,
            time: 0,
            // bdb-lint: allow(determinism): keyed-lookup-only map.
            last_access: HashMap::new(),
            fenwick: Fenwick::new(window),
            cold: 0,
            beyond: 0,
            buckets,
            bucket_of,
        }
    }

    fn slot(&self, t: u64) -> usize {
        (t % self.window as u64) as usize
    }

    /// Records an access to `addr`.
    pub fn touch(&mut self, addr: u64) {
        let line = addr >> self.line_shift;
        let now = self.time;
        self.time += 1;
        // Evict the timestamp about to be overwritten by the ring.
        if now >= self.window as u64 {
            let expiring = now - self.window as u64;
            // Any line whose last access is exactly `expiring` leaves the
            // window; its Fenwick bit is cleared lazily below when touched,
            // so just clear the slot if it is still set.
            // (Slot reuse is handled by the distance check.)
            let slot = self.slot(expiring);
            if self.fenwick.prefix(slot + 1) > self.fenwick.prefix(slot) {
                self.fenwick.add(slot, -1);
            }
        }
        match self.last_access.insert(line, now) {
            None => {
                self.cold += 1;
            }
            Some(prev) => {
                if now - prev >= self.window as u64 {
                    self.beyond += 1;
                } else {
                    // Distinct lines touched strictly between prev and now:
                    // count of set slots in (prev, now) over the ring.
                    let distance = self.count_between(prev, now);
                    let width = (64 - distance.max(1).leading_zeros()) as usize;
                    self.buckets[self.bucket_of[width] as usize] += 1;
                    // Clear the previous position.
                    self.fenwick.add(self.slot(prev), -1);
                }
            }
        }
        self.fenwick.add(self.slot(now), 1);
    }

    /// Distinct-line count in the open interval `(prev, now)`, on the ring.
    fn count_between(&self, prev: u64, now: u64) -> u64 {
        let a = self.slot(prev);
        let b = self.slot(now);
        let count = |lo: usize, hi: usize| -> u64 {
            // set slots in [lo, hi)
            if hi <= lo {
                0
            } else {
                self.fenwick.prefix(hi) - self.fenwick.prefix(lo)
            }
        };
        if a < b {
            count(a + 1, b)
        } else {
            count(a + 1, self.window) + count(0, b)
        }
    }

    /// Produces the histogram collected so far.
    pub fn histogram(&self) -> ReuseHistogram {
        ReuseHistogram {
            cold: self.cold,
            beyond_window: self.beyond,
            buckets: self.buckets.clone(),
            line_bytes: 1 << self.line_shift,
        }
    }
}

/// A [`TraceSink`](crate::TraceSink) that profiles data and instruction
/// reuse distances simultaneously (the input to architecture-independent
/// characterization).
#[derive(Debug)]
pub struct ReuseSink {
    /// Data-access reuse profiler (64-byte lines).
    pub data: ReuseProfiler,
    /// Instruction-fetch reuse profiler (64-byte lines).
    pub instructions: ReuseProfiler,
}

impl ReuseSink {
    /// Creates a sink with 64-byte line granularity.
    pub fn new() -> Self {
        Self {
            data: ReuseProfiler::new(64),
            instructions: ReuseProfiler::new(64),
        }
    }
}

impl Default for ReuseSink {
    fn default() -> Self {
        Self::new()
    }
}

impl crate::TraceSink for ReuseSink {
    fn exec(&mut self, pc: u64, op: crate::MicroOp) {
        self.instructions.touch(pc);
        match op {
            crate::MicroOp::Load { addr, .. } | crate::MicroOp::Store { addr, .. } => {
                self.data.touch(addr);
            }
            _ => {}
        }
    }

    fn exec_batch(&mut self, batch: &[crate::TraceEvent]) {
        for event in batch {
            self.instructions.touch(event.pc);
            match event.op {
                crate::MicroOp::Load { addr, .. } | crate::MicroOp::Store { addr, .. } => {
                    self.data.touch(addr);
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_then_exact_distances() {
        let mut p = ReuseProfiler::new(64);
        // Touch lines A B C A: A's reuse sees 2 distinct lines (B, C).
        p.touch(0x0000);
        p.touch(0x1000);
        p.touch(0x2000);
        p.touch(0x0000);
        let h = p.histogram();
        assert_eq!(h.cold, 3);
        assert_eq!(h.bucket_for_distance(2), 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn same_line_is_distance_zero() {
        let mut p = ReuseProfiler::new(64);
        p.touch(0x100);
        p.touch(0x108); // same 64B line
        let h = p.histogram();
        assert_eq!(h.cold, 1);
        assert_eq!(h.bucket_for_distance(0), 1);
    }

    #[test]
    fn repeated_sweep_has_constant_distance() {
        let mut p = ReuseProfiler::new(64);
        // Sweep 16 lines, 4 rounds: after warmup every access has
        // distance 15.
        for _ in 0..4 {
            for i in 0..16u64 {
                p.touch(i * 64);
            }
        }
        let h = p.histogram();
        assert_eq!(h.cold, 16);
        // 48 reuses at distance 15 => bucket log2(15)=3.
        assert_eq!(h.buckets[3], 48);
    }

    #[test]
    fn predicted_miss_ratio_matches_lru_intuition() {
        let mut p = ReuseProfiler::new(64);
        for _ in 0..10 {
            for i in 0..32u64 {
                p.touch(i * 64);
            }
        }
        let h = p.histogram();
        // A 64-line cache holds the sweep: only cold misses.
        let big = h.predicted_miss_ratio(64);
        assert!(big < 0.15, "{big}");
        // An 8-line cache thrashes the 32-line sweep.
        let small = h.predicted_miss_ratio(8);
        assert!(small > 0.9, "{small}");
    }

    #[test]
    fn footprint_lines_detects_working_set() {
        let mut p = ReuseProfiler::new(64);
        for _ in 0..20 {
            for i in 0..100u64 {
                p.touch(i * 64);
            }
        }
        let fp = p.histogram().footprint_lines(0.01);
        assert!((128..=256).contains(&fp), "footprint {fp}");
    }

    #[test]
    fn window_overflow_counts_as_beyond() {
        let mut p = ReuseProfiler::with_window(64, 64);
        p.touch(0xAAAA_0000);
        for i in 0..100u64 {
            p.touch(0x5000_0000 + i * 64);
        }
        p.touch(0xAAAA_0000); // reuse 100 accesses later, window is 64
        let h = p.histogram();
        assert_eq!(h.beyond_window, 1);
    }

    /// Exact LRU stack distance by brute force: distinct lines touched
    /// since the previous occurrence, via a linear recency list.
    fn brute_force_histogram(lines: &[u64]) -> ReuseHistogram {
        let mut stack: Vec<u64> = Vec::new();
        let mut h = ReuseHistogram {
            cold: 0,
            beyond_window: 0,
            buckets: vec![0; 40],
            line_bytes: 64,
        };
        for &line in lines {
            match stack.iter().position(|&l| l == line) {
                None => h.cold += 1,
                Some(pos) => {
                    // `pos` lines are more recent than the previous touch.
                    let width = (64 - (pos as u64).max(1).leading_zeros()) as usize;
                    let bucket = width.saturating_sub(1).min(h.buckets.len() - 1);
                    h.buckets[bucket] += 1;
                    stack.remove(pos);
                }
            }
            stack.insert(0, line);
        }
        h
    }

    /// Regression pin for the hoisted bucket-boundary table: a fixed
    /// xorshift trace must produce a histogram byte-identical to an
    /// independent brute-force reference AND to a pinned checksum, so any
    /// drift in the per-access bucket arithmetic fails loudly.
    #[test]
    fn histogram_bytes_are_pinned() {
        let mut profiler = ReuseProfiler::new(64);
        let mut lines = Vec::new();
        let mut x = 0x0123_4567_89AB_CDEF_u64;
        for _ in 0..4000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let line = x % 700;
            lines.push(line);
            profiler.touch(line * 64);
        }
        let h = profiler.histogram();
        assert_eq!(h, brute_force_histogram(&lines));

        // FNV-1a over the histogram's fields, pinned. This is the byte-level
        // contract: an optimization may not move a single count.
        let mut fnv = 0xcbf2_9ce4_8422_2325u64;
        for value in [h.cold, h.beyond_window]
            .into_iter()
            .chain(h.buckets.iter().copied())
        {
            for byte in value.to_le_bytes() {
                fnv ^= u64::from(byte);
                fnv = fnv.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        assert_eq!(fnv, 0x2DA7_6EC5_F32E_1399, "histogram checksum drifted");
    }

    #[test]
    fn histogram_totals_are_consistent() {
        let mut p = ReuseProfiler::new(64);
        let mut x = 7u64;
        for _ in 0..5000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            p.touch((x % 500) * 64);
        }
        assert_eq!(p.histogram().total(), 5000);
    }
}
