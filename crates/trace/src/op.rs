//! The micro-op vocabulary.
//!
//! Five classes mirror the categories of the paper's Figure 1 (load, store,
//! branch, integer, floating-point); integer ops additionally carry the
//! purpose tag used by Figure 2's integer-instruction breakdown (integer
//! address calculation / floating-point address calculation / other).

use serde::{Deserialize, Serialize};

/// Why an integer operation was executed (paper Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IntPurpose {
    /// Address arithmetic for integer/byte data (e.g. locating an array slot).
    IntAddr,
    /// Address arithmetic for floating-point data.
    FpAddr,
    /// Everything else: actual computation, comparisons, bit twiddling.
    Other,
}

/// Control-flow transfer kind, used by the branch-predictor models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BranchKind {
    /// Conditional branch; `taken` is meaningful.
    Conditional,
    /// Unconditional direct jump (always taken).
    Direct,
    /// Indirect jump/call through a register (virtual dispatch, switch).
    Indirect,
    /// Direct call (always taken, pushes return address).
    Call,
    /// Return (indirect through the return stack).
    Return,
}

/// One dynamic micro-operation.
///
/// The program counter is supplied separately by the execution context, so
/// `MicroOp` itself stays a small `Copy` value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MicroOp {
    /// Data load of `size` bytes from `addr`.
    Load {
        /// Virtual data address.
        addr: u64,
        /// Access size in bytes.
        size: u8,
    },
    /// Data store of `size` bytes to `addr`.
    Store {
        /// Virtual data address.
        addr: u64,
        /// Access size in bytes.
        size: u8,
    },
    /// Integer ALU operation.
    Int {
        /// Why the operation was executed (Figure 2 categories).
        purpose: IntPurpose,
    },
    /// Floating-point operation.
    Fp,
    /// Control transfer.
    Branch {
        /// Outcome (always `true` for unconditional kinds).
        taken: bool,
        /// Target program counter when taken.
        target: u64,
        /// Kind of transfer.
        kind: BranchKind,
    },
}

impl MicroOp {
    /// Returns `true` for loads and stores.
    pub fn is_memory(&self) -> bool {
        matches!(self, MicroOp::Load { .. } | MicroOp::Store { .. })
    }

    /// Returns `true` for any branch kind.
    pub fn is_branch(&self) -> bool {
        matches!(self, MicroOp::Branch { .. })
    }

    /// Bytes moved by this op (0 for non-memory ops).
    pub fn bytes_moved(&self) -> u64 {
        match self {
            MicroOp::Load { size, .. } | MicroOp::Store { size, .. } => u64::from(*size),
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_helpers() {
        assert!(MicroOp::Load { addr: 0, size: 8 }.is_memory());
        assert!(MicroOp::Store { addr: 0, size: 4 }.is_memory());
        assert!(!MicroOp::Fp.is_memory());
        assert!(MicroOp::Branch {
            taken: true,
            target: 0,
            kind: BranchKind::Call
        }
        .is_branch());
        assert!(!MicroOp::Int {
            purpose: IntPurpose::Other
        }
        .is_branch());
    }

    #[test]
    fn bytes_moved() {
        assert_eq!(MicroOp::Load { addr: 16, size: 8 }.bytes_moved(), 8);
        assert_eq!(MicroOp::Store { addr: 16, size: 1 }.bytes_moved(), 1);
        assert_eq!(MicroOp::Fp.bytes_moved(), 0);
    }

    #[test]
    fn micro_op_is_small() {
        // The sink is called once per dynamic instruction; keep the op tiny.
        assert!(std::mem::size_of::<MicroOp>() <= 24);
    }
}
