//! Property tests for the trace-once/replay-many contract: recording an
//! arbitrary op sequence into a [`TraceBuffer`] and replaying it must be
//! observation-equivalent to streaming the same ops directly into a sink
//! — for every sink kind and across chunk boundaries.
//!
//! The `Machine` (cycle-accurate) leg of the same contract lives in
//! `bdb-sim/tests/replay_props.rs`, since `bdb-trace` cannot depend on
//! the simulator.

use bdb_trace::{
    BranchKind, CountingSink, IntPurpose, MicroOp, MixSink, ReuseSink, TraceBuffer, TraceSink,
};
use proptest::prelude::*;

/// Decodes a generated `(selector, payload, payload2, flag)` tuple into a
/// micro-op, covering every variant shape.
fn op_from(selector: u8, payload: u64, size_seed: u64, flag: bool) -> MicroOp {
    let size = (size_seed % 16) as u8 + 1;
    match selector % 11 {
        0 => MicroOp::Int {
            purpose: IntPurpose::IntAddr,
        },
        1 => MicroOp::Int {
            purpose: IntPurpose::FpAddr,
        },
        2 => MicroOp::Int {
            purpose: IntPurpose::Other,
        },
        3 => MicroOp::Fp,
        4 => MicroOp::Load {
            addr: payload,
            size,
        },
        5 => MicroOp::Store {
            addr: payload,
            size,
        },
        kind => MicroOp::Branch {
            taken: flag,
            target: payload,
            kind: match kind {
                6 => BranchKind::Conditional,
                7 => BranchKind::Direct,
                8 => BranchKind::Indirect,
                9 => BranchKind::Call,
                _ => BranchKind::Return,
            },
        },
    }
}

fn record(ops: &[(u64, MicroOp)], chunk_capacity: usize) -> TraceBuffer {
    let mut buffer = TraceBuffer::with_chunk_capacity(chunk_capacity);
    for &(pc, op) in ops {
        buffer.exec(pc, op);
    }
    buffer
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn replay_equals_direct_for_mix_and_counting_sinks(
        raw in proptest::collection::vec(
            (any::<u64>(), (0u8..11, any::<u64>(), any::<u64>(), any::<bool>())),
            0..400,
        ),
        chunk in prop_oneof![Just(1usize), Just(3), Just(64), Just(1 << 16)],
    ) {
        let ops: Vec<(u64, MicroOp)> = raw
            .iter()
            .map(|&(pc, (sel, payload, sz, flag))| (pc, op_from(sel, payload, sz, flag)))
            .collect();
        let buffer = record(&ops, chunk);
        prop_assert_eq!(buffer.len(), ops.len() as u64);

        let mut direct_mix = MixSink::new();
        let mut direct_count = CountingSink::new();
        for &(pc, op) in &ops {
            direct_mix.exec(pc, op);
            direct_count.exec(pc, op);
        }
        let mut replay_mix = MixSink::new();
        let mut replay_count = CountingSink::new();
        buffer.replay_into(&mut replay_mix);
        buffer.replay_into(&mut replay_count);
        prop_assert_eq!(replay_mix.mix(), direct_mix.mix());
        prop_assert_eq!(replay_count.ops(), direct_count.ops());
    }

    #[test]
    fn replay_equals_direct_for_reuse_sink(
        raw in proptest::collection::vec(
            (0u64..1 << 14, (0u8..11, 0u64..1 << 14, any::<u64>(), any::<bool>())),
            0..300,
        ),
        chunk in prop_oneof![Just(1usize), Just(5), Just(128)],
    ) {
        let ops: Vec<(u64, MicroOp)> = raw
            .iter()
            .map(|&(pc, (sel, payload, sz, flag))| (pc, op_from(sel, payload, sz, flag)))
            .collect();
        let buffer = record(&ops, chunk);

        let mut direct = ReuseSink::new();
        for &(pc, op) in &ops {
            direct.exec(pc, op);
        }
        let mut replayed = ReuseSink::new();
        buffer.replay_into(&mut replayed);
        prop_assert_eq!(
            replayed.data.histogram(),
            direct.data.histogram()
        );
        prop_assert_eq!(
            replayed.instructions.histogram(),
            direct.instructions.histogram()
        );
    }

    #[test]
    fn chunk_boundaries_are_invisible(
        pcs in proptest::collection::vec(any::<u64>(), 0..130),
    ) {
        // Same trace recorded at chunk capacities surrounding the trace
        // length (empty, exactly one chunk, chunk+1) must replay the same.
        let ops: Vec<(u64, MicroOp)> = pcs
            .iter()
            .map(|&pc| (pc, MicroOp::Load { addr: pc ^ 0xFFFF, size: 8 }))
            .collect();
        let n = ops.len().max(1);
        let mut observed = Vec::new();
        for chunk in [n, n + 1, 64usize, 1] {
            let buffer = record(&ops, chunk);
            let mut mix = MixSink::new();
            buffer.replay_into(&mut mix);
            observed.push(mix.mix());
        }
        for window in observed.windows(2) {
            prop_assert_eq!(window[0], window[1]);
        }
    }
}
