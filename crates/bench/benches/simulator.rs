#![allow(missing_docs)]
//! Micro-benchmarks of the simulator hot paths: these bound how fast the
//! figure regenerators can run.

use bdb_sim::branch::BranchUnit;
use bdb_sim::cache::{Cache, CacheConfig};
use bdb_sim::tlb::{Tlb, TlbConfig};
use bdb_sim::{Machine, MachineConfig};
use bdb_trace::{BranchKind, CodeLayout, ExecCtx};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

fn cache_access(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("l1_hit_stream", |b| {
        b.iter_batched(
            || Cache::new(CacheConfig::lru(32 * 1024, 8, 64)),
            |mut cache| {
                for i in 0..10_000u64 {
                    cache.access((i * 8) % 16_384, false);
                }
                cache
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("l1_miss_stream", |b| {
        b.iter_batched(
            || Cache::new(CacheConfig::lru(32 * 1024, 8, 64)),
            |mut cache| {
                for i in 0..10_000u64 {
                    cache.access(i * 4096, false);
                }
                cache
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn branch_prediction(c: &mut Criterion) {
    let mut group = c.benchmark_group("branch");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.throughput(Throughput::Elements(10_000));
    for (name, make) in [
        ("e5645", BranchUnit::e5645 as fn() -> BranchUnit),
        ("d510", BranchUnit::d510 as fn() -> BranchUnit),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                make,
                |mut unit| {
                    for i in 0..10_000u64 {
                        unit.observe(
                            0x400_000 + (i % 64) * 4,
                            i % 7 != 0,
                            0x400_100,
                            BranchKind::Conditional,
                        );
                    }
                    unit
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn tlb_access(c: &mut Criterion) {
    let mut group = c.benchmark_group("tlb");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("dtlb_64", |b| {
        b.iter_batched(
            || Tlb::new(TlbConfig::small_pages(64)),
            |mut tlb| {
                for i in 0..10_000u64 {
                    tlb.access((i % 128) << 12);
                }
                tlb
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn machine_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("machine");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.throughput(Throughput::Elements(50_000));
    group.bench_function("xeon_50k_ops", |b| {
        let mut layout = CodeLayout::new();
        let main = layout.region("main", 32 * 1024);
        b.iter(|| {
            let mut machine = Machine::new(MachineConfig::xeon_e5645());
            let mut ctx = ExecCtx::new(&layout, &mut machine);
            let data = ctx.heap_alloc(1 << 20, 64);
            ctx.frame(main, |ctx| {
                let top = ctx.loop_start();
                for i in 0..12_500u64 {
                    ctx.read(data.addr((i * 64) % data.len()), 8);
                    ctx.int_other(1);
                    ctx.cond_branch(i % 5 != 0);
                    ctx.loop_back(top, i + 1 < 12_500);
                }
            });
            drop(ctx);
            machine.report().instructions
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    cache_access,
    branch_prediction,
    tlb_access,
    machine_end_to_end
);
criterion_main!(benches);
