#![allow(missing_docs)]
//! Ablation timing benches for the design choices DESIGN.md calls out.
//! (The *metric* ablations — what changes in the measured numbers — live in
//! the `ablation_study` binary; these measure simulation cost.)

use bdb_sim::cache::{Cache, CacheConfig, Replacement};
use bdb_sim::{Machine, MachineConfig};
use bdb_workloads::{catalog, Scale};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

fn replacement_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("replacement");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(400));
    for (name, policy) in [("lru", Replacement::Lru), ("random", Replacement::Random)] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    Cache::new(CacheConfig {
                        replacement: policy,
                        ..CacheConfig::lru(256 * 1024, 8, 64)
                    })
                },
                |mut cache| {
                    for i in 0..20_000u64 {
                        cache.access((i * 4096) % (1 << 22), i % 4 == 0);
                    }
                    cache
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn predictor_platforms(c: &mut Criterion) {
    let defs = catalog::representatives();
    let wc = defs
        .iter()
        .find(|w| w.spec.id == "H-WordCount")
        .expect("H-WordCount")
        .clone();
    let mut group = c.benchmark_group("platform_sim_cost");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.sample_size(10);
    for (name, config) in [
        ("xeon_e5645", MachineConfig::xeon_e5645()),
        ("atom_d510", MachineConfig::atom_d510()),
        ("atom_sweep_64k", MachineConfig::atom_sweep(64)),
    ] {
        let config = config.clone();
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut machine = Machine::new(config.clone());
                wc.run(&mut machine, Scale::tiny())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, replacement_policies, predictor_platforms);
criterion_main!(benches);
