#![allow(missing_docs)]
//! End-to-end engine benchmarks: one representative workload per stack,
//! traced into a null sink (engine cost) and into the full machine
//! (measurement cost).

use bdb_sim::{Machine, MachineConfig};
use bdb_trace::NullSink;
use bdb_workloads::{catalog, Scale, WorkloadDef};
use criterion::{criterion_group, criterion_main, Criterion};

fn defs() -> Vec<WorkloadDef> {
    let mut defs = catalog::full_catalog();
    defs.extend(catalog::mpi_workloads());
    defs
}

fn engine_only(c: &mut Criterion) {
    let defs = defs();
    let mut group = c.benchmark_group("engine_null_sink");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.sample_size(10);
    for id in [
        "H-WordCount",
        "S-WordCount",
        "M-WordCount",
        "I-SelectQuery",
        "H-Read",
    ] {
        let def = defs
            .iter()
            .find(|w| w.spec.id == id)
            .expect("workload")
            .clone();
        group.bench_function(id, |b| {
            b.iter(|| {
                let mut sink = NullSink;
                def.run(&mut sink, Scale::tiny())
            })
        });
    }
    group.finish();
}

fn full_measurement(c: &mut Criterion) {
    let defs = defs();
    let mut group = c.benchmark_group("engine_full_machine");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.sample_size(10);
    for id in ["H-WordCount", "S-WordCount", "M-WordCount"] {
        let def = defs
            .iter()
            .find(|w| w.spec.id == id)
            .expect("workload")
            .clone();
        group.bench_function(id, |b| {
            b.iter(|| {
                let mut machine = Machine::new(MachineConfig::xeon_e5645());
                let stats = def.run(&mut machine, Scale::tiny());
                (machine.report().instructions, stats.input_bytes)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, engine_only, full_measurement);
criterion_main!(benches);
