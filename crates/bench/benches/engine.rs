#![allow(missing_docs)]
//! Execution-engine benchmarks: serial vs parallel `profile_all`, cold
//! vs warm profile cache, and per-point vs fused (trace-once/replay-many)
//! capacity sweeps.
//!
//! Besides the Criterion groups, this bench writes `BENCH_engine.json` at
//! the workspace root with one explicit wall-clock measurement per
//! configuration, so CI and the paper-repro notes can quote the numbers
//! without parsing Criterion output. Parallel speedup scales with the
//! machine's core count (a single-core runner reports ~1.0×); the warm
//! cache speedup and the fused-sweep speedup are hardware-independent
//! and large. Every multi-thread point asserts `Engine::worker_threads`
//! equals the requested width, so a pool that silently falls back to
//! serial fails the bench run loudly instead of reporting a fake 1.0×.

use bdb_engine::{json::Value, Engine, EngineConfig, SweepMode};
use bdb_node::NodeConfig;
use bdb_sim::{sweep_per_point, MachineConfig, SweepFamily, SweepResult, PAPER_SWEEP_KIB};
use bdb_wcrt::WorkloadProfile;
use bdb_workloads::{catalog, Scale, WorkloadDef};
use criterion::{criterion_group, criterion_main, Criterion};
use std::path::PathBuf;
use std::time::Instant;

fn workloads() -> Vec<WorkloadDef> {
    catalog::representatives()
}

fn scale() -> Scale {
    Scale::tiny()
}

fn time<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let start = Instant::now();
    let result = f();
    (start.elapsed().as_secs_f64(), result)
}

fn fingerprint(profiles: &[WorkloadProfile]) -> Vec<(String, u64, u64)> {
    profiles
        .iter()
        .map(|p| {
            (
                p.spec.id.clone(),
                p.report.instructions,
                p.report.cycles.to_bits(),
            )
        })
        .collect()
}

fn scratch_cache_dir() -> PathBuf {
    std::env::temp_dir().join(format!("bdb-engine-bench-{}", std::process::id()))
}

/// Builds a sweep engine with an honest worker pool: if the requested
/// width is not what the pool actually delivers (a silent serial
/// fallback), the bench aborts instead of recording a bogus point.
fn sweep_engine(threads: usize, mode: SweepMode) -> Engine {
    let engine = Engine::new(
        EngineConfig::default()
            .threads(threads)
            .without_memory_cache()
            .sweep_mode(mode),
    );
    assert_eq!(
        engine.worker_threads(),
        threads,
        "requested a {threads}-thread pool but got {} workers: \
         the pool silently fell back — refusing to record this point",
        engine.worker_threads()
    );
    engine
}

/// Sweeps every def over the full paper capacity axis on `engine`.
fn run_sweeps(engine: &Engine, defs: &[WorkloadDef]) -> Vec<SweepResult> {
    defs.iter()
        .map(|def| {
            engine.sweep(&def.spec.id, &PAPER_SWEEP_KIB, |sink| {
                let _ = def.run(sink, scale());
            })
        })
        .collect()
}

/// The reference sweep: re-runs the workload generator on a full machine
/// once per capacity point, with no trace replay anywhere — the cost the
/// fused speedup is quoted against.
fn run_reference_sweeps(defs: &[WorkloadDef]) -> Vec<SweepResult> {
    let family = SweepFamily::atom();
    defs.iter()
        .map(|def| {
            sweep_per_point(&family, &def.spec.id, &PAPER_SWEEP_KIB, |sink| {
                let _ = def.run(sink, scale());
            })
        })
        .collect()
}

/// One explicit measurement per configuration, written to
/// `BENCH_engine.json`.
fn measure_and_report() {
    let defs = workloads();
    let machine = MachineConfig::xeon_e5645();
    let node = NodeConfig::default();
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    let (serial_s, serial) = time(|| Engine::serial().profile_all(&defs, scale(), &machine, &node));
    let (parallel_s, parallel) = time(|| {
        Engine::new(
            EngineConfig::default()
                .threads(threads)
                .without_memory_cache(),
        )
        .profile_all(&defs, scale(), &machine, &node)
    });
    assert_eq!(
        fingerprint(&serial),
        fingerprint(&parallel),
        "parallel run must be bit-identical to serial"
    );

    let dir = scratch_cache_dir();
    let _ = std::fs::remove_dir_all(&dir);
    let (cold_s, _) = time(|| {
        Engine::new(
            EngineConfig::default()
                .threads(threads)
                .cache_dir(&dir)
                .without_memory_cache(),
        )
        .profile_all(&defs, scale(), &machine, &node)
    });
    let warm_engine = Engine::new(
        EngineConfig::default()
            .threads(threads)
            .cache_dir(&dir)
            .without_memory_cache(),
    );
    let (warm_s, warm) = time(|| warm_engine.profile_all(&defs, scale(), &machine, &node));
    assert_eq!(
        warm_engine.counters().computed,
        0,
        "warm run must not simulate"
    );
    assert_eq!(fingerprint(&serial), fingerprint(&warm));
    let _ = std::fs::remove_dir_all(&dir);

    // Sweep section: the per-point reference re-runs the workload
    // generator and a full Machine for each of the 10 capacity points;
    // the fused path extracts the L1 event streams once and replays them
    // per capacity. Same bits, fraction of the work. The engine's
    // per-point mode (trace once, full machine replayed per point) is
    // timed as a third column and must also match bit for bit.
    let (sweep_serial_s, serial_sweeps) = time(|| run_reference_sweeps(&defs));
    let (sweep_replay_pp_s, replay_pp_sweeps) =
        time(|| run_sweeps(&sweep_engine(1, SweepMode::PerPoint), &defs));
    assert_eq!(
        serial_sweeps, replay_pp_sweeps,
        "engine per-point mode must be bit-identical to the reference sweep"
    );
    let (sweep_fused_s, fused_sweeps) =
        time(|| run_sweeps(&sweep_engine(1, SweepMode::Fused), &defs));
    assert_eq!(
        serial_sweeps, fused_sweeps,
        "fused sweep must be bit-identical to the per-point sweep"
    );
    let fused_speedup = sweep_serial_s / sweep_fused_s;

    // Multi-thread fused points (1/2/4 workers), each honesty-checked
    // against `worker_threads` and against the serial reference bits.
    let mut sweep_thread_fields = Vec::new();
    for t in [1usize, 2, 4] {
        let (secs, sweeps) = time(|| run_sweeps(&sweep_engine(t, SweepMode::Fused), &defs));
        assert_eq!(
            serial_sweeps, sweeps,
            "{t}-thread fused sweep must be bit-identical to serial"
        );
        sweep_thread_fields.push((t, secs));
    }

    let mut fields = vec![
        ("bench", Value::Str("engine".into())),
        ("workloads", Value::UInt(defs.len() as u64)),
        ("scale_factor", Value::Float(scale().factor())),
        ("threads", Value::UInt(threads as u64)),
        ("serial_seconds", Value::Float(serial_s)),
        ("parallel_seconds", Value::Float(parallel_s)),
        ("parallel_speedup", Value::Float(serial_s / parallel_s)),
        ("cold_cache_seconds", Value::Float(cold_s)),
        ("warm_cache_seconds", Value::Float(warm_s)),
        ("warm_cache_speedup", Value::Float(cold_s / warm_s)),
        (
            "sweep_capacity_points",
            Value::UInt(PAPER_SWEEP_KIB.len() as u64),
        ),
        ("sweep_serial_seconds", Value::Float(sweep_serial_s)),
        (
            "sweep_replay_per_point_seconds",
            Value::Float(sweep_replay_pp_s),
        ),
        ("sweep_fused_seconds", Value::Float(sweep_fused_s)),
        ("fused_speedup", Value::Float(fused_speedup)),
    ];
    for &(t, secs) in &sweep_thread_fields {
        let key = match t {
            1 => "sweep_fused_1t_seconds",
            2 => "sweep_fused_2t_seconds",
            _ => "sweep_fused_4t_seconds",
        };
        fields.push((key, Value::Float(secs)));
    }
    let report = Value::object(fields);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    let mut text = report.encode();
    text.push('\n');
    if std::fs::write(path, &text).is_ok() {
        println!("wrote {path}");
    }
    println!(
        "engine: serial {serial_s:.2}s, parallel({threads}) {parallel_s:.2}s ({:.2}x), \
         cold cache {cold_s:.2}s, warm cache {warm_s:.3}s ({:.1}x)",
        serial_s / parallel_s,
        cold_s / warm_s
    );
    println!(
        "sweep:  per-point {sweep_serial_s:.2}s, per-point(replay) {sweep_replay_pp_s:.2}s, \
         fused {sweep_fused_s:.2}s ({fused_speedup:.1}x), fused threads {}",
        sweep_thread_fields
            .iter()
            .map(|&(t, s)| format!("{t}t={s:.2}s"))
            .collect::<Vec<_>>()
            .join(" ")
    );
}

fn profile_all_serial_vs_parallel(c: &mut Criterion) {
    measure_and_report();

    let defs = workloads();
    let machine = MachineConfig::xeon_e5645();
    let node = NodeConfig::default();
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    let mut group = c.benchmark_group("engine_profile_all");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        b.iter(|| Engine::serial().profile_all(&defs, scale(), &machine, &node))
    });
    group.bench_function("parallel", |b| {
        let engine = Engine::new(
            EngineConfig::default()
                .threads(threads)
                .without_memory_cache(),
        );
        b.iter(|| engine.profile_all(&defs, scale(), &machine, &node))
    });
    group.finish();
}

fn cache_cold_vs_warm(c: &mut Criterion) {
    let defs = workloads();
    let machine = MachineConfig::xeon_e5645();
    let node = NodeConfig::default();
    let dir = scratch_cache_dir().with_extension("criterion");

    let mut group = c.benchmark_group("engine_cache");
    group.sample_size(10);
    group.bench_function("cold", |b| {
        b.iter(|| {
            let _ = std::fs::remove_dir_all(&dir);
            Engine::new(
                EngineConfig::default()
                    .cache_dir(&dir)
                    .without_memory_cache(),
            )
            .profile_all(&defs, scale(), &machine, &node)
        })
    });
    // Prime once, then measure pure warm hits.
    let _ = std::fs::remove_dir_all(&dir);
    Engine::new(
        EngineConfig::default()
            .cache_dir(&dir)
            .without_memory_cache(),
    )
    .profile_all(&defs, scale(), &machine, &node);
    group.bench_function("warm", |b| {
        let engine = Engine::new(
            EngineConfig::default()
                .cache_dir(&dir)
                .without_memory_cache(),
        );
        b.iter(|| engine.profile_all(&defs, scale(), &machine, &node))
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

fn sweep_per_point_vs_fused(c: &mut Criterion) {
    let defs = workloads();
    let def = &defs[0];
    let caps = [16u64, 256, 4096];

    let mut group = c.benchmark_group("engine_sweep");
    group.sample_size(10);
    group.bench_function("per_point", |b| {
        let engine = sweep_engine(1, SweepMode::PerPoint);
        b.iter(|| {
            engine.sweep(&def.spec.id, &caps, |sink| {
                let _ = def.run(sink, scale());
            })
        })
    });
    group.bench_function("fused", |b| {
        let engine = sweep_engine(1, SweepMode::Fused);
        b.iter(|| {
            engine.sweep(&def.spec.id, &caps, |sink| {
                let _ = def.run(sink, scale());
            })
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    profile_all_serial_vs_parallel,
    cache_cold_vs_warm,
    sweep_per_point_vs_fused
);
criterion_main!(benches);
