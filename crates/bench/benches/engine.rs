#![allow(missing_docs)]
//! Execution-engine benchmarks: serial vs parallel `profile_all`, cold
//! vs warm profile cache, and per-point vs fused (trace-once/replay-many)
//! capacity sweeps.
//!
//! Besides the Criterion groups, this bench writes `BENCH_engine.json` at
//! the workspace root with one explicit wall-clock measurement per
//! configuration, so CI and the paper-repro notes can quote the numbers
//! without parsing Criterion output. Parallel speedup scales with the
//! machine's core count (a single-core runner reports ~1.0×); the warm
//! cache speedup and the fused-sweep speedup are hardware-independent
//! and large. Every multi-thread point asserts `Engine::worker_threads`
//! equals the requested width, so a pool that silently falls back to
//! serial fails the bench run loudly instead of reporting a fake 1.0×.

use bdb_cluster::{loopback_pair, profile_all_distributed, run_worker, wire};
use bdb_cluster::{Message, Transport, WireFormat, WorkerConfig};
use bdb_codec::{columnar, RecordKind};
use bdb_engine::{json::Value, Engine, EngineConfig, SweepMode};
use bdb_node::NodeConfig;
use bdb_serve::{Mutation, ServeClient, ServeSpec, ServeState, Server, ServerConfig};
use bdb_sim::{sweep_per_point, MachineConfig, SweepFamily, SweepResult, PAPER_SWEEP_KIB};
use bdb_trace::TraceBuffer;
use bdb_wcrt::WorkloadProfile;
use bdb_workloads::{catalog, Scale, WorkloadDef};
use criterion::{criterion_group, criterion_main, Criterion};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn workloads() -> Vec<WorkloadDef> {
    catalog::representatives()
}

/// Base input scale, selectable with `BDB_BENCH_SCALE` (`tiny`, `small`,
/// `paper`, or a float factor; default `tiny` so CI stays fast). A bad
/// value aborts rather than silently benchmarking the wrong scale.
fn scale() -> Scale {
    match std::env::var("BDB_BENCH_SCALE") {
        Err(_) => Scale::tiny(),
        Ok(v) => match v.as_str() {
            "tiny" => Scale::tiny(),
            "small" => Scale::small(),
            "paper" => Scale::paper(),
            other => match other.parse() {
                Ok(f) => Scale::custom(f),
                Err(_) => panic!("bad BDB_BENCH_SCALE {other:?} (tiny|small|paper|<factor>)"),
            },
        },
    }
}

fn time<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let start = Instant::now();
    let result = f();
    (start.elapsed().as_secs_f64(), result)
}

fn fingerprint(profiles: &[WorkloadProfile]) -> Vec<(String, u64, u64)> {
    profiles
        .iter()
        .map(|p| {
            (
                p.spec.id.clone(),
                p.report.instructions,
                p.report.cycles.to_bits(),
            )
        })
        .collect()
}

fn scratch_cache_dir() -> PathBuf {
    std::env::temp_dir().join(format!("bdb-engine-bench-{}", std::process::id()))
}

/// Builds a sweep engine with an honest worker pool: if the requested
/// width is not what the pool actually delivers (a silent serial
/// fallback), the bench aborts instead of recording a bogus point.
fn sweep_engine(threads: usize, mode: SweepMode) -> Engine {
    let engine = Engine::new(
        EngineConfig::default()
            .threads(threads)
            .without_memory_cache()
            .sweep_mode(mode),
    );
    assert_eq!(
        engine.worker_threads(),
        threads,
        "requested a {threads}-thread pool but got {} workers: \
         the pool silently fell back — refusing to record this point",
        engine.worker_threads()
    );
    engine
}

/// Sweeps every def over the full paper capacity axis on `engine`.
fn run_sweeps(engine: &Engine, defs: &[WorkloadDef], at: Scale) -> Vec<SweepResult> {
    defs.iter()
        .map(|def| {
            engine.sweep(&def.spec.id, &PAPER_SWEEP_KIB, |sink| {
                let _ = def.run(sink, at);
            })
        })
        .collect()
}

/// The reference sweep: re-runs the workload generator on a full machine
/// once per capacity point, with no trace replay anywhere — the cost the
/// fused speedup is quoted against.
fn run_reference_sweeps(defs: &[WorkloadDef], at: Scale) -> Vec<SweepResult> {
    let family = SweepFamily::atom();
    defs.iter()
        .map(|def| {
            sweep_per_point(&family, &def.spec.id, &PAPER_SWEEP_KIB, |sink| {
                let _ = def.run(sink, at);
            })
        })
        .collect()
}

/// Times a 3-worker loopback distributed run under whatever
/// `BDB_WIRE_FORMAT` is currently set, returning `(seconds, profiles)`.
fn run_distributed(
    defs: &[WorkloadDef],
    at: Scale,
    machine: &MachineConfig,
    node: &NodeConfig,
) -> (f64, Vec<WorkloadProfile>) {
    let mut ends = Vec::new();
    for i in 0..3 {
        let (coord_end, worker_end) = loopback_pair(&format!("bench-w{i}"));
        std::thread::spawn(move || {
            let engine = Engine::in_memory();
            run_worker(
                &worker_end,
                &engine,
                &WorkerConfig::named(&format!("bench-w{i}")),
            )
        });
        ends.push(Arc::new(coord_end) as Arc<dyn Transport>);
    }
    let (secs, outcome) = time(|| profile_all_distributed(ends, defs, at, machine, node));
    (secs, outcome.expect("loopback distributed run converges"))
}

/// One explicit measurement per configuration, written to
/// `BENCH_engine.json`.
fn measure_and_report() {
    let defs = workloads();
    let machine = MachineConfig::xeon_e5645();
    let node = NodeConfig::default();
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    let (serial_s, serial) = time(|| Engine::serial().profile_all(&defs, scale(), &machine, &node));
    let (parallel_s, parallel) = time(|| {
        Engine::new(
            EngineConfig::default()
                .threads(threads)
                .without_memory_cache(),
        )
        .profile_all(&defs, scale(), &machine, &node)
    });
    assert_eq!(
        fingerprint(&serial),
        fingerprint(&parallel),
        "parallel run must be bit-identical to serial"
    );

    let dir = scratch_cache_dir();
    let _ = std::fs::remove_dir_all(&dir);
    let (cold_s, _) = time(|| {
        Engine::new(
            EngineConfig::default()
                .threads(threads)
                .cache_dir(&dir)
                .without_memory_cache(),
        )
        .profile_all(&defs, scale(), &machine, &node)
    });
    let warm_engine = Engine::new(
        EngineConfig::default()
            .threads(threads)
            .cache_dir(&dir)
            .without_memory_cache(),
    );
    let (warm_s, warm) = time(|| warm_engine.profile_all(&defs, scale(), &machine, &node));
    assert_eq!(
        warm_engine.counters().computed,
        0,
        "warm run must not simulate"
    );
    assert_eq!(fingerprint(&serial), fingerprint(&warm));
    let _ = std::fs::remove_dir_all(&dir);

    // Sweep section: the per-point reference re-runs the workload
    // generator and a full Machine for each of the 10 capacity points;
    // the fused path extracts the L1 event streams once and replays them
    // per capacity. Same bits, fraction of the work. The engine's
    // per-point mode (trace once, full machine replayed per point) is
    // timed as a third column and must also match bit for bit.
    let (sweep_serial_s, serial_sweeps) = time(|| run_reference_sweeps(&defs, scale()));
    let (sweep_replay_pp_s, replay_pp_sweeps) =
        time(|| run_sweeps(&sweep_engine(1, SweepMode::PerPoint), &defs, scale()));
    assert_eq!(
        serial_sweeps, replay_pp_sweeps,
        "engine per-point mode must be bit-identical to the reference sweep"
    );
    let (sweep_fused_s, fused_sweeps) =
        time(|| run_sweeps(&sweep_engine(1, SweepMode::Fused), &defs, scale()));
    assert_eq!(
        serial_sweeps, fused_sweeps,
        "fused sweep must be bit-identical to the per-point sweep"
    );
    let fused_speedup = sweep_serial_s / sweep_fused_s;

    // Multi-thread fused points (1/2/4 workers), each honesty-checked
    // against `worker_threads` and against the serial reference bits.
    let mut sweep_thread_fields = Vec::new();
    for t in [1usize, 2, 4] {
        let (secs, sweeps) =
            time(|| run_sweeps(&sweep_engine(t, SweepMode::Fused), &defs, scale()));
        assert_eq!(
            serial_sweeps, sweeps,
            "{t}-thread fused sweep must be bit-identical to serial"
        );
        sweep_thread_fields.push((t, secs));
    }

    // Larger-scale fused triplet: the same 1/2/4-thread points at 4x the
    // base scale, where per-event costs dominate fixed overheads. Each
    // width sweeps the whole batch through `sweep_all`, which fans
    // *workloads* across the pool and splits the leftover width over
    // each sweep's capacity points — one workload's serial trace
    // extraction bounds its own speedup (Amdahl), but not the batch's.
    // The 1-thread result is the bit-identity reference for the rest.
    let scaled = Scale::custom(scale().factor() * 4.0);
    let scaled_jobs: Vec<(String, _)> = defs
        .iter()
        .map(|def| {
            let job = move |sink: &mut dyn bdb_trace::TraceSink| {
                let _ = def.run(sink, scaled);
            };
            (def.spec.id.clone(), job)
        })
        .collect();
    let mut sweep_scaled_fields = Vec::new();
    let mut scaled_reference: Option<Vec<SweepResult>> = None;
    for t in [1usize, 2, 4] {
        let engine = sweep_engine(t, SweepMode::Fused);
        let (secs, sweeps) = time(|| engine.sweep_all(&scaled_jobs, &PAPER_SWEEP_KIB));
        match &scaled_reference {
            None => scaled_reference = Some(sweeps),
            Some(reference) => assert_eq!(
                reference, &sweeps,
                "{t}-thread scaled fused sweep must be bit-identical to 1-thread"
            ),
        }
        sweep_scaled_fields.push((t, secs));
    }
    let scaled_speedup_4t = sweep_scaled_fields[0].1 / sweep_scaled_fields[2].1;
    // The >=2x floor is a claim about multi-core scaling; a single-core
    // runner's honest ratio is ~1.0x (the header comment says so), so
    // the assert only arms where four hardware threads actually exist.
    if threads >= 4 {
        assert!(
            scaled_speedup_4t >= 2.0,
            "scaled fused sweep 4t/1t speedup {scaled_speedup_4t:.2}x is below the 2x floor"
        );
    }

    // Intra-workload point parallelism in isolation: a 1-wide worker
    // pool with each sweep's capacity points fanned across the
    // BDB_POINT_THREADS width, honesty-checked before timing.
    let mut sweep_point_fields = Vec::new();
    for t in [1usize, 4] {
        let engine = Engine::new(
            EngineConfig::default()
                .threads(1)
                .point_threads(t)
                .without_memory_cache(),
        );
        assert_eq!(
            engine.point_threads(),
            t,
            "requested a {t}-wide point fan-out but the engine reports otherwise"
        );
        let (secs, sweeps) = time(|| run_sweeps(&engine, &defs, scaled));
        assert_eq!(
            scaled_reference.as_ref().unwrap(),
            &sweeps,
            "{t}-point-thread scaled sweep must be bit-identical to serial"
        );
        sweep_point_fields.push((t, secs));
    }

    // Codec section: BDBC binary vs canonical JSON for the byte-heavy
    // artifacts. Trace chunks are where the columnar format pays off —
    // delta-varint columns against JSON arrays of decimal integers.
    let captured = TraceBuffer::capture(|sink| {
        let _ = defs[0].run(sink, scale());
    });
    let (spill_s, spill) = time(|| captured.spill().expect("trace spill encodes"));
    let (load_s, reloaded) = time(|| TraceBuffer::load(&spill).expect("trace spill loads"));
    assert_eq!(reloaded.len(), captured.len(), "reloaded trace lost events");
    // Two JSON baselines: the columnar-array interchange form (what
    // `trace_chunk_to_json` pins for the fixtures) and the per-event
    // JSON-lines form a non-columnar spill would write. The >=10x
    // frame-size claim is against event frames; the array form is
    // already column-compressed by construction, so its ratio is
    // smaller and reported as its own field.
    let mut trace_json_bytes = 0usize;
    let mut trace_event_json_bytes = 0usize;
    let mut rest: &[u8] = &spill;
    while !rest.is_empty() {
        let (_, payload, used) =
            bdb_codec::decode_record_prefix(rest).expect("spill holds whole records");
        let columns = columnar::TraceChunkView::parse(payload)
            .expect("chunk payload parses")
            .to_columns();
        trace_json_bytes += columnar::trace_chunk_to_json(&columns).encode().len() + 1;
        for i in 0..columns.len() {
            trace_event_json_bytes += format!(
                "{{\"arg\":{},\"aux\":{},\"kind\":{},\"pc\":{}}}\n",
                columns.arg[i], columns.aux[i], columns.kind[i], columns.pc[i]
            )
            .len();
        }
        rest = &rest[used..];
    }
    let trace_array_ratio = trace_json_bytes as f64 / spill.len() as f64;
    let trace_ratio = trace_event_json_bytes as f64 / spill.len() as f64;
    assert!(
        trace_ratio >= 10.0,
        "columnar trace chunks must be >=10x smaller than JSON event \
         frames (got {trace_ratio:.1}x)"
    );
    let spill_mib = spill.len() as f64 / (1024.0 * 1024.0);

    let profile_value = bdb_engine::codec::profile_to_value(&serial[0]);
    let cache_json_bytes = profile_value.encode().len() + 1;
    let cache_binary_bytes = bdb_codec::encode_record(
        RecordKind::CacheEntry,
        &bdb_codec::encode_cache_payload(0, &profile_value),
    )
    .len();
    let result_msg = Message::Result {
        task_id: 0,
        fingerprint: 0,
        outcome: Ok(Box::new(serial[0].clone())),
    };
    let wire_json_bytes = wire::encode_frame_with(WireFormat::Json, &result_msg).len();
    let wire_binary_bytes = wire::encode_frame_with(WireFormat::Binary, &result_msg).len();

    // Cluster merge, JSON wire vs binary wire: same loopback fleet, same
    // tasks, byte-identical profiles — only the frame encoding differs.
    std::env::remove_var("BDB_WIRE_FORMAT");
    let (merge_json_s, merged_json) = run_distributed(&defs, scale(), &machine, &node);
    std::env::set_var("BDB_WIRE_FORMAT", "binary");
    let (merge_binary_s, merged_binary) = run_distributed(&defs, scale(), &machine, &node);
    std::env::remove_var("BDB_WIRE_FORMAT");
    assert_eq!(
        fingerprint(&serial),
        fingerprint(&merged_json),
        "JSON-wire merge must be bit-identical to serial"
    );
    assert_eq!(
        fingerprint(&serial),
        fingerprint(&merged_binary),
        "binary-wire merge must be bit-identical to serial"
    );

    // Serve section: cold catalog materialization, warm query latency
    // from the daemon's materialized map, the incremental recompute a
    // one-knob edit triggers, and delta fan-out to a subscriber fleet.
    let serve_spec = {
        let mut spec = ServeSpec::empty(scale());
        spec.configs
            .insert("xeon-e5645".to_owned(), machine.clone());
        spec.workloads = defs.iter().map(|d| d.spec.id.clone()).collect();
        spec
    };
    let serve_keys = serve_spec.entries();
    let serve_engine = Arc::new(Engine::in_memory());
    let (serve_cold_s, serve_state) = time(|| {
        ServeState::materialize(serve_engine.clone(), serve_spec.clone())
            .expect("serve catalog materializes")
    });
    let serve_entries = serve_state.len() as u64;
    let server = Server::new(serve_state, ServerConfig::named("bench-served"));
    let session = |label: &str| {
        let (client_end, server_end) = loopback_pair(label);
        let srv = server.clone();
        std::thread::spawn(move || srv.serve_session(Arc::new(server_end)));
        let mut client = ServeClient::over(Arc::new(client_end), WireFormat::Json);
        client.hello(label).expect("serve hello");
        client
    };
    const FANOUT_SUBSCRIBERS: usize = 8;
    let mut subscribers: Vec<ServeClient> = (0..FANOUT_SUBSCRIBERS)
        .map(|i| {
            let mut sub = session(&format!("bench-sub{i}"));
            sub.subscribe().expect("serve subscribe");
            sub
        })
        .collect();
    let mut client = session("bench-client");
    let (serve_query_s, _) = time(|| {
        for key in &serve_keys {
            client
                .query(key)
                .expect("serve query")
                .expect("served key is present");
        }
    });
    let serve_query_us = serve_query_s * 1e6 / serve_keys.len() as f64;
    let serve_computed_before = serve_engine.counters().computed;
    let (serve_mutate_s, mutated) = time(|| {
        client
            .mutate(Mutation::SetKnob {
                config: "xeon-e5645".to_owned(),
                knob: "l1d.size_bytes".to_owned(),
                value: Value::UInt(16384),
            })
            .expect("serve mutate")
    });
    let serve_recomputed = serve_engine.counters().computed - serve_computed_before;
    assert_eq!(
        serve_recomputed, serve_entries,
        "the knob edit must recompute exactly the served catalog"
    );
    let (serve_drain_s, _) = time(|| {
        for sub in &mut subscribers {
            let batch = sub
                .next_delta(Duration::from_secs(60))
                .expect("serve delta stream")
                .expect("delta batch arrives");
            assert_eq!(
                batch.seq, mutated.seq,
                "fan-out delivers the mutation batch"
            );
        }
    });

    let mut fields = vec![
        ("bench", Value::Str("engine".into())),
        ("workloads", Value::UInt(defs.len() as u64)),
        ("scale_factor", Value::Float(scale().factor())),
        ("threads", Value::UInt(threads as u64)),
        ("serial_seconds", Value::Float(serial_s)),
        ("parallel_seconds", Value::Float(parallel_s)),
        ("parallel_speedup", Value::Float(serial_s / parallel_s)),
        ("cold_cache_seconds", Value::Float(cold_s)),
        ("warm_cache_seconds", Value::Float(warm_s)),
        ("warm_cache_speedup", Value::Float(cold_s / warm_s)),
        (
            "sweep_capacity_points",
            Value::UInt(PAPER_SWEEP_KIB.len() as u64),
        ),
        ("sweep_serial_seconds", Value::Float(sweep_serial_s)),
        (
            "sweep_replay_per_point_seconds",
            Value::Float(sweep_replay_pp_s),
        ),
        ("sweep_fused_seconds", Value::Float(sweep_fused_s)),
        ("fused_speedup", Value::Float(fused_speedup)),
    ];
    for &(t, secs) in &sweep_thread_fields {
        let key = match t {
            1 => "sweep_fused_1t_seconds",
            2 => "sweep_fused_2t_seconds",
            _ => "sweep_fused_4t_seconds",
        };
        fields.push((key, Value::Float(secs)));
    }
    fields.push(("sweep_scaled_factor", Value::Float(scaled.factor())));
    for &(t, secs) in &sweep_scaled_fields {
        let key = match t {
            1 => "sweep_fused_scaled_1t_seconds",
            2 => "sweep_fused_scaled_2t_seconds",
            _ => "sweep_fused_scaled_4t_seconds",
        };
        fields.push((key, Value::Float(secs)));
    }
    fields.push((
        "sweep_fused_scaled_speedup_4t",
        Value::Float(scaled_speedup_4t),
    ));
    for &(t, secs) in &sweep_point_fields {
        let key = match t {
            1 => "sweep_scaled_point_threads_1_seconds",
            _ => "sweep_scaled_point_threads_4_seconds",
        };
        fields.push((key, Value::Float(secs)));
    }
    fields.extend([
        ("trace_chunk_binary_bytes", Value::UInt(spill.len() as u64)),
        (
            "trace_chunk_json_bytes",
            Value::UInt(trace_json_bytes as u64),
        ),
        (
            "trace_event_json_bytes",
            Value::UInt(trace_event_json_bytes as u64),
        ),
        (
            "trace_chunk_binary_vs_json_array",
            Value::Float(trace_array_ratio),
        ),
        (
            "trace_chunk_binary_vs_json_events",
            Value::Float(trace_ratio),
        ),
        (
            "trace_spill_encode_mib_per_s",
            Value::Float(spill_mib / spill_s),
        ),
        (
            "trace_spill_decode_mib_per_s",
            Value::Float(spill_mib / load_s),
        ),
        (
            "cache_entry_json_bytes",
            Value::UInt(cache_json_bytes as u64),
        ),
        (
            "cache_entry_binary_bytes",
            Value::UInt(cache_binary_bytes as u64),
        ),
        (
            "wire_result_frame_json_bytes",
            Value::UInt(wire_json_bytes as u64),
        ),
        (
            "wire_result_frame_binary_bytes",
            Value::UInt(wire_binary_bytes as u64),
        ),
        (
            "cluster_merge_json_wire_seconds",
            Value::Float(merge_json_s),
        ),
        (
            "cluster_merge_binary_wire_seconds",
            Value::Float(merge_binary_s),
        ),
        ("serve_entries", Value::UInt(serve_entries)),
        ("serve_cold_materialize_seconds", Value::Float(serve_cold_s)),
        ("serve_warm_query_us", Value::Float(serve_query_us)),
        (
            "serve_delta_recompute_entries",
            Value::UInt(serve_recomputed),
        ),
        ("serve_delta_mutate_seconds", Value::Float(serve_mutate_s)),
        (
            "serve_delta_fanout_subscribers",
            Value::UInt(FANOUT_SUBSCRIBERS as u64),
        ),
        (
            "serve_delta_fanout_drain_seconds",
            Value::Float(serve_drain_s),
        ),
    ]);
    let report = Value::object(fields);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    let mut text = report.encode();
    text.push('\n');
    if std::fs::write(path, &text).is_ok() {
        println!("wrote {path}");
    }
    println!(
        "engine: serial {serial_s:.2}s, parallel({threads}) {parallel_s:.2}s ({:.2}x), \
         cold cache {cold_s:.2}s, warm cache {warm_s:.3}s ({:.1}x)",
        serial_s / parallel_s,
        cold_s / warm_s
    );
    println!(
        "sweep:  per-point {sweep_serial_s:.2}s, per-point(replay) {sweep_replay_pp_s:.2}s, \
         fused {sweep_fused_s:.2}s ({fused_speedup:.1}x), fused threads {}",
        sweep_thread_fields
            .iter()
            .map(|&(t, s)| format!("{t}t={s:.2}s"))
            .collect::<Vec<_>>()
            .join(" ")
    );
    println!(
        "sweep:  scaled({:.2}) batch {} (4t/1t {scaled_speedup_4t:.2}x), point threads {}",
        scaled.factor(),
        sweep_scaled_fields
            .iter()
            .map(|&(t, s)| format!("{t}t={s:.2}s"))
            .collect::<Vec<_>>()
            .join(" "),
        sweep_point_fields
            .iter()
            .map(|&(t, s)| format!("{t}pt={s:.2}s"))
            .collect::<Vec<_>>()
            .join(" ")
    );
    println!(
        "codec:  trace chunks {}B binary vs {trace_event_json_bytes}B JSON event frames \
         ({trace_ratio:.1}x; {trace_array_ratio:.1}x vs the array form), \
         cache entry {cache_binary_bytes}B vs {cache_json_bytes}B, \
         result frame {wire_binary_bytes}B vs {wire_json_bytes}B, \
         merge json-wire {merge_json_s:.2}s vs binary-wire {merge_binary_s:.2}s",
        spill.len()
    );
    println!(
        "serve:  cold materialize({serve_entries}) {serve_cold_s:.2}s, \
         warm query {serve_query_us:.0}us, knob delta recompute({serve_recomputed}) \
         {serve_mutate_s:.2}s, fan-out to {FANOUT_SUBSCRIBERS} subscribers {serve_drain_s:.3}s"
    );
}

fn profile_all_serial_vs_parallel(c: &mut Criterion) {
    measure_and_report();

    let defs = workloads();
    let machine = MachineConfig::xeon_e5645();
    let node = NodeConfig::default();
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    let mut group = c.benchmark_group("engine_profile_all");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        b.iter(|| Engine::serial().profile_all(&defs, scale(), &machine, &node))
    });
    group.bench_function("parallel", |b| {
        let engine = Engine::new(
            EngineConfig::default()
                .threads(threads)
                .without_memory_cache(),
        );
        b.iter(|| engine.profile_all(&defs, scale(), &machine, &node))
    });
    group.finish();
}

fn cache_cold_vs_warm(c: &mut Criterion) {
    let defs = workloads();
    let machine = MachineConfig::xeon_e5645();
    let node = NodeConfig::default();
    let dir = scratch_cache_dir().with_extension("criterion");

    let mut group = c.benchmark_group("engine_cache");
    group.sample_size(10);
    group.bench_function("cold", |b| {
        b.iter(|| {
            let _ = std::fs::remove_dir_all(&dir);
            Engine::new(
                EngineConfig::default()
                    .cache_dir(&dir)
                    .without_memory_cache(),
            )
            .profile_all(&defs, scale(), &machine, &node)
        })
    });
    // Prime once, then measure pure warm hits.
    let _ = std::fs::remove_dir_all(&dir);
    Engine::new(
        EngineConfig::default()
            .cache_dir(&dir)
            .without_memory_cache(),
    )
    .profile_all(&defs, scale(), &machine, &node);
    group.bench_function("warm", |b| {
        let engine = Engine::new(
            EngineConfig::default()
                .cache_dir(&dir)
                .without_memory_cache(),
        );
        b.iter(|| engine.profile_all(&defs, scale(), &machine, &node))
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

fn sweep_per_point_vs_fused(c: &mut Criterion) {
    let defs = workloads();
    let def = &defs[0];
    let caps = [16u64, 256, 4096];

    let mut group = c.benchmark_group("engine_sweep");
    group.sample_size(10);
    group.bench_function("per_point", |b| {
        let engine = sweep_engine(1, SweepMode::PerPoint);
        b.iter(|| {
            engine.sweep(&def.spec.id, &caps, |sink| {
                let _ = def.run(sink, scale());
            })
        })
    });
    group.bench_function("fused", |b| {
        let engine = sweep_engine(1, SweepMode::Fused);
        b.iter(|| {
            engine.sweep(&def.spec.id, &caps, |sink| {
                let _ = def.run(sink, scale());
            })
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    profile_all_serial_vs_parallel,
    cache_cold_vs_warm,
    sweep_per_point_vs_fused
);
criterion_main!(benches);
