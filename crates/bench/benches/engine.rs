#![allow(missing_docs)]
//! Execution-engine benchmarks: serial vs parallel `profile_all`, and
//! cold vs warm profile cache.
//!
//! Besides the Criterion groups, this bench writes `BENCH_engine.json` at
//! the workspace root with one explicit wall-clock measurement per
//! configuration, so CI and the paper-repro notes can quote the numbers
//! without parsing Criterion output. Parallel speedup scales with the
//! machine's core count (a single-core runner reports ~1.0×); the warm
//! cache speedup is hardware-independent and large.

use bdb_engine::{json::Value, Engine, EngineConfig};
use bdb_node::NodeConfig;
use bdb_sim::MachineConfig;
use bdb_wcrt::WorkloadProfile;
use bdb_workloads::{catalog, Scale, WorkloadDef};
use criterion::{criterion_group, criterion_main, Criterion};
use std::path::PathBuf;
use std::time::Instant;

fn workloads() -> Vec<WorkloadDef> {
    catalog::representatives()
}

fn scale() -> Scale {
    Scale::tiny()
}

fn time<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let start = Instant::now();
    let result = f();
    (start.elapsed().as_secs_f64(), result)
}

fn fingerprint(profiles: &[WorkloadProfile]) -> Vec<(String, u64, u64)> {
    profiles
        .iter()
        .map(|p| {
            (
                p.spec.id.clone(),
                p.report.instructions,
                p.report.cycles.to_bits(),
            )
        })
        .collect()
}

fn scratch_cache_dir() -> PathBuf {
    std::env::temp_dir().join(format!("bdb-engine-bench-{}", std::process::id()))
}

/// One explicit measurement per configuration, written to
/// `BENCH_engine.json`.
fn measure_and_report() {
    let defs = workloads();
    let machine = MachineConfig::xeon_e5645();
    let node = NodeConfig::default();
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    let (serial_s, serial) = time(|| Engine::serial().profile_all(&defs, scale(), &machine, &node));
    let (parallel_s, parallel) = time(|| {
        Engine::new(
            EngineConfig::default()
                .threads(threads)
                .without_memory_cache(),
        )
        .profile_all(&defs, scale(), &machine, &node)
    });
    assert_eq!(
        fingerprint(&serial),
        fingerprint(&parallel),
        "parallel run must be bit-identical to serial"
    );

    let dir = scratch_cache_dir();
    let _ = std::fs::remove_dir_all(&dir);
    let (cold_s, _) = time(|| {
        Engine::new(
            EngineConfig::default()
                .threads(threads)
                .cache_dir(&dir)
                .without_memory_cache(),
        )
        .profile_all(&defs, scale(), &machine, &node)
    });
    let warm_engine = Engine::new(
        EngineConfig::default()
            .threads(threads)
            .cache_dir(&dir)
            .without_memory_cache(),
    );
    let (warm_s, warm) = time(|| warm_engine.profile_all(&defs, scale(), &machine, &node));
    assert_eq!(
        warm_engine.counters().computed,
        0,
        "warm run must not simulate"
    );
    assert_eq!(fingerprint(&serial), fingerprint(&warm));
    let _ = std::fs::remove_dir_all(&dir);

    let report = Value::object(vec![
        ("bench", Value::Str("engine".into())),
        ("workloads", Value::UInt(defs.len() as u64)),
        ("scale_factor", Value::Float(scale().factor())),
        ("threads", Value::UInt(threads as u64)),
        ("serial_seconds", Value::Float(serial_s)),
        ("parallel_seconds", Value::Float(parallel_s)),
        ("parallel_speedup", Value::Float(serial_s / parallel_s)),
        ("cold_cache_seconds", Value::Float(cold_s)),
        ("warm_cache_seconds", Value::Float(warm_s)),
        ("warm_cache_speedup", Value::Float(cold_s / warm_s)),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    let mut text = report.encode();
    text.push('\n');
    if std::fs::write(path, &text).is_ok() {
        println!("wrote {path}");
    }
    println!(
        "engine: serial {serial_s:.2}s, parallel({threads}) {parallel_s:.2}s ({:.2}x), \
         cold cache {cold_s:.2}s, warm cache {warm_s:.3}s ({:.1}x)",
        serial_s / parallel_s,
        cold_s / warm_s
    );
}

fn profile_all_serial_vs_parallel(c: &mut Criterion) {
    measure_and_report();

    let defs = workloads();
    let machine = MachineConfig::xeon_e5645();
    let node = NodeConfig::default();
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    let mut group = c.benchmark_group("engine_profile_all");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        b.iter(|| Engine::serial().profile_all(&defs, scale(), &machine, &node))
    });
    group.bench_function("parallel", |b| {
        let engine = Engine::new(
            EngineConfig::default()
                .threads(threads)
                .without_memory_cache(),
        );
        b.iter(|| engine.profile_all(&defs, scale(), &machine, &node))
    });
    group.finish();
}

fn cache_cold_vs_warm(c: &mut Criterion) {
    let defs = workloads();
    let machine = MachineConfig::xeon_e5645();
    let node = NodeConfig::default();
    let dir = scratch_cache_dir().with_extension("criterion");

    let mut group = c.benchmark_group("engine_cache");
    group.sample_size(10);
    group.bench_function("cold", |b| {
        b.iter(|| {
            let _ = std::fs::remove_dir_all(&dir);
            Engine::new(
                EngineConfig::default()
                    .cache_dir(&dir)
                    .without_memory_cache(),
            )
            .profile_all(&defs, scale(), &machine, &node)
        })
    });
    // Prime once, then measure pure warm hits.
    let _ = std::fs::remove_dir_all(&dir);
    Engine::new(
        EngineConfig::default()
            .cache_dir(&dir)
            .without_memory_cache(),
    )
    .profile_all(&defs, scale(), &machine, &node);
    group.bench_function("warm", |b| {
        let engine = Engine::new(
            EngineConfig::default()
                .cache_dir(&dir)
                .without_memory_cache(),
        );
        b.iter(|| engine.profile_all(&defs, scale(), &machine, &node))
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, profile_all_serial_vs_parallel, cache_cold_vs_warm);
criterion_main!(benches);
