#![allow(missing_docs)]
//! Benchmarks of the WCRT analysis pipeline: z-score normalization, PCA
//! (Jacobi eigensolver over 45x45), and K-means — the paper-scale shapes
//! (77 rows x 45 metrics).

use bdb_wcrt::{kmeans, pca, stats};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

/// Deterministic synthetic 77x45 metric matrix with clustered structure.
fn synthetic_matrix() -> Vec<Vec<f64>> {
    let mut x = 0x5EED_1234u64;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        (x % 10_000) as f64 / 1_000.0
    };
    (0..77)
        .map(|row| {
            let family = row % 5;
            (0..45)
                .map(|col| {
                    let base = if col % 5 == family { 20.0 } else { 0.0 };
                    base + next()
                })
                .collect()
        })
        .collect()
}

fn zscore_bench(c: &mut Criterion) {
    c.bench_function("zscore_77x45", |b| {
        b.iter_batched(
            synthetic_matrix,
            |mut m| {
                stats::zscore(&mut m);
                m
            },
            BatchSize::SmallInput,
        )
    });
}

fn pca_bench(c: &mut Criterion) {
    let mut m = synthetic_matrix();
    stats::zscore(&mut m);
    c.bench_function("pca_fit_77x45", |b| b.iter(|| pca::Pca::fit(&m, 0.9)));
    let model = pca::Pca::fit(&m, 0.9);
    c.bench_function("pca_transform_77", |b| b.iter(|| model.transform(&m)));
}

fn kmeans_bench(c: &mut Criterion) {
    let mut m = synthetic_matrix();
    stats::zscore(&mut m);
    let model = pca::Pca::fit(&m, 0.9);
    let projected = model.transform(&m);
    c.bench_function("kmeans_k17", |b| {
        b.iter(|| kmeans::kmeans(&projected, 17, 2015, 300))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(400));
    targets = zscore_bench, pca_bench, kmeans_bench
}
criterion_main!(benches);
