//! Guards against `--help` / environment-knob drift.
//!
//! Every engine-backed figure/table binary renders its help through the
//! single shared [`bdb_bench::help_text`] (wired in via
//! `scale_from_args`). These tests pin both halves of that invariant:
//! the shared text lists every knob the engine actually reads, and every
//! engine-backed binary actually routes through the shared parser.

use std::path::Path;

/// Every CLI option and environment variable the engine layer honours.
/// Adding a knob to `EngineConfig::from_env` or `cluster_addrs` without
/// documenting it here (and thus in every binary's --help) is a bug.
const REQUIRED_KNOBS: &[&str] = &[
    "--scale",
    "--cluster",
    "BDB_THREADS",
    "BDB_POINT_THREADS",
    "BDB_CACHE_DIR",
    "BDB_NO_CACHE",
    "BDB_CACHE_MAX_BYTES",
    "BDB_CLUSTER",
    "BDB_SWEEP_MODE",
    "--resume",
    "BDB_JOURNAL",
    "BDB_RESUME",
];

#[test]
fn shared_help_lists_every_engine_knob() {
    let help = bdb_bench::help_text("fig1_instruction_mix");
    for knob in REQUIRED_KNOBS {
        assert!(
            help.contains(knob),
            "help text is missing the {knob} knob:\n{help}"
        );
    }
    assert!(help.contains("fig1_instruction_mix"), "bin name rendered");
}

#[test]
fn every_engine_backed_binary_wires_the_shared_help() {
    let bin_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("src/bin");
    let mut checked = 0;
    for entry in std::fs::read_dir(&bin_dir).expect("list src/bin") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("rs") {
            continue;
        }
        let source = std::fs::read_to_string(&path).expect("read bin source");
        let engine_backed = ["profile_on", "engine()", "group_sweep", "suite_profiles"]
            .iter()
            .any(|marker| source.contains(marker));
        if !engine_backed {
            continue;
        }
        assert!(
            source.contains("scale_from_args"),
            "{} profiles through the engine but does not call scale_from_args, \
             so it lacks the shared --help/--scale/--cluster handling",
            path.display()
        );
        checked += 1;
    }
    assert!(
        checked >= 19,
        "expected at least 19 engine-backed binaries, found {checked}"
    );
}

/// The daemon binaries render help through the shared
/// `daemon_help_text` (in `bdb-cluster`), not hand-rolled strings.
const DAEMON_BINS: &[&str] = &[
    "../cluster/src/bin/bdb_clusterd.rs",
    "../serve/src/bin/bdb_served.rs",
    "../serve/src/bin/serve_smoke.rs",
];

#[test]
fn every_daemon_binary_wires_the_shared_help() {
    let crate_dir = Path::new(env!("CARGO_MANIFEST_DIR"));
    for rel in DAEMON_BINS {
        let path = crate_dir.join(rel);
        let source = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        assert!(
            source.contains("daemon_help_text("),
            "{} hand-rolls its help instead of using daemon_help_text",
            path.display()
        );
    }
}

#[test]
fn shared_daemon_env_block_lists_every_engine_knob() {
    let block: Vec<&str> = bdb_cluster::DAEMON_ENGINE_ENV
        .iter()
        .map(|(name, _)| *name)
        .collect();
    for knob in REQUIRED_KNOBS {
        if !knob.starts_with("BDB_") || *knob == "BDB_CLUSTER" {
            continue; // CLI flags and the coordinator-side fleet list
        }
        assert!(
            block.contains(knob),
            "DAEMON_ENGINE_ENV is missing the engine knob {knob}"
        );
    }
}

#[test]
fn served_help_documents_its_own_knobs() {
    let crate_dir = Path::new(env!("CARGO_MANIFEST_DIR"));
    let source = std::fs::read_to_string(crate_dir.join("../serve/src/bin/bdb_served.rs"))
        .expect("read bdb_served source");
    for knob in [
        "BDB_SERVE_ADDR",
        "BDB_SERVE_MAX_CLIENTS",
        "BDB_SERVE_SUB_QUEUE",
        "BDB_SERVE_FORMAT",
    ] {
        assert!(
            source.contains(knob),
            "bdb_served help must document {knob}"
        );
    }
}
