//! Guards against `--help` / environment-knob drift.
//!
//! Every engine-backed figure/table binary renders its help through the
//! single shared [`bdb_bench::help_text`] (wired in via
//! `scale_from_args`). These tests pin both halves of that invariant:
//! the shared text lists every knob the engine actually reads, and every
//! engine-backed binary actually routes through the shared parser.

use std::path::Path;

/// Every CLI option and environment variable the engine layer honours.
/// Adding a knob to `EngineConfig::from_env` or `cluster_addrs` without
/// documenting it here (and thus in every binary's --help) is a bug.
const REQUIRED_KNOBS: &[&str] = &[
    "--scale",
    "--cluster",
    "BDB_THREADS",
    "BDB_CACHE_DIR",
    "BDB_NO_CACHE",
    "BDB_CACHE_MAX_BYTES",
    "BDB_CLUSTER",
    "BDB_SWEEP_MODE",
    "--resume",
    "BDB_JOURNAL",
    "BDB_RESUME",
];

#[test]
fn shared_help_lists_every_engine_knob() {
    let help = bdb_bench::help_text("fig1_instruction_mix");
    for knob in REQUIRED_KNOBS {
        assert!(
            help.contains(knob),
            "help text is missing the {knob} knob:\n{help}"
        );
    }
    assert!(help.contains("fig1_instruction_mix"), "bin name rendered");
}

#[test]
fn every_engine_backed_binary_wires_the_shared_help() {
    let bin_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("src/bin");
    let mut checked = 0;
    for entry in std::fs::read_dir(&bin_dir).expect("list src/bin") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("rs") {
            continue;
        }
        let source = std::fs::read_to_string(&path).expect("read bin source");
        let engine_backed = ["profile_on", "engine()", "group_sweep", "suite_profiles"]
            .iter()
            .any(|marker| source.contains(marker));
        if !engine_backed {
            continue;
        }
        assert!(
            source.contains("scale_from_args"),
            "{} profiles through the engine but does not call scale_from_args, \
             so it lacks the shared --help/--scale/--cluster handling",
            path.display()
        );
        checked += 1;
    }
    assert!(
        checked >= 19,
        "expected at least 19 engine-backed binaries, found {checked}"
    );
}
