//! Shared harness for the table/figure regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper; this library holds the common plumbing: scale parsing, the
//! process-wide execution [`engine`] all measurements flow through, and
//! grouping/averaging helpers.
//!
//! # The shared engine
//!
//! Binaries obtain profiles exclusively via [`profile_on`] /
//! [`profile_on_xeon`] and sweeps via [`group_sweep`], which all route
//! through one lazily-built [`bdb_engine::Engine`]. That gives every
//! binary parallel fan-out plus the on-disk profile cache for free.
//! Environment knobs (parsed by [`EngineConfig::from_env`], shared with
//! `bdb-clusterd` so the harness and workers cannot drift; every binary's
//! `--help` renders the same list via [`help_text`]):
//!
//! * `BDB_CACHE_DIR` — cache directory (default: `results/cache/` at the
//!   workspace root).
//! * `BDB_NO_CACHE=1` — disable the disk cache for this run.
//! * `BDB_THREADS=<n>` — cap the worker pool (default: all cores).
//! * `BDB_POINT_THREADS=<n>` — fan each capacity sweep's points across
//!   `n` threads even below the auto work threshold (default: auto —
//!   width follows the worker pool, small sweeps stay serial).
//! * `BDB_CACHE_MAX_BYTES=<n>` — cap the disk cache (LRU eviction).
//! * `BDB_CLUSTER=<addr,addr>` — profile via remote `bdb-clusterd`
//!   workers instead of the local engine (also `--cluster addr,addr`).
//! * `BDB_SWEEP_MODE=per-point` — disable the fused trace-once/replay-many
//!   capacity sweep and re-simulate each point (debug aid; same bits).
//! * `BDB_JOURNAL=<path>` — checkpoint completed profiles/sweeps into a
//!   write-ahead run journal.
//! * `BDB_RESUME=1` (or the `--resume` flag) — resume completed work
//!   from the journal instead of recomputing it; with no explicit
//!   journal path, each binary journals to `results/journal/<bin>.wal`.

use bdb_cluster::{profile_all_distributed, TcpTransport, Transport};
use bdb_engine::{Engine, EngineConfig};
use bdb_node::NodeConfig;
use bdb_sim::MachineConfig;
use bdb_wcrt::profile::WorkloadProfile;
use bdb_wcrt::SystemClass;
use bdb_workloads::{Category, Scale, WorkloadDef};
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

static ENGINE: OnceLock<Engine> = OnceLock::new();
static CLUSTER: OnceLock<Option<Vec<String>>> = OnceLock::new();

/// The process-wide execution engine every measurement flows through.
///
/// Built on first use from the environment (see the crate docs for the
/// knobs). All figure/table binaries and the Criterion benches share this
/// one instance, so a profile computed for one table is a memory-cache
/// hit for the next.
pub fn engine() -> &'static Engine {
    ENGINE.get_or_init(|| {
        let engine = Engine::new(engine_config_from_invocation());
        if let Some((tasks, sweeps)) = engine.journal_preloaded() {
            if tasks + sweeps > 0 {
                eprintln!("bdb-bench: journal preloaded {tasks} profiles and {sweeps} sweeps");
            }
        }
        engine
    })
}

/// [`EngineConfig::from_env`] plus the bench-only `--resume` argv flag.
///
/// `--resume` behaves exactly like `BDB_RESUME=1`, except that the
/// default journal path is per-binary (`results/journal/<bin>.wal`) so
/// two figure binaries interrupted back to back never splice into each
/// other's journal. An explicit `BDB_JOURNAL` always wins.
fn engine_config_from_invocation() -> EngineConfig {
    let mut config = EngineConfig::from_env();
    let args: Vec<String> = std::env::args().collect();
    if args.iter().skip(1).any(|a| a == "--resume") {
        config = config.resume();
    }
    if config.resume && config.journal_path.is_none() {
        let path = PathBuf::from(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../results/journal"
        ))
        .join(format!("{}.wal", bin_name(&args)));
        config = config
            .journal(path)
            .journal_context(bdb_engine::argv_journal_context());
    }
    config
}

/// The invoking binary's name (argv\[0\] file stem), for per-binary
/// journal paths and `--help` headers.
fn bin_name(args: &[String]) -> String {
    args.first()
        .map(|p| {
            std::path::Path::new(p)
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| p.clone())
        })
        .unwrap_or_else(|| "bdb-bench".to_owned())
}

/// Worker addresses for distributed profiling, if configured via
/// `--cluster a,b` or `BDB_CLUSTER=a,b`. `None` means run locally.
pub fn cluster_addrs() -> Option<&'static [String]> {
    CLUSTER
        .get_or_init(|| {
            let args: Vec<String> = std::env::args().collect();
            let mut spec = None;
            for pair in args.windows(2) {
                if pair[0] == "--cluster" {
                    spec = Some(pair[1].clone());
                }
            }
            let spec = spec.or_else(|| std::env::var("BDB_CLUSTER").ok())?;
            let addrs: Vec<String> = spec
                .split(',')
                .filter(|a| !a.is_empty())
                .map(str::to_owned)
                .collect();
            (!addrs.is_empty()).then_some(addrs)
        })
        .as_deref()
}

/// The usage text every figure/table binary prints for `--help`: one
/// shared renderer, so the option and environment-knob lists cannot
/// drift between binaries (a test greps this for every knob).
pub fn help_text(bin: &str) -> String {
    format!(
        "\
{bin}: regenerates one table/figure of the paper reproduction

USAGE:
    {bin} [--scale tiny|small|paper|<factor>] [--cluster <addr,addr,...>] [--resume]

OPTIONS:
    --scale <s>       Input scale (default small; paper regenerates reported numbers)
    --cluster <list>  Profile via remote bdb-clusterd workers (comma-separated addresses)
    --resume          Resume completed work from the run journal (results/journal/{bin}.wal)
    -h, --help        Print this help

ENVIRONMENT:
    BDB_THREADS          Worker-pool width for the local engine (default: all cores)
    BDB_POINT_THREADS    Capacity-point fan-out width within one sweep (default: auto)
    BDB_CACHE_DIR        Profile-cache directory (default: results/cache/)
    BDB_NO_CACHE         Set to disable the disk cache
    BDB_CACHE_MAX_BYTES  Disk-cache size cap in bytes with LRU eviction (default: unbounded)
    BDB_CLUSTER          Worker addresses, same meaning as --cluster
    BDB_SWEEP_MODE       Capacity-sweep strategy: fused (default) or per-point
    BDB_JOURNAL          Write-ahead run-journal path (default: results/journal/{bin}.wal)
    BDB_RESUME           Set to resume from the journal, same meaning as --resume
"
    )
}

/// Parses `--scale tiny|small|paper|<factor>` from argv (default: small),
/// and handles `--help`/`-h` by printing [`help_text`] and exiting.
///
/// The figure binaries accept this so CI can smoke-test them quickly while
/// `--scale paper` regenerates the reported numbers.
pub fn scale_from_args() -> Scale {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().skip(1).any(|a| a == "--help" || a == "-h") {
        print!("{}", help_text(&bin_name(&args)));
        std::process::exit(0);
    }
    let mut scale = Scale::small();
    for pair in args.windows(2) {
        if pair[0] == "--scale" {
            scale = match pair[1].as_str() {
                "tiny" => Scale::tiny(),
                "small" => Scale::small(),
                "paper" => Scale::paper(),
                other => Scale::custom(
                    other
                        .parse()
                        // bdb-lint: allow(panic-hygiene): CLI config abort.
                        .unwrap_or_else(|_| panic!("bad scale: {other}")),
                ),
            };
        }
    }
    scale
}

/// Profiles workloads on an arbitrary platform. With a cluster
/// configured ([`cluster_addrs`]) the batch is sharded across the remote
/// workers — the merge is byte-identical to a local run, so callers
/// cannot tell the difference; any cluster failure falls back to the
/// local [`engine`] with a warning rather than aborting the figure.
pub fn profile_on(
    defs: &[WorkloadDef],
    scale: Scale,
    machine: &MachineConfig,
    node: &NodeConfig,
) -> Vec<WorkloadProfile> {
    if let Some(addrs) = cluster_addrs() {
        match profile_via_cluster(addrs, defs, scale, machine, node) {
            Ok(profiles) => return profiles,
            Err(e) => {
                eprintln!("warning: distributed run failed ({e}); falling back to local engine");
            }
        }
    }
    engine().profile_all(defs, scale, machine, node)
}

/// One coordinator session over TCP: dial every worker, shard, merge.
fn profile_via_cluster(
    addrs: &[String],
    defs: &[WorkloadDef],
    scale: Scale,
    machine: &MachineConfig,
    node: &NodeConfig,
) -> Result<Vec<WorkloadProfile>, String> {
    let mut workers: Vec<Arc<dyn Transport>> = Vec::new();
    for addr in addrs {
        let transport = TcpTransport::connect(addr, Duration::from_secs(10))
            .map_err(|e| format!("worker {addr}: {e}"))?;
        workers.push(Arc::new(transport));
    }
    profile_all_distributed(workers, defs, scale, machine, node).map_err(|e| e.to_string())
}

/// Profiles workloads on the reference platform (Xeon E5645 + default node).
pub fn profile_on_xeon(defs: &[WorkloadDef], scale: Scale) -> Vec<WorkloadProfile> {
    profile_on(
        defs,
        scale,
        &MachineConfig::xeon_e5645(),
        &NodeConfig::default(),
    )
}

/// Mean of `f` over the profiles (0 for an empty slice).
pub fn mean_of(profiles: &[&WorkloadProfile], f: impl Fn(&WorkloadProfile) -> f64) -> f64 {
    if profiles.is_empty() {
        return 0.0;
    }
    profiles.iter().map(|p| f(p)).sum::<f64>() / profiles.len() as f64
}

/// Splits profiles by application category (paper's three subclasses).
pub fn by_category(profiles: &[WorkloadProfile]) -> Vec<(Category, Vec<&WorkloadProfile>)> {
    [
        Category::Service,
        Category::DataAnalysis,
        Category::InteractiveAnalysis,
    ]
    .into_iter()
    .map(|c| {
        (
            c,
            profiles.iter().filter(|p| p.spec.category == c).collect(),
        )
    })
    .collect()
}

/// Splits profiles by system-behaviour class (paper's other subclassing).
pub fn by_system_class(profiles: &[WorkloadProfile]) -> Vec<(SystemClass, Vec<&WorkloadProfile>)> {
    [
        SystemClass::CpuIntensive,
        SystemClass::IoIntensive,
        SystemClass::Hybrid,
    ]
    .into_iter()
    .map(|c| (c, profiles.iter().filter(|p| p.system_class == c).collect()))
    .collect()
}

/// Profiles every kernel of a comparison suite and returns
/// `(suite label, per-kernel profiles)`.
pub fn suite_profiles(scale: Scale) -> Vec<(String, Vec<WorkloadProfile>)> {
    bdb_workloads::catalog::ALL_SUITES
        .iter()
        .map(|&suite| {
            let defs = bdb_workloads::catalog::suite_workloads(suite);
            (suite.to_string(), profile_on_xeon(&defs, scale))
        })
        .collect()
}

/// Averages per-workload capacity-sweep curves point-wise over a workload
/// group (how Figures 6–9 aggregate "Hadoop-workloads" etc.).
pub fn group_sweep(
    label: &str,
    defs: &[WorkloadDef],
    scale: Scale,
    pick: fn(&bdb_sim::SweepResult) -> &bdb_sim::MissRatioCurve,
) -> bdb_sim::MissRatioCurve {
    use bdb_sim::PAPER_SWEEP_KIB;
    let mut acc = vec![0.0f64; PAPER_SWEEP_KIB.len()];
    for def in defs {
        let result = engine().sweep(&def.spec.id, &PAPER_SWEEP_KIB, |machine| {
            let _ = def.run(machine, scale);
        });
        let curve = pick(&result);
        for (a, (_, r)) in acc.iter_mut().zip(&curve.points) {
            *a += r / defs.len() as f64;
        }
    }
    bdb_sim::MissRatioCurve {
        label: label.to_owned(),
        metric: bdb_sim::SweepMetric::Instruction,
        points: PAPER_SWEEP_KIB.iter().copied().zip(acc).collect(),
    }
}

/// The Hadoop workloads used in the paper's §5.4 locality case study.
pub fn hadoop_sweep_defs() -> Vec<WorkloadDef> {
    bdb_workloads::catalog::full_catalog()
        .into_iter()
        .filter(|w| {
            matches!(w.spec.stack, bdb_stacks::StackKind::Hadoop)
                && ["H-WordCount", "H-Grep", "H-Sort", "H-NaiveBayes"].contains(&w.spec.id.as_str())
        })
        .collect()
}

/// The PARSEC comparison kernels used by the sweep figures: the paper's
/// MARSS runs use `simsmall` inputs, whose working sets are modest, so the
/// sweep uses the kernels with simsmall-like footprints (blackscholes,
/// bodytrack, streamcluster, swaptions) rather than canneal's deliberately
/// huge random set.
pub fn parsec_sweep_defs() -> Vec<WorkloadDef> {
    let all = bdb_workloads::catalog::suite_workloads(bdb_workloads::suites::Suite::Parsec);
    [0usize, 1, 5, 6].iter().map(|&i| all[i].clone()).collect()
}

/// The six MPI control workloads (Figure 9's third curve).
pub fn mpi_sweep_defs() -> Vec<WorkloadDef> {
    bdb_workloads::catalog::mpi_workloads()
        .into_iter()
        .filter(|w| {
            ["M-WordCount", "M-Grep", "M-Sort", "M-NaiveBayes"].contains(&w.spec.id.as_str())
        })
        .collect()
}

/// Renders a sweep-figure table with one column per curve.
pub fn render_sweep_table(curves: &[&bdb_sim::MissRatioCurve]) -> String {
    let mut headers = vec!["cache KiB".to_owned()];
    headers.extend(curves.iter().map(|c| format!("{} miss%", c.label)));
    let mut table = bdb_wcrt::report::TextTable::new(headers);
    for (i, &kib) in bdb_sim::PAPER_SWEEP_KIB.iter().enumerate() {
        let mut row = vec![kib.to_string()];
        row.extend(
            curves
                .iter()
                .map(|c| format!("{:.4}", c.points[i].1 * 100.0)),
        );
        table.row(row);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdb_workloads::catalog;

    #[test]
    fn category_split_covers_all_profiles() {
        let reps: Vec<WorkloadDef> = catalog::representatives().into_iter().take(3).collect();
        let profiles = profile_on_xeon(&reps, Scale::tiny());
        let split = by_category(&profiles);
        let total: usize = split.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(total, profiles.len());
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean_of(&[], |_| 1.0), 0.0);
    }
}
