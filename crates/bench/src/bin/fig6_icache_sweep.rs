//! Figure 6: instruction-cache miss ratio versus L1 capacity for the
//! Hadoop workloads and PARSEC (paper §5.4).
//!
//! The paper reads the instruction footprint off this curve: PARSEC
//! flattens around 128 KiB, the Hadoop workloads only around 1024 KiB.

use bdb_bench::{
    group_sweep, hadoop_sweep_defs, parsec_sweep_defs, render_sweep_table, scale_from_args,
};

fn main() {
    let scale = scale_from_args();
    let hadoop = group_sweep("Hadoop", &hadoop_sweep_defs(), scale, |r| &r.instruction);
    let parsec = group_sweep("PARSEC", &parsec_sweep_defs(), scale, |r| &r.instruction);
    println!("Figure 6: Instruction cache miss ratio versus cache size");
    println!("{}", render_sweep_table(&[&hadoop, &parsec]));
    println!(
        "estimated instruction footprint: Hadoop ~{} KiB, PARSEC ~{} KiB",
        hadoop.footprint_kib(0.0008).unwrap_or(0),
        parsec.footprint_kib(0.0008).unwrap_or(0),
    );
    println!("paper: Hadoop ~1024 KiB, PARSEC ~128 KiB");
}
