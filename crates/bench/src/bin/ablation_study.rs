//! Metric-level ablations of the design choices DESIGN.md calls out:
//!
//! 1. branch-predictor sophistication (two-level vs hybrid+loop, BTB size),
//! 2. the deep-stack code-spread mechanism (what happens to the front end
//!    when framework routines stop wandering),
//! 3. cache replacement policy on the capacity sweep,
//! 4. K and PCA variance retention on the WCRT reduction.

use bdb_bench::{profile_on, scale_from_args};
use bdb_node::NodeConfig;
use bdb_sim::cache::Replacement;
use bdb_sim::{Machine, MachineConfig};
use bdb_wcrt::reduction::{reduce, ReductionConfig};
use bdb_wcrt::report::{f2, pct, TextTable};
use bdb_workloads::catalog;

fn main() {
    let scale = scale_from_args();
    let reps = catalog::representatives();
    let sample: Vec<_> = reps
        .iter()
        .filter(|w| {
            ["H-WordCount", "S-WordCount", "H-Read", "S-Sort"].contains(&w.spec.id.as_str())
        })
        .cloned()
        .collect();

    // --- Ablation 1: predictor sophistication -------------------------
    println!("Ablation 1: branch predictor (per-workload mispredict ratio)");
    let mut t = TextTable::new(["workload", "hybrid+loop (E5645)", "two-level (D510)"]);
    for def in &sample {
        let e = profile_on(
            std::slice::from_ref(def),
            scale,
            &MachineConfig::xeon_e5645(),
            &NodeConfig::default(),
        )
        .remove(0);
        let d = profile_on(
            std::slice::from_ref(def),
            scale,
            &MachineConfig::atom_d510(),
            &NodeConfig::default(),
        )
        .remove(0);
        t.row([
            def.spec.id.clone(),
            pct(e.report.branch.mispredict_ratio()),
            pct(d.report.branch.mispredict_ratio()),
        ]);
    }
    println!("{}", t.render());

    // --- Ablation 2: cache replacement on a thrashing working set -----
    println!("Ablation 2: L2 replacement policy under the H-WordCount trace");
    let wc = &sample[0];
    let mut t = TextTable::new(["policy", "L2 MPKI", "L3 MPKI", "IPC"]);
    for (name, policy) in [("LRU", Replacement::Lru), ("random", Replacement::Random)] {
        let mut config = MachineConfig::xeon_e5645();
        config.l2.replacement = policy;
        let mut machine = Machine::new(config);
        let _ = wc.run(&mut machine, scale);
        let r = machine.report();
        t.row([
            name.to_owned(),
            f2(r.l2_mpki()),
            f2(r.l3_mpki()),
            f2(r.ipc()),
        ]);
    }
    println!("{}", t.render());

    // --- Ablation 3: K and PCA variance for the reduction -------------
    println!("Ablation 3: WCRT reduction knobs (over the 17 representatives)");
    let profiles = profile_on(
        &reps,
        scale,
        &MachineConfig::xeon_e5645(),
        &NodeConfig::default(),
    );
    let mut t = TextTable::new(["k", "variance keep", "pca dims", "inertia"]);
    for (k, var) in [(4, 0.8), (8, 0.8), (8, 0.95), (12, 0.9)] {
        let r = reduce(
            &profiles,
            ReductionConfig {
                k,
                variance_keep: var,
                ..Default::default()
            },
        );
        t.row([
            k.to_string(),
            format!("{var:.2}"),
            r.pca_dims.to_string(),
            format!("{:.1}", r.clustering.inertia),
        ]);
    }
    println!("{}", t.render());
    println!("(expect inertia to fall as k rises, and pca dims to rise with variance kept)");

    // --- Ablation 4: replacement policy on the locality sweep ----------
    println!("Ablation 4: replacement policy on the Figure 6 capacity sweep (H-WordCount)");
    let mut t = TextTable::new(["capacity KiB", "LRU miss%", "random miss%"]);
    let sizes = [16u64, 64, 256, 1024];
    for &kib in &sizes {
        let mut row = vec![kib.to_string()];
        for policy in [Replacement::Lru, Replacement::Random] {
            let mut config = MachineConfig::atom_sweep(kib);
            config.l1i.replacement = policy;
            config.l1d.replacement = policy;
            let mut machine = Machine::new(config);
            let _ = wc.run(&mut machine, scale);
            row.push(format!("{:.4}", machine.report().l1i.miss_ratio() * 100.0));
        }
        t.row(row);
    }
    println!("{}", t.render());
    println!("(random replacement keeps some lines under cyclic thrash, so its");
    println!(" small-capacity points sit slightly below LRU; the knee stays put)");
}
