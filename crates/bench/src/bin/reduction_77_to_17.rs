//! The paper's §3 headline: profile all 77 catalog workloads on 45
//! metrics, z-score + PCA + K-means (k = 17), and report the chosen
//! representatives with their cluster sizes — the reproduction of the
//! "77 workloads → 17 representative ones" reduction.

use bdb_bench::{profile_on_xeon, scale_from_args};
use bdb_wcrt::reduction::{reduce, ReductionConfig};
use bdb_wcrt::report::TextTable;
use bdb_workloads::catalog;

fn main() {
    let scale = scale_from_args();
    eprintln!("profiling all 77 catalog workloads (this is the expensive step)...");
    let catalog_defs = catalog::full_catalog();
    let profiles = profile_on_xeon(&catalog_defs, scale);

    let config = ReductionConfig::default();
    let result = reduce(&profiles, config);

    println!(
        "WCRT reduction: 77 workloads -> {} clusters",
        result.clustering.k()
    );
    println!(
        "PCA kept {} of 45 dimensions ({:.1}% variance explained)",
        result.pca_dims,
        result.explained_variance * 100.0
    );

    let mut table = TextTable::new(["representative", "cluster size", "stack", "category"]);
    for (id, size) in result.weighted_representatives() {
        let spec = &catalog_defs
            .iter()
            .find(|w| w.spec.id == id)
            .expect("representative is in catalog")
            .spec;
        table.row([
            id.to_owned(),
            format!("({size})"),
            spec.stack.to_string(),
            spec.category.to_string(),
        ]);
    }
    println!("{}", table.render());

    // How does our data-driven subset compare with the paper's Table 2?
    let paper: std::collections::HashSet<&str> = catalog::representative_weights()
        .iter()
        .map(|(id, _)| *id)
        .collect();
    let chosen: std::collections::HashSet<&str> = result.representative_ids().into_iter().collect();
    let overlap = paper.intersection(&chosen).count();
    println!("overlap with the paper's 17 representatives: {overlap}/17 exact ids");
    println!("(cluster membership, not exact identity, is the reproducible claim:");
    println!(" equivalent workloads from the same cluster are interchangeable reps)");

    // Cluster-size distribution, compared with the paper's (10,9,9,9,8,...)
    let mut sizes = result.clustering.cluster_sizes();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    println!("cluster sizes: {sizes:?}");
    println!("paper sizes:   [10, 9, 9, 9, 8, 7, 7, 4, 4, 3, 1, 1, 1, 1, 1, 1, 1]");
}
