//! Table 1: the seven source data sets and their generators.

use bdb_datagen::DataSetCatalog;
use bdb_wcrt::report::TextTable;

fn main() {
    let mut table = TextTable::new([
        "no.",
        "data set",
        "original description",
        "generator",
        "default records",
    ]);
    for (i, d) in DataSetCatalog::new().iter().enumerate() {
        table.row([
            (i + 1).to_string(),
            d.id.to_string(),
            d.original.to_owned(),
            d.generator.to_owned(),
            d.default_records.to_string(),
        ]);
    }
    println!("Table 1: Data sets and generation tools");
    println!("{}", table.render());
}
