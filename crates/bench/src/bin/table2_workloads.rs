//! Table 2: the 17 representative workloads with their measured data
//! behaviours (paper §3.2.2 rules) and system behaviours (§3.2.1 rules).
//!
//! Unlike the paper's hand-assembled table, every cell here is *measured*
//! from the run: byte volumes from the stacks, CPU/I-O classes from the
//! node model.

use bdb_bench::{profile_on_xeon, scale_from_args};
use bdb_wcrt::report::TextTable;
use bdb_workloads::catalog;

/// The paper's Table 2 system-behaviour column, for comparison.
fn paper_class(id: &str) -> &'static str {
    match id {
        "H-Read" | "H-Difference" | "I-SelectQuery" | "S-WordCount" | "S-Project" | "S-OrderBy"
        | "S-Grep" => "IO-Intensive",
        "H-Grep" | "S-Kmeans" | "S-PageRank" | "H-WordCount" | "H-NaiveBayes" => "CPU-Intensive",
        _ => "Hybrid",
    }
}

fn main() {
    let scale = scale_from_args();
    let reps = profile_on_xeon(&catalog::representatives(), scale);
    let weights: std::collections::HashMap<&str, usize> =
        catalog::representative_weights().into_iter().collect();
    let mut table = TextTable::new([
        "id",
        "workload",
        "represents",
        "category",
        "data behaviour",
        "system behaviour",
        "paper says",
    ]);
    let mut described = Vec::new();
    let mut matches = 0;
    for (i, p) in reps.iter().enumerate() {
        let measured = p.system_class.to_string();
        let expected = paper_class(&p.spec.id);
        if measured == expected {
            matches += 1;
        }
        table.row([
            (i + 1).to_string(),
            p.spec.id.clone(),
            format!(
                "({})",
                weights.get(p.spec.id.as_str()).copied().unwrap_or(1)
            ),
            p.spec.category.to_string(),
            p.data_behavior.to_string(),
            measured,
            expected.to_owned(),
        ]);
        described.push(format!(
            "{:2}. {:18} {}",
            i + 1,
            p.spec.id,
            p.spec.kernel.description()
        ));
    }
    println!("Table 2: The representative big data workloads");
    println!("{}", table.render());
    println!("system-behaviour agreement with the paper: {matches}/17");
    println!("\nworkload descriptions:");
    for line in described {
        println!("  {line}");
    }
}
